"""Benchmark-harness fixtures.

Every benchmark regenerates one paper figure at the canonical experiment
configuration, times it with pytest-benchmark, prints the figure's
rows/series, and archives them under ``benchmarks/results/``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.artifacts.workspace import Workspace, set_active_workspace

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session", autouse=True)
def benchmark_workspace(tmp_path_factory, results_dir):
    """A fresh artifact workspace per benchmark session.

    A temp directory keeps timings honest (every session profiles from
    cold, rather than inheriting a warm developer workspace); the per-kind
    hit/miss counters are archived next to the figure outputs.
    """
    workspace = Workspace(tmp_path_factory.mktemp("workspace"))
    previous = set_active_workspace(workspace)
    yield workspace
    set_active_workspace(previous)
    (results_dir / "workspace-counters.json").write_text(
        json.dumps(workspace.counters_to_json(), indent=2) + "\n"
    )


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered figure and archive it as ``results/<name>.txt``."""

    def _emit(name: str, rendered: str) -> None:
        banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
        print(banner + rendered)
        (results_dir / f"{name}.txt").write_text(rendered + "\n")

    return _emit
