"""Benchmark-harness fixtures.

Every benchmark regenerates one paper figure at the canonical experiment
configuration, times it with pytest-benchmark, prints the figure's
rows/series, and archives them under ``benchmarks/results/``.
"""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def emit(results_dir):
    """Print a rendered figure and archive it as ``results/<name>.txt``."""

    def _emit(name: str, rendered: str) -> None:
        banner = f"\n{'=' * 72}\n{name}\n{'=' * 72}\n"
        print(banner + rendered)
        (results_dir / f"{name}.txt").write_text(rendered + "\n")

    return _emit
