"""Benchmark: ablations and baseline comparisons (paper prose claims)."""

from repro.experiments import run_ablations


def test_bench_ablations(benchmark, emit):
    result = benchmark.pedantic(run_ablations, rounds=1, iterations=1)
    emit("ablations", result.render())
    # Full Ceer beats every ablation and baseline.
    full = result.mean_error("ceer (full)")
    assert full < 0.06
    assert result.mean_error("heavy-ops-only") > full
    assert result.mean_error("no-communication (Eq. 1)") > 2 * full
    assert result.mean_error("layer-level (Giannini-style)") > 0.12
    # Ceer's pick saves substantially over naive strategies (paper: 36-44%).
    assert result.strategy_cost_ratio["cheapest-instance"] > 1.3
    assert result.strategy_cost_ratio["latest-gpu (P3)"] > 1.4
