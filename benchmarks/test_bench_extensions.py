"""Benchmarks: extension studies beyond the paper's figures.

Multi-host placement (the paper's Section VI limitation, implemented),
training-set-size sensitivity, and the median-vs-mean estimator choice.
"""

from repro.experiments import (
    run_estimator_choice_study,
    run_multihost_study,
    run_sensitivity_study,
)


def test_bench_multihost_study(benchmark, emit):
    result = benchmark.pedantic(run_multihost_study, rounds=1, iterations=1)
    emit("extension_multihost", result.render())
    retrained = result.multihost_errors["multi-host Ceer (retrained, Section VI)"]
    stale = result.multihost_errors["single-host Ceer (stale comm model)"]
    assert retrained < stale


def test_bench_sensitivity_study(benchmark, emit):
    result = benchmark.pedantic(
        run_sensitivity_study, kwargs={"sizes": (3, 5, 8)}, rounds=1, iterations=1
    )
    emit("extension_sensitivity", result.render())
    assert all(error < 0.20 for _, error in result.by_size.values())


def test_bench_estimator_choice_study(benchmark, emit):
    result = benchmark.pedantic(run_estimator_choice_study, rounds=1, iterations=1)
    emit("extension_estimator_choice", result.render())
    assert set(result.errors) == {"median", "mean"}


def test_bench_transformer_study(benchmark, emit):
    from repro.experiments import run_transformer_study

    result = benchmark.pedantic(run_transformer_study, rounds=1, iterations=1)
    emit("extension_transformer", result.render())
    assert result.strict_raises
    updated = result.errors["after learn_model on one Transformer"]
    assert updated < 0.15


def test_bench_batch_size_study(benchmark, emit):
    from repro.experiments import run_batch_size_study

    result = benchmark.pedantic(run_batch_size_study, rounds=1, iterations=1)
    emit("extension_batch_size", result.render())
    assert all(error < 0.12 for error in result.errors.values())


def test_bench_rnn_study(benchmark, emit):
    from repro.experiments import run_rnn_study

    result = benchmark.pedantic(run_rnn_study, rounds=1, iterations=1)
    emit("extension_rnn", result.render())
    before = result.errors["CNN-trained Ceer (fallback)"]
    after = result.errors["after learn_model on one LSTM"]
    assert after < before / 5
