"""Benchmark: regenerate Figure 10 (total-budget-constrained selection)."""

from repro.experiments import run_fig10


def test_bench_fig10_total_budget(benchmark, emit):
    result = benchmark.pedantic(run_fig10, rounds=1, iterations=1)
    emit("fig10_total_budget", result.render())
    # Paper's feasibility story: every P2 config and the 4-GPU P3 exceed
    # the budget; the 3-GPU P3 is optimal; Ceer agrees.
    feasible = set(result.feasible(False))
    assert not any(gpu == "K80" for gpu, _ in feasible)
    assert ("V100", 4) not in feasible
    assert result.best_config(False) == ("V100", 3)
    assert result.best_config(True) == ("V100", 3)
