"""Benchmark: regenerate Figure 11 (budget minimisation, AWS prices)."""

from repro.experiments import run_fig11


def test_bench_fig11_cost_min(benchmark, emit):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    emit("fig11_cost_min", result.render())
    # Paper: 1-GPU G4 is cheapest; G3/4xP3 cost 1.6x/1.8x (ours ~1.9/2.1).
    assert result.best_config(False) == ("T4", 1)
    assert result.best_config(True) == ("T4", 1)
    assert result.cost_ratio("M60", 1) > 1.3
    assert result.cost_ratio("V100", 4) > 1.5
