"""Benchmark: regenerate Figure 12 (budget minimisation, market prices)."""

from repro.experiments import run_fig12


def test_bench_fig12_market_prices(benchmark, emit):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    emit("fig12_market_prices", result.render())
    # Paper: under market-ratio prices the 1-GPU P2 instance wins, and the
    # AWS-price winner (1-GPU G4) costs a multiple of the optimum.
    assert result.best_config(False) == ("K80", 1)
    assert result.best_config(True) == ("K80", 1)
    assert result.cost_ratio("T4", 1) > 1.2
