"""Benchmark: regenerate Figure 2 (per-op compute times across GPUs)."""

from repro.experiments import run_fig2


def test_bench_fig2_op_times(benchmark, emit):
    result = benchmark.pedantic(run_fig2, rounds=1, iterations=1)
    emit("fig2_op_times", result.render())
    assert result.ratio_p2_over_p3 > 4.5
    assert result.ratio_g4_over_p3 > 2.2
    assert result.ratio_p2_over_g3 > 1.05
