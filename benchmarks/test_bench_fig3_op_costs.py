"""Benchmark: regenerate Figure 3 (per-op compute costs across GPUs)."""

from repro.experiments import run_fig3


def test_bench_fig3_op_costs(benchmark, emit):
    result = benchmark.pedantic(run_fig3, rounds=1, iterations=1)
    emit("fig3_op_costs", result.render())
    assert set(result.p3_wins) == {
        "AvgPool", "AvgPoolGrad", "MaxPool", "MaxPoolGrad",
    }
    assert result.g4_win_count >= 12
