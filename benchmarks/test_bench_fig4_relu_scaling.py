"""Benchmark: regenerate Figure 4 (ReLU compute time vs input size)."""

from repro.experiments import run_fig4


def test_bench_fig4_relu_scaling(benchmark, emit):
    result = benchmark.pedantic(run_fig4, rounds=1, iterations=1)
    emit("fig4_relu_scaling", result.render())
    assert all(fit.r2 > 0.9 for fit in result.fits.values())


def test_bench_fig4_quadratic_op(benchmark, emit):
    """The quadratic-fit case the paper calls out: Conv2DBackpropFilter."""
    result = benchmark.pedantic(
        run_fig4, args=("Conv2DBackpropFilter",), rounds=1, iterations=1
    )
    emit("fig4_conv2dbackpropfilter_scaling", result.render())
    assert any(fit.degree == 2 for fit in result.fits.values())
