"""Benchmark: regenerate Figure 5 (CDF of normalized compute-time stddev)."""

from repro.analysis.stats import fraction_below
from repro.experiments import run_fig5


def test_bench_fig5_variability(benchmark, emit):
    result = benchmark.pedantic(run_fig5, rounds=1, iterations=1)
    emit("fig5_variability", result.render())
    assert fraction_below(result.heavy_all, 0.1) >= 0.95
