"""Benchmark: regenerate Figure 6 (training time vs #GPUs, Inception-v1)."""

from repro.experiments import run_fig6


def test_bench_fig6_scaling(benchmark, emit):
    result = benchmark.pedantic(run_fig6, rounds=1, iterations=1)
    emit("fig6_scaling", result.render())
    # Paper: ~35.8% / 46.6% / 53.6% average reductions for 2/3/4 GPUs.
    assert 0.30 <= result.average_reduction(2) <= 0.47
    assert 0.42 <= result.average_reduction(3) <= 0.60
    assert 0.48 <= result.average_reduction(4) <= 0.68
