"""Benchmark: regenerate Figure 7 (comm overhead vs model parameters)."""

from repro.experiments import run_fig7


def test_bench_fig7_comm_overhead(benchmark, emit):
    result = benchmark.pedantic(run_fig7, rounds=1, iterations=1)
    emit("fig7_comm_overhead", result.render())
    # Paper: linear fits with R^2 0.88-0.98 per (GPU, k).
    assert all(r2 >= 0.85 for r2 in result.model.r2.values())
    assert all(fit.coef[0] > 0 for fit in result.model.models.values())
