"""Benchmark: regenerate Figure 8 (observed vs predicted time and cost)."""

from repro.experiments import run_fig8


def test_bench_fig8_validation(benchmark, emit):
    result = benchmark.pedantic(run_fig8, rounds=1, iterations=1)
    emit("fig8_validation", result.render())
    # Paper: 5.4% average error and perfect GPU-ranking agreement.
    assert result.average_error < 0.08
    for model in ("inception_v3", "alexnet", "resnet_101", "vgg_19"):
        assert result.ranking_correct(model)
