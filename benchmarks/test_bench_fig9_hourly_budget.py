"""Benchmark: regenerate Figure 9 (hourly-budget-constrained selection)."""

from repro.experiments import run_fig9


def test_bench_fig9_hourly_budget(benchmark, emit):
    result = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    emit("fig9_hourly_budget", result.render())
    models = ("inception_v3", "alexnet", "resnet_101", "vgg_19")
    # Ceer's pick matches the observed optimum for every test CNN, and the
    # winner is CNN-dependent (the paper's headline).
    for model in models:
        assert result.best_config(model) == result.best_config(model, True)
    assert len({result.best_config(m) for m in models}) >= 2
