"""Benchmark: compiled prediction engine vs the scalar per-op reference.

Times the full 16-candidate recommender sweep on an Inception-class model
both ways and asserts the engine's contract: >= 10x faster than the seed
per-op loop with totals matching within 1e-6 relative tolerance. Runs at
the canonical experiment configuration like every other benchmark; the
assertions make sweep-latency regressions fail CI here rather than
slowing the tier-1 test suite.
"""

import time

from repro.core.estimator import CeerEstimator
from repro.core.recommend import Recommender
from repro.experiments.common import IMAGENET_JOB, fitted_ceer
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import build_model, model_names

MODEL = "inception_v3"


def test_bench_predict_engine(benchmark, emit):
    fitted = fitted_ceer()
    compute_models = fitted.estimator.compute_models
    comm_model = fitted.estimator.comm_model

    scalar_rec = Recommender(
        CeerEstimator(compute_models, comm_model, use_engine=False)
    )
    engine_est = CeerEstimator(compute_models, comm_model)
    engine_rec = Recommender(engine_est)

    t0 = time.perf_counter()
    scalar_sweep = scalar_rec.sweep(MODEL, IMAGENET_JOB)
    scalar_s = time.perf_counter() - t0

    def cold_sweep():
        engine_est.engine.clear()
        return engine_rec.sweep(MODEL, IMAGENET_JOB)

    engine_sweep = benchmark.pedantic(cold_sweep, rounds=5, iterations=1)
    cold_s = benchmark.stats.stats.min

    # Cold sweep (build + compile + evaluate all 16 candidates) must beat
    # the seed per-op loop by >= 10x; warm repeats are far faster still.
    speedup = scalar_s / cold_s
    assert speedup >= 10.0, f"sweep speedup {speedup:.1f}x below 10x target"

    # Bit-identical results (<= 1e-6 relative) across all 16 candidates.
    worst = 0.0
    for s, e in zip(scalar_sweep, engine_sweep):
        assert (s.gpu_key, s.num_gpus) == (e.gpu_key, e.num_gpus)
        worst = max(worst, abs(e.total_us - s.total_us) / s.total_us)
    assert worst <= 1e-6

    # ... and across the whole zoo x GPU matrix on raw compute totals.
    for name in model_names():
        graph = build_model(name, batch_size=IMAGENET_JOB.batch_size)
        for gpu_key in GPU_KEYS:
            scalar = compute_models.predict_graph_us(graph, gpu_key)
            vector = engine_est.engine.predict_graph_us(graph, gpu_key)
            worst = max(worst, abs(vector - scalar) / scalar)
    assert worst <= 1e-6

    emit(
        "predict_engine",
        "\n".join(
            [
                f"recommender sweep on {MODEL} "
                f"({len(scalar_sweep)} candidates):",
                f"  scalar per-op loop: {scalar_s * 1e3:8.2f} ms",
                f"  engine (cold):      {cold_s * 1e3:8.3f} ms  "
                f"({speedup:.0f}x)",
                f"  max rel diff vs scalar (sweep + zoo x GPU): {worst:.2e}",
            ]
        ),
    )
