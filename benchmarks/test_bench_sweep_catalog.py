"""Benchmark: batched catalog sweep vs the per-candidate reference loop.

Times a full-catalog sweep (every priceable (GPU, count) x 12 batch sizes
x 3 pricing tiers = 1296 candidates) both ways and asserts the batched
path's contract: >= 10x faster warm than the per-candidate loop with
every candidate matching within 1e-9 relative tolerance. Runs at the
canonical experiment configuration like every other benchmark; the
assertions make catalog-sweep regressions fail here rather than slowing
the tier-1 test suite.
"""

import time

from repro.core.batch import (
    SweepPlan,
    evaluate_sweep,
    sweep_candidates_reference,
)
from repro.core.estimator import CeerEstimator
from repro.experiments.common import IMAGENET_JOB, fitted_ceer
from repro.units import us_to_hr

MODEL = "inception_v3"


def test_bench_sweep_catalog(benchmark, emit):
    fitted = fitted_ceer()
    estimator = CeerEstimator(
        fitted.estimator.compute_models, fitted.estimator.comm_model
    )
    plan = SweepPlan.full_catalog()

    # Prime the engine's graph caches so the loop timing measures its
    # per-candidate dispatch, not one-off graph compilation.
    reference = sweep_candidates_reference(estimator, MODEL, IMAGENET_JOB, plan)
    t0 = time.perf_counter()
    reference = sweep_candidates_reference(estimator, MODEL, IMAGENET_JOB, plan)
    loop_s = time.perf_counter() - t0

    evaluate_sweep(estimator, MODEL, IMAGENET_JOB, plan)  # warm the caches
    result = benchmark.pedantic(
        lambda: evaluate_sweep(estimator, MODEL, IMAGENET_JOB, plan),
        rounds=5, iterations=1,
    )
    warm_s = benchmark.stats.stats.min

    assert result.n_candidates >= 1000
    speedup = loop_s / warm_s
    assert speedup >= 10.0, f"catalog speedup {speedup:.1f}x below 10x target"

    # Numerically equivalent across every priceable candidate.
    cells = list(result.iter_candidates())
    assert len(cells) == len(reference)
    worst = 0.0
    for cell, ref in zip(cells, reference):
        got = result.prediction(*cell)
        assert got.instance_name == ref.instance_name
        worst = max(worst, abs(got.total_us - ref.total_us) / ref.total_us)
        worst = max(
            worst, abs(got.cost_dollars - ref.cost_dollars) / ref.cost_dollars
        )
    assert worst <= 1e-9

    frontier = result.frontier()
    lines = [
        f"candidates: {result.n_candidates} "
        f"({len(plan.batch_sizes)} batches x {len(plan.pricings)} pricings)",
        f"loop (warm): {loop_s * 1e3:.2f} ms | "
        f"batched (warm): {warm_s * 1e3:.3f} ms | {speedup:.0f}x",
        f"max rel diff: {worst:.2e}",
        f"frontier ({len(frontier)} points, fastest-first):",
    ]
    lines += [
        f"  {p.instance_name:<24s} {p.num_gpus}x{p.gpu_key:<5s} "
        f"batch {p.batch_size:<4d} {us_to_hr(p.total_us):.2f} h  "
        f"${p.cost_dollars:.2f}"
        for p in frontier
    ]
    emit("sweep_catalog", "\n".join(lines))
