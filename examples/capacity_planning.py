#!/usr/bin/env python
"""Capacity planning: memory checks, time breakdowns, and a saved estimator.

A production-flavoured workflow on top of the reproduction:

1. Fit Ceer once and save it to disk (the offline phase is the expensive
   part; the fitted model is a few kilobytes of coefficients).
2. Reload it instantly in a "planning" session.
3. For a big model (Inception-ResNet-v2), find which GPUs can even hold it
   at the desired batch size, and the largest feasible batch per GPU.
4. Break down where the iteration time goes on the chosen instance.
5. Recommend with the memory check enabled, so OOM configurations are
   excluded from the sweep.

Run:  python examples/capacity_planning.py
"""

import tempfile
from pathlib import Path

from repro import (
    IMAGENET_EPOCH,
    MinimizeCost,
    Recommender,
    fit_ceer,
    load_estimator,
    save_estimator,
)
from repro.analysis import profile_breakdown
from repro.hardware import GPU_KEYS, estimate_memory, max_batch_size
from repro.models import build_model

MODEL = "inception_resnet_v2"


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="ceer-"))
    estimator_path = workdir / "ceer.json"

    print("== 1. Offline phase: fit once, save to disk ==")
    fitted = fit_ceer(n_iterations=150)
    save_estimator(fitted.estimator, estimator_path)
    print(f"  saved {estimator_path} ({estimator_path.stat().st_size} bytes)")

    print("\n== 2. Planning session: reload instantly ==")
    estimator = load_estimator(estimator_path)

    print(f"\n== 3. Memory feasibility for {MODEL} ==")
    graph = build_model(MODEL, batch_size=32)
    estimate = estimate_memory(graph)
    print(f"  {estimate.render()}")
    for gpu in GPU_KEYS:
        feasible = "fits" if estimate.fits(gpu) else "OOM at batch 32"
        biggest = max_batch_size(
            lambda bs: build_model(MODEL, batch_size=bs), gpu
        )
        print(f"  {gpu:5s}: {feasible:16s} (max feasible batch: {biggest})")

    print("\n== 4. Where does an iteration go on the T4? ==")
    print(profile_breakdown(MODEL, "T4", n_iterations=150).render(top_n=8))

    print("\n== 5. Recommendation with the memory check on ==")
    recommendation = Recommender(estimator, check_memory=True).recommend(
        MODEL, IMAGENET_EPOCH, MinimizeCost()
    )
    print(recommendation.summary())
    excluded = {g for g in GPU_KEYS} - {p.gpu_key for p in recommendation.ranked}
    print(f"  GPU models excluded for memory: {sorted(excluded) or 'none'}")


if __name__ == "__main__":
    main()
