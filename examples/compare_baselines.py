#!/usr/bin/env python
"""Ceer vs the literature's simpler predictors (paper, Sections IV & VII).

Compares per-iteration training-time prediction error on the held-out test
CNNs for:

* full Ceer (regressions + medians + communication model);
* Ceer without light/CPU ops (the Section IV-B ablation);
* Ceer without the communication term — Eq. (1) (the Section IV-A ablation);
* a Giannini-style layer-level regression (conv/pool/matmul kernels only);
* a PALEO-style whole-model FLOP regression.

Run:  python examples/compare_baselines.py
"""

from repro import TEST_MODELS, TrainingJob, fit_ceer, measure_training
from repro.analysis.reporting import format_table
from repro.core.baselines import (
    LayerLevelEstimator,
    PaleoStyleEstimator,
    heavy_only_variant,
    no_comm_variant,
)
from repro.hardware import GPU_KEYS
from repro.models import TRAIN_MODELS
from repro.workloads import IMAGENET

ITERATIONS = 150
JOB = TrainingJob(IMAGENET, batch_size=32)


def main() -> None:
    print("Fitting Ceer and both baselines ...")
    fitted = fit_ceer(n_iterations=ITERATIONS)
    estimators = {
        "ceer (full)": fitted.estimator,
        "heavy-ops-only": heavy_only_variant(fitted.estimator),
        "no-communication": no_comm_variant(fitted.estimator),
        "layer-level": LayerLevelEstimator.fit(fitted.train_profiles),
        "paleo-style": PaleoStyleEstimator.fit(
            list(TRAIN_MODELS), list(GPU_KEYS), n_iterations=ITERATIONS
        ),
    }

    observed = {
        (model, gpu, k): measure_training(
            model, gpu, k, JOB, n_profile_iterations=ITERATIONS,
            seed_context="baseline-eval",
        ).per_iteration_us
        for model in TEST_MODELS
        for gpu in GPU_KEYS
        for k in (1, 4)
    }

    rows = []
    for name, estimator in estimators.items():
        errors = {1: [], 4: []}
        for (model, gpu, k), obs in observed.items():
            predicted = estimator.predict_iteration_us(model, gpu, k)
            errors[k].append(abs(predicted - obs) / obs)
        rows.append(
            [
                name,
                f"{sum(errors[1]) / len(errors[1]):.1%}",
                f"{sum(errors[4]) / len(errors[4]):.1%}",
            ]
        )
    print()
    print(
        format_table(
            ["estimator", "error (1 GPU)", "error (4 GPUs)"],
            rows,
            title="Per-iteration prediction error on held-out CNNs",
        )
    )
    print(
        "\nTakeaways (matching the paper): dropping light/CPU ops or the\n"
        "communication term measurably hurts accuracy, and whole-model or\n"
        "layer-level baselines are far behind operation-level Ceer."
    )


if __name__ == "__main__":
    main()
