#!/usr/bin/env python
"""Predict training time/cost for a brand-new CNN before renting anything.

The paper's promise (Section IV-D) is that Ceer works for *arbitrary*
CNNs: given only the model's DAG — op types, tensor shapes, parameter
count — it estimates training time and cost on every candidate instance.
This example defines a custom ResNet-style architecture that is not in the
zoo, builds its training graph with the public GraphBuilder API, and asks
Ceer where to train it.

Run:  python examples/custom_cnn.py
"""

from repro import (
    GraphBuilder,
    MinimizeCost,
    MinimizeTime,
    Recommender,
    TrainingJob,
    fit_ceer,
)
from repro.workloads import DatasetSpec


def build_custom_cnn(batch_size: int = 32):
    """A compact residual network for 160x160 inputs, 200 classes."""
    b = GraphBuilder(
        "my_resnet_lite", batch_size=batch_size, image_hw=(160, 160),
        num_classes=200,
    )
    x = b.input()
    x = b.conv(x, 32, kernel=5, stride=2, batch_norm=True, scope="stem")
    x = b.max_pool(x, kernel=3, stride=2, padding="SAME", scope="stem_pool")
    for stage, channels in enumerate((32, 64, 128)):
        for unit in range(2):
            stride = 2 if (unit == 0 and stage > 0) else 1
            scope = f"s{stage}u{unit}"
            if stride != 1 or x.shape.channels != channels:
                shortcut = b.conv(x, channels, 1, stride=stride, batch_norm=True,
                                  activation=None, scope=f"{scope}/proj")
            else:
                shortcut = x
            y = b.conv(x, channels, 3, stride=stride, batch_norm=True,
                       scope=f"{scope}/a")
            y = b.conv(y, channels, 3, batch_norm=True, activation=None,
                       scope=f"{scope}/b")
            x = b.add(shortcut, y, activation="relu", scope=f"{scope}/add")
    x = b.global_avg_pool(x)
    x = b.dropout(x, 0.3)
    return b.finalize(b.dense(x, 200, activation=None, scope="head"))


def main() -> None:
    graph = build_custom_cnn()
    print(graph.summary())
    print()

    job = TrainingJob(DatasetSpec("my-dataset", num_samples=400_000), batch_size=32)
    print("Fitting Ceer on the standard training set ...")
    fitted = fit_ceer(n_iterations=150)
    recommender = Recommender(fitted.estimator)

    print("\n== Cheapest way to train my_resnet_lite ==")
    print(recommender.recommend(graph, job, MinimizeCost()).summary())

    print("\n== Fastest way, cost be damned ==")
    print(recommender.recommend(graph, job, MinimizeTime()).summary())


if __name__ == "__main__":
    main()
