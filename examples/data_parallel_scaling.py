#!/usr/bin/env python
"""What-if analysis: how does training time scale with GPU count?

Reproduces the paper's Fig. 6 study for any zoo model: simulate training
on 1-4 GPUs of each AWS GPU model, compare against Ceer's predictions, and
show the diminishing returns that the synchronisation overhead causes
(Section III-D). Large-parameter models (try ``vgg_19``) scale notably
worse than small ones (``inception_v1``), because the per-iteration
communication overhead is linear in the parameter count (Fig. 7).

Run:  python examples/data_parallel_scaling.py [model_name] [samples]
"""

import sys

from repro import TrainingJob, fit_ceer, measure_training
from repro.analysis.reporting import format_table, format_us
from repro.workloads import DatasetSpec


def main(model: str = "inception_v1", samples: int = 6400) -> None:
    dataset = DatasetSpec(f"imagenet-{samples}", num_samples=int(samples))
    job = TrainingJob(dataset, batch_size=32)
    print(f"Fitting Ceer, then scaling {model!r} over {samples} samples ...\n")
    fitted = fit_ceer(n_iterations=150)

    rows = []
    for gpu_key in ("V100", "K80", "T4", "M60"):
        base = None
        for k in (1, 2, 3, 4):
            observed = measure_training(
                model, gpu_key, k, job,
                n_profile_iterations=150, seed_context="scaling-demo",
            )
            predicted = fitted.estimator.predict_training(model, gpu_key, k, job)
            base = base or observed.total_us
            rows.append(
                [
                    f"{gpu_key}x{k}",
                    format_us(observed.total_us),
                    format_us(predicted.total_us),
                    f"{1 - observed.total_us / base:.1%}" if k > 1 else "-",
                    f"{observed.comm_overhead_us / observed.per_iteration_us:.1%}",
                ]
            )
    print(
        format_table(
            ["config", "observed time", "Ceer predicted", "cut vs 1 GPU",
             "sync share"],
            rows,
            title=f"Data-parallel scaling of {model} (batch 32 per GPU)",
        )
    )
    print(
        "\nNote the diminishing returns: each added GPU increases the "
        "per-iteration synchronisation share (paper, Section III-D)."
    )


if __name__ == "__main__":
    args = sys.argv[1:]
    main(args[0] if args else "inception_v1", int(args[1]) if len(args) > 1 else 6400)
