#!/usr/bin/env python
"""Instance recommendation under the paper's four evaluation scenarios.

Reproduces Section V's decision problems for a held-out CNN:

* hourly-budget: fastest training throughput under $3/hr rental;
* total-budget: fastest training that stays within a fixed total spend;
* cost-minimisation under real AWS On-Demand prices;
* cost-minimisation under commodity-market price ratios (Fig. 12), which
  flips the optimal choice to the old-generation P2 instance.

Run:  python examples/instance_recommendation.py [model_name]
"""

import sys

from repro import (
    IMAGENET_EPOCH,
    MARKET_RATIO,
    HourlyBudget,
    MinimizeCost,
    Recommender,
    TotalBudget,
    fit_ceer,
)


def main(model: str = "resnet_101") -> None:
    print(f"Fitting Ceer and sweeping instances for {model!r} ...\n")
    fitted = fit_ceer(n_iterations=150)
    recommender = Recommender(fitted.estimator)

    scenarios = [
        ("Hourly budget of $3/hr (paper Fig. 9, with the paper's slack)",
         recommender, HourlyBudget(budget_usd_per_hr=3.0, slack_usd_per_hr=0.42)),
        ("Total budget of $13 for the whole job (paper Fig. 10 style)",
         recommender, TotalBudget(budget_dollars=13.0)),
        ("Minimise training cost, AWS On-Demand prices (paper Fig. 11)",
         recommender, MinimizeCost()),
        ("Minimise training cost, market-ratio prices (paper Fig. 12)",
         Recommender(fitted.estimator, pricing=MARKET_RATIO), MinimizeCost()),
    ]
    for title, rec, objective in scenarios:
        print(f"== {title} ==")
        print(rec.recommend(model, IMAGENET_EPOCH, objective).summary())
        print()


if __name__ == "__main__":
    main(*sys.argv[1:2])
