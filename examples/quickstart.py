#!/usr/bin/env python
"""Quickstart: fit Ceer and pick the best GPU instance for a CNN.

This walks the paper's core loop end to end:

1. profile the 8 training-set CNNs on all four simulated AWS GPU models;
2. fit Ceer's compute-time and communication models;
3. predict training time and cost for a *held-out* CNN (Inception-v3) on
   every candidate instance;
4. recommend the cost-optimal instance and sanity-check the prediction
   against a simulated "actually rent it and train" measurement.

Run:  python examples/quickstart.py
"""

from repro import (
    IMAGENET_EPOCH,
    MinimizeCost,
    Recommender,
    fit_ceer,
    measure_training,
)

PROFILE_ITERATIONS = 150  # the paper uses 1,000; fewer keeps the demo quick


def main() -> None:
    print("== 1. Fitting Ceer on the 8 training-set CNNs x 4 GPU models ==")
    fitted = fit_ceer(n_iterations=PROFILE_ITERATIONS)
    print(fitted.diagnostics.summary())

    print("\n== 2. Predicting one epoch of ImageNet for Inception-v3 ==")
    estimator = fitted.estimator
    for gpu_key in ("V100", "K80", "T4", "M60"):
        prediction = estimator.predict_training(
            "inception_v3", gpu_key, num_gpus=1, job=IMAGENET_EPOCH
        )
        print(
            f"  {prediction.instance_name:<16s} ({gpu_key:5s}): "
            f"{prediction.total_hours:6.2f} h, ${prediction.cost_dollars:7.2f}"
        )

    print("\n== 3. Recommending the cost-optimal instance ==")
    recommendation = Recommender(estimator).recommend(
        "inception_v3", IMAGENET_EPOCH, MinimizeCost()
    )
    print(recommendation.summary())

    print("\n== 4. Validating against a simulated training run ==")
    best = recommendation.best
    observed = measure_training(
        "inception_v3", best.gpu_key, best.num_gpus, IMAGENET_EPOCH,
        n_profile_iterations=PROFILE_ITERATIONS, seed_context="quickstart-eval",
    )
    error = abs(best.total_us - observed.total_us) / observed.total_us
    print(
        f"  predicted {best.total_hours:.2f} h vs observed "
        f"{observed.total_hours:.2f} h  ->  error {error:.1%}"
    )


if __name__ == "__main__":
    main()
