#!/usr/bin/env python
"""Future work, implemented: Ceer on Transformer models.

The paper closes (Section VI) wondering "how Ceer performs on other types
of DNNs, such as ... Transformer models". This example walks the full
story:

1. A CNN-trained Ceer in *strict* mode refuses to price a Transformer —
   its core kernels (BatchMatMul, LayerNorm, Gelu, Gather) were never
   profiled (``UnseenOperationError``, the paper's stated limitation).
2. The default (non-strict) fallback gives answers, but wildly wrong ones.
3. One ``learn_model`` update — profiling a *single* Transformer — makes
   predictions accurate on *other* Transformer shapes, and the
   communication model transfers for free (it only reads parameter
   counts, which is exactly why the paper made it CNN-oblivious).
4. With the updated estimator, recommend an instance for a BERT-style
   fine-tuning job.

Run:  python examples/transformer_futurework.py
"""

from repro import (
    DatasetSpec,
    MinimizeCost,
    Recommender,
    TrainingJob,
    fit_ceer,
    learn_model,
    measure_training,
)
from repro.errors import UnseenOperationError
from repro.models import build_transformer

SEQ_LEN = 64
BATCH = 16
JOB = TrainingJob(DatasetSpec("nlp-corpus", 1_000_000), batch_size=BATCH)


def main() -> None:
    print("== 1. Fit Ceer on the paper's 8 CNNs (strict unseen-op mode) ==")
    strict = fit_ceer(n_iterations=150, strict_unseen=True)
    bert = build_transformer("small", batch_size=BATCH, seq_len=SEQ_LEN)
    print(f"  target model: {bert.name} "
          f"({bert.num_parameters / 1e6:.1f}M params, {len(bert)} ops)")
    try:
        strict.estimator.predict_iteration_us(bert, "V100", 1)
    except UnseenOperationError as exc:
        print(f"  strict Ceer refuses, as the paper predicts:\n    {exc}")

    print("\n== 2. Non-strict fallback: an answer, but a bad one ==")
    fallback = fit_ceer(n_iterations=150, train_profiles=strict.train_profiles)
    observed = measure_training(bert, "T4", 1, JOB, n_profile_iterations=150,
                                seed_context="demo-eval")
    predicted = fallback.estimator.predict_iteration_us(bert, "T4", 1)
    error = abs(predicted - observed.per_iteration_us) / observed.per_iteration_us
    print(f"  observed {observed.per_iteration_us / 1e3:.1f} ms/iter vs "
          f"fallback prediction {predicted / 1e3:.1f} ms/iter "
          f"-> {error:.0%} error")

    print("\n== 3. learn_model: profile ONE transformer, predict the rest ==")
    learner = build_transformer("mini", batch_size=BATCH, seq_len=SEQ_LEN)
    updated = learn_model(fallback, learner, n_iterations=150)
    predicted = updated.estimator.predict_iteration_us(bert, "T4", 1)
    error = abs(predicted - observed.per_iteration_us) / observed.per_iteration_us
    print(f"  learned from {learner.name}; prediction for {bert.name} on T4 "
          f"now {predicted / 1e3:.1f} ms/iter -> {error:.0%} error")

    print("\n== 4. Recommend an instance for the fine-tuning job ==")
    recommendation = Recommender(updated.estimator).recommend(
        bert, JOB, MinimizeCost()
    )
    print(recommendation.summary())


if __name__ == "__main__":
    main()
