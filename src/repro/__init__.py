"""repro — reproduction of "Empirical Analysis and Modeling of Compute Times
of CNN Operations on AWS Cloud" (Hafeez & Gandhi, IISWC 2020).

The package implements **Ceer**, a model-driven predictor of CNN training
time and rental cost across cloud GPU instances, together with every
substrate the paper depends on, rebuilt in Python:

* :mod:`repro.graph` — TensorFlow-style op-graph IR with autodiff expansion;
* :mod:`repro.models` — the 12 CNNs of the paper's study;
* :mod:`repro.hardware` — simulated AWS GPUs (V100/K80/T4/M60) with a
  calibrated ground-truth timing law (the stand-in for physical hardware);
* :mod:`repro.sim` — training-execution and data-parallelism simulator;
* :mod:`repro.cloud` — the AWS instance catalog and pricing schemes;
* :mod:`repro.profiling` — op-level measurement collection;
* :mod:`repro.core` — Ceer itself: classification, regressions, medians,
  the communication model, the Eq. (2) estimator, and the recommender;
* :mod:`repro.experiments` — drivers regenerating every evaluation figure.

Quickstart::

    from repro import fit_ceer, Recommender, MinimizeCost, IMAGENET_EPOCH

    fitted = fit_ceer(n_iterations=200)
    rec = Recommender(fitted.estimator).recommend(
        "inception_v3", IMAGENET_EPOCH, MinimizeCost()
    )
    print(rec.summary())
"""

from repro.cloud import (
    AWS_INSTANCES,
    MARKET_RATIO,
    ON_DEMAND,
    InstanceType,
    instance_for,
)
from repro.core import (
    CeerEstimator,
    extend_ceer,
    learn_model,
    load_estimator,
    save_estimator,
    FittedCeer,
    HourlyBudget,
    MinimizeCost,
    MinimizeTime,
    Recommendation,
    Recommender,
    TotalBudget,
    TrainingPrediction,
    fit_ceer,
)
from repro.graph import GraphBuilder, OpGraph
from repro.hardware import GPU_KEYS, GPU_SPECS
from repro.models import TEST_MODELS, TRAIN_MODELS, build_model, model_names
from repro.profiling import Profiler, ProfileDataset
from repro.sim import measure_training
from repro.workloads import IMAGENET, IMAGENET_EPOCH, DatasetSpec, TrainingJob

__version__ = "1.0.0"

__all__ = [
    "fit_ceer",
    "FittedCeer",
    "CeerEstimator",
    "TrainingPrediction",
    "Recommender",
    "Recommendation",
    "MinimizeCost",
    "MinimizeTime",
    "HourlyBudget",
    "TotalBudget",
    "build_model",
    "model_names",
    "TRAIN_MODELS",
    "TEST_MODELS",
    "GraphBuilder",
    "OpGraph",
    "GPU_KEYS",
    "GPU_SPECS",
    "AWS_INSTANCES",
    "InstanceType",
    "instance_for",
    "ON_DEMAND",
    "MARKET_RATIO",
    "Profiler",
    "ProfileDataset",
    "measure_training",
    "save_estimator",
    "load_estimator",
    "extend_ceer",
    "learn_model",
    "DatasetSpec",
    "TrainingJob",
    "IMAGENET",
    "IMAGENET_EPOCH",
    "__version__",
]
