"""Analysis helpers: statistics and text-figure rendering."""

from repro.analysis.breakdown import (
    TimeBreakdown,
    breakdown_from_profile,
    profile_breakdown,
)
from repro.analysis.reporting import (
    format_dollars,
    format_percent,
    format_table,
    format_us,
    series_block,
)
from repro.analysis.stats import (
    argmin_key,
    empirical_cdf,
    fraction_below,
    geometric_mean,
    pairwise_errors,
    percentile_of,
    rank_agreement,
    ratio_summary,
    relative_reduction,
)

__all__ = [
    "empirical_cdf",
    "percentile_of",
    "fraction_below",
    "geometric_mean",
    "ratio_summary",
    "rank_agreement",
    "relative_reduction",
    "argmin_key",
    "pairwise_errors",
    "format_table",
    "format_us",
    "format_dollars",
    "format_percent",
    "series_block",
    "TimeBreakdown",
    "breakdown_from_profile",
    "profile_breakdown",
]
