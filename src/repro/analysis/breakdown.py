"""Per-model time breakdowns: where does an iteration actually go?

Tooling behind the paper's Section III narrative ("the pooling operations
have high compute times ...", "20 heavy operations contribute 47-94% of
the training time"): decompose a model's per-iteration time by op type,
by category, and by device, from either a profile or a prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple, Union

from repro.analysis.reporting import format_table, format_us
from repro.graph.graph import OpGraph
from repro.graph.ops import op_def
from repro.models.zoo import build_model
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset


@dataclass
class TimeBreakdown:
    """Per-iteration time decomposition for one (model, GPU) pair."""

    model: str
    gpu_key: str
    by_op_type: Dict[str, float]  # op type -> total us per iteration
    instances: Dict[str, int]  # op type -> instance count
    by_device: Dict[str, float]  # "GPU"/"CPU" -> total us

    @property
    def total_us(self) -> float:
        return sum(self.by_op_type.values())

    def share(self, op_type: str) -> float:
        return self.by_op_type.get(op_type, 0.0) / self.total_us

    def top(self, n: int = 10) -> List[Tuple[str, float]]:
        """The ``n`` op types with the largest time share, descending."""
        ranked = sorted(self.by_op_type.items(), key=lambda kv: -kv[1])
        return ranked[:n]

    def coverage(self, op_types) -> float:
        """Fraction of iteration time covered by a set of op types —
        the paper's '20 heavy operations contribute 47-94%' metric."""
        covered = sum(self.by_op_type.get(t, 0.0) for t in op_types)
        return covered / self.total_us

    def render(self, top_n: int = 12) -> str:
        rows = []
        for op_type, total in self.top(top_n):
            rows.append(
                [
                    op_type,
                    op_def(op_type).category.value,
                    self.instances[op_type],
                    format_us(total),
                    f"{self.share(op_type):.1%}",
                ]
            )
        table = format_table(
            ["op type", "category", "#", "time/iter", "share"],
            rows,
            title=f"Per-iteration time breakdown: {self.model} on {self.gpu_key} "
                  f"({format_us(self.total_us)} total)",
        )
        device_line = "  ".join(
            f"{device}: {format_us(total)} ({total / self.total_us:.1%})"
            for device, total in sorted(self.by_device.items())
        )
        return f"{table}\ndevice split: {device_line}"


def breakdown_from_profile(profile: ProfileDataset) -> TimeBreakdown:
    """Build a breakdown from an existing single-(model, GPU) profile."""
    models = profile.models()
    gpus = profile.gpu_keys()
    if len(models) != 1 or len(gpus) != 1:
        raise ValueError(
            f"breakdown needs a single (model, GPU) profile, got "
            f"models={models}, gpus={gpus}"
        )
    by_op_type: Dict[str, float] = {}
    instances: Dict[str, int] = {}
    by_device: Dict[str, float] = {}
    for record in profile:
        by_op_type[record.op_type] = by_op_type.get(record.op_type, 0.0) + record.mean_us
        instances[record.op_type] = instances.get(record.op_type, 0) + 1
        by_device[record.device] = by_device.get(record.device, 0.0) + record.mean_us
    return TimeBreakdown(
        model=models[0], gpu_key=gpus[0],
        by_op_type=by_op_type, instances=instances, by_device=by_device,
    )


def profile_breakdown(
    model: Union[str, OpGraph],
    gpu_key: str,
    n_iterations: int = 300,
    batch_size: int = 32,
) -> TimeBreakdown:
    """Profile a model on one GPU and return its time breakdown."""
    graph = (
        build_model(model, batch_size=batch_size)
        if isinstance(model, str)
        else model
    )
    profile = Profiler(n_iterations=n_iterations, batch_size=batch_size).profile(
        graph, gpu_key
    )
    return breakdown_from_profile(profile)
