"""Plain-text table/series rendering for experiment outputs.

Every experiment driver returns structured results *and* can render them as
the rows/series the corresponding paper figure reports; the benchmark
harness prints these renderings. Deliberately dependency-free (no
matplotlib): the reproduction's "figures" are aligned text tables.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.units import US_PER_HR, US_PER_MS, US_PER_S, us_to_hr, us_to_ms, us_to_s


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    float_format: str = "{:.3f}",
) -> str:
    """Render an aligned monospace table."""
    rendered: List[List[str]] = []
    for row in rows:
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )
    widths = [
        max(len(str(headers[i])), *(len(r[i]) for r in rendered)) if rendered else len(str(headers[i]))
        for i in range(len(headers))
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = "  ".join(str(h).ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-" * len(header_line))
    for r in rendered:
        lines.append("  ".join(r[i].rjust(widths[i]) for i in range(len(headers))))
    return "\n".join(lines)


def format_us(value_us: float) -> str:
    """Human-scaled time rendering for microsecond quantities."""
    if value_us < US_PER_MS:
        return f"{value_us:.1f} us"
    if value_us < US_PER_S:
        return f"{value_us / US_PER_MS:.2f} ms"
    if value_us < US_PER_HR:
        return f"{us_to_s(value_us):.2f} s"
    return f"{us_to_hr(value_us):.2f} h"


def format_dollars(value: float) -> str:
    return f"${value:,.2f}"


def format_percent(value: float) -> str:
    return f"{value:.1%}"


def series_block(name: str, points: Dict[object, float], value_format=format_us) -> str:
    """Render one figure series as 'name: x=value' lines."""
    lines = [f"{name}:"]
    for x, y in points.items():
        lines.append(f"  {x}: {value_format(y)}")
    return "\n".join(lines)
