"""Statistical helpers shared by experiments and tests."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ReproError


def empirical_cdf(values: Sequence[float]) -> Tuple[np.ndarray, np.ndarray]:
    """Return (sorted values, cumulative fractions) — e.g. the Fig. 5 CDF."""
    v = np.sort(np.asarray(values, dtype=float))
    if v.size == 0:
        raise ReproError("cannot compute a CDF of zero values")
    fractions = np.arange(1, v.size + 1) / v.size
    return v, fractions


def percentile_of(values: Sequence[float], q: float) -> float:
    """The q-th percentile (0-100) of a sample."""
    return float(np.percentile(np.asarray(values, dtype=float), q))


def fraction_below(values: Sequence[float], threshold: float) -> float:
    """Fraction of samples strictly below ``threshold``."""
    v = np.asarray(values, dtype=float)
    if v.size == 0:
        raise ReproError("cannot compute a fraction of zero values")
    return float((v < threshold).mean())


def geometric_mean(values: Sequence[float]) -> float:
    v = np.asarray(values, dtype=float)
    if np.any(v <= 0):
        raise ReproError("geometric mean requires positive values")
    return float(np.exp(np.log(v).mean()))


def ratio_summary(numerators: Dict[str, float], denominators: Dict[str, float]) -> Dict[str, float]:
    """Per-key ratios numerator/denominator over the shared key set."""
    shared = set(numerators) & set(denominators)
    if not shared:
        raise ReproError("no shared keys between the two mappings")
    return {k: numerators[k] / denominators[k] for k in sorted(shared)}


def rank_agreement(observed: Sequence[float], predicted: Sequence[float]) -> bool:
    """True when predicted values rank items identically to observed ones.

    The paper's validation emphasises that "the predicted relative ranking
    ... is in perfect agreement with the observed ranking" (Fig. 8).
    """
    obs = np.asarray(observed, dtype=float)
    pred = np.asarray(predicted, dtype=float)
    if obs.shape != pred.shape:
        raise ReproError("observed and predicted must have the same length")
    return bool(np.array_equal(np.argsort(obs), np.argsort(pred)))


def relative_reduction(baseline: float, improved: float) -> float:
    """(baseline - improved) / baseline, e.g. Fig. 6's scaling reductions."""
    if baseline <= 0:
        raise ReproError("baseline must be positive")
    return (baseline - improved) / baseline


def argmin_key(scores: Dict[str, float]) -> str:
    """Key with the minimal score (deterministic tie-break by key order)."""
    if not scores:
        raise ReproError("argmin over an empty mapping")
    return min(sorted(scores), key=lambda k: scores[k])


def pairwise_errors(
    observed: Dict[str, float], predicted: Dict[str, float]
) -> List[Tuple[str, float]]:
    """|pred-obs|/obs per shared key, sorted by key."""
    shared = sorted(set(observed) & set(predicted))
    if not shared:
        raise ReproError("no shared keys between observed and predicted")
    out = []
    for k in shared:
        if observed[k] <= 0:
            raise ReproError(f"observed value for {k!r} must be positive")
        out.append((k, abs(predicted[k] - observed[k]) / observed[k]))
    return out
