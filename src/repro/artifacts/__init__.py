"""``repro.artifacts`` — the typed artifact workspace.

One explicit, fingerprint-invalidated caching layer for everything the
offline phase produces: profile datasets, fitted Ceer estimators,
ground-truth training measurements, and rendered figure payloads. See
:mod:`repro.artifacts.workspace` for the facade the rest of the tree uses
and :mod:`repro.artifacts.store` for tiering/locking/atomicity details.
"""

from repro.artifacts.fingerprint import fingerprint
from repro.artifacts.kinds import (
    FIGURE,
    FITTED,
    KINDS,
    MEASUREMENT,
    PROFILE,
    ArtifactKind,
)
from repro.artifacts.store import (
    ArtifactInfo,
    ArtifactStore,
    KindCounters,
    atomic_write_bytes,
)
from repro.artifacts.workspace import (
    CANONICAL_ITERATIONS,
    EVAL_SEED,
    WORKSPACE_ENV,
    Workspace,
    active_workspace,
    default_workspace_dir,
    set_active_workspace,
)

__all__ = [
    "ArtifactKind", "ArtifactStore", "ArtifactInfo", "KindCounters",
    "atomic_write_bytes",
    "PROFILE", "FITTED", "MEASUREMENT", "FIGURE", "KINDS",
    "fingerprint",
    "Workspace", "active_workspace", "set_active_workspace",
    "default_workspace_dir",
    "CANONICAL_ITERATIONS", "EVAL_SEED", "WORKSPACE_ENV",
]
