"""Config fingerprints: the content-addressing scheme of the artifact store.

Every artifact key is a short SHA-256 digest over a canonical JSON document
that folds in three layers of identity:

* the artifact **kind** and its on-disk **schema version** — bumping the
  schema re-addresses every artifact of that kind, so old layouts simply
  stop being found (self-invalidation) instead of failing to parse;
* the **calibration version** of the simulated hardware substrate
  (:data:`repro.hardware.calibration.CALIBRATION_VERSION`) — retuned
  efficiency tables change every measurement, so they must change every key;
* the caller-supplied **configuration spec** (models, GPUs, iterations,
  batch size, seed context, placement, ...), serialised with sorted keys so
  logically equal configurations always address the same artifact.

Keys are deliberately *not* derived from artifact contents: the store
answers "has this configuration been computed?", and the configuration is
what must be hashed.
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping

from repro.errors import ArtifactError
from repro.hardware.calibration import CALIBRATION_VERSION

#: Hex digest length of a store key; 80 bits is far beyond collision risk
#: for any realistic artifact population while keeping filenames readable.
KEY_HEX_CHARS = 20


def canonical_json(spec: Mapping[str, object]) -> str:
    """Serialise ``spec`` deterministically (sorted keys, no whitespace)."""
    try:
        return json.dumps(spec, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise ArtifactError(
            f"artifact fingerprint spec is not JSON-serialisable: {exc}"
        ) from exc


def fingerprint(kind_name: str, schema_version: int, spec: Mapping[str, object]) -> str:
    """The store key for one (kind, schema, calibration, spec) identity."""
    document = canonical_json({
        "kind": kind_name,
        "schema": schema_version,
        "calibration": CALIBRATION_VERSION,
        "spec": dict(spec),
    })
    return hashlib.sha256(document.encode("utf-8")).hexdigest()[:KEY_HEX_CHARS]
