"""Typed artifact kinds and their JSON codecs.

The store itself moves opaque JSON payloads; everything *typed* about an
artifact lives here. Each kind pairs a stable on-disk name and schema
version with an ``encode_*``/``decode_*`` codec mapping the in-memory type
(:class:`~repro.profiling.records.ProfileDataset`,
:class:`~repro.core.fit.FittedCeer`,
:class:`~repro.sim.trace.TrainingMeasurement`, rendered figure text) to a
JSON-ready payload and back.

Decoders are strict: anything structurally off raises
:class:`~repro.errors.ArtifactError` (or a narrower library error), which
the store treats as a cache miss — corrupt artifacts silently recompute,
they never crash a run.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Tuple, cast

from repro.core.fit import CeerDiagnostics, FittedCeer
from repro.core.persistence import (
    FORMAT_VERSION as ESTIMATOR_FORMAT_VERSION,
    estimator_from_dict,
    estimator_to_dict,
)
from repro.errors import ArtifactError
from repro.profiling.records import ProfileDataset, ProfileRecord
from repro.sim.trace import TrainingMeasurement


@dataclass(frozen=True)
class ArtifactKind:
    """One category of cached artifact: a stable name plus schema version.

    ``schema_version`` is folded into every key (see
    :mod:`repro.artifacts.fingerprint`) *and* stamped into the on-disk
    envelope; bump it whenever the payload layout changes.
    """

    name: str
    schema_version: int
    description: str


#: Profiled op datasets — the expensive offline-phase measurement matrix.
PROFILE = ArtifactKind("profile", 1, "profiled op datasets (ProfileDataset)")

#: Fitted Ceer estimators + diagnostics. The payload embeds the
#: ``core.persistence`` estimator document, so its format version is this
#: kind's schema version: bumping the estimator format re-addresses fits.
FITTED = ArtifactKind(
    "fitted", ESTIMATOR_FORMAT_VERSION,
    "fitted Ceer estimators with diagnostics (FittedCeer)",
)

#: Ground-truth "rent the instance and run it" measurements.
MEASUREMENT = ArtifactKind(
    "measurement", 1, "observed training runs (TrainingMeasurement)"
)

#: Rendered figure/report payloads keyed by figure name + configuration.
FIGURE = ArtifactKind("figure", 1, "rendered figure result payloads")

#: Every kind the store knows, by on-disk name.
KINDS: Dict[str, ArtifactKind] = {
    kind.name: kind for kind in (PROFILE, FITTED, MEASUREMENT, FIGURE)
}


def _require(condition: bool, what: str) -> None:
    if not condition:
        raise ArtifactError(f"malformed artifact payload: {what}")


# -- profile datasets ----------------------------------------------------

def encode_profiles(dataset: ProfileDataset) -> object:
    return [asdict(record) for record in dataset.records]


def decode_profiles(payload: object) -> ProfileDataset:
    _require(isinstance(payload, list), "profile payload is not a list")
    items = cast(List[Dict[str, Any]], payload)
    return ProfileDataset(
        ProfileRecord(**{**item, "features": tuple(item["features"])})
        for item in items
    )


# -- training measurements -----------------------------------------------

def encode_measurement(measurement: TrainingMeasurement) -> object:
    return asdict(measurement)


def decode_measurement(payload: object) -> TrainingMeasurement:
    _require(isinstance(payload, dict), "measurement payload is not an object")
    return TrainingMeasurement(**cast(Dict[str, Any], payload))


# -- fitted estimators ----------------------------------------------------

def _diagnostics_to_dict(diagnostics: CeerDiagnostics) -> Dict[str, object]:
    return {
        "train_models": list(diagnostics.train_models),
        "gpu_keys": list(diagnostics.gpu_keys),
        "n_profile_records": diagnostics.n_profile_records,
        "heavy_op_types": list(diagnostics.heavy_op_types),
        "light_op_types": list(diagnostics.light_op_types),
        "cpu_op_types": list(diagnostics.cpu_op_types),
        "light_median_us": diagnostics.light_median_us,
        "cpu_median_us": diagnostics.cpu_median_us,
        "heavy_r2": [
            [gpu_key, op_type, value]
            for (gpu_key, op_type), value in sorted(diagnostics.heavy_r2.items())
        ],
        "comm_r2": [
            [gpu_key, num_gpus, value]
            for (gpu_key, num_gpus), value in sorted(diagnostics.comm_r2.items())
        ],
        # Backend-specific keys are emitted only off the per-GPU default:
        # the version-1 per-GPU payload must stay byte-identical (its
        # content hash anchors workspace keys and golden snapshots), and
        # the canonical per-GPU fit *does* have proportional-fallback
        # cells — emitting them unconditionally would roll every key.
        **(
            {
                "backend": diagnostics.backend,
                "proportional_fallbacks": [
                    list(cell) for cell in diagnostics.proportional_fallbacks
                ],
                "transfer_std_us": [
                    [op_type, value]
                    for op_type, value in sorted(
                        diagnostics.transfer_std_us.items()
                    )
                ],
            }
            if diagnostics.backend != "per_gpu"
            else {}
        ),
    }


def _diagnostics_from_dict(data: Dict[str, Any]) -> CeerDiagnostics:
    return CeerDiagnostics(
        train_models=tuple(data["train_models"]),
        gpu_keys=tuple(data["gpu_keys"]),
        n_profile_records=data["n_profile_records"],
        heavy_op_types=tuple(data["heavy_op_types"]),
        light_op_types=tuple(data["light_op_types"]),
        cpu_op_types=tuple(data["cpu_op_types"]),
        light_median_us=data["light_median_us"],
        cpu_median_us=data["cpu_median_us"],
        heavy_r2={
            (gpu_key, op_type): value for gpu_key, op_type, value in data["heavy_r2"]
        },
        comm_r2={
            (gpu_key, int(num_gpus)): value
            for gpu_key, num_gpus, value in data["comm_r2"]
        },
        backend=data.get("backend", "per_gpu"),
        proportional_fallbacks=tuple(
            (gpu_key, op_type)
            for gpu_key, op_type in data.get("proportional_fallbacks", [])
        ),
        transfer_std_us={
            op_type: value for op_type, value in data.get("transfer_std_us", [])
        },
    )


def encode_fitted(fitted: FittedCeer) -> object:
    """Serialise a fit *without* its training profiles.

    The profiles are their own content-addressed artifact; embedding them
    here would store the expensive dataset twice. The workspace re-binds
    the profile artifact when decoding (see
    :meth:`repro.artifacts.workspace.Workspace.fitted_ceer`).
    """
    return {
        "estimator": estimator_to_dict(fitted.estimator),
        "diagnostics": _diagnostics_to_dict(fitted.diagnostics),
    }


def decode_fitted(payload: object, train_profiles: ProfileDataset) -> FittedCeer:
    _require(isinstance(payload, dict), "fitted payload is not an object")
    data = cast(Dict[str, Any], payload)
    return FittedCeer(
        estimator=estimator_from_dict(data["estimator"]),
        train_profiles=train_profiles,
        diagnostics=_diagnostics_from_dict(data["diagnostics"]),
    )


# -- figure payloads -------------------------------------------------------

def encode_figure(name: str, rendered: str) -> object:
    return {"figure": name, "rendered": rendered}


def decode_figure(payload: object) -> str:
    _require(isinstance(payload, dict), "figure payload is not an object")
    rendered = cast(Dict[str, Any], payload).get("rendered")
    _require(isinstance(rendered, str), "figure payload has no rendered text")
    return cast(str, rendered)


__all__: Tuple[str, ...] = (
    "ArtifactKind", "PROFILE", "FITTED", "MEASUREMENT", "FIGURE", "KINDS",
    "encode_profiles", "decode_profiles",
    "encode_measurement", "decode_measurement",
    "encode_fitted", "decode_fitted",
    "encode_figure", "decode_figure",
)
