"""Two-tier, content-addressed, concurrency-safe artifact store.

Layout: ``<directory>/<kind>/<key>.json``, one envelope per artifact::

    {"format": "repro-artifact", "kind": "profile", "schema_version": 1,
     "key": "<20 hex chars>", "spec": {...}, "payload": ...}

Tiers:

* a bounded in-memory LRU of *decoded* objects — repeated lookups within a
  process return the identical object (the old ``lru_cache`` semantics);
* the on-disk JSON tier — lookups across processes, CI shards, and
  machines, written atomically (temp file + ``os.replace``) so a killed
  run can never leave a torn artifact.

Concurrency: every miss is computed under a per-key lock file
(``<key>.lock``, created with ``O_CREAT|O_EXCL``), and the disk tier is
re-checked after acquisition — two racing writers produce exactly one
compute. Stale locks (a crashed holder) are broken after a timeout.

Failure policy: reads are corruption-tolerant. A truncated, unparseable,
schema-mismatched, or undecodable artifact is a *miss* — the store
recomputes and overwrites, it never crashes the pipeline.

Observability: per-kind counters (memory/disk hits, misses, bytes moved,
compute and lock-wait seconds) live on a per-store
:class:`~repro.obs.metrics.MetricsRegistry` (``store.metrics``) — the
repo's single metrics surface — and are exported via
:meth:`ArtifactStore.counters_to_json` (legacy shape) or
:func:`repro.obs.export.metrics_to_json`. The slow paths (disk reads,
lock waits, artifact computes, writes) emit :func:`repro.obs.spans.span`
regions when tracing is enabled.
"""

from __future__ import annotations

import json
import os
import tempfile
import time
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import (
    Callable, Dict, Iterator, List, Mapping, Optional, Tuple, TypeVar, Union, cast,
)

from repro.artifacts.fingerprint import fingerprint
from repro.artifacts.kinds import ArtifactKind
from repro.errors import ArtifactError, ReproError
from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import span

T = TypeVar("T")

ENVELOPE_FORMAT = "repro-artifact"


class KindCounters:
    """Hit/miss/bytes/latency accounting for one artifact kind.

    A thin view over registry-backed :class:`~repro.obs.metrics.Counter`
    instruments: the counts live on the store's ``MetricsRegistry`` (one
    metrics surface for export), while this class keeps the attribute
    interface (``counters.misses`` etc.) the rest of the repo reads.
    """

    _FIELDS = (
        "hits_memory", "hits_disk", "misses",
        "bytes_read", "bytes_written", "compute_s", "lock_wait_s",
    )

    def __init__(self, registry: MetricsRegistry, kind: str) -> None:
        self.kind = kind
        self._counters = {
            field: registry.counter(f"store.{field}", kind=kind)
            for field in self._FIELDS
        }

    def add(self, field: str, amount: Union[int, float]) -> None:
        """Increment one field's backing counter."""
        self._counters[field].inc(amount)

    @property
    def hits_memory(self) -> int:
        return int(self._counters["hits_memory"].value)

    @property
    def hits_disk(self) -> int:
        return int(self._counters["hits_disk"].value)

    @property
    def misses(self) -> int:
        return int(self._counters["misses"].value)

    @property
    def bytes_read(self) -> int:
        return int(self._counters["bytes_read"].value)

    @property
    def bytes_written(self) -> int:
        return int(self._counters["bytes_written"].value)

    @property
    def compute_s(self) -> float:
        return float(self._counters["compute_s"].value)

    @property
    def lock_wait_s(self) -> float:
        return float(self._counters["lock_wait_s"].value)

    @property
    def hits(self) -> int:
        return self.hits_memory + self.hits_disk

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def to_json(self) -> Dict[str, Union[int, float]]:
        return {
            "hits_memory": self.hits_memory,
            "hits_disk": self.hits_disk,
            "hits": self.hits,
            "misses": self.misses,
            "requests": self.requests,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "compute_s": self.compute_s,
            "lock_wait_s": self.lock_wait_s,
        }


@dataclass(frozen=True)
class ArtifactInfo:
    """One on-disk artifact as seen by ``repro cache list``/``info``."""

    kind: str
    key: str
    path: Path
    size_bytes: int
    mtime: float
    schema_version: Optional[int]
    spec: Optional[Dict[str, object]]


def atomic_write_bytes(path: Path, data: bytes) -> None:
    """Write ``data`` to ``path`` via a same-directory temp + ``os.replace``.

    Readers either see the previous complete file or the new complete file,
    never a partial write — including across a crash mid-write.
    """
    fd, tmp_name = tempfile.mkstemp(
        dir=str(path.parent), prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


class ArtifactStore:
    """A typed artifact directory with an in-memory LRU in front of it."""

    def __init__(
        self,
        directory: Union[str, Path],
        memory_entries: int = 256,
        lock_timeout_s: float = 600.0,
        lock_poll_s: float = 0.02,
        lock_stale_s: float = 300.0,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        # The directory is created lazily on first write: read-only
        # operations (``repro cache list/info`` on a workspace that does
        # not exist yet) must neither fail nor leave directories behind.
        self.directory = Path(directory).expanduser()
        self.memory_entries = memory_entries
        self.lock_timeout_s = lock_timeout_s
        self.lock_poll_s = lock_poll_s
        self.lock_stale_s = lock_stale_s
        self._memory: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.counters: Dict[str, KindCounters] = {}

    # -- addressing ----------------------------------------------------
    def key_for(self, kind: ArtifactKind, spec: Mapping[str, object]) -> str:
        """The content address of ``spec`` under ``kind``."""
        return fingerprint(kind.name, kind.schema_version, spec)

    def path_for(self, kind: ArtifactKind, key: str) -> Path:
        return self.directory / kind.name / f"{key}.json"

    def _lock_path(self, kind: ArtifactKind, key: str) -> Path:
        return self.directory / kind.name / f"{key}.lock"

    def _count(self, kind: ArtifactKind) -> KindCounters:
        counters = self.counters.get(kind.name)
        if counters is None:
            counters = KindCounters(self.metrics, kind.name)
            self.counters[kind.name] = counters
        return counters

    # -- memory tier ---------------------------------------------------
    def _memory_get(self, kind: ArtifactKind, key: str) -> Optional[object]:
        entry = self._memory.get((kind.name, key))
        if entry is not None:
            self._memory.move_to_end((kind.name, key))
        return entry

    def _memory_put(self, kind: ArtifactKind, key: str, value: object) -> None:
        self._memory[(kind.name, key)] = value
        self._memory.move_to_end((kind.name, key))
        while len(self._memory) > self.memory_entries:
            self._memory.popitem(last=False)

    # -- reads ---------------------------------------------------------
    def load(
        self, kind: ArtifactKind, key: str, decode: Callable[[object], T]
    ) -> Optional[T]:
        """Return the artifact at ``key`` or None; never raises on corruption."""
        cached = self._memory_get(kind, key)
        if cached is not None:
            self._count(kind).add("hits_memory", 1)
            return cast(T, cached)
        return self._load_disk(kind, key, decode)

    def _load_disk(
        self, kind: ArtifactKind, key: str, decode: Callable[[object], T]
    ) -> Optional[T]:
        path = self.path_for(kind, key)
        with span("store.disk_read", kind=kind.name, key=key) as read_span:
            try:
                raw = path.read_bytes()
            except OSError:
                read_span.set_attribute("outcome", "absent")
                return None
            try:
                envelope = json.loads(raw)
                if not isinstance(envelope, dict):
                    read_span.set_attribute("outcome", "corrupt")
                    return None
                if envelope.get("format") != ENVELOPE_FORMAT:
                    read_span.set_attribute("outcome", "corrupt")
                    return None
                if envelope.get("kind") != kind.name:
                    read_span.set_attribute("outcome", "corrupt")
                    return None
                if envelope.get("schema_version") != kind.schema_version:
                    read_span.set_attribute("outcome", "stale-schema")
                    return None
                value = decode(envelope["payload"])
            except (json.JSONDecodeError, KeyError, TypeError, ValueError,
                    AttributeError, ReproError):
                read_span.set_attribute("outcome", "corrupt")
                return None  # corrupt/stale artifact == miss; caller recomputes
            read_span.set_attribute("outcome", "hit")
            read_span.set_attribute("bytes", len(raw))
        counters = self._count(kind)
        counters.add("hits_disk", 1)
        counters.add("bytes_read", len(raw))
        self._memory_put(kind, key, value)
        return value

    # -- writes --------------------------------------------------------
    def save(
        self,
        kind: ArtifactKind,
        key: str,
        value: T,
        encode: Callable[[T], object],
        spec: Optional[Mapping[str, object]] = None,
    ) -> Path:
        """Atomically persist ``value`` and promote it to the memory tier."""
        envelope = {
            "format": ENVELOPE_FORMAT,
            "kind": kind.name,
            "schema_version": kind.schema_version,
            "key": key,
            "spec": dict(spec) if spec is not None else None,
            "payload": encode(value),
        }
        try:
            data = json.dumps(envelope).encode("utf-8")
        except (TypeError, ValueError) as exc:
            raise ArtifactError(
                f"artifact {kind.name}/{key} payload is not JSON-serialisable: {exc}"
            ) from exc
        path = self.path_for(kind, key)
        with span("store.write", kind=kind.name, key=key, bytes=len(data)):
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, data)
        self._count(kind).add("bytes_written", len(data))
        self._memory_put(kind, key, value)
        return path

    # -- the main entry point ------------------------------------------
    def get_or_create(
        self,
        kind: ArtifactKind,
        spec: Mapping[str, object],
        compute: Callable[[], T],
        encode: Callable[[T], object],
        decode: Callable[[object], T],
    ) -> T:
        """Return the artifact for ``spec``, computing and storing on a miss.

        Misses run under a per-key lock with a post-acquisition re-check,
        so concurrent callers (processes included) compute exactly once.
        """
        key = self.key_for(kind, spec)
        cached = self.load(kind, key, decode)
        if cached is not None:
            return cached
        with self._locked(kind, key):
            raced = self._load_disk(kind, key, decode)
            if raced is not None:
                return raced
            started_s = time.perf_counter()  # staticcheck: ignore[determinism] — cache latency counter, not a model path
            with span("store.compute", kind=kind.name, key=key):
                value = compute()
            counters = self._count(kind)
            counters.add("compute_s", time.perf_counter() - started_s)  # staticcheck: ignore[determinism] — cache latency counter
            counters.add("misses", 1)
            self.save(kind, key, value, encode, spec)
            return value

    # -- locking -------------------------------------------------------
    @contextmanager
    def _locked(self, kind: ArtifactKind, key: str) -> Iterator[None]:
        lock_path = self._lock_path(kind, key)
        lock_path.parent.mkdir(parents=True, exist_ok=True)
        with span("store.lock_wait", kind=kind.name, key=key):
            waited_s = self._acquire_lock(lock_path)
        self._count(kind).add("lock_wait_s", waited_s)
        try:
            yield
        finally:
            try:
                lock_path.unlink()
            except OSError:
                pass

    def _acquire_lock(self, lock_path: Path) -> float:
        """Block until the lock file is ours; returns seconds waited."""
        started_s = time.monotonic()  # staticcheck: ignore[determinism] — lock timeout bookkeeping
        while True:
            try:
                fd = os.open(str(lock_path), os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                waited_s = time.monotonic() - started_s  # staticcheck: ignore[determinism] — lock timeout bookkeeping
                if waited_s >= self.lock_timeout_s:
                    raise ArtifactError(
                        f"timed out after {waited_s:.0f}s waiting for artifact "
                        f"lock {lock_path}; a holder may be wedged"
                    )
                self._break_stale_lock(lock_path)
                time.sleep(self.lock_poll_s)
                continue
            os.write(fd, f"{os.getpid()}\n".encode("utf-8"))
            os.close(fd)
            return time.monotonic() - started_s  # staticcheck: ignore[determinism] — lock timeout bookkeeping

    def _break_stale_lock(self, lock_path: Path) -> None:
        """Remove a lock whose holder evidently died (mtime too old)."""
        try:
            age_s = time.time() - lock_path.stat().st_mtime  # staticcheck: ignore[determinism] — stale-lock detection
        except OSError:
            return  # released between our open() and stat()
        if age_s > self.lock_stale_s:
            try:
                lock_path.unlink()
            except OSError:
                pass

    # -- inspection / maintenance --------------------------------------
    def entries(self, kind: Optional[str] = None) -> List[ArtifactInfo]:
        """Every on-disk artifact (optionally of one kind), sorted by path."""
        infos: List[ArtifactInfo] = []
        if not self.directory.exists():
            return infos
        for kind_dir in sorted(p for p in self.directory.iterdir() if p.is_dir()):
            if kind is not None and kind_dir.name != kind:
                continue
            for path in sorted(kind_dir.glob("*.json")):
                try:
                    stat = path.stat()
                except OSError:
                    continue
                schema_version: Optional[int] = None
                spec: Optional[Dict[str, object]] = None
                try:
                    envelope = json.loads(path.read_text())
                    if isinstance(envelope, dict):
                        schema_version = envelope.get("schema_version")
                        raw_spec = envelope.get("spec")
                        spec = raw_spec if isinstance(raw_spec, dict) else None
                except (json.JSONDecodeError, OSError):
                    pass  # corrupt entries still list (size/age aid cleanup)
                infos.append(ArtifactInfo(
                    kind=kind_dir.name,
                    key=path.stem,
                    path=path,
                    size_bytes=stat.st_size,
                    mtime=stat.st_mtime,
                    schema_version=schema_version,
                    spec=spec,
                ))
        return infos

    def clear(self, kind: Optional[str] = None) -> int:
        """Delete artifacts (all kinds, or one); returns the number removed."""
        removed = 0
        for info in self.entries(kind):
            try:
                info.path.unlink()
                removed += 1
            except OSError:
                pass
        if kind is None:
            self._memory.clear()
        else:
            for memory_key in [k for k in self._memory if k[0] == kind]:
                del self._memory[memory_key]
        return removed

    def counters_to_json(self) -> Dict[str, Dict[str, Union[int, float]]]:
        """Per-kind counter snapshot, ready for ``json.dumps``."""
        return {name: c.to_json() for name, c in sorted(self.counters.items())}
