"""The ``Workspace`` facade: every expensive Ceer artifact, computed once.

The paper's asymmetry — profiling 8 CNNs x 4 GPU models x 1,000 iterations
is expensive, the fitted artifact is a handful of coefficients — is the
whole reason Ceer exists. A :class:`Workspace` makes that asymmetry a
first-class object: it wraps one :class:`~repro.artifacts.store.ArtifactStore`
directory and exposes typed get-or-compute accessors for each artifact the
pipeline needs (profile datasets, fitted estimators, ground-truth training
measurements, rendered figures). ``repro fit`` in one process and
``repro figures`` in another share the same directory and therefore profile
exactly once.

The process-wide *active* workspace (:func:`active_workspace`) replaces the
old ``@lru_cache`` module globals in ``repro.experiments.common``: same
within-process identity semantics (via the store's memory tier), plus disk
persistence, fingerprint invalidation, and cross-process locking. The
default directory honours ``$REPRO_WORKSPACE`` and falls back to
``~/.cache/repro/workspace``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.artifacts import kinds
from repro.artifacts.store import ArtifactStore, atomic_write_bytes
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.core.fit import FittedCeer, fit_ceer
from repro.errors import ArtifactError
from repro.hardware.gpus import GPU_KEYS, GpuSpec
from repro.models.zoo import TEST_MODELS, TRAIN_MODELS
from repro.obs.metrics import MetricsRegistry
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset
from repro.sim.trace import TrainingMeasurement
from repro.sim.trainer import measure_training
from repro.workloads.dataset import TrainingJob

#: Profiling iterations used by the experiment suite (paper: 1,000). The
#: default trades the paper's count down to 300, which leaves per-op mean
#: estimates within a fraction of a percent (heavy-op noise is sigma <=
#: 0.06) while keeping the full figure suite fast.
CANONICAL_ITERATIONS = 300

#: Seed context separating "training-time" measurements from the
#: independent "evaluation" runs the figures compare against.
EVAL_SEED = "evaluation"

#: Environment variable overriding the default workspace directory.
WORKSPACE_ENV = "REPRO_WORKSPACE"

#: File (inside the workspace directory) recording admitted GPU specs so
#: spec-only GPUs survive process restarts.
ADMITTED_GPUS_FILE = "admitted_gpus.json"


def default_workspace_dir() -> Path:
    """``$REPRO_WORKSPACE`` if set, else ``~/.cache/repro/workspace``."""
    env = os.environ.get(WORKSPACE_ENV)
    if env:
        return Path(env).expanduser()
    return Path("~/.cache/repro/workspace").expanduser()


class Workspace:
    """Typed facade over one artifact-store directory."""

    def __init__(
        self,
        directory: Optional[Union[str, Path]] = None,
        memory_entries: int = 256,
    ) -> None:
        self.directory = (
            Path(directory).expanduser() if directory is not None
            else default_workspace_dir()
        )
        self.store = ArtifactStore(self.directory, memory_entries=memory_entries)

    def __repr__(self) -> str:
        return f"Workspace({str(self.directory)!r})"

    @property
    def metrics(self) -> "MetricsRegistry":
        """The store's metrics registry (hit/miss/bytes/latency counters)."""
        return self.store.metrics

    # -- profile datasets ----------------------------------------------
    def profiles(
        self,
        models: Sequence[str],
        gpu_keys: Sequence[str],
        n_iterations: int,
        batch_size: int = 32,
        seed_context: str = "",
        jobs: Optional[int] = None,
    ) -> ProfileDataset:
        """The profile dataset for this configuration, profiling on a miss.

        ``jobs`` fans the sweep out: one worker process per (model, GPU)
        cell, each writing its cell through this workspace (the store's
        per-key locks make racing writers compute once); the combined
        dataset is then assembled under the unchanged spec, so its key and
        bytes match a serial sweep exactly. ``jobs=None`` profiles
        directly in-process with no cell artifacts.
        """
        spec: Dict[str, object] = {
            "models": sorted(models),
            "gpus": sorted(gpu_keys),
            "iterations": n_iterations,
            "batch": batch_size,
            "seed": seed_context,
        }

        def compute() -> ProfileDataset:
            if jobs is not None and len(models) * len(gpu_keys) > 1:
                return self._assemble_profiles(
                    list(models), list(gpu_keys), n_iterations,
                    batch_size, seed_context, jobs,
                )
            profiler = Profiler(n_iterations=n_iterations, batch_size=batch_size)
            return profiler.profile_many(list(models), list(gpu_keys), seed_context)

        return self.store.get_or_create(
            kinds.PROFILE, spec, compute,
            kinds.encode_profiles, kinds.decode_profiles,
        )

    def _assemble_profiles(
        self,
        models: Sequence[str],
        gpu_keys: Sequence[str],
        n_iterations: int,
        batch_size: int,
        seed_context: str,
        jobs: int,
    ) -> ProfileDataset:
        """Fan the sweep out per cell, then concatenate in serial order.

        Each worker profiles one (model, GPU) cell into this workspace as
        its own single-cell artifact; the parent re-reads every cell (disk
        hits) and concatenates them in ``profile_many``'s model-major
        order, so the assembled dataset — and therefore the combined
        artifact's bytes — is identical to a serial sweep's.
        """
        from repro.parallel import ProfileCellTask, run_fanout

        cells = [(model, gpu_key) for model in models for gpu_key in gpu_keys]
        tasks = [
            ProfileCellTask(
                model=model, gpu_key=gpu_key, n_iterations=n_iterations,
                batch_size=batch_size, seed_context=seed_context,
                workspace_dir=str(self.directory),
            )
            for model, gpu_key in cells
        ]
        run_fanout(tasks, jobs=jobs)
        return ProfileDataset.concat([
            self.profiles(
                [model], [gpu_key], n_iterations,
                batch_size=batch_size, seed_context=seed_context,
            )
            for model, gpu_key in cells
        ])

    def training_profiles(
        self,
        n_iterations: int = CANONICAL_ITERATIONS,
        jobs: Optional[int] = None,
    ) -> ProfileDataset:
        """Profiles of the 8 training-set CNNs on all four GPU models."""
        return self.profiles(TRAIN_MODELS, GPU_KEYS, n_iterations, jobs=jobs)

    def test_profiles(
        self,
        n_iterations: int = CANONICAL_ITERATIONS,
        jobs: Optional[int] = None,
    ) -> ProfileDataset:
        """Profiles of the 4 held-out test CNNs (for validation experiments)."""
        return self.profiles(
            TEST_MODELS, GPU_KEYS, n_iterations, seed_context=EVAL_SEED,
            jobs=jobs,
        )

    # -- fitted estimators ---------------------------------------------
    def fitted_ceer(
        self,
        n_iterations: int = CANONICAL_ITERATIONS,
        placement: str = "single-host",
        jobs: Optional[int] = None,
        backend: str = "per_gpu",
    ) -> FittedCeer:
        """The canonical fitted Ceer estimator for this configuration.

        The training profiles are resolved (and cached) first as their own
        artifact; the fitted artifact stores only the estimator and
        diagnostics and re-binds the profile dataset on load. ``jobs``
        parallelizes both the profiling sweep and the regression/comm
        fits; it is deliberately *not* part of the artifact spec — the
        fitted bytes are identical at any job count. ``backend`` selects
        the op-model backend (``"per_gpu"`` or ``"transfer"``); the key
        is added to the spec only off the default, so every pre-existing
        per-GPU artifact keeps its address.
        """
        train_profiles = self.training_profiles(n_iterations, jobs=jobs)
        spec: Dict[str, object] = {
            "models": sorted(TRAIN_MODELS),
            "gpus": sorted(GPU_KEYS),
            "iterations": n_iterations,
            "batch": 32,
            "seed": "",
            "placement": placement,
            "gpu_counts": [1, 2, 3, 4],
        }
        if backend != "per_gpu":
            spec["backend"] = backend

        def compute() -> FittedCeer:
            return fit_ceer(
                n_iterations=n_iterations,
                train_profiles=train_profiles,
                placement=placement,
                jobs=jobs,
                backend=backend,
            )

        return self.store.get_or_create(
            kinds.FITTED, spec, compute, kinds.encode_fitted,
            lambda payload: kinds.decode_fitted(payload, train_profiles),
        )

    # -- ground-truth measurements -------------------------------------
    def observed_training(
        self,
        model: str,
        gpu_key: str,
        num_gpus: int,
        job: TrainingJob,
        n_iterations: int = CANONICAL_ITERATIONS,
        seed_context: str = EVAL_SEED,
        placement: str = "single-host",
        pricing: PricingScheme = ON_DEMAND,
    ) -> TrainingMeasurement:
        """Ground-truth ("rent the instance and run it") measurement, cached.

        Defaults to the evaluation seed context so the observation is
        statistically independent of the measurements Ceer was trained on.
        """
        spec: Dict[str, object] = {
            "model": model,
            "gpu": gpu_key,
            "num_gpus": num_gpus,
            "samples": job.dataset.num_samples,
            "batch": job.batch_size,
            "epochs": job.epochs,
            "iterations": n_iterations,
            "seed": seed_context,
            "placement": placement,
            "pricing": pricing.name,
        }

        def compute() -> TrainingMeasurement:
            return measure_training(
                model, gpu_key, num_gpus, job,
                pricing=pricing, n_profile_iterations=n_iterations,
                seed_context=seed_context, placement=placement,
            )

        return self.store.get_or_create(
            kinds.MEASUREMENT, spec, compute,
            kinds.encode_measurement, kinds.decode_measurement,
        )

    # -- admitted GPUs --------------------------------------------------
    @property
    def admitted_gpus_path(self) -> Path:
        return self.directory / ADMITTED_GPUS_FILE

    def admit_gpu(
        self, spec: GpuSpec, usd_per_hr: float, max_gpus: int = 8,
        replace: bool = False, spot_ratio: Optional[float] = None,
    ) -> None:
        """Admit a spec-only GPU into the catalogue and persist it here.

        Registers the spec with :mod:`repro.cloud.catalog` for this
        process and records it (atomically) in ``admitted_gpus.json`` so
        a later process pointed at the same workspace can re-admit it via
        :meth:`load_admitted_gpus`.

        Admitting a key this workspace already persists raises
        :class:`~repro.errors.CatalogError` unless ``replace=True`` —
        silently overwriting the record would change the price of every
        prediction made from this workspace from then on.
        """
        from repro.cloud.catalog import admit_gpu as catalog_admit
        from repro.errors import CatalogError

        entries = {
            entry["spec"]["key"]: entry for entry in self._read_admitted()
        }
        if not replace and spec.key in entries:
            raise CatalogError(
                f"GPU {spec.key!r} is already admitted in workspace "
                f"{self.directory} ({self.admitted_gpus_path.name}); pass "
                f"replace=True (CLI: --replace) to overwrite its record"
            )
        catalog_admit(
            spec, usd_per_hr=usd_per_hr, max_gpus=max_gpus, replace=replace,
            spot_ratio=spot_ratio,
        )
        entries[spec.key] = {
            "spec": asdict(spec),
            "usd_per_hr": usd_per_hr,
            "max_gpus": max_gpus,
        }
        if spot_ratio is not None:
            entries[spec.key]["spot_ratio"] = spot_ratio
        doc = {
            "version": 1,
            "gpus": [entries[key] for key in sorted(entries)],
        }
        self.directory.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(
            self.admitted_gpus_path,
            json.dumps(doc, indent=2, sort_keys=True).encode("utf-8"),
        )

    def load_admitted_gpus(self) -> Tuple[str, ...]:
        """Re-admit every GPU recorded in this workspace; returns their keys.

        Missing file means no admitted GPUs (returns ``()``); a corrupt
        file raises :class:`~repro.errors.ArtifactError` rather than
        silently dropping catalogue entries.
        """
        from repro.cloud.catalog import admit_gpu as catalog_admit

        keys: List[str] = []
        for entry in self._read_admitted():
            spec = GpuSpec(**entry["spec"])
            # replace=True: re-loading the same workspace record over a
            # key this process already admitted is a refresh, not a
            # conflicting second admission.
            spot_ratio = entry.get("spot_ratio")
            catalog_admit(
                spec,
                usd_per_hr=float(entry["usd_per_hr"]),
                max_gpus=int(entry["max_gpus"]),
                replace=True,
                spot_ratio=None if spot_ratio is None else float(spot_ratio),
            )
            keys.append(spec.key)
        return tuple(keys)

    def _read_admitted(self) -> List[Dict[str, object]]:
        path = self.admitted_gpus_path
        if not path.exists():
            return []
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
            gpus = doc["gpus"]
            if not isinstance(gpus, list):
                raise TypeError("'gpus' is not a list")
            return gpus
        except (ValueError, KeyError, TypeError) as exc:
            raise ArtifactError(
                f"corrupt admitted-GPU record at {path}: {exc}"
            ) from exc

    # -- rendered figures ----------------------------------------------
    def figure(
        self, name: str, n_iterations: int, render: Callable[[], str]
    ) -> str:
        """The rendered text of one figure at one configuration, cached."""
        spec: Dict[str, object] = {"figure": name, "iterations": n_iterations}
        return self.store.get_or_create(
            kinds.FIGURE, spec, render,
            lambda text: kinds.encode_figure(name, text),
            kinds.decode_figure,
        )

    # -- observability --------------------------------------------------
    def counters_to_json(self) -> Dict[str, Dict[str, Union[int, float]]]:
        return self.store.counters_to_json()


#: The process-wide default workspace, created lazily on first use.
_active: Optional[Workspace] = None


def active_workspace() -> Workspace:
    """The process-wide workspace (creating the default one if needed)."""
    global _active
    if _active is None:
        _active = Workspace()
    return _active


def set_active_workspace(workspace: Optional[Workspace]) -> Optional[Workspace]:
    """Install ``workspace`` as the process default; returns the previous one.

    Pass None to reset to lazy default resolution (e.g. after changing
    ``$REPRO_WORKSPACE`` in tests).
    """
    global _active
    previous = _active
    _active = workspace
    return previous
