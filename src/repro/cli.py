"""Command-line interface: ``python -m repro <command>``.

Commands mirror the paper's workflow:

* ``models`` — list the CNN zoo with op/parameter counts.
* ``fit`` — run the offline phase (profile + fit) and save the estimator.
* ``predict`` — training time/cost of one CNN on one instance.
* ``recommend`` — optimal-instance recommendation under an objective.
* ``tradeoff`` — the time-cost Pareto frontier across instances; with
  ``--full-catalog`` (and optionally ``--batches``) the batched sweep
  prices every configuration the catalog offers in one tensor pass.
* ``catalog`` — list the priced AWS instance menu (On-Demand and spot).
* ``figures`` — regenerate paper figures by name (or ``all``).
* ``cache`` — inspect or clear the artifact workspace backing fit/figures.
* ``serve`` — run the recommendation service: a long-lived HTTP server
  answering predict/recommend/pareto queries over one warmed estimator.

``fit`` and ``figures`` share one artifact workspace (``--workspace``, or
``$REPRO_WORKSPACE``, or ``~/.cache/repro/workspace``), so running them as
separate processes profiles the CNN matrix exactly once.

Observability: every command accepts ``--trace-out trace.json`` (Chrome
trace-event JSON of the run's spans — open in Perfetto or
``chrome://tracing``) and ``--metrics-out metrics.json`` (counters /
gauges / histograms, including the workspace store's hit/miss counters).
``$REPRO_TRACE`` / ``$REPRO_METRICS`` set the same paths environment-wide.
Tracing is off (and costs nothing) unless one of these asks for it.

Example session::

    python -m repro fit --output ceer.json --iterations 300
    python -m repro recommend --estimator ceer.json --model inception_v3 \
        --objective min-cost
    python -m repro figures fig11 --trace-out fig11-trace.json
    python -m repro cache list
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import Optional, Sequence

from repro.analysis.reporting import format_table
from repro.artifacts import kinds
from repro.artifacts.workspace import (
    Workspace,
    active_workspace,
    set_active_workspace,
)
from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND, SPOT
from repro.core.estimator import CeerEstimator
from repro.core.persistence import load_estimator, save_estimator
from repro.core.recommend import (
    HourlyBudget,
    MinimizeCost,
    MinimizeTime,
    Recommender,
    TotalBudget,
)
from repro.errors import ReproError
from repro.graph.serialization import load_graph
from repro.models.zoo import build_model, model_names
from repro.obs.export import write_metrics, write_trace
from repro.obs.metrics import default_registry
from repro.obs.spans import disable_tracing, enable_tracing, span
from repro.workloads.dataset import DatasetSpec, TrainingJob
from repro.units import us_to_ms

#: Environment variables mirroring ``--trace-out`` / ``--metrics-out``.
TRACE_ENV = "REPRO_TRACE"
METRICS_ENV = "REPRO_METRICS"


def _add_obs_args(p, suppress: bool) -> None:
    # The observability flags are valid both before and after the
    # subcommand (``repro --trace-out t.json figures ...`` and
    # ``repro figures ... --trace-out t.json``). argparse applies subparser
    # defaults *after* the main parser has filled the namespace, so the
    # subcommand copies use SUPPRESS to avoid clobbering a pre-subcommand
    # value with None.
    default = argparse.SUPPRESS if suppress else None
    p.add_argument("--trace-out", default=default, metavar="PATH",
                   help="write a Chrome trace-event JSON of this run "
                        "(open in Perfetto); also $REPRO_TRACE")
    p.add_argument("--metrics-out", default=default, metavar="PATH",
                   help="write counters/gauges/histograms JSON for this "
                        "run; also $REPRO_METRICS")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Ceer (IISWC 2020 reproduction): CNN training time/cost "
                    "prediction and instance recommendation.",
    )
    _add_obs_args(parser, suppress=False)
    sub = parser.add_subparsers(dest="command", required=True)

    models = sub.add_parser("models", help="list the CNN zoo")
    _add_obs_args(models, suppress=True)

    def add_workspace_arg(p):
        p.add_argument("--workspace",
                       help="artifact workspace directory (default: "
                            "$REPRO_WORKSPACE or ~/.cache/repro/workspace)")
        _add_obs_args(p, suppress=True)

    fit = sub.add_parser("fit", help="profile training CNNs and fit Ceer")
    fit.add_argument("--output", required=True, help="path for the estimator JSON")
    fit.add_argument("--iterations", type=int, default=300,
                     help="profiling iterations per (model, GPU); paper: 1000")
    fit.add_argument("--placement", default="single-host",
                     choices=("single-host", "multi-host"),
                     help="GPU topology the comm model is trained for")
    fit.add_argument("--backend", default="per_gpu",
                     choices=("per_gpu", "transfer"),
                     help="op-model backend: per-GPU fits (paper-faithful "
                          "default) or pooled cross-hardware transfer fits "
                          "that extrapolate to spec-only GPUs")
    fit.add_argument("--no-warm-test-profiles", action="store_true",
                     help="skip pre-profiling the held-out test CNNs "
                          "(figures needing them will profile later)")
    fit.add_argument("--jobs", type=int, metavar="N",
                     help="profile and fit with N worker processes "
                          "(artifacts are byte-identical at any N; "
                          "default: serial)")
    add_workspace_arg(fit)

    def add_workload_args(p):
        p.add_argument("--workspace",
                       help="artifact workspace directory whose admitted "
                            "spec-only GPUs join the catalog (default: "
                            "$REPRO_WORKSPACE or ~/.cache/repro/workspace)")
        p.add_argument("--model", help="zoo model name")
        p.add_argument("--graph", help="path to a serialized op-graph JSON")
        p.add_argument("--samples", type=int, default=1_200_000,
                       help="training samples per epoch (default: ImageNet)")
        p.add_argument("--batch", type=int, default=32, help="batch per GPU")
        p.add_argument("--epochs", type=int, default=1)
        p.add_argument("--market-prices", action="store_true",
                       help="use commodity market-ratio prices (paper "
                            "Fig. 12); mutually exclusive with --spot")
        p.add_argument("--spot", action="store_true",
                       help="use spot-market prices (per-family discount "
                            "ratios on the On-Demand rates); mutually "
                            "exclusive with --market-prices")
        _add_obs_args(p, suppress=True)

    predict = sub.add_parser("predict", help="predict time/cost on one instance")
    predict.add_argument("--estimator", required=True)
    add_workload_args(predict)
    predict.add_argument("--gpu", required=True,
                         help="GPU model (V100/K80/T4/M60) or family (P3/P2/G4/G3)")
    predict.add_argument("--gpus", type=int, default=1, help="GPU count")

    rec = sub.add_parser("recommend", help="recommend the optimal instance")
    rec.add_argument("--estimator", required=True)
    add_workload_args(rec)
    rec.add_argument("--objective", default=None,
                     choices=("min-cost", "min-time", "hourly-budget",
                              "total-budget"),
                     help="static-scenario objective (default: min-cost); "
                          "conflicts with --scenario spot, which always "
                          "ranks by the spot-risk objective")
    rec.add_argument("--budget", type=float,
                     help="$/hr for hourly-budget, $ total for total-budget")
    rec.add_argument("--slack", type=float, default=0.0,
                     help="hourly-budget slack in dollars (paper uses 0.42)")
    rec.add_argument("--scenario", default="static",
                     choices=("static", "spot"),
                     help="'static' ranks fixed price tiers; 'spot' streams "
                          "a seeded synthetic spot-price trace and ranks by "
                          "preemption-aware expected cost (default: static)")
    rec.add_argument("--seed", type=int, default=None,
                     help="spot trace seed (requires --scenario spot; "
                          "default: 2020)")
    rec.add_argument("--ticks", type=int, default=None,
                     help="advance the spot market this many price ticks "
                          "and rank at the last one (requires --scenario "
                          "spot; default: 1)")
    rec.add_argument("--risk-aversion", type=float, default=None,
                     metavar="LAMBDA",
                     help="spot-risk trade-off in $ per expected hour: "
                          "score = expected cost + LAMBDA * expected "
                          "makespan (requires --scenario spot; default: 0)")

    tradeoff = sub.add_parser(
        "tradeoff", help="show the full time-cost Pareto frontier"
    )
    tradeoff.add_argument("--estimator", required=True)
    add_workload_args(tradeoff)
    tradeoff.add_argument("--full-catalog", action="store_true",
                          help="sweep every (GPU, count) the catalog offers "
                               "via the batched engine instead of the "
                               "paper's 16-candidate grid")
    tradeoff.add_argument("--batches", metavar="B1,B2,...",
                          help="comma-separated per-GPU batch sizes to add "
                               "as a sweep axis (requires --full-catalog)")

    catalog = sub.add_parser(
        "catalog", help="inspect the priced AWS instance catalog"
    )
    catalog_sub = catalog.add_subparsers(dest="catalog_command", required=True)
    catalog_list = catalog_sub.add_parser(
        "list", help="list every rentable instance with its price tiers"
    )
    catalog_list.add_argument("--gpu",
                              help="filter by GPU model (V100/K80/T4/M60) "
                                   "or family (P3/P2/G4/G3)")
    add_workspace_arg(catalog_list)
    catalog_admit = catalog_sub.add_parser(
        "admit", help="admit a never-profiled GPU into the catalog from "
                      "a spec JSON (predict with a transfer-backend "
                      "estimator)"
    )
    catalog_admit.add_argument("--spec", required=True, metavar="PATH",
                               help="JSON file with the GpuSpec fields "
                                    "(key, family, marketing_name, "
                                    "cuda_cores, ... comm_us_per_mparam)")
    catalog_admit.add_argument("--usd-per-hr", type=float, required=True,
                               help="On-Demand price of the 1-GPU instance")
    catalog_admit.add_argument("--max-gpus", type=int, default=8,
                               help="largest instance size to admit "
                                    "(default: 8)")
    catalog_admit.add_argument("--spot-ratio", type=float, default=None,
                               metavar="RATIO",
                               help="spot-to-On-Demand price ratio in "
                                    "(0, 1] for this GPU; without it the "
                                    "admitted GPU prices On-Demand only "
                                    "and spot pricing raises")
    catalog_admit.add_argument("--replace", action="store_true",
                               help="overwrite an existing admission of the "
                                    "same GPU key (without this, re-admitting "
                                    "is an error)")
    add_workspace_arg(catalog_admit)

    serve = sub.add_parser(
        "serve", help="run the recommendation service over a fitted estimator"
    )
    serve.add_argument("--estimator", required=True,
                       help="fitted estimator JSON (from 'repro fit')")
    serve.add_argument("--host", default="127.0.0.1",
                       help="address to bind (default: 127.0.0.1)")
    serve.add_argument("--port", type=int, default=8100,
                       help="port to bind; 0 picks an ephemeral port "
                            "(default: 8100)")
    serve.add_argument("--cache-size", type=int, default=1024,
                       help="bounded response-cache entries (default: 1024)")
    serve.add_argument("--no-warm", action="store_true",
                       help="skip pre-compiling graphs at startup (first "
                            "query per model pays compilation instead)")
    serve.add_argument("--models", metavar="M1,M2,...",
                       help="comma-separated zoo models to pre-warm "
                            "(default: the whole zoo)")
    serve.add_argument("--warm-batches", metavar="B1,B2,...",
                       help="comma-separated batch sizes to pre-warm "
                            "(default: 32)")
    serve.add_argument("--spot-seed", type=int, default=2020,
                       help="seed for the service's synthetic spot-price "
                            "trace (POST /spot/tick advances it; "
                            "default: 2020)")
    add_workspace_arg(serve)

    figures = sub.add_parser("figures", help="regenerate paper figures")
    figures.add_argument("names", nargs="+",
                         help="figure names (fig2..fig12, ablations, "
                              "spot_dynamics) or 'all'")
    figures.add_argument("--iterations", type=int, default=300)
    figures.add_argument("--output",
                         help="also write the rendered figures to this file")
    figures.add_argument("--counters-out",
                         help="write per-kind workspace hit/miss counters "
                              "JSON to this file")
    figures.add_argument("--jobs", type=int, metavar="N",
                         help="render figures with N worker processes "
                              "(output is identical; default: serial)")
    add_workspace_arg(figures)

    cache = sub.add_parser("cache", help="inspect the artifact workspace")
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cache_list = cache_sub.add_parser("list", help="list stored artifacts")
    cache_list.add_argument("--kind", choices=sorted(kinds.KINDS))
    add_workspace_arg(cache_list)
    cache_info = cache_sub.add_parser(
        "info", help="summarize the workspace, or show one artifact's detail"
    )
    cache_info.add_argument("key", nargs="?",
                            help="artifact key (see 'cache list'); omit for "
                                 "a per-kind workspace summary")
    add_workspace_arg(cache_info)
    cache_clear = cache_sub.add_parser("clear", help="delete stored artifacts")
    cache_clear.add_argument("--kind", choices=sorted(kinds.KINDS))
    add_workspace_arg(cache_clear)
    cache_key = cache_sub.add_parser(
        "key", help="print the canonical profile fingerprint (for CI cache keys)"
    )
    cache_key.add_argument("--iterations", type=int, default=300)
    add_workspace_arg(cache_key)

    check = sub.add_parser(
        "check", help="static analysis: unit, routing, axis, fork, "
                      "fingerprint, and obs rule families"
    )
    from repro.staticcheck.cli import add_check_arguments

    add_check_arguments(check)
    _add_obs_args(check, suppress=True)
    return parser


#: The workspace the current command resolved, if any — lets ``main()``
#: fold the store's hit/miss counters into ``--metrics-out`` after dispatch.
_last_workspace: Optional[Workspace] = None


def _resolve_workspace(args) -> Workspace:
    global _last_workspace
    if getattr(args, "workspace", None):
        workspace = Workspace(args.workspace)
    else:
        workspace = active_workspace()
    _last_workspace = workspace
    return workspace


def _load_admitted(args) -> Sequence[str]:
    """Re-admit the workspace's spec-only GPUs before a workload command.

    Reads the resolved workspace's ``admitted_gpus.json`` (if any) so
    ``predict --gpu <admitted>`` and catalog sweeps see the same extended
    catalog as the ``catalog admit`` process that recorded it.
    """
    return _resolve_workspace(args).load_admitted_gpus()


def _resolve_model(args):
    if args.graph:
        return load_graph(args.graph)
    if args.model:
        build_model(args.model, batch_size=args.batch)  # validate eagerly
        return args.model
    raise ReproError("provide either --model <zoo name> or --graph <path>")


def _resolve_job(args) -> TrainingJob:
    dataset = DatasetSpec("cli-dataset", num_samples=args.samples)
    return TrainingJob(dataset, batch_size=args.batch, epochs=args.epochs)


def _resolve_pricing(args):
    if getattr(args, "market_prices", False) and getattr(args, "spot", False):
        raise ReproError("--market-prices and --spot are mutually exclusive")
    if getattr(args, "spot", False):
        return SPOT
    if getattr(args, "market_prices", False):
        return MARKET_RATIO
    return ON_DEMAND


def _resolve_objective(args):
    if args.objective in (None, "min-cost"):
        return MinimizeCost()
    if args.objective == "min-time":
        return MinimizeTime()
    if args.objective == "hourly-budget":
        if args.budget is None:
            raise ReproError("--budget is required for hourly-budget")
        return HourlyBudget(budget_usd_per_hr=args.budget, slack_usd_per_hr=args.slack)
    if args.budget is None:
        raise ReproError("--budget is required for total-budget")
    return TotalBudget(budget_dollars=args.budget)


def _cmd_models(args, out) -> int:
    rows = []
    for name in sorted(model_names()):
        graph = build_model(name, batch_size=32)
        rows.append(
            [name, len(graph), len(graph.op_type_counts()),
             f"{graph.num_parameters / 1e6:.1f}M"]
        )
    print(
        format_table(["model", "ops", "unique op types", "parameters"], rows,
                     title="CNN zoo (paper, Section III)"),
        file=out,
    )
    return 0


def _cmd_fit(args, out) -> int:
    workspace = _resolve_workspace(args)
    fitted = workspace.fitted_ceer(
        args.iterations, placement=args.placement, jobs=args.jobs,
        backend=args.backend,
    )
    if not args.no_warm_test_profiles:
        # Pre-profile the held-out CNNs so a later ``repro figures`` process
        # (validation/ablation figures) starts from a fully warm workspace.
        workspace.test_profiles(args.iterations, jobs=args.jobs)
    save_estimator(fitted.estimator, args.output)
    print(fitted.diagnostics.summary(), file=out)
    print(f"estimator saved to {args.output}", file=out)
    print(f"workspace: {workspace.directory}", file=out)
    return 0


def _load(path: str) -> CeerEstimator:
    return load_estimator(path)


def _cmd_predict(args, out) -> int:
    _load_admitted(args)
    estimator = _load(args.estimator)
    model = _resolve_model(args)
    job = _resolve_job(args)
    pricing = _resolve_pricing(args)
    prediction = estimator.predict_training(
        model, args.gpu, args.gpus, job, pricing=pricing
    )
    print(
        f"{prediction.model} on {prediction.instance_name} "
        f"({prediction.num_gpus}x {prediction.gpu_key}):", file=out,
    )
    print(f"  per-iteration: {us_to_ms(prediction.per_iteration_us):.2f} ms "
          f"(compute {us_to_ms(prediction.compute_us_per_iteration):.2f} ms + "
          f"sync {us_to_ms(prediction.comm_overhead_us):.2f} ms)", file=out)
    time_band_hr = (
        f" (± {prediction.total_std_hours:.2f} h)"
        if prediction.compute_std_us > 0 else ""
    )
    cost_band_usd = (
        f" (± ${prediction.cost_std_dollars:.2f})"
        if prediction.compute_std_us > 0 else ""
    )
    print(f"  training time: {prediction.total_hours:.2f} h{time_band_hr} over "
          f"{prediction.iterations:.0f} iterations", file=out)
    print(f"  training cost: ${prediction.cost_dollars:.2f}{cost_band_usd} at "
          f"${prediction.usd_per_hr:.3f}/hr", file=out)
    return 0


def _cmd_recommend(args, out) -> int:
    _load_admitted(args)
    if args.scenario == "spot":
        conflicts = [
            flag for flag, hit in (
                ("--spot", args.spot),
                ("--market-prices", args.market_prices),
                ("--objective", args.objective is not None),
                ("--budget", args.budget is not None),
                ("--slack", args.slack != 0.0),
            ) if hit
        ]
        if conflicts:
            raise ReproError(
                f"{', '.join(conflicts)} conflict(s) with --scenario spot "
                f"— spot recommendations price against the live trace "
                f"under the 'spot-risk' objective"
            )
        return _recommend_spot(args, out)
    for flag, hit in (
        ("--seed", args.seed is not None),
        ("--ticks", args.ticks is not None),
        ("--risk-aversion", args.risk_aversion is not None),
    ):
        if hit:
            raise ReproError(f"{flag} requires --scenario spot")
    estimator = _load(args.estimator)
    model = _resolve_model(args)
    job = _resolve_job(args)
    pricing = _resolve_pricing(args)
    recommendation = Recommender(estimator, pricing=pricing).recommend(
        model, job, _resolve_objective(args)
    )
    print(recommendation.summary(), file=out)
    return 0


def _recommend_spot(args, out) -> int:
    from repro.cloud.spotsim import SpotMarket
    from repro.core.preempt import DEFAULT_PREEMPTION
    from repro.core.rerank import SpotRerankSession

    estimator = _load(args.estimator)
    model = _resolve_model(args)
    job = _resolve_job(args)
    seed = 2020 if args.seed is None else args.seed
    ticks = 1 if args.ticks is None else args.ticks
    if ticks < 1:
        raise ReproError(f"--ticks must be >= 1, got {ticks}")
    risk_aversion = (
        0.0 if args.risk_aversion is None else args.risk_aversion
    )
    if risk_aversion < 0:
        raise ReproError(
            f"--risk-aversion must be >= 0, got {risk_aversion}"
        )
    market = SpotMarket(seed=seed)
    session = SpotRerankSession.from_estimator(
        estimator, model, job, batch_sizes=(job.batch_size,)
    )
    for _ in range(ticks - 1):
        market.tick()
    ranking = session.rerank(
        market.ratios(),
        market.hazards_per_hr(),
        risk_aversion_usd_per_hr=risk_aversion,
        preempt=DEFAULT_PREEMPTION,
    )
    best = ranking.best()
    print(
        f"spot scenario (seed {seed}, tick {market.tick_index}, "
        f"{ranking.n_candidates} priceable candidates, "
        f"risk aversion ${risk_aversion:.2f}/h):",
        file=out,
    )
    ratios = market.ratios()
    print(
        "  ratios: " + ", ".join(
            f"{key}={ratios[key]:.3f}" for key in sorted(ratios)
        ),
        file=out,
    )
    print(
        f"best: {best.model} on {best.instance_name} "
        f"({best.num_gpus}x {best.gpu_key}, batch {best.batch_size})",
        file=out,
    )
    print(
        f"  expected makespan: {best.expected_makespan_hours:.2f} h "
        f"(deterministic {best.total_hours:.2f} h, hazard "
        f"{best.hazard_per_hr:.3f}/h)",
        file=out,
    )
    print(
        f"  expected cost: ${best.expected_cost_usd:.2f} at "
        f"${best.usd_per_hr:.3f}/hr",
        file=out,
    )
    runners_up = ranking.predictions(top=4)[1:]
    if runners_up:
        print("runners-up:", file=out)
        for p in runners_up:
            print(
                f"  {p.instance_name} ({p.num_gpus}x {p.gpu_key}): "
                f"${p.expected_cost_usd:.2f}, "
                f"{p.expected_makespan_hours:.2f} h",
                file=out,
            )
    return 0


def _parse_batches(spec: str):
    try:
        batches = tuple(int(b) for b in spec.split(","))
    except ValueError:
        raise ReproError(f"--batches must be comma-separated integers, got {spec!r}")
    if not batches or any(b < 1 for b in batches):
        raise ReproError("--batches values must be >= 1")
    return batches


def _cmd_tradeoff(args, out) -> int:
    from repro.core.pareto import analyze_tradeoff

    _load_admitted(args)
    estimator = _load(args.estimator)
    model = _resolve_model(args)
    job = _resolve_job(args)
    pricing = _resolve_pricing(args)
    if args.batches and not args.full_catalog:
        raise ReproError("--batches requires --full-catalog")
    if args.full_catalog:
        from repro.analysis.reporting import format_dollars, format_us
        from repro.cloud.catalog import admitted_gpu_keys
        from repro.core.batch import SweepPlan, evaluate_sweep
        from repro.hardware.gpus import GPU_KEYS

        batches = (
            _parse_batches(args.batches) if args.batches else (args.batch,)
        )
        # Admitted spec-only GPUs join the sweep when the estimator can
        # synthesize models for them (transfer backend); a per-GPU
        # estimator silently sweeps the built-in four as before.
        extra = [
            key for key in admitted_gpu_keys()
            if estimator.compute_models.supports_gpu(key)
        ]
        plan = SweepPlan.full_catalog(
            batch_sizes=batches, pricings=(pricing,),
            gpu_keys=tuple(GPU_KEYS) + tuple(extra) if extra else None,
        )
        result = evaluate_sweep(estimator, model, job, plan)
        frontier = result.frontier()
        rows = [
            [
                p.instance_name, f"{p.num_gpus}x{p.gpu_key}", p.batch_size,
                format_us(p.total_us), format_dollars(p.cost_dollars),
            ]
            for p in frontier
        ]
        print(
            format_table(
                ["instance", "config", "batch", "time", "cost"], rows,
                title=f"Catalog frontier for {result.model_name!r}: "
                      f"{len(frontier)} efficient of {result.n_candidates} "
                      f"candidates ({pricing.name} prices)",
            ),
            file=out,
        )
        return 0
    analysis = analyze_tradeoff(
        Recommender(estimator, pricing=pricing), model, job
    )
    print(analysis.render(), file=out)
    knee = analysis.knee()
    print(
        f"knee of the frontier: {knee.instance_name} "
        f"({knee.total_hours:.2f} h, ${knee.cost_dollars:.2f})",
        file=out,
    )
    return 0


def _cmd_catalog(args, out) -> int:
    if args.catalog_command == "admit":
        return _cmd_catalog_admit(args, out)
    from repro.cloud.catalog import (
        PAPER_INSTANCES,
        admitted_gpu_keys,
        all_instances,
        candidate_instances,
    )
    from repro.errors import CatalogError
    from repro.hardware.gpus import gpu_spec

    _load_admitted(args)
    gpu_filter = gpu_spec(args.gpu).key if args.gpu else None
    paper_names = {inst.name for inst in PAPER_INSTANCES}
    admitted = set(admitted_gpu_keys())
    rows = []
    for inst in sorted(all_instances(), key=lambda i: (i.gpu_key, i.num_gpus, i.usd_per_hr)):
        if gpu_filter is not None and inst.gpu_key != gpu_filter:
            continue
        try:
            spot_hr = f"${SPOT.instance(inst.gpu_key, inst.num_gpus).usd_per_hr:.3f}"
        except CatalogError:
            spot_hr = "-"  # admitted GPUs have no spot-ratio snapshot
        rows.append(
            [
                inst.name, f"{inst.num_gpus}x {inst.gpu_key}", inst.family,
                f"${inst.usd_per_hr:.3f}",
                f"${inst.usd_per_hr / inst.num_gpus:.3f}",
                spot_hr,
                "admitted" if inst.gpu_key in admitted
                else "paper" if inst.name in paper_names else "",
            ]
        )
    if not rows:
        raise ReproError(f"no catalog instance carries GPU {args.gpu!r}")
    print(
        format_table(
            ["instance", "GPUs", "family", "on-demand/hr", "per-GPU/hr",
             "spot/hr", ""],
            rows,
            title="AWS GPU instance catalog",
        ),
        file=out,
    )
    n_configs = len(candidate_instances())
    print(
        f"\n{len(rows)} instance type(s); a full sweep prices {n_configs} "
        f"(GPU model, count) configurations per pricing tier "
        f"(spot rate shown for the instance's cheapest exact/proxy host)",
        file=out,
    )
    return 0


def _cmd_catalog_admit(args, out) -> int:
    import json
    from dataclasses import fields
    from pathlib import Path

    from repro.hardware.gpus import GpuSpec

    try:
        data = json.loads(Path(args.spec).read_text(encoding="utf-8"))
    except OSError as exc:
        raise ReproError(f"cannot read GPU spec {args.spec!r}: {exc}")
    except ValueError as exc:
        raise ReproError(f"GPU spec {args.spec!r} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise ReproError(f"GPU spec {args.spec!r} must be a JSON object")
    expected = {f.name for f in fields(GpuSpec)}
    missing = sorted(expected - set(data))
    extra = sorted(set(data) - expected)
    if missing or extra:
        raise ReproError(
            f"GPU spec {args.spec!r} has wrong fields: "
            f"missing {missing or 'none'}, unexpected {extra or 'none'}"
        )
    spec = GpuSpec(**data)
    workspace = _resolve_workspace(args)
    workspace.load_admitted_gpus()
    workspace.admit_gpu(
        spec, usd_per_hr=args.usd_per_hr, max_gpus=args.max_gpus,
        replace=args.replace, spot_ratio=args.spot_ratio,
    )
    spot_note = (
        f", spot at {args.spot_ratio:.2f}x On-Demand"
        if args.spot_ratio is not None else ""
    )
    print(
        f"admitted {spec.key} ({spec.marketing_name}) at "
        f"${args.usd_per_hr:.3f}/hr per GPU, up to {args.max_gpus} GPUs"
        f"{spot_note}",
        file=out,
    )
    print(
        f"recorded in {workspace.admitted_gpus_path}; predict with a "
        f"transfer-backend estimator: repro predict --gpu {spec.key} ...",
        file=out,
    )
    return 0


def _cmd_figures(args, out) -> int:
    from repro import experiments

    available = {
        "fig2": experiments.run_fig2, "fig3": experiments.run_fig3,
        "fig4": experiments.run_fig4, "fig5": experiments.run_fig5,
        "fig6": experiments.run_fig6, "fig7": experiments.run_fig7,
        "fig8": experiments.run_fig8, "fig9": experiments.run_fig9,
        "fig10": experiments.run_fig10, "fig11": experiments.run_fig11,
        "fig12": experiments.run_fig12, "ablations": experiments.run_ablations,
        "spot_dynamics": experiments.run_spot_dynamics,
    }
    names = list(available) if "all" in args.names else args.names
    unknown = [n for n in names if n not in available]
    if unknown:
        raise ReproError(
            f"unknown figures {unknown}; available: {', '.join(available)}, all"
        )
    workspace = _resolve_workspace(args)
    # Install the chosen workspace process-wide so every driver (and the
    # helpers in experiments.common) resolves artifacts from it.
    previous = set_active_workspace(workspace)
    try:
        if args.jobs is not None and len(names) > 1:
            # Render every figure into the workspace in parallel first;
            # the assembly loop below then reads back pure cache hits, so
            # the report's content and order match a serial run exactly.
            from repro.parallel import FigureTask, run_fanout

            run_fanout(
                [
                    FigureTask(
                        name=name, n_iterations=args.iterations,
                        workspace_dir=str(workspace.directory),
                    )
                    for name in names
                ],
                jobs=args.jobs,
            )
        sections = []
        for name in names:
            rendered = workspace.figure(
                name, args.iterations,
                lambda runner=available[name]:
                    runner(n_iterations=args.iterations).render(),
            )
            section = f"{'=' * 72}\n{name}\n{'=' * 72}\n{rendered}"
            print(f"\n{section}", file=out)
            sections.append(section)
    finally:
        set_active_workspace(previous)
    if args.output:
        from pathlib import Path

        Path(args.output).write_text("\n\n".join(sections) + "\n")
        print(f"\nreport written to {args.output}", file=out)
    if args.counters_out:
        import json
        from pathlib import Path

        Path(args.counters_out).write_text(
            json.dumps(workspace.counters_to_json(), indent=2) + "\n"
        )
        print(f"workspace counters written to {args.counters_out}", file=out)
    return 0


def _cmd_cache(args, out) -> int:
    import time

    workspace = _resolve_workspace(args)
    store = workspace.store
    if args.cache_command == "list":
        infos = store.entries(getattr(args, "kind", None))
        if not infos:
            print(f"workspace {workspace.directory} is empty", file=out)
            return 0
        now_s = time.time()  # staticcheck: ignore[determinism] — CLI age display, not a model path
        rows = [
            [
                info.kind, info.key, info.size_bytes,
                f"{max(now_s - info.mtime, 0.0):.0f}s",
                info.schema_version if info.schema_version is not None else "?",
            ]
            for info in infos
        ]
        print(
            format_table(
                ["kind", "key", "bytes", "age", "schema"], rows,
                title=f"artifact workspace {workspace.directory}",
            ),
            file=out,
        )
        return 0
    if args.cache_command == "info":
        import json

        infos = store.entries()
        if args.key is None:
            # Per-kind summary. A workspace directory that does not exist
            # yet is simply an empty workspace, not an error: entries()
            # returns nothing and this prints zeros and exits 0.
            per_kind = {}
            for info in infos:
                count, size_bytes = per_kind.get(info.kind, (0, 0))
                per_kind[info.kind] = (count + 1, size_bytes + info.size_bytes)
            rows = [
                [kind, count, size_bytes]
                for kind, (count, size_bytes) in sorted(per_kind.items())
            ]
            total_bytes = sum(size for _, _, size in rows)
            print(
                format_table(
                    ["kind", "artifacts", "bytes"], rows,
                    title=f"artifact workspace {workspace.directory}",
                ),
                file=out,
            )
            print(f"total: {len(infos)} artifact(s), {total_bytes} bytes",
                  file=out)
            return 0
        matches = [i for i in infos if i.key == args.key]
        if not matches:
            raise ReproError(f"no artifact with key {args.key!r} in "
                             f"{workspace.directory}")
        for info in matches:
            print(f"kind:     {info.kind}", file=out)
            print(f"key:      {info.key}", file=out)
            print(f"path:     {info.path}", file=out)
            print(f"size:     {info.size_bytes} bytes", file=out)
            print(f"schema:   {info.schema_version}", file=out)
            print(f"spec:     {json.dumps(info.spec, sort_keys=True)}", file=out)
        return 0
    if args.cache_command == "clear":
        removed = store.clear(getattr(args, "kind", None))
        print(f"removed {removed} artifact(s) from {workspace.directory}",
              file=out)
        return 0
    # "key": the canonical training-profile fingerprint, so CI can key its
    # workspace cache on it.
    print(store.key_for(kinds.PROFILE, _canonical_profile_spec(args.iterations)),
          file=out)
    return 0


def _canonical_profile_spec(iterations: int) -> dict:
    """The canonical training-profile spec: everything that invalidates
    profiles (models, GPUs, iteration count, batch, seed scheme) and
    nothing else — kept as a dedicated pure builder so the
    fingerprint-purity check holds it to the no-clocks/no-env contract.
    """
    from repro.hardware.gpus import GPU_KEYS
    from repro.models.zoo import TRAIN_MODELS

    return {
        "models": sorted(TRAIN_MODELS),
        "gpus": sorted(GPU_KEYS),
        "iterations": iterations,
        "batch": 32,
        "seed": "",
    }


def _cmd_serve(args, out) -> int:
    import asyncio

    from repro.models.zoo import model_names
    from repro.serve.app import ServeApp, ServeState
    from repro.serve.http import serve_forever

    _load_admitted(args)  # admitted spec-only GPUs join the served catalog
    models = None
    if args.models:
        models = tuple(m.strip() for m in args.models.split(",") if m.strip())
        unknown = sorted(set(models) - set(model_names()))
        if unknown:
            raise ReproError(
                f"unknown model(s) {unknown}; available: "
                f"{', '.join(sorted(model_names()))}"
            )
    batches = (
        _parse_batches(args.warm_batches) if args.warm_batches else (32,)
    )
    if args.cache_size < 1:
        raise ReproError(f"--cache-size must be >= 1, got {args.cache_size}")
    state = ServeState(
        args.estimator,
        cache_size=args.cache_size,
        warm=not args.no_warm,
        models=models,
        batch_sizes=batches,
        spot_seed=args.spot_seed,
    )
    snapshot = state.holder.current
    if snapshot.warm_report is not None:
        report = snapshot.warm_report
        print(
            f"warmed {len(report.models)} model(s) x "
            f"{len(report.batch_sizes)} batch size(s): "
            f"{report.candidates} candidates pre-priced",
            file=out,
        )

    def ready(server) -> None:
        print(
            f"serving {args.estimator} (generation {snapshot.generation}, "
            f"backend {snapshot.backend}) on "
            f"http://{args.host}:{server.bound_port}",
            file=out,
        )
        print(
            "endpoints: GET /healthz /metrics; POST /predict /recommend "
            "/pareto /spot/tick /admin/reload  (SIGHUP reloads, "
            "SIGTERM stops)",
            file=out,
        )
        out.flush()

    try:
        asyncio.run(
            serve_forever(ServeApp(state), host=args.host, port=args.port,
                          ready=ready)
        )
    except KeyboardInterrupt:
        pass
    finally:
        state.close()
    print("server stopped", file=out)
    return 0


def _cmd_check(args, out) -> int:
    from repro.staticcheck.cli import run_check

    return run_check(args, prog="repro check", out=out)


_COMMANDS = {
    "models": _cmd_models,
    "fit": _cmd_fit,
    "predict": _cmd_predict,
    "recommend": _cmd_recommend,
    "tradeoff": _cmd_tradeoff,
    "catalog": _cmd_catalog,
    "figures": _cmd_figures,
    "cache": _cmd_cache,
    "serve": _cmd_serve,
    "check": _cmd_check,
}


def main(argv: Optional[Sequence[str]] = None, out=None) -> int:
    """CLI entry point; returns a process exit code."""
    global _last_workspace
    out = out if out is not None else sys.stdout
    args = _build_parser().parse_args(argv)
    trace_out = args.trace_out or os.environ.get(TRACE_ENV)
    metrics_out = args.metrics_out or os.environ.get(METRICS_ENV)
    _last_workspace = None
    tracer = enable_tracing() if trace_out else None
    try:
        with span(f"cli.{args.command}"):
            code = _COMMANDS[args.command](args, out)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        code = 2
    finally:
        if tracer is not None:
            disable_tracing()
    if tracer is not None and trace_out:
        write_trace(trace_out, tracer)
        print(f"trace written to {trace_out}", file=out)
    if metrics_out:
        registries = [default_registry()]
        if _last_workspace is not None:
            registries.append(_last_workspace.metrics)
        write_metrics(metrics_out, *registries)
        print(f"metrics written to {metrics_out}", file=out)
    return code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
