"""Cloud catalog: AWS GPU instances and pricing schemes (paper, Sections II & V)."""

from repro.cloud.catalog import (
    AWS_INSTANCES,
    EXTENDED_INSTANCES,
    PAPER_INSTANCES,
    InstanceType,
    candidate_instances,
    instance_by_name,
    instance_for,
    max_gpus_for,
)
from repro.cloud.pricing import (
    MARKET_USD_PER_HR_BY_GPU,
    MARKET_RATIO,
    ON_DEMAND,
    SPOT,
    SPOT_RATIO_BY_GPU,
    MarketRatioPricing,
    OnDemandPricing,
    PricingScheme,
    SpotPricing,
)

__all__ = [
    "InstanceType",
    "AWS_INSTANCES",
    "PAPER_INSTANCES",
    "EXTENDED_INSTANCES",
    "instance_by_name",
    "instance_for",
    "candidate_instances",
    "max_gpus_for",
    "PricingScheme",
    "OnDemandPricing",
    "MarketRatioPricing",
    "SpotPricing",
    "ON_DEMAND",
    "MARKET_RATIO",
    "SPOT",
    "MARKET_USD_PER_HR_BY_GPU",
    "SPOT_RATIO_BY_GPU",
]
