"""Cloud catalog: AWS GPU instances and pricing schemes (paper, Sections II & V)."""

from repro.cloud.catalog import (
    AWS_INSTANCES,
    InstanceType,
    candidate_instances,
    instance_by_name,
    instance_for,
)
from repro.cloud.pricing import (
    MARKET_USD_PER_HR_BY_GPU,
    MARKET_RATIO,
    ON_DEMAND,
    MarketRatioPricing,
    OnDemandPricing,
    PricingScheme,
)

__all__ = [
    "InstanceType",
    "AWS_INSTANCES",
    "instance_by_name",
    "instance_for",
    "candidate_instances",
    "PricingScheme",
    "OnDemandPricing",
    "MarketRatioPricing",
    "ON_DEMAND",
    "MARKET_RATIO",
    "MARKET_USD_PER_HR_BY_GPU",
]
