"""AWS GPU instance catalog: the paper's 8 EC2 instances plus the rest of
the 2020 GPU menu.

Section V of the paper uses four single-GPU instances and four multi-GPU
instances (>= 4 GPUs each), with On-Demand hourly prices as published in
2020. It also needs configurations AWS does not sell — e.g. a 3-GPU P2
instance — and handles them by running k of the GPUs of a larger instance
and billing k/n of its rental cost. :func:`instance_for` implements exactly
that proxy rule.

Beyond the paper's grid, the catalog carries the larger sizes of the same
four instance families (p3.16xlarge, p2.16xlarge, g4dn.metal, the mid-size
g3/g4dn boxes) so a catalog-scale sweep (:mod:`repro.core.batch`) can price
every rentable configuration — up to 16 K80s or 8 V100s — in one pass.
Every addition keeps the per-GPU hourly rate of its family, so the paper's
proxy arithmetic and scenario outcomes are unchanged: exact-match lookups
still resolve to the paper's (cheapest) instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import CatalogError
from repro.hardware.gpus import (
    GPU_SPECS,
    GpuSpec,
    gpu_spec,
    register_gpu_spec,
    unregister_gpu_spec,
)
from repro.units import usd_per_hr_to_usd_per_us


@dataclass(frozen=True)
class InstanceType:
    """One rentable cloud configuration.

    Attributes:
        name: AWS instance type name; proxy configurations get a suffix
            like ``"p2.8xlarge[3/8]"``.
        gpu_key: GPU model key (``"V100"``, ``"K80"``, ``"T4"``, ``"M60"``).
        num_gpus: GPUs actually *used* by the configuration.
        usd_per_hr: rental cost in $/hr (already prorated for proxies).
        proxy_of: for proxy configurations, the name of the real instance
            whose hardware hosts them; ``None`` for real instances.
    """

    name: str
    gpu_key: str
    num_gpus: int
    usd_per_hr: float
    proxy_of: Optional[str] = None

    @property
    def family(self) -> str:
        return gpu_spec(self.gpu_key).family

    @property
    def cost_per_us(self) -> float:
        """Rental cost per microsecond — the paper's Fig. 3 normalisation
        (hourly cost divided by the 3.6e9 microseconds in an hour)."""
        return usd_per_hr_to_usd_per_us(self.usd_per_hr)

    def __str__(self) -> str:
        return f"{self.name} ({self.num_gpus}x {self.gpu_key}, ${self.usd_per_hr:.3f}/hr)"


#: The 8 instances of Section V, with their On-Demand prices.
PAPER_INSTANCES: Tuple[InstanceType, ...] = (
    InstanceType("p3.2xlarge", "V100", 1, 3.06),
    InstanceType("p2.xlarge", "K80", 1, 0.90),
    InstanceType("g4dn.2xlarge", "T4", 1, 0.752),
    InstanceType("g3s.xlarge", "M60", 1, 0.75),
    InstanceType("p3.8xlarge", "V100", 4, 12.24),
    InstanceType("p2.8xlarge", "K80", 8, 7.20),
    InstanceType("g4dn.12xlarge", "T4", 4, 3.912),
    InstanceType("g3.16xlarge", "M60", 4, 4.56),
)

#: The rest of the 2020 AWS GPU menu for the same four families. Prices
#: keep each family's per-GPU rate, so these sizes extend the candidate
#: space without perturbing any paper scenario (exact-match lookups still
#: pick the paper's cheaper instances for the counts both offer).
EXTENDED_INSTANCES: Tuple[InstanceType, ...] = (
    InstanceType("p3.16xlarge", "V100", 8, 24.48),
    InstanceType("p2.16xlarge", "K80", 16, 14.40),
    InstanceType("g4dn.4xlarge", "T4", 1, 1.204),
    InstanceType("g4dn.8xlarge", "T4", 1, 2.176),
    InstanceType("g4dn.metal", "T4", 8, 7.824),
    InstanceType("g3.4xlarge", "M60", 1, 1.14),
    InstanceType("g3.8xlarge", "M60", 2, 2.28),
)

#: The full rentable menu: the paper's 8 instances plus the grown sizes.
AWS_INSTANCES: Tuple[InstanceType, ...] = PAPER_INSTANCES + EXTENDED_INSTANCES

_BY_NAME: Dict[str, InstanceType] = {inst.name: inst for inst in AWS_INSTANCES}

#: Instances admitted at runtime from a GPU spec sheet (``catalog admit``),
#: keyed by instance name. Admitted GPUs were never profiled: only a
#: transfer-backend estimator can price them, and only On-Demand rates
#: exist (the spot/market tables cover the four paper GPUs).
_ADMITTED_INSTANCES: Dict[str, InstanceType] = {}

#: Spot-to-On-Demand ratios declared at admission time (``catalog admit
#: --spot-ratio``). Admitted GPUs have no entry in the built-in spot
#: table, so without a declared ratio the spot/market schemes mask them.
_ADMITTED_SPOT_RATIOS: Dict[str, float] = {}


def all_instances() -> Tuple[InstanceType, ...]:
    """The current rentable menu: built-in AWS sizes plus admitted ones."""
    return AWS_INSTANCES + tuple(_ADMITTED_INSTANCES.values())


def admitted_gpu_keys() -> Tuple[str, ...]:
    """GPU keys currently admitted at runtime, sorted."""
    return tuple(sorted({inst.gpu_key for inst in _ADMITTED_INSTANCES.values()}))


def admitted_spot_ratios() -> Dict[str, float]:
    """Spot-to-On-Demand ratios of currently admitted GPUs (a copy)."""
    return dict(_ADMITTED_SPOT_RATIOS)


def admit_gpu(
    spec: GpuSpec, usd_per_hr: float, max_gpus: int = 8,
    replace: bool = False, spot_ratio: Optional[float] = None,
) -> Tuple[InstanceType, ...]:
    """Admit a never-profiled GPU to the catalog from its spec sheet.

    Registers the spec with the hardware registry and creates two
    synthetic instance sizes — ``<key>.admitted`` (1 GPU at
    ``usd_per_hr``) and, when ``max_gpus > 1``, ``<key>.admitted-<n>x``
    (``max_gpus`` GPUs at the linear per-GPU rate). Intermediate counts
    resolve through the paper's proxy proration rule like any other
    family.

    Admitting a key that is already admitted raises
    :class:`~repro.errors.CatalogError` unless ``replace=True`` — a
    second admission with a different price or size would otherwise
    silently change what every later prediction costs.

    ``spot_ratio`` optionally declares the GPU's spot-to-On-Demand
    discount so :class:`~repro.cloud.pricing.SpotPricing` (and spot
    sweeps) can price it; without one, spot pricing masks the GPU.
    """
    if usd_per_hr <= 0:
        raise CatalogError(f"usd_per_hr must be positive, got {usd_per_hr}")
    if max_gpus < 1:
        raise CatalogError(f"max_gpus must be >= 1, got {max_gpus}")
    if spot_ratio is not None and not 0.0 < spot_ratio <= 1.0:
        raise CatalogError(
            f"spot_ratio must be in (0, 1], got {spot_ratio}; it is the "
            f"spot-to-On-Demand price ratio, not an hourly rate"
        )
    if not replace and spec.key in {
        inst.gpu_key for inst in _ADMITTED_INSTANCES.values()
    }:
        raise CatalogError(
            f"GPU {spec.key!r} is already admitted; pass replace=True "
            f"(CLI: --replace) to overwrite its price/size"
        )
    register_gpu_spec(spec)
    base = InstanceType(
        name=f"{spec.key.lower()}.admitted",
        gpu_key=spec.key,
        num_gpus=1,
        usd_per_hr=usd_per_hr,
    )
    created = [base]
    if max_gpus > 1:
        created.append(
            InstanceType(
                name=f"{spec.key.lower()}.admitted-{max_gpus}x",
                gpu_key=spec.key,
                num_gpus=max_gpus,
                usd_per_hr=usd_per_hr * max_gpus,
            )
        )
    for name in [n for n, i in _ADMITTED_INSTANCES.items() if i.gpu_key == spec.key]:
        del _ADMITTED_INSTANCES[name]
    for inst in created:
        _ADMITTED_INSTANCES[inst.name] = inst
    # Re-admission without a ratio withdraws any previously declared one:
    # the admission call is the single source of truth for the GPU.
    _ADMITTED_SPOT_RATIOS.pop(spec.key, None)
    if spot_ratio is not None:
        _ADMITTED_SPOT_RATIOS[spec.key] = spot_ratio
    return tuple(created)


def clear_admitted(gpu_key: Optional[str] = None) -> None:
    """Withdraw admitted GPUs (all of them, or one key) and their instances."""
    keys = admitted_gpu_keys() if gpu_key is None else (gpu_key,)
    for key in keys:
        for name in [n for n, i in _ADMITTED_INSTANCES.items() if i.gpu_key == key]:
            del _ADMITTED_INSTANCES[name]
        _ADMITTED_SPOT_RATIOS.pop(key, None)
        unregister_gpu_spec(key)


def instance_by_name(name: str) -> InstanceType:
    """Look up a real (or admitted) instance by its type name."""
    try:
        return _BY_NAME[name]
    except KeyError:
        pass
    try:
        return _ADMITTED_INSTANCES[name]
    except KeyError:
        raise CatalogError(
            f"unknown instance type {name!r}; known: "
            f"{sorted(_BY_NAME) + sorted(_ADMITTED_INSTANCES)}"
        ) from None


def instance_for(gpu_key: str, num_gpus: int) -> InstanceType:
    """The cheapest way to rent ``num_gpus`` GPUs of a given model.

    Exact matches are returned as-is. When AWS offers no exact match (e.g.
    3-GPU anything, or 2-GPU P3), the smallest larger instance is prorated:
    "we employ the 8-GPU instance but only use 3 of the available GPUs;
    for cost, we use 3/8th of the rental cost" (paper, Section V).
    """
    key = gpu_spec(gpu_key).key  # normalise family names like "P3"
    if num_gpus < 1:
        raise CatalogError(f"num_gpus must be >= 1, got {num_gpus}")
    candidates = [inst for inst in all_instances() if inst.gpu_key == key]
    exact = [inst for inst in candidates if inst.num_gpus == num_gpus]
    if exact:
        return min(exact, key=lambda inst: inst.usd_per_hr)
    larger = [inst for inst in candidates if inst.num_gpus > num_gpus]
    if not larger:
        biggest = max(inst.num_gpus for inst in candidates)
        raise CatalogError(
            f"no {key} instance with >= {num_gpus} GPUs (largest is {biggest})"
        )
    host = min(larger, key=lambda inst: inst.num_gpus)
    prorated = host.usd_per_hr * num_gpus / host.num_gpus
    return InstanceType(
        name=f"{host.name}[{num_gpus}/{host.num_gpus}]",
        gpu_key=key,
        num_gpus=num_gpus,
        usd_per_hr=prorated,
        proxy_of=host.name,
    )


def max_gpus_for(gpu_key: str) -> int:
    """Largest GPU count of any catalog instance carrying ``gpu_key``."""
    key = gpu_spec(gpu_key).key
    counts = [inst.num_gpus for inst in all_instances() if inst.gpu_key == key]
    if not counts:
        raise CatalogError(f"no catalog instance carries GPU {key!r}")
    return max(counts)


def candidate_instances(max_gpus: Optional[int] = None) -> List[InstanceType]:
    """All (GPU model, k) configurations the recommender considers.

    With ``max_gpus=None`` (the default) each GPU model is swept up to the
    largest count any catalog instance offers for it — 8 V100s, 16 K80s —
    so the grown catalog is never silently truncated. Pass an explicit
    ``max_gpus`` to reproduce the paper's bounded grids (e.g. ``4``).
    Runtime-admitted GPUs sweep after the built-ins.
    """
    out: List[InstanceType] = []
    for key in list(GPU_SPECS) + list(admitted_gpu_keys()):
        top = max_gpus_for(key) if max_gpus is None else max_gpus
        for k in range(1, top + 1):
            out.append(instance_for(key, k))
    return out
