"""Pricing schemes: AWS On-Demand and the paper's market-ratio variant.

The paper's final evaluation scenario (Fig. 12) observes that AWS's prices
for older-generation GPUs do not track the GPUs' market value — the
commodity-hardware price ratio P3:G4:G3:P2 is about 1:0.31:0.18:0.05 while
AWS charges roughly 1:0.25:0.25:0.29 — and re-runs the cost-minimisation
scenario with hypothetical hourly prices of $3.06 / $0.95 / $0.55 / $0.15
per GPU, scaled linearly for multi-GPU instances. A
:class:`PricingScheme` abstracts over the two so the estimator and
recommender are price-model agnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cloud.catalog import InstanceType, admitted_spot_ratios, instance_for
from repro.errors import CatalogError
from repro.hardware.gpus import gpu_spec


class PricingScheme:
    """Maps a (GPU model, GPU count) configuration to a priced instance."""

    name: str = "abstract"

    def instance(self, gpu_key: str, num_gpus: int) -> InstanceType:
        raise NotImplementedError


@dataclass(frozen=True)
class OnDemandPricing(PricingScheme):
    """Actual AWS On-Demand prices, with the k/n proxy rule for absent sizes."""

    name: str = "aws-on-demand"

    def instance(self, gpu_key: str, num_gpus: int) -> InstanceType:
        return instance_for(gpu_key, num_gpus)


#: Hypothetical per-GPU hourly prices reflecting commodity market ratios
#: (paper, Section V, "Budget minimization with commodity GPU prices ratio").
MARKET_USD_PER_HR_BY_GPU: Dict[str, float] = {
    "V100": 3.06,
    "T4": 0.95,
    "M60": 0.55,
    "K80": 0.15,
}


@dataclass(frozen=True)
class MarketRatioPricing(PricingScheme):
    """Market-ratio prices: per-GPU rates scaled linearly with GPU count."""

    name: str = "market-ratio"
    usd_per_hr_by_gpu: Dict[str, float] = field(
        default_factory=lambda: dict(MARKET_USD_PER_HR_BY_GPU)
    )

    def instance(self, gpu_key: str, num_gpus: int) -> InstanceType:
        key = gpu_spec(gpu_key).key
        if key not in self.usd_per_hr_by_gpu:
            raise CatalogError(
                f"no market price for GPU {key!r}; the market-ratio table "
                f"covers the paper's four GPUs only — price admitted GPUs "
                f"On-Demand, or on spot after `repro catalog admit "
                f"--spot-ratio`"
            )
        if num_gpus < 1:
            raise CatalogError(f"num_gpus must be >= 1, got {num_gpus}")
        base = instance_for(key, num_gpus)
        return InstanceType(
            name=f"market:{base.name}",
            gpu_key=key,
            num_gpus=num_gpus,
            usd_per_hr=self.usd_per_hr_by_gpu[key] * num_gpus,
            proxy_of=base.proxy_of or base.name,
        )


#: Representative 2020 spot-to-On-Demand price ratios per GPU family.
#: Spot markets quote a fluctuating discount; these are typical mid-2020
#: snapshot values (deep discounts on the older K80/M60 fleets, shallower
#: on the in-demand V100/T4). These static ratios anchor catalog sweeps;
#: :mod:`repro.cloud.spotsim` fluctuates them into seeded price traces
#: for the streaming spot scenario.
SPOT_RATIO_BY_GPU: Dict[str, float] = {
    "V100": 0.31,
    "K80": 0.29,
    "T4": 0.34,
    "M60": 0.25,
}


@dataclass(frozen=True)
class SpotPricing(PricingScheme):
    """Spot-market prices: the On-Demand instance at a per-family discount.

    ``ratio_by_gpu`` holds the discount table. With ``include_admitted``
    (the default for the static :data:`SPOT` singleton), GPUs absent from
    the table fall back to the ratio declared at admission time
    (``catalog admit --spot-ratio``), so runtime-admitted GPUs price on
    spot like any built-in. Trace-driven schemes built by
    :mod:`repro.cloud.spotsim` pass ``include_admitted=False`` — their
    ratio table is a market snapshot, and silently mixing in a static
    admission ratio would alias two price regimes.
    """

    name: str = "aws-spot"
    ratio_by_gpu: Dict[str, float] = field(
        default_factory=lambda: dict(SPOT_RATIO_BY_GPU)
    )
    include_admitted: bool = True

    def ratio_for(self, gpu_key: str) -> float:
        """The spot-to-On-Demand ratio for one (normalised) GPU key."""
        key = gpu_spec(gpu_key).key
        if key in self.ratio_by_gpu:
            return self.ratio_by_gpu[key]
        if self.include_admitted:
            admitted = admitted_spot_ratios()
            if key in admitted:
                return admitted[key]
        raise CatalogError(
            f"no spot ratio for GPU {key!r}; declare one when admitting "
            f"the GPU: `repro catalog admit --spot-ratio <0..1> ...`"
        )

    def instance(self, gpu_key: str, num_gpus: int) -> InstanceType:
        key = gpu_spec(gpu_key).key
        ratio = self.ratio_for(key)
        base = instance_for(key, num_gpus)
        return InstanceType(
            name=f"spot:{base.name}",
            gpu_key=key,
            num_gpus=num_gpus,
            usd_per_hr=base.usd_per_hr * ratio,
            proxy_of=base.proxy_of or base.name,
        )


ON_DEMAND = OnDemandPricing()
MARKET_RATIO = MarketRatioPricing()
SPOT = SpotPricing()
