"""Seeded synthetic spot-price traces per GPU family (ROADMAP item 5).

Real AWS spot markets quote a fluctuating discount off the On-Demand
rate and reclaim capacity when demand spikes. This module synthesises
that behaviour deterministically: a mean-reverting AR(1) walk of the
spot-to-On-Demand ratio around the static anchors in
:data:`~repro.cloud.pricing.SPOT_RATIO_BY_GPU`, plus occasional
persistent "capacity crunch" spikes that push the ratio toward the
On-Demand ceiling. Everything derives from an explicit integer seed via
``np.random.default_rng`` — no wall clocks, no global RNG state — so the
same seed always yields the byte-identical trace regardless of process
or thread parallelism.

The trace also carries a per-(tick, GPU) preemption *hazard*: the closer
the spot ratio sits to the ceiling, the scarcer capacity is and the more
likely AWS reclaims the instance. :class:`SpotMarket` wraps a trace in a
monotonically increasing generation counter for the streaming
re-recommendation loop (``repro.serve`` and the tick CLI path).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

import numpy as np

from repro.cloud.catalog import admitted_spot_ratios
from repro.cloud.pricing import SPOT_RATIO_BY_GPU, SpotPricing
from repro.errors import CatalogError
from repro.obs.metrics import default_registry
from repro.obs.spans import span

#: Default number of ticks in a generated trace. The streaming loop
#: wraps around (generation modulo n_ticks), so a bounded trace serves
#: an unbounded tick stream.
DEFAULT_N_TICKS = 64


@dataclass(frozen=True)
class SpotMarketConfig:
    """Parameters of one synthetic spot market (all dimensionless ratios).

    ``base_ratios`` is a tuple of ``(gpu_key, anchor_ratio)`` pairs — a
    tuple, not a dict, so configs stay hashable and frozen. The walk
    mean-reverts toward each GPU's anchor with per-tick strength
    ``reversion``, perturbed by Gaussian noise of relative scale
    ``volatility``. Each tick a crunch spike starts with probability
    ``spike_probability`` and persists with probability
    ``spike_persistence``; an active spike lifts the ratio by
    ``spike_magnitude`` times the anchor. Ratios clamp to
    ``[min_ratio, max_ratio]``.

    ``max_hazard_per_hr`` scales price into preemption risk: hazard is 0
    at the floor and ``max_hazard_per_hr`` preemptions/hr at the
    ceiling, linear in between.
    """

    seed: int
    base_ratios: Tuple[Tuple[str, float], ...]
    n_ticks: int = DEFAULT_N_TICKS
    reversion: float = 0.35
    volatility: float = 0.04
    spike_probability: float = 0.06
    spike_persistence: float = 0.55
    spike_magnitude: float = 0.9
    min_ratio: float = 0.05
    max_ratio: float = 0.95
    max_hazard_per_hr: float = 0.25

    def __post_init__(self) -> None:
        if not self.base_ratios:
            raise CatalogError("SpotMarketConfig needs at least one GPU")
        keys = [key for key, _ in self.base_ratios]
        if len(set(keys)) != len(keys):
            raise CatalogError(
                f"SpotMarketConfig base_ratios has duplicate GPU keys: {keys}"
            )
        if self.n_ticks < 1:
            raise CatalogError(f"n_ticks must be >= 1, got {self.n_ticks}")
        if not 0.0 < self.min_ratio < self.max_ratio <= 1.0:
            raise CatalogError(
                f"need 0 < min_ratio < max_ratio <= 1, got "
                f"[{self.min_ratio}, {self.max_ratio}]"
            )
        for key, ratio in self.base_ratios:
            if not self.min_ratio <= ratio <= self.max_ratio:
                raise CatalogError(
                    f"anchor ratio for {key!r} is {ratio}, outside the "
                    f"clamp range [{self.min_ratio}, {self.max_ratio}]"
                )
        for name in ("reversion", "spike_probability", "spike_persistence"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise CatalogError(f"{name} must be in [0, 1], got {value}")
        for name in ("volatility", "spike_magnitude", "max_hazard_per_hr"):
            value = getattr(self, name)
            if value < 0.0:
                raise CatalogError(f"{name} must be >= 0, got {value}")

    @property
    def gpu_keys(self) -> Tuple[str, ...]:
        return tuple(key for key, _ in self.base_ratios)

    @classmethod
    def for_catalog(cls, seed: int, **overrides) -> "SpotMarketConfig":
        """A config covering every GPU with a known spot anchor.

        The built-in :data:`SPOT_RATIO_BY_GPU` table plus any
        runtime-admitted GPU that declared ``--spot-ratio``; admitted
        GPUs without one have no anchor to fluctuate and stay masked,
        exactly as under static spot pricing.
        """
        anchors = dict(SPOT_RATIO_BY_GPU)
        anchors.update(admitted_spot_ratios())
        base = tuple(sorted(anchors.items()))
        return cls(seed=seed, base_ratios=base, **overrides)


@dataclass(frozen=True, eq=False)
class SpotPriceTrace:
    """A generated trace: per-(tick, GPU) spot ratios and hazards."""

    config: SpotMarketConfig
    ratios: np.ndarray  # axes: (T, G)
    hazards_per_hr: np.ndarray  # axes: (T, G)

    @property
    def n_ticks(self) -> int:
        return int(self.ratios.shape[0])

    def _row(self, grid: np.ndarray, tick: int) -> Dict[str, float]:
        if not 0 <= tick < self.n_ticks:
            raise CatalogError(
                f"tick {tick} outside trace of {self.n_ticks} ticks"
            )
        row = grid[tick]
        return {
            key: float(row[g]) for g, key in enumerate(self.config.gpu_keys)
        }

    def ratios_at(self, tick: int) -> Dict[str, float]:
        """Spot-to-On-Demand ratio per GPU key at one tick."""
        return self._row(self.ratios, tick)

    def hazards_at(self, tick: int) -> Dict[str, float]:
        """Preemption hazard (preemptions/hr) per GPU key at one tick."""
        return self._row(self.hazards_per_hr, tick)

    def pricing_at(self, tick: int) -> SpotPricing:
        """A :class:`SpotPricing` quoting this tick's ratios.

        ``include_admitted=False``: the tick's table *is* the market; a
        GPU admitted after the trace was generated must mask, not
        silently price at its static admission ratio.
        """
        return SpotPricing(
            name=f"spot-trace@{tick}",
            ratio_by_gpu=self.ratios_at(tick),
            include_admitted=False,
        )


def generate_trace(config: SpotMarketConfig) -> SpotPriceTrace:
    """Generate the seeded trace for one market config.

    Pure function of ``config`` (the RNG is constructed from
    ``config.seed`` alone), so equal configs always produce
    byte-identical ratio arrays.
    """
    rng = np.random.default_rng(config.seed)
    anchor = np.array([ratio for _, ratio in config.base_ratios])  # axes: (G)
    level = anchor.copy()  # axes: (G)
    in_spike = np.zeros(anchor.shape[0], dtype=bool)  # axes: (G)
    rows = []
    for _ in range(config.n_ticks):
        noise = rng.normal(0.0, config.volatility, size=anchor.shape[0])
        level = level + config.reversion * (anchor - level) + noise * anchor
        starts = rng.random(anchor.shape[0]) < config.spike_probability
        persists = rng.random(anchor.shape[0]) < config.spike_persistence
        in_spike = starts | (in_spike & persists)
        tick_ratio = np.where(
            in_spike, level + config.spike_magnitude * anchor, level
        )
        rows.append(np.clip(tick_ratio, config.min_ratio, config.max_ratio))
    ratios = np.stack(rows, axis=0)  # axes: (T, G)
    # Capacity-scarcity proxy: hazard rises linearly as the spot quote
    # approaches the ceiling (AWS reclaims capacity exactly when the
    # market is tight). 0 at the floor, max_hazard_per_hr at the ceiling.
    crunch = (ratios - config.min_ratio) / (config.max_ratio - config.min_ratio)
    hazards_per_hr = config.max_hazard_per_hr * crunch  # axes: (T, G)
    return SpotPriceTrace(
        config=config, ratios=ratios, hazards_per_hr=hazards_per_hr
    )


class SpotMarket:
    """A streaming spot market: a seeded trace plus a generation counter.

    ``generation`` starts at 0 and only ever increases; the active tick
    is ``generation % n_ticks`` so the bounded trace serves an unbounded
    tick stream. Consumers that cache rankings key them by generation —
    two observations at the same generation are guaranteed to quote
    identical prices.
    """

    def __init__(
        self,
        config: Optional[SpotMarketConfig] = None,
        seed: int = 2020,
    ) -> None:
        self.config = config if config is not None else \
            SpotMarketConfig.for_catalog(seed)
        self.trace = generate_trace(self.config)
        self.generation = 0

    @property
    def tick_index(self) -> int:
        return self.generation % self.trace.n_ticks

    def tick(self) -> int:
        """Advance the market one tick; returns the new generation."""
        with span("spot.tick", generation=self.generation + 1):
            self.generation += 1
            default_registry().counter("spot.ticks").inc()
        return self.generation

    def ratios(self) -> Dict[str, float]:
        """The active tick's spot-to-On-Demand ratios."""
        return self.trace.ratios_at(self.tick_index)

    def hazards_per_hr(self) -> Dict[str, float]:
        """The active tick's preemption hazards."""
        return self.trace.hazards_at(self.tick_index)

    def pricing(self) -> SpotPricing:
        """A pricing scheme quoting the active tick."""
        return self.trace.pricing_at(self.tick_index)


def observe(
    market_or_trace, generation: int
) -> Tuple[Mapping[str, float], Mapping[str, float]]:
    """(ratios, hazards) of a market/trace at an absolute generation."""
    trace = getattr(market_or_trace, "trace", market_or_trace)
    tick = generation % trace.n_ticks
    return trace.ratios_at(tick), trace.hazards_at(tick)
