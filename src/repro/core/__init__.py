"""Ceer — the paper's contribution: operation-level training time and cost
prediction for CNNs across cloud GPU instances, and optimal-instance
recommendation (paper, Section IV)."""

from repro.core.classify import (
    LIGHT_THRESHOLD_US,
    REFERENCE_GPU,
    OpClassification,
    classify_operations,
)
from repro.core.comm_model import (
    CommObservation,
    CommunicationModel,
    collect_comm_observations,
    fit_comm_model,
)
from repro.core.engine import (
    CompiledGraph,
    PredictionEngine,
    compile_graph,
    evaluate_compiled_us,
)
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.core.fit import CeerDiagnostics, FittedCeer, fit_ceer
from repro.core.op_models import (
    ComputeTimeModels,
    HeavyOpModel,
    fit_compute_models,
)
from repro.core.recommend import (
    HourlyBudget,
    MinimizeCost,
    MinimizeTime,
    Objective,
    Recommendation,
    Recommender,
    TotalBudget,
    WeightedTimeCost,
)
from repro.core.regression import (
    RegressionModel,
    fit_regression,
    mean_absolute_percentage_error,
    r_squared,
)
from repro.core.persistence import (
    estimator_from_dict,
    estimator_to_dict,
    load_estimator,
    save_estimator,
)
from repro.core.pareto import (
    ParetoAnalysis,
    analyze_tradeoff,
    pareto_frontier,
    pareto_order_and_keep,
)
from repro.core.batch import (
    DEFAULT_SWEEP_BATCH_SIZES,
    DEFAULT_SWEEP_PRICINGS,
    StackedOpModels,
    SweepPlan,
    SweepResult,
    evaluate_sweep,
    sweep_candidates_reference,
)
from repro.core.update import extend_ceer, learn_model
from repro.core.baselines import (
    LayerLevelEstimator,
    PaleoStyleEstimator,
    cheapest_instance_strategy,
    heavy_only_variant,
    latest_gpu_strategy,
    no_comm_variant,
)

__all__ = [
    "fit_ceer",
    "FittedCeer",
    "CeerDiagnostics",
    "CeerEstimator",
    "TrainingPrediction",
    "PredictionEngine",
    "CompiledGraph",
    "compile_graph",
    "evaluate_compiled_us",
    "ComputeTimeModels",
    "HeavyOpModel",
    "fit_compute_models",
    "OpClassification",
    "classify_operations",
    "LIGHT_THRESHOLD_US",
    "REFERENCE_GPU",
    "CommunicationModel",
    "CommObservation",
    "collect_comm_observations",
    "fit_comm_model",
    "RegressionModel",
    "fit_regression",
    "mean_absolute_percentage_error",
    "r_squared",
    "Recommender",
    "Recommendation",
    "Objective",
    "MinimizeCost",
    "MinimizeTime",
    "HourlyBudget",
    "TotalBudget",
    "WeightedTimeCost",
    "PaleoStyleEstimator",
    "LayerLevelEstimator",
    "heavy_only_variant",
    "no_comm_variant",
    "cheapest_instance_strategy",
    "latest_gpu_strategy",
    "save_estimator",
    "load_estimator",
    "estimator_to_dict",
    "estimator_from_dict",
    "extend_ceer",
    "learn_model",
    "ParetoAnalysis",
    "analyze_tradeoff",
    "pareto_frontier",
    "pareto_order_and_keep",
    "SweepPlan",
    "SweepResult",
    "StackedOpModels",
    "evaluate_sweep",
    "sweep_candidates_reference",
    "DEFAULT_SWEEP_BATCH_SIZES",
    "DEFAULT_SWEEP_PRICINGS",
]
