"""Baseline predictors and naive strategies Ceer is evaluated against.

The paper positions Ceer against (Sections I, V, VII):

* **PALEO-style** prediction [43]: per-iteration time as a linear model of
  the iteration's total floating-point operation count, per GPU — no
  input-size features, no communication model.
* **Layer-level regression** (Giannini et al. [4], Cai et al. [17]):
  regression over the big layer kernels only (convolutions, matmuls,
  pooling), "ignoring small operations and CPU operations" and all
  communication — the paper attributes their up-to-22% errors to this.
* **Heavy-ops-only Ceer** (Section IV-B ablation): full Ceer minus the
  light/CPU medians; costs 15-25% accuracy.
* **No-communication Ceer** (Section IV-A ablation, Eq. (1) vs Eq. (2)):
  costs 5-20% on 1 GPU (AlexNet ~30%), more on multi-GPU.
* **Naive strategies** (Sections I, V): always rent the cheapest instance,
  or always rent the latest-generation (P3) instance — AWS's default
  listing. Ceer saves up to 36%/44% cost against these.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.catalog import InstanceType
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.errors import CatalogError, ModelingError
from repro.graph.flops import graph_flops
from repro.graph.graph import OpGraph
from repro.models.zoo import build_model
from repro.sim.executor import run_iterations
from repro.workloads.dataset import TrainingJob
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.core.regression import RegressionModel, fit_regression

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.classify import OpClassification
    from repro.profiling.records import ProfileDataset

#: Layer-kernel op types the layer-level baseline models (everything else,
#: including all light/CPU ops and communication, is ignored).
LAYER_LEVEL_OP_TYPES = frozenset(
    {
        "Conv2D", "Conv2DBackpropInput", "Conv2DBackpropFilter", "MatMul",
        "MaxPool", "MaxPoolGrad", "AvgPool", "AvgPoolGrad",
    }
)


def heavy_only_variant(estimator: CeerEstimator) -> CeerEstimator:
    """Ceer without light/CPU medians (Section IV-B ablation)."""
    return CeerEstimator(
        estimator.compute_models, estimator.comm_model,
        include_communication=estimator.include_communication, heavy_only=True,
    )


def no_comm_variant(estimator: CeerEstimator) -> CeerEstimator:
    """Ceer without the communication term — Eq. (1) (Section IV-A ablation)."""
    return CeerEstimator(
        estimator.compute_models, estimator.comm_model,
        include_communication=False, heavy_only=estimator.heavy_only,
    )


@dataclass
class PaleoStyleEstimator:
    """Per-GPU linear model: per-iteration time ~ total iteration FLOPs.

    Fit on whole-model observations of the training CNNs; predicts from a
    new CNN's static FLOP count. Ignores input sizes, op mix, light/CPU
    ops, and communication — the limitations Section VII calls out.
    """

    models: Dict[str, RegressionModel]

    @classmethod
    def fit(
        cls,
        train_models: Sequence[str],
        gpu_keys: Sequence[str],
        n_iterations: int = 200,
        batch_size: int = 32,
    ) -> "PaleoStyleEstimator":
        fitted: Dict[str, RegressionModel] = {}
        for gpu_key in gpu_keys:
            rows, targets = [], []
            for name in train_models:
                graph = build_model(name, batch_size=batch_size)
                profile = run_iterations(graph, gpu_key, n_iterations)
                rows.append([graph_flops(graph.operations) / 1e9])
                targets.append(profile.compute_us)
            fitted[gpu_key] = fit_regression(
                np.asarray(rows), np.asarray(targets), ("gflops",),
                allow_quadratic=False,
            )
        return cls(models=fitted)

    def predict_iteration_us(self, model: Union[str, OpGraph], gpu_key: str,
                             num_gpus: int = 1, batch_size: int = 32) -> float:
        graph = (
            build_model(model, batch_size=batch_size)
            if isinstance(model, str) else model
        )
        from repro.hardware.gpus import gpu_spec

        key = gpu_spec(gpu_key).key
        if key not in self.models:
            raise ModelingError(f"PALEO baseline was not fit for GPU {key!r}")
        return self.models[key].predict_one([graph_flops(graph.operations) / 1e9])


@dataclass
class LayerLevelEstimator:
    """Giannini-style layer-level regression baseline.

    Per-(GPU, layer-kernel op type) regressions on input-size features —
    but *only* for the layer kernels in :data:`LAYER_LEVEL_OP_TYPES`;
    small GPU ops, CPU ops, and communication are all ignored.
    """

    models: Dict[Tuple[str, str], RegressionModel]

    @classmethod
    def fit(
        cls,
        train_profiles: "ProfileDataset",
        classification: Optional["OpClassification"] = None,
    ) -> "LayerLevelEstimator":
        from repro.profiling.features import feature_schema

        fitted: Dict[Tuple[str, str], RegressionModel] = {}
        gpu_records = train_profiles.gpu_records()
        for gpu_key in gpu_records.gpu_keys():
            per_gpu = gpu_records.for_gpu(gpu_key)
            for op_type in LAYER_LEVEL_OP_TYPES:
                subset = per_gpu.for_op_type(op_type)
                if len(subset) < 4:
                    continue
                x = np.asarray([r.features for r in subset])
                y = np.asarray([r.mean_us for r in subset])
                fitted[(gpu_key, op_type)] = fit_regression(
                    x, y, feature_schema(op_type), allow_quadratic=False
                )
        return cls(models=fitted)

    def predict_iteration_us(self, model: Union[str, OpGraph], gpu_key: str,
                             num_gpus: int = 1, batch_size: int = 32) -> float:
        from repro.hardware.gpus import gpu_spec
        from repro.profiling.features import features_for

        graph = (
            build_model(model, batch_size=batch_size)
            if isinstance(model, str) else model
        )
        key = gpu_spec(gpu_key).key
        total = 0.0
        for op in graph:
            regression = self.models.get((key, op.op_type))
            if regression is not None:
                total += regression.predict_one(features_for(op))
        if total == 0.0:
            raise ModelingError(
                f"layer-level baseline has no fitted kernels for GPU {key!r}"
            )
        return total


# ---------------------------------------------------------------------------
# naive instance-selection strategies (paper, Sections I and V)
# ---------------------------------------------------------------------------

def cheapest_instance_strategy(
    pricing: PricingScheme = ON_DEMAND,
    gpu_keys: Sequence[str] = ("V100", "K80", "T4", "M60"),
    num_gpus: int = 1,
) -> InstanceType:
    """"Pick the cheapest instance": lowest hourly cost at a GPU count."""
    candidates = [pricing.instance(key, num_gpus) for key in gpu_keys]
    return min(candidates, key=lambda inst: inst.usd_per_hr)


def latest_gpu_strategy(
    pricing: PricingScheme = ON_DEMAND,
    num_gpus: int = 1,
    budget_usd_per_hr: Optional[float] = None,
) -> InstanceType:
    """"Pick the latest GPU" (AWS's default P3 listing; Section V).

    With a budget, returns the largest P3 configuration that fits — the
    Fig. 9 baseline ("pick the largest P3 instance that fits the budget").
    """
    if budget_usd_per_hr is None:
        return pricing.instance("V100", num_gpus)
    best: Optional[InstanceType] = None
    for k in range(1, 9):
        try:
            inst = pricing.instance("V100", k)
        except CatalogError:
            break
        if inst.usd_per_hr <= budget_usd_per_hr:
            best = inst  # keep the largest configuration under budget
    if best is None:
        raise ModelingError(f"no P3 instance fits ${budget_usd_per_hr:.2f}/hr")
    return best


def strategy_cost_comparison(
    ceer_prediction: TrainingPrediction,
    alternative_predictions: Sequence[TrainingPrediction],
) -> List[Tuple[str, float]]:
    """Relative extra cost of each alternative over Ceer's pick.

    Returns (instance name, cost ratio) pairs; a ratio of 1.6 means the
    alternative costs 1.6x Ceer's recommendation (paper: 1.6x for the
    cheapest-instance strategy, 1.8x for the most powerful, Fig. 11).
    """
    base = ceer_prediction.cost_dollars
    if base <= 0:
        raise ModelingError("Ceer prediction has non-positive cost")
    return [
        (p.instance_name, p.cost_dollars / base) for p in alternative_predictions
    ]
