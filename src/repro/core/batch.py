"""Catalog-scale batched sweep: price the whole candidate space in one pass.

Every Section V scenario is a point query on the same object — the
(training time, training cost) surface over candidate configurations —
and :class:`~repro.core.recommend.Recommender` used to walk that surface
one ``predict_training`` call at a time. This module evaluates the whole
surface at once. For one CNN, Eq. (2)

    T^k = ( S_GPU(CNN) + sum_i t_GPU,op_i(input_i) ) * D / (k * B)

factorises over the candidate axes:

* the per-op compute sum depends only on (GPU model, batch size). Per
  heavy op type, the per-GPU regressions stack into one coefficient
  matrix (:class:`StackedOpModels`), so one matmul per op type predicts
  every GPU model simultaneously — ``Phi @ W.T`` with the floor/clip
  applied as elementwise ``np.minimum``/``np.maximum`` over the whole
  ``(n_ops, n_gpu)`` block;
* the communication term depends only on (GPU model, GPU count) and
  broadcasts across the batch axis;
* iterations ``D / (k * B) * epochs`` depend only on (GPU count, batch);
* the price vector depends only on (pricing tier, GPU model, GPU count).

:func:`evaluate_sweep` combines them by NumPy broadcasting into
``(n_gpu, n_k, n_batch)`` time tensors and ``(n_pricing, n_gpu, n_k,
n_batch)`` cost tensors with zero per-candidate Python. The arithmetic
replays the scalar path's operation sequence exactly (same intercept-add,
clip, floor, and accumulation order), so results match the per-candidate
reference (:func:`sweep_candidates_reference`) to ulp-level — the test
suite and ``tools/bench_sweep_catalog.py`` assert rel diff < 1e-9 across
the zoo.

Candidate (GPU, count) pairs the catalog cannot price (e.g. 9 V100s) are
masked: NaN in the tensors, ``None`` in the instance table — the exact
combos the reference loop skips via :class:`~repro.errors.CatalogError`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.catalog import InstanceType, max_gpus_for
from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND, SPOT, PricingScheme
from repro.errors import CatalogError, ModelingError, UnseenOperationError
from repro.graph.graph import OpGraph
from repro.hardware.gpus import GPU_KEYS, gpu_spec
from repro.obs.metrics import default_registry
from repro.obs.spans import span
from repro.units import us_to_hr, usd_per_hr_to_usd
from repro.workloads.dataset import TrainingJob
from repro.core.comm_model import CommunicationModel
from repro.core.engine import CompiledGraph, compile_graph
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.core.op_models import ComputeTimeModels
from repro.core.regression import PREDICTION_FLOOR_US

#: Default per-GPU batch sizes for a catalog-scale sweep. Spanning the
#: paper's batch-scaling study (Fig. 5) range; 12 sizes x 36 valid
#: (GPU, k) combos x 3 pricing tiers = 1296 candidates.
DEFAULT_SWEEP_BATCH_SIZES: Tuple[int, ...] = (
    8, 16, 24, 32, 48, 64, 96, 128, 160, 192, 224, 256,
)

#: Default pricing tiers for a full-catalog sweep.
DEFAULT_SWEEP_PRICINGS: Tuple[PricingScheme, ...] = (ON_DEMAND, SPOT, MARKET_RATIO)


@dataclass(frozen=True)
class _StackedType:
    """Stacked per-GPU regression arrays for one heavy op type.

    Coefficients live in the always-quadratic design ``[x, x**2]``: a
    degree-2 model's coefficients map 1:1, a degree-1 model's occupy the
    linear half with exact zeros in the squared half (adding ``0 * x**2``
    is exact in IEEE arithmetic, so the padded evaluation is the linear
    one). ``clip_us`` holds ``+inf`` where a model has no extrapolation
    clip — ``np.minimum(pred, inf)`` is the identity.

    Axis names (checked by ``repro check``'s axes rules): ``G`` = GPU
    model, ``F2`` = the ``2 * n_features`` always-quadratic design.
    """

    weights: np.ndarray  # axes: (G, F2)
    intercepts_us: np.ndarray  # axes: (G)
    clip_us: np.ndarray  # axes: (G)


#: Bounds for the batch-sweep warm caches below. Totals entries are one
#: (n_gpu,) vector per (compiled graph, GPU tuple, flag) — the catalog
#: default sweeps 12 batch sizes per model, so 128 covers ~10 models.
TOTALS_CACHE_SIZE = 128
COMM_CACHE_SIZE = 256


class StackedOpModels:
    """The estimator's batch-sweep cache bundle, built lazily.

    One instance wraps one fitted :class:`ComputeTimeModels`; the
    estimator shares it across sweeps (see
    :attr:`CeerEstimator.batch_models`). Three warm layers, mirroring the
    scalar engine's compile/totals caches:

    * stacked per-(GPU tuple, op type) coefficient arrays (permanent —
      a handful of tiny matrices per fitted model set);
    * evaluated ``(n_gpu,)`` compute totals per (compiled graph, GPU
      tuple, heavy_only) — keyed by the compiled graph's identity while
      holding the graph, so keys cannot dangle (bounded FIFO);
    * ``(n_gpu, n_k)`` communication grids per (comm model, GPU tuple,
      count tuple, parameter count) (bounded FIFO).
    """

    def __init__(self, models: ComputeTimeModels) -> None:
        self.models = models
        self._stacked: Dict[Tuple[Tuple[str, ...], str], _StackedType] = {}
        self._totals: "OrderedDict[Tuple[int, Tuple[str, ...], bool], Tuple[CompiledGraph, np.ndarray]]" = OrderedDict()
        self._comm: "OrderedDict[Tuple[int, Tuple[str, ...], Tuple[int, ...], int], Tuple[CommunicationModel, np.ndarray]]" = OrderedDict()

    # obs: warm
    def totals_us(
        self,
        compiled: CompiledGraph,
        gpu_keys: Tuple[str, ...],
        heavy_only: bool = False,
    ) -> np.ndarray:
        """Cached :func:`evaluate_compiled_batch_us` for one compiled graph."""
        key = (id(compiled), gpu_keys, heavy_only)
        hit = self._totals.get(key)
        if hit is not None:
            return hit[1]
        totals = evaluate_compiled_batch_us(
            compiled, self, gpu_keys, heavy_only=heavy_only
        )
        self._totals[key] = (compiled, totals)
        while len(self._totals) > TOTALS_CACHE_SIZE:
            self._totals.popitem(last=False)
        return totals

    # obs: warm
    def comm_grid_us(
        self,
        comm_model: CommunicationModel,
        gpu_keys: Tuple[str, ...],
        gpu_counts: Tuple[int, ...],
        num_parameters: int,
    ) -> np.ndarray:
        """Cached ``(n_gpu, n_k)`` communication-overhead grid.

        Each cell is one ``comm_model.predict_us`` scalar call — the grid
        is the only per-cell Python of a sweep, so caching it makes a
        repeated sweep of the same model pure tensor broadcasting.
        """
        key = (id(comm_model), gpu_keys, gpu_counts, num_parameters)
        hit = self._comm.get(key)
        if hit is not None:
            return hit[1]
        grid_us = np.zeros((len(gpu_keys), len(gpu_counts)))  # axes: (G, K)
        for g, gpu_key in enumerate(gpu_keys):
            for k, num_gpus in enumerate(gpu_counts):
                grid_us[g, k] = comm_model.predict_us(
                    gpu_key, num_gpus, num_parameters
                )
        self._comm[key] = (comm_model, grid_us)
        while len(self._comm) > COMM_CACHE_SIZE:
            self._comm.popitem(last=False)
        return grid_us

    # obs: warm
    def for_type(
        self, gpu_keys: Tuple[str, ...], op_type: str, n_features: int
    ) -> _StackedType:
        key = (gpu_keys, op_type)
        cached = self._stacked.get(key)
        if cached is not None:
            return cached
        weights = np.zeros((len(gpu_keys), 2 * n_features))  # axes: (G, F2)
        intercepts_us = np.zeros(len(gpu_keys))  # axes: (G)
        clip_us = np.full(len(gpu_keys), np.inf)  # axes: (G)
        for g, gpu_key in enumerate(gpu_keys):
            op_model = self.models.heavy_model(gpu_key, op_type)
            if op_model is None:
                raise UnseenOperationError(op_type, gpu_key)
            regression = op_model.regression
            coef = np.asarray(regression.coef)
            if regression.degree == 2:
                if coef.shape[0] != 2 * n_features:
                    raise ModelingError(
                        f"stacking {op_type!r}/{gpu_key}: degree-2 model has "
                        f"{coef.shape[0]} coefficients, expected {2 * n_features}"
                    )
                weights[g] = coef
            else:
                if coef.shape[0] != n_features:
                    raise ModelingError(
                        f"stacking {op_type!r}/{gpu_key}: degree-1 model has "
                        f"{coef.shape[0]} coefficients, expected {n_features}"
                    )
                weights[g, :n_features] = coef
            intercepts_us[g] = regression.intercept
            if regression.clip_max is not None:
                clip_us[g] = regression.clip_max
        stacked = _StackedType(
            weights=weights, intercepts_us=intercepts_us, clip_us=clip_us
        )
        self._stacked[key] = stacked
        return stacked


# obs: warm
def evaluate_compiled_batch_us(
    compiled: CompiledGraph,
    stacked: StackedOpModels,
    gpu_keys: Tuple[str, ...],
    heavy_only: bool = False,
) -> np.ndarray:
    """Eq. (2)'s compute sum for one compiled graph on *all* GPU models.

    Returns a ``(len(gpu_keys),)`` vector; element ``g`` replays
    :func:`~repro.core.engine.evaluate_compiled_us` for ``gpu_keys[g]``
    operation-for-operation: per op type one design-matrix product
    (against the stacked coefficients of every GPU at once), the same
    clip-then-floor, the same per-type accumulation order, the same
    light/CPU median terms.
    """
    models = stacked.models
    if compiled.n_unseen and models.strict_unseen:
        raise UnseenOperationError(compiled.unseen_types[0], gpu_keys[0])
    totals_us = np.zeros(len(gpu_keys))  # axes: (G)
    for op_type, x in compiled.heavy_features.items():
        arrays = stacked.for_type(gpu_keys, op_type, x.shape[1])
        phi = np.hstack([x, x**2])  # always-quadratic design; see _StackedType
        pred_us = phi @ arrays.weights.T + arrays.intercepts_us[None, :]
        pred_us = np.minimum(pred_us, arrays.clip_us[None, :])
        pred_us = np.maximum(pred_us, PREDICTION_FLOOR_US)
        totals_us += pred_us.sum(axis=0)
    if not heavy_only:
        totals_us += (compiled.n_light + compiled.n_unseen) * models.light_median_us
        totals_us += compiled.n_cpu * models.cpu_median_us
    return totals_us


@dataclass(frozen=True)
class SweepPlan:
    """The candidate axes of one batched sweep.

    The swept space is the cross product ``pricings x gpu_keys x
    gpu_counts x batch_sizes``; (GPU, count) pairs the catalog cannot
    price are masked out of the result rather than failing the sweep.
    """

    gpu_keys: Tuple[str, ...] = GPU_KEYS
    gpu_counts: Tuple[int, ...] = (1, 2, 3, 4)
    batch_sizes: Tuple[int, ...] = (32,)
    pricings: Tuple[PricingScheme, ...] = (ON_DEMAND,)

    def __post_init__(self) -> None:
        if not self.gpu_keys or not self.gpu_counts or not self.batch_sizes \
                or not self.pricings:
            raise ModelingError("SweepPlan axes must all be non-empty")
        if any(k < 1 for k in self.gpu_counts):
            raise ModelingError("SweepPlan gpu_counts must be >= 1")
        if any(b < 1 for b in self.batch_sizes):
            raise ModelingError("SweepPlan batch_sizes must be >= 1")
        for axis_name in ("gpu_keys", "gpu_counts", "batch_sizes"):
            axis = getattr(self, axis_name)
            if len(set(axis)) != len(axis):
                raise ModelingError(f"SweepPlan {axis_name} contains duplicates")

    @classmethod
    def full_catalog(
        cls,
        batch_sizes: Sequence[int] = DEFAULT_SWEEP_BATCH_SIZES,
        pricings: Sequence[PricingScheme] = DEFAULT_SWEEP_PRICINGS,
        gpu_keys: Optional[Sequence[str]] = None,
    ) -> "SweepPlan":
        """Every configuration the grown catalog can price.

        GPU counts run to the largest any catalog instance offers (16
        K80s); counts a given GPU model cannot reach are masked in the
        result. With the defaults this is 1000+ priceable candidates.
        ``gpu_keys`` widens (or narrows) the GPU axis — e.g. to include
        runtime-admitted, spec-only GPUs under the transfer backend.
        """
        keys = GPU_KEYS if gpu_keys is None else tuple(gpu_keys)
        top = max(max_gpus_for(key) for key in keys)
        return cls(
            gpu_keys=keys,
            gpu_counts=tuple(range(1, top + 1)),
            batch_sizes=tuple(batch_sizes),
            pricings=tuple(pricings),
        )

    @property
    def n_cells(self) -> int:
        """Grid size before catalog masking."""
        return (
            len(self.pricings) * len(self.gpu_keys)
            * len(self.gpu_counts) * len(self.batch_sizes)
        )


@dataclass
class SweepResult:
    """The evaluated (time, cost) tensors over one :class:`SweepPlan`.

    Axis order everywhere is (pricing, gpu, k, batch), abbreviated
    ``(P, G, K, B)``. Time is pricing-independent so ``total_us`` drops
    the P axis. Cells whose (GPU, count) the catalog cannot price hold
    NaN in ``usd_per_hr``/``cost_usd`` and ``None`` in ``instances``.
    """

    plan: SweepPlan
    model_name: str
    num_parameters: int
    compute_us: np.ndarray  # axes: (G, B)
    comm_us: np.ndarray  # axes: (G, K)
    iterations: np.ndarray  # axes: (K, B)
    total_us: np.ndarray  # axes: (G, K, B)
    usd_per_hr: np.ndarray  # axes: (P, G, K) nan
    cost_usd: np.ndarray  # axes: (P, G, K, B) nan
    instances: Tuple[Tuple[Tuple[Optional[InstanceType], ...], ...], ...]
    epochs: int = 1
    #: Graph-level 1-sigma compute uncertainty per iteration (transfer
    #: backend; 0 under per-GPU fits). Batch- and device-independent —
    #: heavy-op *counts* do not vary across the swept axes.
    compute_std_us: float = 0.0
    _dataset_name: str = field(default="", repr=False)

    def valid(self, p: int, g: int, k: int) -> bool:
        """Whether pricing tier ``p`` can price ``gpu_counts[k]`` GPUs."""
        return self.instances[p][g][k] is not None

    @property
    def n_candidates(self) -> int:
        """Priceable candidates: valid (pricing, gpu, k) cells x batches."""
        n_priced = sum(
            inst is not None
            for per_pricing in self.instances
            for per_gpu in per_pricing
            for inst in per_gpu
        )
        return n_priced * len(self.plan.batch_sizes)

    # -- point queries --------------------------------------------------
    def prediction(self, p: int, g: int, k: int, b: int) -> TrainingPrediction:
        """Materialise one candidate as a :class:`TrainingPrediction`.

        The prediction's derived properties (``total_us``,
        ``cost_dollars``) recompute from the same stored floats with the
        same arithmetic, so they equal the tensor cells exactly.
        """
        instance = self.instances[p][g][k]
        if instance is None:
            raise CatalogError(
                f"no {self.plan.gpu_keys[g]} instance for "
                f"{self.plan.gpu_counts[k]} GPU(s) under pricing "
                f"{self.plan.pricings[p].name!r}"
            )
        return TrainingPrediction(
            model=self.model_name,
            gpu_key=instance.gpu_key,
            num_gpus=self.plan.gpu_counts[k],
            instance_name=instance.name,
            usd_per_hr=instance.usd_per_hr,
            compute_us_per_iteration=float(self.compute_us[g, b]),
            comm_overhead_us=float(self.comm_us[g, k]),
            iterations=float(self.iterations[k, b]),
            batch_size=self.plan.batch_sizes[b],
            compute_std_us=self.compute_std_us,
        )

    def predictions(
        self, pricing_index: int = 0, batch_index: int = 0
    ) -> List[TrainingPrediction]:
        """One (pricing, batch) slice in the recommender's sweep order
        (GPU-major, count-minor), skipping unpriceable cells."""
        return [
            self.prediction(pricing_index, g, k, batch_index)
            for g in range(len(self.plan.gpu_keys))
            for k in range(len(self.plan.gpu_counts))
            if self.valid(pricing_index, g, k)
        ]

    def iter_candidates(self) -> Iterator[Tuple[int, int, int, int]]:
        """(p, g, k, b) indices of every priceable candidate, in the
        reference loop's order (pricing-major, then gpu, k, batch)."""
        for p in range(len(self.plan.pricings)):
            for g in range(len(self.plan.gpu_keys)):
                for k in range(len(self.plan.gpu_counts)):
                    if not self.valid(p, g, k):
                        continue
                    for b in range(len(self.plan.batch_sizes)):
                        yield (p, g, k, b)

    def frontier(self) -> List[TrainingPrediction]:
        """Time-cost Pareto frontier over *all* candidates, fastest-first.

        The dominance scan runs vectorized on the tensors; only the
        frontier points are materialised as predictions. Matches
        ``pareto_frontier(all candidates)`` exactly, including its
        first-occurrence tie rule.
        """
        from repro.core.pareto import pareto_order_and_keep

        index = list(self.iter_candidates())
        if not index:
            raise CatalogError("sweep has no priceable candidates")
        t_us = np.array([self.total_us[g, k, b] for _, g, k, b in index])
        c_usd = np.array([self.cost_usd[p, g, k, b] for p, g, k, b in index])
        order, keep = pareto_order_and_keep(t_us, c_usd)
        return [self.prediction(*index[i]) for i in order[keep]]


def _pricing_grid(
    plan: SweepPlan,
) -> Tuple[np.ndarray, Tuple[Tuple[Tuple[Optional[InstanceType], ...], ...], ...]]:
    """Resolve the (P, G, K) price tensor and instance table for a plan.

    Unpriceable (pricing, GPU, count) cells — the combos where the
    pricing scheme raises :class:`CatalogError`, exactly the ones the
    reference loop skips — become NaN / ``None``.

    The grid is a pure function of the (frozen) plan, so it is memoized
    on the plan instance: serving loops that reuse one plan across
    models/jobs resolve the catalog once.
    """
    cached = getattr(plan, "_pricing_grid_cache", None)
    if cached is not None:
        return cached
    shape = (len(plan.pricings), len(plan.gpu_keys), len(plan.gpu_counts))
    usd_per_hr = np.full(shape, np.nan)  # axes: (P, G, K) nan
    instances: List[Tuple[Tuple[Optional[InstanceType], ...], ...]] = []
    for p, pricing in enumerate(plan.pricings):
        per_pricing: List[Tuple[Optional[InstanceType], ...]] = []
        for g, gpu_key in enumerate(plan.gpu_keys):
            per_gpu: List[Optional[InstanceType]] = []
            for k, num_gpus in enumerate(plan.gpu_counts):
                try:
                    instance = pricing.instance(gpu_key, num_gpus)
                except CatalogError:
                    per_gpu.append(None)
                    continue
                usd_per_hr[p, g, k] = instance.usd_per_hr
                per_gpu.append(instance)
            per_pricing.append(tuple(per_gpu))
        instances.append(tuple(per_pricing))
    grid = (usd_per_hr, tuple(instances))
    # The plan dataclass is frozen; the memo is not a field, so it does
    # not participate in eq/hash/repr.
    object.__setattr__(plan, "_pricing_grid_cache", grid)
    return grid


def evaluate_sweep(
    estimator: CeerEstimator,
    model: Union[str, OpGraph],
    job: TrainingJob,
    plan: Optional[SweepPlan] = None,
) -> SweepResult:
    """Evaluate Eq. (2) + cost over a whole :class:`SweepPlan` at once.

    ``job`` supplies the dataset and epoch count; the swept batch sizes
    come from ``plan`` (default: the job's own batch size). Passing a
    pre-built :class:`OpGraph` as ``model`` restricts the plan to that
    graph's batch size — a graph is its batch size.

    Honors the estimator's ablation flags (``heavy_only``,
    ``include_communication``) and its ``use_engine`` routing: with the
    engine, compiled graphs come from (and warm) the engine's caches;
    without it, graphs are compiled directly and the engine is never
    constructed.
    """
    if plan is None:
        plan = SweepPlan(batch_sizes=(job.batch_size,))
    if isinstance(model, OpGraph) and tuple(plan.batch_sizes) != (model.batch_size,):
        raise ModelingError(
            f"sweeping a pre-built graph (batch {model.batch_size}) with "
            f"plan batch sizes {plan.batch_sizes}; pass the zoo name to "
            f"sweep multiple batch sizes"
        )
    gpu_keys = tuple(gpu_spec(key).key for key in plan.gpu_keys)

    with span(
        "batch.sweep",
        model=model if isinstance(model, str) else model.name,
        cells=plan.n_cells,
        gpus=len(gpu_keys),
        batches=len(plan.batch_sizes),
        pricings=len(plan.pricings),
    ):
        compiled: List[CompiledGraph] = []
        for batch_size in plan.batch_sizes:
            graph = estimator.resolve_graph(model, batch_size)
            if estimator.use_engine:
                compiled.append(estimator.engine.compile(graph))
            else:
                compiled.append(compile_graph(graph, estimator.compute_models))

        # (G, B) compute tensor: one stacked evaluation per batch size,
        # served from the totals cache on repeated sweeps.
        stacked = estimator.batch_models
        compute_us = np.stack(  # axes: (G, B)
            [
                stacked.totals_us(c, gpu_keys, heavy_only=estimator.heavy_only)
                for c in compiled
            ],
            axis=1,
        )

        # (G, K) communication tensor — G*K scalar model lookups, the
        # only per-cell Python of a cold sweep (64 calls for the full
        # catalog); cached per (model parameters, axes) thereafter.
        num_parameters = compiled[0].num_parameters
        if estimator.include_communication:
            comm_us = stacked.comm_grid_us(  # axes: (G, K)
                estimator.comm_model, gpu_keys, plan.gpu_counts, num_parameters
            )
        else:
            comm_us = np.zeros((len(gpu_keys), len(plan.gpu_counts)))  # axes: (G, K)

        # (K, B) iteration counts and the broadcast assembly of Eq. (2).
        iterations = np.array(  # axes: (K, B)
            [
                [
                    TrainingJob(
                        job.dataset, batch_size=batch_size, epochs=job.epochs
                    ).iterations(num_gpus)
                    for batch_size in plan.batch_sizes
                ]
                for num_gpus in plan.gpu_counts
            ]
        )
        total_us = (  # axes: (G, K, B)
            compute_us[:, None, :] + comm_us[:, :, None]
        ) * iterations[None, :, :]

        # Indexed (not tuple-unpacked) so the axes dataflow keeps tracking
        # usd_per_hr through the cost assembly below.
        grid = _pricing_grid(plan)
        usd_per_hr = grid[0]  # axes: (P, G, K) nan
        instances = grid[1]
        # The unit helpers are plain ufunc arithmetic, so they broadcast:
        # cost[p,g,k,b] = rate[p,g,k] * hours[g,k,b], elementwise the same
        # two operations TrainingPrediction.cost_dollars performs.
        total_hr = us_to_hr(total_us)  # axes: (G, K, B)
        cost_usd = usd_per_hr_to_usd(  # axes: (P, G, K, B) nan
            usd_per_hr[:, :, :, None], total_hr[None, :, :, :]
        )

    result = SweepResult(
        plan=plan,
        model_name=compiled[0].graph_name,
        num_parameters=num_parameters,
        compute_us=compute_us,
        comm_us=comm_us,
        iterations=iterations,
        total_us=total_us,
        usd_per_hr=usd_per_hr,
        cost_usd=cost_usd,
        instances=instances,
        epochs=job.epochs,
        compute_std_us=estimator.compute_models.compiled_std_us(
            {t: x.shape[0] for t, x in compiled[0].heavy_features.items()}
        ),
        _dataset_name=job.dataset.name,
    )
    registry = default_registry()
    registry.counter("batch.sweeps").inc()
    registry.counter("batch.candidates").inc(result.n_candidates)
    return result


def sweep_candidates_reference(
    estimator: CeerEstimator,
    model: Union[str, OpGraph],
    job: TrainingJob,
    plan: Optional[SweepPlan] = None,
) -> List[TrainingPrediction]:
    """Per-candidate reference: one ``predict_training`` call per cell.

    The equivalence oracle for :func:`evaluate_sweep` (and the slow side
    of ``tools/bench_sweep_catalog.py``): loops pricing-major over the
    same plan, skips the same unpriceable combos, and returns predictions
    in :meth:`SweepResult.iter_candidates` order.
    """
    if plan is None:
        plan = SweepPlan(batch_sizes=(job.batch_size,))
    predictions: List[TrainingPrediction] = []
    for pricing in plan.pricings:
        for gpu_key in plan.gpu_keys:
            for num_gpus in plan.gpu_counts:
                try:
                    instance = pricing.instance(gpu_key, num_gpus)
                except CatalogError:
                    continue
                for batch_size in plan.batch_sizes:
                    cell_job = TrainingJob(
                        job.dataset, batch_size=batch_size, epochs=job.epochs
                    )
                    predictions.append(
                        estimator.predict_training(
                            model, gpu_key, num_gpus, cell_job,
                            pricing=pricing, instance=instance,
                        )
                    )
    return predictions
