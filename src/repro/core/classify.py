"""Heavy / light / CPU operation classification (paper, Sections III-A, IV-B).

The paper partitions operations three ways:

* **CPU operations** execute on the host because they lack GPU kernels
  (e.g. ``SparseToDense``).
* **Light GPU operations** have negligible compute times — "< 0.5 ms on P2"
  (Section III-A). Together they contribute less than ~7% of training time
  but exhibit high variability, so Ceer covers them with a sample median.
* **Heavy GPU operations** are everything else: the ~20 op types that
  contribute 47-94% of training time and get per-(GPU, op type) regression
  models.

Classification is purely data-driven, from training-set profiles — exactly
as in the paper, where the threshold is applied to measured compute times
on the P2 (K80) reference instance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet

from repro.errors import ModelingError
from repro.profiling.records import ProfileDataset

#: The paper's light-op threshold is "0.5 ms on P2"; our simulated
#: substrate's absolute times are uniformly faster than the authors'
#: testbed, so the equivalent cut sits at 350 us — it falls in the same
#: natural gap of the op-type time distribution and yields the same ~20
#: heavy op types (including ReLU, the paper's Fig. 4 subject).
LIGHT_THRESHOLD_US = 350.0
REFERENCE_GPU = "K80"

HEAVY = "heavy"
LIGHT = "light"
CPU = "cpu"


@dataclass(frozen=True)
class OpClassification:
    """The fitted three-way partition of op types."""

    heavy: FrozenSet[str]
    light: FrozenSet[str]
    cpu: FrozenSet[str]
    threshold_us: float = LIGHT_THRESHOLD_US
    reference_gpu: str = REFERENCE_GPU
    #: Mean compute time on the reference GPU per op type (diagnostics).
    reference_means_us: Dict[str, float] = field(default_factory=dict)

    def kind(self, op_type: str) -> str:
        """Return ``"heavy"``, ``"light"``, or ``"cpu"`` for a known op type.

        Raises :class:`ModelingError` for op types absent from training
        profiles; callers decide the unseen-op policy (Section IV-D).
        """
        if op_type in self.heavy:
            return HEAVY
        if op_type in self.light:
            return LIGHT
        if op_type in self.cpu:
            return CPU
        raise ModelingError(
            f"op type {op_type!r} was not observed in training profiles"
        )

    def knows(self, op_type: str) -> bool:
        return op_type in self.heavy or op_type in self.light or op_type in self.cpu


def classify_operations(
    profiles: ProfileDataset,
    threshold_us: float = LIGHT_THRESHOLD_US,
    reference_gpu: str = REFERENCE_GPU,
) -> OpClassification:
    """Partition every op type seen in ``profiles`` into heavy/light/CPU.

    GPU op types are ranked by their mean compute time on the reference GPU
    (P2's K80 in the paper); types never profiled on the reference GPU fall
    back to their slowest observed GPU — a conservative stand-in.
    """
    if not profiles:
        raise ModelingError("cannot classify operations from an empty profile set")
    cpu_types = frozenset(r.op_type for r in profiles.cpu_records())
    gpu_profiles = profiles.gpu_records()
    reference = gpu_profiles.for_gpu(reference_gpu)
    ref_means = reference.mean_us_by_op_type()

    heavy, light = set(), set()
    reference_means: Dict[str, float] = {}
    for op_type, subset in gpu_profiles.group_by_op_type().items():
        mean = ref_means.get(op_type)
        if mean is None:
            by_gpu = [
                subset.for_gpu(g).mean_us_by_op_type()[op_type]
                for g in subset.gpu_keys()
            ]
            mean = max(by_gpu)
        reference_means[op_type] = mean
        (heavy if mean >= threshold_us else light).add(op_type)

    return OpClassification(
        heavy=frozenset(heavy),
        light=frozenset(light),
        cpu=cpu_types,
        threshold_us=threshold_us,
        reference_gpu=reference_gpu,
        reference_means_us=reference_means,
    )
