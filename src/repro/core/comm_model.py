"""The communication-overhead model S_GPU(CNN) (paper, Section IV-C).

For every (GPU model, GPU count k) pair, Ceer fits a simple linear
regression of the per-iteration communication overhead against the CNN's
*number of model parameters* — the paper's key Fig. 7 finding is that this
relationship is nearly linear (regression R² 0.88-0.98), making the model
CNN-oblivious.

Observations are gathered the way the paper describes:

* k = 1: the CPU<->GPU communication time comes from GPU logs — in our
  simulation, directly from the comm sampler;
* k > 1: "subtracting the average per-iteration training time for 1 GPU
  from the average per-iteration training time for multiple GPUs" (same
  per-GPU batch size), then adding back the measured k=1 overhead so the
  fitted quantity is the total per-iteration overhead of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelingError
from repro.graph.graph import OpGraph
from repro.models.zoo import build_model
from repro.sim.dataparallel import sample_comm_overhead_us
from repro.sim.executor import run_iterations
from repro.core.regression import RegressionModel, fit_regression


@dataclass(frozen=True)
class CommObservation:
    """One measured per-iteration communication overhead."""

    model: str
    gpu_key: str
    num_gpus: int
    num_parameters: int
    overhead_us: float


def collect_comm_cell(
    graph: OpGraph,
    gpu_key: str,
    gpu_counts: Sequence[int],
    n_iterations: int = 300,
    seed_context: str = "",
    placement: str = "single-host",
) -> List[CommObservation]:
    """Measure one (model, GPU) cell's overheads across all GPU counts.

    Sampling depends only on (graph, gpu_key, seed_context) — cells are
    independent of sweep order, which is what lets
    :func:`collect_comm_observations` fan them out to worker processes
    without changing any measured value.
    """
    observations: List[CommObservation] = []
    compute_1 = run_iterations(graph, gpu_key, n_iterations, seed_context)
    comm_1 = float(
        sample_comm_overhead_us(
            gpu_key, 1, graph.num_parameters, n_iterations, seed_context,
            num_variables=graph.num_variables, placement=placement,
        ).mean()
    )
    per_iter_1 = compute_1.compute_us + comm_1
    for k in gpu_counts:
        if k == 1:
            overhead_us = comm_1
        else:
            comm_k = float(
                sample_comm_overhead_us(
                    gpu_key, k, graph.num_parameters, n_iterations,
                    seed_context, num_variables=graph.num_variables,
                    placement=placement,
                ).mean()
            )
            per_iter_k = compute_1.compute_us + comm_k
            overhead_us = (per_iter_k - per_iter_1) + comm_1
        observations.append(
            CommObservation(
                model=graph.name,
                gpu_key=compute_1.gpu_key,
                num_gpus=k,
                num_parameters=graph.num_parameters,
                overhead_us=overhead_us,
            )
        )
    return observations


def collect_comm_observations(
    models: Sequence[Union[str, OpGraph]],
    gpu_keys: Sequence[str],
    gpu_counts: Sequence[int] = (1, 2, 3, 4),
    n_iterations: int = 300,
    batch_size: int = 32,
    seed_context: str = "",
    placement: str = "single-host",
    jobs: Optional[int] = None,
) -> List[CommObservation]:
    """Measure communication overheads for every (model, GPU, k) triple.

    ``placement`` selects the GPU topology the overheads are measured on
    (Section VI: a multi-host deployment needs a retrained comm model).
    ``jobs`` fans the (model, GPU) cells out to worker processes (zoo-name
    models only — pre-built graphs always measure serially); observations
    come back in the serial loop's order either way.
    """
    cells = [(model, gpu_key) for model in models for gpu_key in gpu_keys]
    if (
        jobs is not None and jobs != 1 and len(cells) > 1
        and all(isinstance(model, str) for model, _ in cells)
    ):
        from repro.parallel import CommObservationTask, run_fanout

        tasks = [
            CommObservationTask(
                model=str(model), gpu_key=gpu_key, gpu_counts=tuple(gpu_counts),
                n_iterations=n_iterations, batch_size=batch_size,
                seed_context=seed_context, placement=placement,
            )
            for model, gpu_key in cells
        ]
        observations: List[CommObservation] = []
        for outcome in run_fanout(tasks, jobs=jobs):
            observations.extend(outcome.value)
        return observations

    observations = []
    for model in models:
        graph = (
            build_model(model, batch_size=batch_size)
            if isinstance(model, str)
            else model
        )
        for gpu_key in gpu_keys:
            observations.extend(
                collect_comm_cell(
                    graph, gpu_key, gpu_counts, n_iterations=n_iterations,
                    seed_context=seed_context, placement=placement,
                )
            )
    return observations


@dataclass
class CommunicationModel:
    """Fitted S_GPU(params; k) linear models, one per (GPU model, k)."""

    models: Dict[Tuple[str, int], RegressionModel]
    r2: Dict[Tuple[str, int], float] = field(default_factory=dict)

    def predict_us(self, gpu_key: str, num_gpus: int, num_parameters: int) -> float:
        """Per-iteration communication overhead estimate (microseconds)."""
        key = (gpu_key, num_gpus)
        model = self.models.get(key)
        if model is None:
            # Extrapolate beyond fitted k by scaling the largest fitted k's
            # per-parameter slope linearly — communication volume grows
            # roughly linearly with GPU count past the fitted range.
            fitted_ks = sorted(k for g, k in self.models if g == gpu_key)
            if not fitted_ks:
                from repro.hardware.gpus import gpu_spec, is_runtime_gpu

                if is_runtime_gpu(gpu_key):
                    # Spec prior for runtime-admitted (never-profiled)
                    # GPUs: the admitted GpuSpec carries its own
                    # synchronisation coefficients; the count-growth
                    # factors are the documented single-host topology
                    # law shared with the simulator. Built-in GPUs keep
                    # the fitted-or-error semantics unchanged.
                    from repro.sim.dataparallel import h_factor, k_factor

                    spec = gpu_spec(gpu_key)
                    return float(
                        spec.comm_base_us * h_factor(num_gpus)
                        + spec.comm_us_per_mparam * k_factor(num_gpus)
                        * (num_parameters / 1e6)
                    )
                raise ModelingError(
                    f"no communication model for GPU {gpu_key!r}; "
                    f"fit with observations for this GPU first"
                )
            k_max = fitted_ks[-1]
            base = self.models[(gpu_key, k_max)]
            scale = num_gpus / k_max
            return float(
                base.intercept + scale * (
                    base.predict_one([num_parameters / 1e6]) - base.intercept
                )
            )
        return model.predict_one([num_parameters / 1e6])

    def fitted_configs(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self.models))


def fit_comm_group(
    key: Tuple[str, int],
    parameter_counts: Sequence[int],
    overheads_us: Sequence[float],
) -> RegressionModel:
    """Fit one (GPU model, k) group's overhead-vs-parameters regression.

    Shared by the serial loop and the parallel
    :class:`~repro.parallel.plan.CommFitTask`, so both produce identical
    coefficients from identical observations.
    """
    if len(parameter_counts) < 3:
        raise ModelingError(
            f"need >= 3 CNNs to fit the communication model for {key}, "
            f"got {len(parameter_counts)}"
        )
    x = np.asarray([[p / 1e6] for p in parameter_counts])
    y = np.asarray(list(overheads_us))
    return fit_regression(x, y, ("mparams",), allow_quadratic=False)


def fit_comm_model(
    observations: Sequence[CommObservation],
    jobs: Optional[int] = None,
) -> CommunicationModel:
    """Fit per-(GPU, k) linear regressions of overhead vs parameter count.

    ``jobs`` fans the per-(GPU, k) fits out to worker processes (None =
    serial); results are identical either way.
    """
    if not observations:
        raise ModelingError("cannot fit a communication model with no observations")
    grouped: Dict[Tuple[str, int], List[CommObservation]] = {}
    for obs in observations:
        grouped.setdefault((obs.gpu_key, obs.num_gpus), []).append(obs)

    keys = list(grouped)
    if jobs is not None and jobs != 1 and len(keys) > 1:
        from repro.parallel import CommFitTask, run_fanout

        tasks = [
            CommFitTask(
                gpu_key=gpu_key, num_gpus=num_gpus,
                parameter_counts=tuple(o.num_parameters for o in grouped[(gpu_key, num_gpus)]),
                overheads_us=tuple(o.overhead_us for o in grouped[(gpu_key, num_gpus)]),
            )
            for gpu_key, num_gpus in keys
        ]
        fitted = [outcome.value for outcome in run_fanout(tasks, jobs=jobs)]
    else:
        fitted = [
            fit_comm_group(
                key,
                [o.num_parameters for o in grouped[key]],
                [o.overhead_us for o in grouped[key]],
            )
            for key in keys
        ]
    models: Dict[Tuple[str, int], RegressionModel] = {}
    r2: Dict[Tuple[str, int], float] = {}
    for key, model in zip(keys, fitted):
        models[key] = model
        r2[key] = model.r2
    return CommunicationModel(models=models, r2=r2)
