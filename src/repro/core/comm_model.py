"""The communication-overhead model S_GPU(CNN) (paper, Section IV-C).

For every (GPU model, GPU count k) pair, Ceer fits a simple linear
regression of the per-iteration communication overhead against the CNN's
*number of model parameters* — the paper's key Fig. 7 finding is that this
relationship is nearly linear (regression R² 0.88-0.98), making the model
CNN-oblivious.

Observations are gathered the way the paper describes:

* k = 1: the CPU<->GPU communication time comes from GPU logs — in our
  simulation, directly from the comm sampler;
* k > 1: "subtracting the average per-iteration training time for 1 GPU
  from the average per-iteration training time for multiple GPUs" (same
  per-GPU batch size), then adding back the measured k=1 overhead so the
  fitted quantity is the total per-iteration overhead of Eq. (2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple, Union

import numpy as np

from repro.errors import ModelingError
from repro.graph.graph import OpGraph
from repro.models.zoo import build_model
from repro.sim.dataparallel import sample_comm_overhead_us
from repro.sim.executor import run_iterations
from repro.core.regression import RegressionModel, fit_regression


@dataclass(frozen=True)
class CommObservation:
    """One measured per-iteration communication overhead."""

    model: str
    gpu_key: str
    num_gpus: int
    num_parameters: int
    overhead_us: float


def collect_comm_observations(
    models: Sequence[Union[str, OpGraph]],
    gpu_keys: Sequence[str],
    gpu_counts: Sequence[int] = (1, 2, 3, 4),
    n_iterations: int = 300,
    batch_size: int = 32,
    seed_context: str = "",
    placement: str = "single-host",
) -> List[CommObservation]:
    """Measure communication overheads for every (model, GPU, k) triple.

    ``placement`` selects the GPU topology the overheads are measured on
    (Section VI: a multi-host deployment needs a retrained comm model).
    """
    observations: List[CommObservation] = []
    for model in models:
        graph = (
            build_model(model, batch_size=batch_size)
            if isinstance(model, str)
            else model
        )
        for gpu_key in gpu_keys:
            compute_1 = run_iterations(graph, gpu_key, n_iterations, seed_context)
            comm_1 = float(
                sample_comm_overhead_us(
                    gpu_key, 1, graph.num_parameters, n_iterations, seed_context,
                    num_variables=graph.num_variables, placement=placement,
                ).mean()
            )
            per_iter_1 = compute_1.compute_us + comm_1
            for k in gpu_counts:
                if k == 1:
                    overhead_us = comm_1
                else:
                    comm_k = float(
                        sample_comm_overhead_us(
                            gpu_key, k, graph.num_parameters, n_iterations,
                            seed_context, num_variables=graph.num_variables,
                            placement=placement,
                        ).mean()
                    )
                    per_iter_k = compute_1.compute_us + comm_k
                    overhead_us = (per_iter_k - per_iter_1) + comm_1
                observations.append(
                    CommObservation(
                        model=graph.name,
                        gpu_key=compute_1.gpu_key,
                        num_gpus=k,
                        num_parameters=graph.num_parameters,
                        overhead_us=overhead_us,
                    )
                )
    return observations


@dataclass
class CommunicationModel:
    """Fitted S_GPU(params; k) linear models, one per (GPU model, k)."""

    models: Dict[Tuple[str, int], RegressionModel]
    r2: Dict[Tuple[str, int], float] = field(default_factory=dict)

    def predict_us(self, gpu_key: str, num_gpus: int, num_parameters: int) -> float:
        """Per-iteration communication overhead estimate (microseconds)."""
        key = (gpu_key, num_gpus)
        model = self.models.get(key)
        if model is None:
            # Extrapolate beyond fitted k by scaling the largest fitted k's
            # per-parameter slope linearly — communication volume grows
            # roughly linearly with GPU count past the fitted range.
            fitted_ks = sorted(k for g, k in self.models if g == gpu_key)
            if not fitted_ks:
                raise ModelingError(
                    f"no communication model for GPU {gpu_key!r}; "
                    f"fit with observations for this GPU first"
                )
            k_max = fitted_ks[-1]
            base = self.models[(gpu_key, k_max)]
            scale = num_gpus / k_max
            return float(
                base.intercept + scale * (
                    base.predict_one([num_parameters / 1e6]) - base.intercept
                )
            )
        return model.predict_one([num_parameters / 1e6])

    def fitted_configs(self) -> Tuple[Tuple[str, int], ...]:
        return tuple(sorted(self.models))


def fit_comm_model(observations: Sequence[CommObservation]) -> CommunicationModel:
    """Fit per-(GPU, k) linear regressions of overhead vs parameter count."""
    if not observations:
        raise ModelingError("cannot fit a communication model with no observations")
    grouped: Dict[Tuple[str, int], List[CommObservation]] = {}
    for obs in observations:
        grouped.setdefault((obs.gpu_key, obs.num_gpus), []).append(obs)

    models: Dict[Tuple[str, int], RegressionModel] = {}
    r2: Dict[Tuple[str, int], float] = {}
    for key, group in grouped.items():
        if len(group) < 3:
            raise ModelingError(
                f"need >= 3 CNNs to fit the communication model for {key}, "
                f"got {len(group)}"
            )
        x = np.asarray([[o.num_parameters / 1e6] for o in group])
        y = np.asarray([o.overhead_us for o in group])
        model = fit_regression(x, y, ("mparams",), allow_quadratic=False)
        models[key] = model
        r2[key] = model.r2
    return CommunicationModel(models=models, r2=r2)
