"""Compiled, vectorized prediction engine: walk a graph once, predict many.

The scalar reference path (:meth:`ComputeTimeModels.predict_graph_us`)
re-walks the op graph and re-extracts features for every single estimate.
That is fine for one prediction, but the recommender sweeps 16 (GPU model,
GPU count) candidates per query and the experiment drivers evaluate whole
model zoos — all against the *same* graph with the *same* static size
features. Eq. (2)'s per-op sum

    sum_i t_GPU,op_i(input_i)

factorises by op type: every heavy op type contributes
``sum(clip(X @ w + b))`` for a feature matrix ``X`` that depends only on
the graph, while light/CPU/unseen ops contribute ``count * median``. So a
graph can be *compiled* once into per-type feature matrices plus a handful
of counts, after which each (GPU model, flag) evaluation is a few dozen
matrix ops — the same amortisation Habitat and PROFET use to make
runtime prediction cheap enough to sit in a serving loop.

Three cache layers make the sweep path hot:

* built graphs, keyed by ``(model_name, batch_size)`` (LRU);
* compiled feature matrices, keyed by graph identity (LRU, holds a strong
  reference to the graph so the identity key cannot dangle);
* evaluated totals, keyed by ``(gpu_key, include_light, include_cpu)``
  within each compiled entry — a 16-candidate sweep performs only 4
  distinct compute evaluations (one per GPU model).

The engine is semantics-identical to the scalar path (see
``tests/core/test_engine.py`` for the zoo-wide equivalence property):
same prediction floor and extrapolation clip per op, same unseen-op policy
(``strict_unseen`` raises, otherwise the light-median fallback), same
``heavy_only``/``include_*`` ablation flags.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Union

import numpy as np

from repro.errors import UnseenOperationError
from repro.graph.graph import OpGraph
from repro.graph.ops import Device
from repro.obs.spans import span
from repro.profiling.features import features_for
from repro.core.classify import CPU, HEAVY, LIGHT
from repro.core.op_models import ComputeTimeModels

#: Default LRU capacities. Graph entries are whole op graphs (the zoo has
#: 12 models; 32 leaves room for several batch sizes per model); compiled
#: entries are a few hundred KB of float64 each.
GRAPH_CACHE_SIZE = 32
COMPILED_CACHE_SIZE = 32


@dataclass(frozen=True)
class CompiledGraph:
    """A graph reduced to the arrays Eq. (2) needs — no ops, no shapes.

    Attributes:
        graph_name / batch_size: identity of the source graph.
        num_ops: total operation count of the source graph.
        num_parameters: trainable parameters (input to the comm model).
        heavy_features: op type -> (n_instances, n_features) matrix, rows
            in graph order, features exactly as :func:`features_for`.
        n_light: known light GPU op instances.
        n_cpu: host-device ops plus GPU ops whose type classifies as CPU
            (both priced at the CPU median by the scalar path).
        n_unseen: GPU ops whose type never appeared in training profiles.
        unseen_types: those types, first-encounter order (for error
            messages under ``strict_unseen``).
    """

    graph_name: str
    batch_size: int
    num_ops: int
    num_parameters: int
    heavy_features: Dict[str, np.ndarray]
    n_light: int
    n_cpu: int
    n_unseen: int
    unseen_types: Tuple[str, ...]

    @property
    def n_heavy(self) -> int:
        return sum(x.shape[0] for x in self.heavy_features.values())


def compile_graph(graph: OpGraph, models: ComputeTimeModels) -> CompiledGraph:
    """Walk ``graph`` once and extract everything prediction needs.

    The result is classification-specific (it bakes in ``models``'
    heavy/light/CPU partition) but GPU-oblivious: the same compiled graph
    serves every GPU model and every include-flag combination.
    """
    classification = models.classification
    rows: Dict[str, list] = {}
    n_light = n_cpu = n_unseen = 0
    unseen: "OrderedDict[str, None]" = OrderedDict()
    for op in graph:
        if op.device is Device.CPU:
            n_cpu += 1
            continue
        if not classification.knows(op.op_type):
            n_unseen += 1
            unseen.setdefault(op.op_type)
            continue
        kind = classification.kind(op.op_type)
        if kind == HEAVY:
            rows.setdefault(op.op_type, []).append(features_for(op))
        elif kind == CPU:
            n_cpu += 1
        else:
            n_light += 1
    return CompiledGraph(
        graph_name=graph.name,
        batch_size=graph.batch_size,
        num_ops=len(graph),
        num_parameters=graph.num_parameters,
        heavy_features={
            op_type: np.asarray(feats, dtype=float)
            for op_type, feats in rows.items()
        },
        n_light=n_light,
        n_cpu=n_cpu,
        n_unseen=n_unseen,
        unseen_types=tuple(unseen),
    )


# obs: warm
def evaluate_compiled_us(
    compiled: CompiledGraph,
    models: ComputeTimeModels,
    gpu_key: str,
    include_light: bool = True,
    include_cpu: bool = True,
    heavy_only: bool = False,
) -> float:
    """Evaluate Eq. (2)'s compute sum from a compiled graph.

    Mirrors the scalar path exactly: per-op floor/clip inside
    :meth:`RegressionModel.predict_batch`, unseen GPU ops raise under
    ``strict_unseen`` (regardless of include flags) and otherwise fall
    back to the light median, CPU-classified ops always cost the CPU
    median.
    """
    if heavy_only:
        include_light = include_cpu = False
    if compiled.n_unseen and models.strict_unseen:
        raise UnseenOperationError(compiled.unseen_types[0], gpu_key)
    total = 0.0
    for op_type, x in compiled.heavy_features.items():
        model = models.heavy_model(gpu_key, op_type)
        if model is None:
            raise UnseenOperationError(op_type, gpu_key)
        total += float(model.regression.predict_batch(x).sum())
    if include_light:
        total += (compiled.n_light + compiled.n_unseen) * models.light_median_us
    if include_cpu:
        total += compiled.n_cpu * models.cpu_median_us
    return total


class _LRU(OrderedDict):
    """A minimal LRU mapping: get refreshes recency, put evicts oldest."""

    def __init__(self, capacity: int) -> None:
        super().__init__()
        self.capacity = capacity

    def lookup(self, key: object) -> Optional[object]:
        if key not in self:
            return None
        self.move_to_end(key)
        return self[key]

    def insert(self, key: object, value: object) -> None:
        self[key] = value
        self.move_to_end(key)
        while len(self) > self.capacity:
            self.popitem(last=False)


class _CompiledEntry:
    """A compiled graph plus its per-(GPU, flags) evaluated totals.

    Holding the source graph keeps its ``id()`` alive, so the identity key
    of the compiled cache can never alias a new graph; storing the totals
    inside the entry means evicting a graph also evicts its totals.
    """

    __slots__ = ("graph", "compiled", "totals")

    def __init__(self, graph: OpGraph, compiled: CompiledGraph) -> None:
        self.graph = graph
        self.compiled = compiled
        self.totals: Dict[Tuple[str, bool, bool], float] = {}


class PredictionEngine:
    """Compile-once / evaluate-many facade over :class:`ComputeTimeModels`.

    One engine wraps one fitted model set (its classification is baked
    into compiled graphs). :class:`~repro.core.estimator.CeerEstimator`
    constructs one automatically; the recommender and experiment drivers
    share it through the estimator, so a full sweep compiles each graph
    once and reuses evaluated totals across candidates.
    """

    def __init__(
        self,
        compute_models: ComputeTimeModels,
        graph_cache_size: int = GRAPH_CACHE_SIZE,
        compiled_cache_size: int = COMPILED_CACHE_SIZE,
    ) -> None:
        self.compute_models = compute_models
        self._graphs: _LRU = _LRU(graph_cache_size)
        self._compiled: _LRU = _LRU(compiled_cache_size)
        self.stats: Dict[str, int] = {
            "graph_hits": 0, "graph_misses": 0,
            "compile_hits": 0, "compile_misses": 0,
            "eval_hits": 0, "eval_misses": 0,
        }

    # ------------------------------------------------------------------
    def resolve_graph(
        self, model: Union[str, OpGraph], batch_size: int = 32
    ) -> OpGraph:
        """Return the op graph for a zoo name (memoized) or pass one through."""
        if isinstance(model, OpGraph):
            return model
        key = (model, batch_size)
        graph = self._graphs.lookup(key)
        if graph is not None:
            self.stats["graph_hits"] += 1
            return graph
        from repro.models.zoo import build_model

        self.stats["graph_misses"] += 1
        with span("engine.build_graph", model=model, batch_size=batch_size):
            graph = build_model(model, batch_size=batch_size)
        self._graphs.insert(key, graph)
        return graph

    def compile(self, model: Union[str, OpGraph], batch_size: int = 32) -> CompiledGraph:
        """Compile a graph (memoized on graph identity)."""
        return self._entry(self.resolve_graph(model, batch_size)).compiled

    def _entry(self, graph: OpGraph) -> _CompiledEntry:
        entry = self._compiled.lookup(id(graph))
        if entry is not None:
            self.stats["compile_hits"] += 1
            return entry
        self.stats["compile_misses"] += 1
        with span("engine.compile", graph=graph.name, ops=len(graph)):
            entry = _CompiledEntry(graph, compile_graph(graph, self.compute_models))
        self._compiled.insert(id(graph), entry)
        return entry

    # ------------------------------------------------------------------
    def predict_graph_us(
        self,
        model: Union[str, OpGraph],
        gpu_key: str,
        batch_size: int = 32,
        include_light: bool = True,
        include_cpu: bool = True,
        heavy_only: bool = False,
    ) -> float:
        """Vectorized equivalent of ``ComputeTimeModels.predict_graph_us``."""
        if heavy_only:
            include_light = include_cpu = False
        entry = self._entry(self.resolve_graph(model, batch_size))
        key = (gpu_key, include_light, include_cpu)
        cached = entry.totals.get(key)
        if cached is not None:
            self.stats["eval_hits"] += 1
            return cached
        self.stats["eval_misses"] += 1
        with span(
            "engine.evaluate", graph=entry.compiled.graph_name, gpu=gpu_key,
            include_light=include_light, include_cpu=include_cpu,
        ):
            total = evaluate_compiled_us(
                entry.compiled, self.compute_models, gpu_key,
                include_light=include_light, include_cpu=include_cpu,
            )
        entry.totals[key] = total
        return total

    # ------------------------------------------------------------------
    def clear(self) -> None:
        """Drop all cached graphs, compilations, and totals."""
        self._graphs.clear()
        self._compiled.clear()
        for k in self.stats:
            self.stats[k] = 0

    def cache_info(self) -> Dict[str, int]:
        """Hit/miss counters plus current cache sizes (diagnostics/bench)."""
        return {
            **self.stats,
            "graphs_cached": len(self._graphs),
            "compiled_cached": len(self._compiled),
            "totals_cached": sum(
                len(e.totals) for e in self._compiled.values()
            ),
        }
