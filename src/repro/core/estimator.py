"""The Ceer estimator: training time and cost for any CNN on any instance.

Implements the paper's Eq. (2)::

    T^k_CNN,GPU = ( S_GPU(CNN) + sum_i t_GPU,op_i(input_i) ) * D / (k * B)

and the cost relation ``C = T * c_GPU,k``. The per-op sum comes from
:class:`~repro.core.op_models.ComputeTimeModels`, the overhead from
:class:`~repro.core.comm_model.CommunicationModel`, and the instance price
from a :class:`~repro.cloud.pricing.PricingScheme`.

Constructor flags reproduce the paper's two accuracy ablations: dropping
the communication term (Eq. (1); Section IV-A shows 5-30% extra error) and
dropping light/CPU contributions (Section IV-B; 15-25% extra error).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Optional, Tuple, Union

if TYPE_CHECKING:
    from repro.core.batch import StackedOpModels

from repro.cloud.catalog import InstanceType
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.errors import ModelingError
from repro.graph.graph import OpGraph
from repro.units import us_to_hr, usd_per_hr_to_usd
from repro.workloads.dataset import TrainingJob
from repro.core.comm_model import CommunicationModel
from repro.core.engine import PredictionEngine
from repro.core.op_models import ComputeTimeModels


@dataclass(frozen=True)
class TrainingPrediction:
    """Ceer's estimate for one (CNN, instance) deployment."""

    model: str
    gpu_key: str
    num_gpus: int
    instance_name: str
    usd_per_hr: float
    compute_us_per_iteration: float
    comm_overhead_us: float
    iterations: float
    #: Per-GPU batch size the prediction was computed at; None for legacy
    #: call sites that predate batch-axis sweeps.
    batch_size: Optional[int] = None
    #: 1-sigma uncertainty of the per-iteration compute term, from the
    #: transfer backend's per-op residual stds (0 under per-GPU fits,
    #: which carry no uncertainty estimate).
    compute_std_us: float = 0.0
    #: Expected preemptions per hour on this instance (spot markets).
    #: 0 for deterministic (On-Demand) predictions.
    hazard_per_hr: float = 0.0
    #: Iterations replayed per preemption (lost progress since the last
    #: checkpoint plus restore cost); see :mod:`repro.core.preempt`.
    preempt_overhead_iterations: float = 0.0  # staticcheck: ignore[unit-suffix] (an iteration count, not a duration)

    @property
    def per_iteration_us(self) -> float:
        return self.compute_us_per_iteration + self.comm_overhead_us

    @property
    def total_us(self) -> float:
        return self.per_iteration_us * self.iterations

    @property
    def total_hours(self) -> float:
        return us_to_hr(self.total_us)

    @property
    def cost_dollars(self) -> float:
        return usd_per_hr_to_usd(self.usd_per_hr, self.total_hours)

    # -- uncertainty bands (transfer backend) ---------------------------
    @property
    def total_std_us(self) -> float:
        """1-sigma band on total training time (iterations scale sigma)."""
        return self.compute_std_us * self.iterations

    @property
    def total_std_hours(self) -> float:
        return us_to_hr(self.total_std_us)

    @property
    def cost_std_dollars(self) -> float:
        """1-sigma band on training cost at the predicted instance rate."""
        return usd_per_hr_to_usd(self.usd_per_hr, self.total_std_hours)

    # -- preemption-aware expectations (spot markets) -------------------
    @property
    def expected_makespan_us(self) -> float:
        """Expected wall-clock including preemption replay.

        Over ``total_hours`` of work at ``hazard_per_hr`` the instance is
        preempted ``hazard_per_hr * total_hours`` times in expectation,
        and each preemption replays ``preempt_overhead_iterations``
        iterations. At hazard 0 the added term is exactly ``+0.0``, so
        the expectation collapses to the deterministic ``total_us``
        bit-for-bit.
        """
        return self.total_us + (self.hazard_per_hr * self.total_hours) * (
            self.preempt_overhead_iterations * self.per_iteration_us
        )

    @property
    def expected_makespan_hours(self) -> float:
        return us_to_hr(self.expected_makespan_us)

    @property
    def expected_cost_usd(self) -> float:
        """Expected cost: the instance rate over the expected makespan."""
        return usd_per_hr_to_usd(self.usd_per_hr, self.expected_makespan_hours)


class CeerEstimator:
    """Predicts training time and cost for arbitrary CNNs (paper, Section IV).

    Args:
        compute_models: fitted per-op compute-time models.
        comm_model: fitted per-(GPU, k) communication-overhead models.
        include_communication: set False to reproduce the Eq. (1) ablation.
        heavy_only: set True to reproduce the heavy-ops-only ablation.
        use_engine: route the compute sum through the vectorized
            :class:`~repro.core.engine.PredictionEngine` (compile-once /
            evaluate-many with caching). Set False to force the scalar
            per-op reference path — the benchmark harness times both.
    """

    def __init__(
        self,
        compute_models: ComputeTimeModels,
        comm_model: CommunicationModel,
        include_communication: bool = True,
        heavy_only: bool = False,
        use_engine: bool = True,
    ) -> None:
        self.compute_models = compute_models
        self.comm_model = comm_model
        self.include_communication = include_communication
        self.heavy_only = heavy_only
        self.use_engine = use_engine
        self._engine: Optional[PredictionEngine] = None
        self._batch_models: Optional["StackedOpModels"] = None
        self._graph_cache: Dict[Tuple[str, int], OpGraph] = {}

    @property
    def batch_models(self) -> "StackedOpModels":
        """Stacked per-GPU coefficients for catalog-scale batched sweeps.

        Lazy like :attr:`engine` — a scalar-only estimator never stacks —
        and shared across sweeps so repeated
        :func:`~repro.core.batch.evaluate_sweep` calls reuse the arrays.
        """
        if self._batch_models is None:
            from repro.core.batch import StackedOpModels

            self._batch_models = StackedOpModels(self.compute_models)
        return self._batch_models

    @property
    def engine(self) -> PredictionEngine:
        """The vectorized engine, created on first use.

        Lazy so that a scalar-path estimator (``use_engine=False``) never
        carries a dead compile/LRU cache; constructing one estimator per
        sweep point stays cheap either way.
        """
        if self._engine is None:
            self._engine = PredictionEngine(self.compute_models)
        return self._engine

    # ------------------------------------------------------------------
    def resolve_graph(
        self, model: Union[str, OpGraph], batch_size: int = 32
    ) -> OpGraph:
        """Resolve a zoo name to its (engine-cached) op graph.

        Callers that evaluate the same model many times (the recommender
        sweep, the figure drivers) resolve once and pass the graph back
        in, so the engine compiles a single graph for the whole run. On
        the scalar path (``use_engine=False``) the zoo builds the graph
        directly — no engine, and no engine cache, is involved.
        """
        if isinstance(model, OpGraph):
            return model
        if not self.use_engine:
            from repro.models.zoo import build_model

            cached = self._graph_cache.get((model, batch_size))
            if cached is None:
                cached = build_model(model, batch_size=batch_size)
                self._graph_cache[(model, batch_size)] = cached
            return cached
        return self.engine.resolve_graph(model, batch_size)

    def _compute_us(self, graph: OpGraph, gpu_key: str) -> float:
        if self.use_engine:
            return self.engine.predict_graph_us(
                graph, gpu_key, heavy_only=self.heavy_only
            )
        return self.compute_models.predict_graph_us(
            graph, gpu_key, heavy_only=self.heavy_only
        )

    def compute_std_us(self, graph: OpGraph) -> float:
        """Graph-level 1-sigma compute uncertainty (0 for per-GPU fits).

        Guarded so the per-GPU backend never pays a graph walk: only the
        transfer backend populates ``heavy_std_us``.
        """
        if not self.compute_models.heavy_std_us:
            return 0.0
        if self.use_engine:
            compiled = self.engine.compile(graph, graph.batch_size)
        else:
            from repro.core.engine import compile_graph

            compiled = compile_graph(graph, self.compute_models)
        return self.compute_models.compiled_std_us(
            {t: x.shape[0] for t, x in compiled.heavy_features.items()}
        )

    def predict_iteration_us(
        self, model: Union[str, OpGraph], gpu_key: str, num_gpus: int = 1,
        batch_size: int = 32,
    ) -> float:
        """Per-iteration training time estimate (the bracket of Eq. (2))."""
        from repro.hardware.gpus import gpu_spec

        gpu_key = gpu_spec(gpu_key).key  # accept family aliases like "P3"
        graph = self.resolve_graph(model, batch_size)
        compute = self._compute_us(graph, gpu_key)
        comm = (
            self.comm_model.predict_us(gpu_key, num_gpus, graph.num_parameters)
            if self.include_communication
            else 0.0
        )
        return compute + comm

    def predict_training(
        self,
        model: Union[str, OpGraph],
        gpu_key: str,
        num_gpus: int,
        job: TrainingJob,
        pricing: PricingScheme = ON_DEMAND,
        instance: Optional[InstanceType] = None,
    ) -> TrainingPrediction:
        """Full Eq. (2) + cost prediction for a training job on an instance."""
        from repro.hardware.gpus import gpu_spec

        gpu_key = gpu_spec(gpu_key).key  # accept family aliases like "P3"
        graph = self.resolve_graph(model, job.batch_size)
        compute = self._compute_us(graph, gpu_key)
        comm = (
            self.comm_model.predict_us(gpu_key, num_gpus, graph.num_parameters)
            if self.include_communication
            else 0.0
        )
        if instance is None:
            instance = pricing.instance(gpu_key, num_gpus)
        elif instance.gpu_key != gpu_key or instance.num_gpus != num_gpus:
            # An explicit instance must be the hardware the prediction was
            # computed for — otherwise the caller silently prices compute
            # predicted on a different GPU and mislabels the result.
            raise ModelingError(
                f"instance {instance.name!r} is {instance.num_gpus}x "
                f"{instance.gpu_key}, but the prediction was requested for "
                f"{num_gpus}x {gpu_key}; pass a matching instance or omit it"
            )
        return TrainingPrediction(
            model=graph.name,
            gpu_key=instance.gpu_key,
            num_gpus=num_gpus,
            instance_name=instance.name,
            usd_per_hr=instance.usd_per_hr,
            compute_us_per_iteration=compute,
            comm_overhead_us=comm,
            iterations=job.iterations(num_gpus),
            batch_size=job.batch_size,
            compute_std_us=self.compute_std_us(graph),
        )
