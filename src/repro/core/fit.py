"""The end-to-end Ceer training pipeline: profiles in, estimator out.

:func:`fit_ceer` reproduces the paper's offline phase (Sections III-IV):
profile the 8 training-set CNNs on all four GPU models, classify op types,
fit the heavy-op regressions and light/CPU medians, measure and fit the
communication overheads, and assemble a :class:`CeerEstimator`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TRAIN_MODELS
from repro.obs.spans import span
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset
from repro.core.classify import (
    LIGHT_THRESHOLD_US,
    REFERENCE_GPU,
    classify_operations,
)
from repro.core.comm_model import collect_comm_observations, fit_comm_model
from repro.core.estimator import CeerEstimator
from repro.core.op_models import fit_compute_models


@dataclass
class CeerDiagnostics:
    """Fit-quality metadata surfaced alongside a fitted estimator."""

    train_models: Tuple[str, ...]
    gpu_keys: Tuple[str, ...]
    n_profile_records: int
    heavy_op_types: Tuple[str, ...]
    light_op_types: Tuple[str, ...]
    cpu_op_types: Tuple[str, ...]
    light_median_us: float
    cpu_median_us: float
    heavy_r2: Dict[Tuple[str, str], float] = field(default_factory=dict)
    comm_r2: Dict[Tuple[str, int], float] = field(default_factory=dict)
    #: Which op-model backend produced the heavy fits.
    backend: str = "per_gpu"
    #: (gpu, op type) cells that fell back to the proportional model for
    #: want of samples (gpu = "pooled" under the transfer backend).
    proportional_fallbacks: Tuple[Tuple[str, str], ...] = ()
    #: Per-op-type residual std of the pooled transfer fits (empty for
    #: the per-GPU backend).
    transfer_std_us: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        r2_values = sorted(self.heavy_r2.values())
        lines = [
            f"Ceer fit over {len(self.train_models)} CNNs x "
            f"{len(self.gpu_keys)} GPU models ({self.n_profile_records} op records)",
            f"  heavy op types: {len(self.heavy_op_types)}  "
            f"light: {len(self.light_op_types)}  cpu: {len(self.cpu_op_types)}",
            f"  light median: {self.light_median_us:.1f} us   "
            f"cpu median: {self.cpu_median_us:.1f} us",
        ]
        if self.backend != "per_gpu":
            lines.append(f"  op-model backend: {self.backend}")
        if r2_values:
            lines.append(
                f"  heavy-op regression R^2: min {r2_values[0]:.3f} / "
                f"median {r2_values[len(r2_values) // 2]:.3f} / max {r2_values[-1]:.3f}"
            )
        if self.proportional_fallbacks:
            cells = ", ".join(
                f"{gpu}/{op}" for gpu, op in self.proportional_fallbacks
            )
            lines.append(
                f"  proportional fallbacks ({len(self.proportional_fallbacks)} "
                f"cells with < p+2 samples): {cells}"
            )
        if self.comm_r2:
            comm = sorted(self.comm_r2.values())
            lines.append(
                f"  comm model R^2: min {comm[0]:.3f} / max {comm[-1]:.3f}"
            )
        return "\n".join(lines)


@dataclass
class FittedCeer:
    """A fitted estimator bundled with its training profiles and diagnostics."""

    estimator: CeerEstimator
    train_profiles: ProfileDataset
    diagnostics: CeerDiagnostics


def fit_ceer(
    train_models: Sequence[str] = TRAIN_MODELS,
    gpu_keys: Sequence[str] = GPU_KEYS,
    n_iterations: int = 1000,
    batch_size: int = 32,
    gpu_counts: Sequence[int] = (1, 2, 3, 4),
    threshold_us: float = LIGHT_THRESHOLD_US,
    reference_gpu: str = REFERENCE_GPU,
    train_profiles: Optional[ProfileDataset] = None,
    strict_unseen: bool = False,
    seed_context: str = "",
    placement: str = "single-host",
    jobs: Optional[int] = None,
    backend: str = "per_gpu",
) -> FittedCeer:
    """Fit Ceer from scratch (or from pre-collected ``train_profiles``).

    Args:
        train_models: CNNs to profile; the paper's 8-model training set by
            default. Test-set CNNs must not appear here.
        gpu_keys: GPU models to profile on; all four AWS GPUs by default.
        n_iterations: profiling iterations per (model, GPU); paper uses 1,000.
        batch_size: per-GPU profiling batch size (paper default 32).
        gpu_counts: k values to fit communication models for.
        threshold_us / reference_gpu: light-op classification rule.
        train_profiles: reuse an existing profile dataset (skips profiling).
        strict_unseen: raise on unseen GPU op types instead of using the
            light median (paper, Section IV-D / Limitations).
        seed_context: simulation seed context for independent re-runs.
        placement: GPU topology the communication model is trained for —
            ``"single-host"`` (the paper's setting) or ``"multi-host"``.
            An estimator is placement-specific (Section VI): retrain to
            predict for a different topology.
        jobs: fan the per-(GPU, op type) regressions, per-(model, GPU)
            communication measurements, and per-(GPU, k) communication
            fits out to this many worker processes (None = serial). The
            fitted estimator is identical either way.
        backend: how heavy-op models are fitted — ``"per_gpu"`` (the
            paper's one regression per (GPU, op type)) or ``"transfer"``
            (one pooled fit per op type on size x device features, able
            to price spec-only GPUs with uncertainty bands).

    Returns:
        A :class:`FittedCeer` with the estimator, profiles, and diagnostics.
    """
    if train_profiles is None:
        profiler = Profiler(n_iterations=n_iterations, batch_size=batch_size)
        train_profiles = profiler.profile_many(
            list(train_models), list(gpu_keys), seed_context
        )
    with span(
        "fit.ceer", models=len(train_models), gpus=len(gpu_keys),
        iterations=n_iterations, placement=placement, backend=backend,
    ):
        classification = classify_operations(
            train_profiles, threshold_us=threshold_us, reference_gpu=reference_gpu
        )
        with span("fit.compute_models"):
            compute_models = fit_compute_models(
                train_profiles, classification, strict_unseen=strict_unseen,
                jobs=jobs, backend=backend,
            )
        with span("fit.comm_model"):
            observations = collect_comm_observations(
                list(train_models), list(gpu_keys), gpu_counts,
                n_iterations=min(n_iterations, 300), batch_size=batch_size,
                seed_context=seed_context, placement=placement, jobs=jobs,
            )
            comm_model = fit_comm_model(observations, jobs=jobs)
    estimator = CeerEstimator(compute_models, comm_model)
    if compute_models.heavy_models:
        fitted_gpu_keys = tuple(sorted({g for g, _ in compute_models.heavy_models}))
    elif compute_models.transfer is not None:
        fitted_gpu_keys = tuple(compute_models.transfer.train_gpu_keys)
    else:
        fitted_gpu_keys = tuple(gpu_keys)
    diagnostics = CeerDiagnostics(
        train_models=tuple(train_models),
        gpu_keys=fitted_gpu_keys,
        n_profile_records=len(train_profiles),
        heavy_op_types=tuple(sorted(classification.heavy)),
        light_op_types=tuple(sorted(classification.light)),
        cpu_op_types=tuple(sorted(classification.cpu)),
        light_median_us=compute_models.light_median_us,
        cpu_median_us=compute_models.cpu_median_us,
        heavy_r2=dict(compute_models.train_r2),
        comm_r2=dict(comm_model.r2),
        backend=compute_models.backend,
        proportional_fallbacks=compute_models.proportional_fallbacks,
        transfer_std_us=dict(compute_models.heavy_std_us),
    )
    return FittedCeer(
        estimator=estimator,
        train_profiles=train_profiles,
        diagnostics=diagnostics,
    )
