"""Per-operation compute-time models: regressions for heavy ops, medians
for light and CPU ops (paper, Section IV-B).

``t_GPU,op(input)`` — the function at the heart of the paper's Eq. (1)/(2):

* heavy GPU op: a per-(GPU model, op type) regression on input-size
  features, linear or quadratic (selected automatically);
* light GPU op: the global sample median ``t~_l`` over all light-op
  instances in all training CNNs across all GPU types;
* CPU op: the global sample median ``t~_c``, likewise.

The median estimators are deliberately GPU-, CNN-, and op-oblivious, "to
avoid the unfair impact of possible outliers" — reproduced verbatim.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.errors import HardwareError, ModelingError, UnseenOperationError
from repro.graph.graph import OpGraph
from repro.graph.ops import Device, Operation
from repro.profiling.features import feature_schema, features_for
from repro.profiling.records import ProfileDataset
from repro.core.classify import CPU, HEAVY, LIGHT, OpClassification
from repro.core.regression import RegressionModel, fit_proportional, fit_regression

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.transfer import TransferModelSet


@dataclass(frozen=True)
class HeavyOpModel:
    """The fitted compute-time regression for one (GPU model, op type)."""

    gpu_key: str
    op_type: str
    regression: RegressionModel

    def predict_us(self, features: Sequence[float]) -> float:
        return self.regression.predict_one(features)


@dataclass
class ComputeTimeModels:
    """All fitted ``t_GPU,op`` functions plus the classification they use.

    Attributes:
        classification: the heavy/light/CPU partition.
        heavy_models: (gpu_key, op_type) -> :class:`HeavyOpModel` — the
            per-GPU backend's fits; empty under the transfer backend,
            where per-device models are synthesized on demand (see
            :meth:`heavy_model`).
        light_median_us: the paper's ``t~_l``.
        cpu_median_us: the paper's ``t~_c``.
        strict_unseen: when True, predicting an unclassified GPU op type
            raises :class:`UnseenOperationError` (the paper's stated
            limitation); when False, unseen types fall back to the light
            median — the paper's policy for unseen *light/CPU* ops.
        backend: which :class:`OpModelBackend` produced the heavy fits
            (``"per_gpu"`` or ``"transfer"``).
        transfer: the pooled cross-GPU fits (transfer backend only).
        heavy_std_us: per-op-type residual std of the pooled fits —
            the raw material of prediction uncertainty bands (empty for
            the per-GPU backend, which offers no uncertainty estimate).
        proportional_fallbacks: (gpu, op type) cells whose heavy fit fell
            back to the proportional model for want of samples; under the
            transfer backend the gpu component is ``"pooled"``.
    """

    classification: OpClassification
    heavy_models: Dict[Tuple[str, str], HeavyOpModel]
    light_median_us: float
    cpu_median_us: float
    strict_unseen: bool = False
    #: Per-(gpu, op type) training R² values (diagnostics; paper: 0.84-0.98).
    #: The transfer backend keys its pooled fits as ("pooled", op_type).
    train_r2: Dict[Tuple[str, str], float] = field(default_factory=dict)
    backend: str = "per_gpu"
    transfer: Optional["TransferModelSet"] = None
    heavy_std_us: Dict[str, float] = field(default_factory=dict)
    proportional_fallbacks: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        # Per-device models synthesized from the transfer fits, cached so
        # a sweep collapses each (gpu, op type) exactly once.
        self._synthesized: Dict[Tuple[str, str], HeavyOpModel] = {}

    # ------------------------------------------------------------------
    def heavy_model(self, gpu_key: str, op_type: str) -> Optional[HeavyOpModel]:
        """The heavy-op model for one (GPU, op type), whatever the backend.

        Per-GPU fits are returned directly; under the transfer backend a
        per-device regression is synthesized (and cached) by collapsing
        the pooled fit onto the GPU's spec features. Returns None when
        neither backend can price the cell — callers keep the existing
        unseen-op semantics.
        """
        model = self.heavy_models.get((gpu_key, op_type))
        if model is not None or self.transfer is None:
            return model
        cached = self._synthesized.get((gpu_key, op_type))
        if cached is not None:
            return cached
        try:
            regression = self.transfer.collapse(gpu_key, op_type)
        except HardwareError:
            return None
        if regression is None:
            return None
        synthesized = HeavyOpModel(gpu_key, op_type, regression)
        self._synthesized[(gpu_key, op_type)] = synthesized
        from repro.obs.metrics import default_registry

        default_registry().counter("transfer.synthesized").inc()
        return synthesized

    def supports_gpu(self, gpu_key: str) -> bool:
        """Can this model set price ``gpu_key`` at all?

        Per-GPU fits support exactly the profiled GPUs; the transfer
        backend supports any GPU with a resolvable spec (including
        runtime-admitted, never-profiled devices).
        """
        if any(g == gpu_key for g, _ in self.heavy_models):
            return True
        if self.transfer is None:
            return False
        from repro.hardware.gpus import gpu_spec

        try:
            gpu_spec(gpu_key)
        except HardwareError:
            return False
        return True

    def compiled_std_us(self, heavy_counts: Mapping[str, int]) -> float:
        """Graph-level 1-sigma compute uncertainty from per-op residuals.

        Independent per-op residuals sum in variance: ``sqrt(sum_t n_t *
        sigma_t^2)`` over heavy op types. Device- and batch-independent
        (op *counts* do not change with batch size), zero when the
        backend carries no uncertainty (per-GPU fits).
        """
        if not self.heavy_std_us:
            return 0.0
        variance = 0.0
        for op_type, count in heavy_counts.items():
            variance += count * self.heavy_std_us.get(op_type, 0.0) ** 2
        return math.sqrt(variance)

    # ------------------------------------------------------------------
    def predict_op_us(self, op: Operation, gpu_key: str) -> float:
        """Estimate the compute time of one operation on one GPU model."""
        if op.device is Device.CPU:
            return self.cpu_median_us
        if not self.classification.knows(op.op_type):
            if self.strict_unseen:
                raise UnseenOperationError(op.op_type, gpu_key)
            return self.light_median_us
        kind = self.classification.kind(op.op_type)
        if kind == CPU:
            return self.cpu_median_us
        if kind == LIGHT:
            return self.light_median_us
        model = self.heavy_model(gpu_key, op.op_type)
        if model is None:
            raise UnseenOperationError(op.op_type, gpu_key)
        return model.predict_us(features_for(op))

    def predict_graph_us(
        self,
        graph: "OpGraph",
        gpu_key: str,
        include_light: bool = True,
        include_cpu: bool = True,
        heavy_only: bool = False,
    ) -> float:
        """Sum of per-op estimates over a graph — the Σ term of Eq. (1)/(2).

        ``heavy_only`` (or unsetting the include flags) reproduces the
        paper's Section IV-B ablation: dropping light/CPU contributions
        raises error to 15-25%.

        This is the scalar *reference* implementation; the vectorized
        :class:`~repro.core.engine.PredictionEngine` must match it within
        float tolerance. Each op is classified exactly once, and the
        unseen-GPU-op policy is flag-independent: under ``strict_unseen``
        an unclassified GPU op type always raises
        :class:`UnseenOperationError` (even when ``heavy_only`` would
        discard its contribution), otherwise it costs the light median
        and is gated by ``include_light`` like any other light op.
        """
        if heavy_only:
            include_light = include_cpu = False
        total = 0.0
        for op in graph:
            if op.device is Device.CPU:
                if include_cpu:
                    total += self.cpu_median_us
                continue
            if not self.classification.knows(op.op_type):
                if self.strict_unseen:
                    raise UnseenOperationError(op.op_type, gpu_key)
                if include_light:
                    total += self.light_median_us
                continue
            kind = self.classification.kind(op.op_type)
            if kind == HEAVY:
                model = self.heavy_model(gpu_key, op.op_type)
                if model is None:
                    raise UnseenOperationError(op.op_type, gpu_key)
                total += model.predict_us(features_for(op))
            elif kind == CPU:
                if include_cpu:
                    total += self.cpu_median_us
            elif include_light:
                total += self.light_median_us
        return total

    def heavy_op_types(self) -> Tuple[str, ...]:
        return tuple(sorted(self.classification.heavy))


def fit_heavy_regression(
    rows: Sequence[Sequence[float]],
    targets: Sequence[float],
    schema: Tuple[str, ...],
    allow_quadratic: bool = True,
) -> RegressionModel:
    """Fit one heavy-op regression from raw feature rows / mean times.

    The single fitting routine behind both the serial loop below and the
    parallel :class:`~repro.parallel.plan.RegressionFitTask` — one code
    path, so a fan-out fit is bit-identical to a serial one.
    """
    x = np.asarray([list(row) for row in rows], dtype=float)
    y = np.asarray(targets, dtype=float)
    if len(rows) >= x.shape[1] + 2:
        return fit_regression(x, y, schema, allow_quadratic=allow_quadratic)
    # Rare op types (e.g. LRN: two instances per network) get a
    # proportional input-size model instead of a full OLS fit.
    return fit_proportional(x, y, schema)


@dataclass(frozen=True)
class BackendFit:
    """What an :class:`OpModelBackend` produces: the heavy-op side of a
    :class:`ComputeTimeModels` (light/CPU medians are backend-agnostic)."""

    heavy_models: Dict[Tuple[str, str], HeavyOpModel]
    train_r2: Dict[Tuple[str, str], float]
    transfer: Optional["TransferModelSet"] = None
    heavy_std_us: Dict[str, float] = field(default_factory=dict)
    proportional_fallbacks: Tuple[Tuple[str, str], ...] = ()


class OpModelBackend:
    """How heavy-op compute-time models are fitted.

    Two implementations: :class:`PerGpuBackend` (the paper's one fit per
    (GPU model, op type) — byte-identical artifacts to the pre-backend
    code) and :class:`TransferBackend` (one pooled fit per op type on
    size × device features, able to price GPUs from a spec sheet alone).
    """

    name: str = "abstract"

    def fit_heavy(
        self,
        train_profiles: ProfileDataset,
        classification: OpClassification,
        allow_quadratic: bool = True,
        jobs: Optional[int] = None,
    ) -> BackendFit:
        raise NotImplementedError


class PerGpuBackend(OpModelBackend):
    """The paper-faithful backend: one regression per (GPU, heavy op)."""

    name = "per_gpu"

    def fit_heavy(
        self,
        train_profiles: ProfileDataset,
        classification: OpClassification,
        allow_quadratic: bool = True,
        jobs: Optional[int] = None,
    ) -> BackendFit:
        heavy_models: Dict[Tuple[str, str], HeavyOpModel] = {}
        train_r2: Dict[Tuple[str, str], float] = {}
        gpu_records = train_profiles.gpu_records()
        cells: List[Tuple[str, str, Tuple[Tuple[float, ...], ...], Tuple[float, ...]]] = []
        for gpu_key in gpu_records.gpu_keys():
            per_gpu = gpu_records.for_gpu(gpu_key)
            for op_type in classification.heavy:
                subset = per_gpu.for_op_type(op_type)
                if not subset:
                    continue  # never seen on this GPU; predict_op raises later
                cells.append((
                    gpu_key, op_type,
                    tuple(tuple(r.features) for r in subset),
                    tuple(r.mean_us for r in subset),
                ))
        if jobs is not None and jobs != 1 and len(cells) > 1:
            from repro.parallel import RegressionFitTask, run_fanout

            tasks = [
                RegressionFitTask(
                    gpu_key=gpu_key, op_type=op_type, rows=rows, targets=targets,
                    schema=feature_schema(op_type), allow_quadratic=allow_quadratic,
                )
                for gpu_key, op_type, rows, targets in cells
            ]
            regressions = [outcome.value for outcome in run_fanout(tasks, jobs=jobs)]
        else:
            regressions = [
                fit_heavy_regression(
                    rows, targets, feature_schema(op_type), allow_quadratic
                )
                for _, op_type, rows, targets in cells
            ]
        for (gpu_key, op_type, _, _), regression in zip(cells, regressions):
            heavy_models[(gpu_key, op_type)] = HeavyOpModel(gpu_key, op_type, regression)
            train_r2[(gpu_key, op_type)] = regression.r2
        fallbacks = tuple(sorted(
            (gpu_key, op_type)
            for gpu_key, op_type, rows, _ in cells
            if len(rows) < len(feature_schema(op_type)) + 2
        ))
        return BackendFit(
            heavy_models=heavy_models,
            train_r2=train_r2,
            proportional_fallbacks=fallbacks,
        )


class TransferBackend(OpModelBackend):
    """The cross-hardware backend: pooled fits on size × device features."""

    name = "transfer"

    def fit_heavy(
        self,
        train_profiles: ProfileDataset,
        classification: OpClassification,
        allow_quadratic: bool = True,
        jobs: Optional[int] = None,
    ) -> BackendFit:
        from repro.core.transfer import fit_transfer_models

        transfer = fit_transfer_models(
            train_profiles, classification,
            allow_quadratic=allow_quadratic, jobs=jobs,
        )
        fallbacks = tuple(
            ("pooled", op_type)
            for op_type in transfer.op_types()
            if transfer.models[op_type].proportional
        )
        return BackendFit(
            heavy_models={},
            train_r2={
                ("pooled", op_type): transfer.models[op_type].r2
                for op_type in transfer.op_types()
            },
            transfer=transfer,
            heavy_std_us=transfer.residual_std_us(),
            proportional_fallbacks=fallbacks,
        )


#: The registered backends, keyed by their CLI/artifact name.
BACKENDS: Dict[str, OpModelBackend] = {
    "per_gpu": PerGpuBackend(),
    "transfer": TransferBackend(),
}


def resolve_backend(backend: Union[str, OpModelBackend]) -> OpModelBackend:
    """Map a backend name (or pass through an instance) to an implementation."""
    if isinstance(backend, OpModelBackend):
        return backend
    try:
        return BACKENDS[backend]
    except KeyError:
        raise ModelingError(
            f"unknown op-model backend {backend!r}; "
            f"expected one of {sorted(BACKENDS)}"
        ) from None


def fit_compute_models(
    train_profiles: ProfileDataset,
    classification: OpClassification,
    allow_quadratic: bool = True,
    strict_unseen: bool = False,
    light_estimator: str = "median",
    jobs: Optional[int] = None,
    backend: Union[str, OpModelBackend] = "per_gpu",
) -> ComputeTimeModels:
    """Fit every ``t_GPU,op`` model from training-set profiles.

    The heavy-op side is delegated to the chosen :class:`OpModelBackend`
    (``"per_gpu"``: one regression per (GPU model, heavy op type) on that
    op type's size features — the paper's scheme; ``"transfer"``: one
    pooled fit per op type that generalizes across devices). A single
    global estimate each for light and CPU ops, identical under every
    backend.

    ``light_estimator`` selects how the light/CPU estimates are pooled:
    ``"median"`` (the paper's choice, robust to outliers) or ``"mean"``
    (the alternative the paper rejects — exposed for the ablation that
    justifies the choice).

    ``jobs`` fans the per-cell regressions out to worker processes
    (None = serial); results are identical either way.
    """
    if not train_profiles:
        raise ModelingError("cannot fit compute models from an empty profile set")
    if light_estimator not in ("median", "mean"):
        raise ModelingError(
            f"light_estimator must be 'median' or 'mean', got {light_estimator!r}"
        )
    impl = resolve_backend(backend)
    fit = impl.fit_heavy(
        train_profiles, classification,
        allow_quadratic=allow_quadratic, jobs=jobs,
    )
    if fit.proportional_fallbacks:
        from repro.obs.metrics import default_registry

        default_registry().counter("fit.proportional_fallbacks").inc(
            len(fit.proportional_fallbacks)
        )

    gpu_records = train_profiles.gpu_records()
    light_times_us = [
        r.median_us for r in gpu_records if r.op_type in classification.light
    ]
    cpu_times_us = [r.median_us for r in train_profiles.cpu_records()]
    if not light_times_us:
        raise ModelingError("no light-op observations in training profiles")
    if not cpu_times_us:
        raise ModelingError("no CPU-op observations in training profiles")
    pool = np.median if light_estimator == "median" else np.mean

    return ComputeTimeModels(
        classification=classification,
        heavy_models=fit.heavy_models,
        light_median_us=float(pool(light_times_us)),
        cpu_median_us=float(pool(cpu_times_us)),
        strict_unseen=strict_unseen,
        train_r2=fit.train_r2,
        backend=impl.name,
        transfer=fit.transfer,
        heavy_std_us=dict(fit.heavy_std_us),
        proportional_fallbacks=fit.proportional_fallbacks,
    )
