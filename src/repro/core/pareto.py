"""Time-cost Pareto analysis across candidate instances.

Every scenario in the paper's Section V is a point query on the same
underlying object: the (training time, training cost) frontier across
instance configurations. This module materialises that frontier —
configurations not dominated by any other (faster *and* cheaper) — which
lets a practitioner see the whole tradeoff at once instead of re-running
the recommender per objective:

* the min-cost recommendation is the frontier's cheapest point;
* the min-time recommendation is its fastest point;
* every budget-constrained optimum is the frontier point just inside the
  budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.reporting import format_dollars, format_table, format_us
from repro.errors import RecommendationError
from repro.graph.graph import OpGraph
from repro.workloads.dataset import TrainingJob
from repro.core.estimator import TrainingPrediction
from repro.core.recommend import Recommender


# obs: warm
def pareto_order_and_keep(
    total_us: np.ndarray, cost_usd: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Vectorized dominance scan over parallel (time, cost) arrays.

    Returns ``(order, keep)``: ``order`` sorts the candidates by
    ``(total_us, cost_usd)`` (stable, so exact ties keep input order) and
    ``keep[i]`` marks whether ``order[i]`` is on the frontier —
    equivalently, whether its cost strictly undercuts the running cost
    minimum of everything at least as fast. ``order[keep]`` is therefore
    the frontier, fastest-first. This is the same first-occurrence tie
    rule as the historical sort-and-scan loop, at O(n log n) with no
    per-candidate Python — :meth:`repro.core.batch.SweepResult.frontier`
    runs it over thousands of catalog candidates.
    """
    if total_us.shape != cost_usd.shape or total_us.ndim != 1:
        raise RecommendationError(
            "pareto_order_and_keep needs two parallel 1-d arrays, got shapes "
            f"{total_us.shape} and {cost_usd.shape}"
        )
    if total_us.shape[0] == 0:
        raise RecommendationError("cannot take the frontier of zero candidates")
    # lexsort's *last* key is primary: sort by time, tie-break by cost.
    order = np.lexsort((cost_usd, total_us))
    sorted_cost_usd = cost_usd[order]
    keep = np.empty(order.shape[0], dtype=bool)
    keep[0] = True
    # Strictly cheaper than every candidate at least as fast == strictly
    # below the running minimum cost over the sorted prefix.
    keep[1:] = sorted_cost_usd[1:] < np.minimum.accumulate(sorted_cost_usd)[:-1]
    return order, keep


def pareto_frontier(
    predictions: Sequence[TrainingPrediction],
) -> List[TrainingPrediction]:
    """Return the non-dominated predictions, sorted fastest-first.

    A prediction is dominated when another is at least as fast *and* at
    least as cheap (and strictly better on one axis). Ties on both axes
    keep the first occurrence.
    """
    if not predictions:
        raise RecommendationError("pareto_frontier needs at least one prediction")
    total_us = np.array([p.total_us for p in predictions])
    cost_usd = np.array([p.cost_dollars for p in predictions])
    order, keep = pareto_order_and_keep(total_us, cost_usd)
    return [predictions[i] for i in order[keep]]


@dataclass
class ParetoAnalysis:
    """The full sweep plus its frontier for one (model, job) pair."""

    model: str
    predictions: List[TrainingPrediction]
    frontier: List[TrainingPrediction]

    @property
    def fastest(self) -> TrainingPrediction:
        return self.frontier[0]

    @property
    def cheapest(self) -> TrainingPrediction:
        return self.frontier[-1]

    def is_efficient(self, instance_name: str) -> bool:
        return any(p.instance_name == instance_name for p in self.frontier)

    def knee(self) -> TrainingPrediction:
        """The frontier point with the best marginal tradeoff.

        Chosen by minimal normalised distance to the (fastest, cheapest)
        utopia point — a standard knee heuristic.
        """
        t_min = self.fastest.total_us
        t_max = self.cheapest.total_us
        c_min = self.cheapest.cost_dollars
        c_max = self.fastest.cost_dollars
        t_span = (t_max - t_min) or 1.0
        c_span = (c_max - c_min) or 1.0

        def distance(p: TrainingPrediction) -> float:
            time_axis_norm = (p.total_us - t_min) / t_span
            cost_axis_norm = (p.cost_dollars - c_min) / c_span
            return time_axis_norm**2 + cost_axis_norm**2

        return min(self.frontier, key=distance)

    def best_under_budget(self, budget_dollars: float) -> TrainingPrediction:  # staticcheck: ignore[unit-suffix] (returns a prediction, not a quantity)
        """Fastest frontier point within a total budget (Fig. 10's query)."""
        feasible = [p for p in self.frontier if p.cost_dollars <= budget_dollars]
        if not feasible:
            raise RecommendationError(
                f"no configuration for {self.model!r} fits "
                f"{format_dollars(budget_dollars)}"
            )
        return feasible[0]

    def render(self) -> str:
        rows = []
        for p in sorted(self.predictions, key=lambda p: p.total_us):
            tag = ""
            if p.instance_name == self.knee().instance_name:
                tag = "knee"
            elif self.is_efficient(p.instance_name):
                tag = "efficient"
            rows.append(
                [
                    p.instance_name, f"{p.num_gpus}x{p.gpu_key}",
                    format_us(p.total_us), format_dollars(p.cost_dollars), tag,
                ]
            )
        return format_table(
            ["instance", "config", "time", "cost", ""],
            rows,
            title=f"Time-cost tradeoff for {self.model!r} "
                  f"({len(self.frontier)} efficient of {len(self.predictions)})",
        )


def analyze_tradeoff(
    recommender: Recommender,
    model: Union[str, OpGraph],
    job: TrainingJob,
) -> ParetoAnalysis:
    """Sweep all candidate instances and compute the Pareto frontier."""
    predictions = recommender.sweep(model, job)
    return ParetoAnalysis(
        model=getattr(model, "name", str(model)),
        predictions=predictions,
        frontier=pareto_frontier(predictions),
    )
