"""Time-cost Pareto analysis across candidate instances.

Every scenario in the paper's Section V is a point query on the same
underlying object: the (training time, training cost) frontier across
instance configurations. This module materialises that frontier —
configurations not dominated by any other (faster *and* cheaper) — which
lets a practitioner see the whole tradeoff at once instead of re-running
the recommender per objective:

* the min-cost recommendation is the frontier's cheapest point;
* the min-time recommendation is its fastest point;
* every budget-constrained optimum is the frontier point just inside the
  budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Union

from repro.analysis.reporting import format_dollars, format_table, format_us
from repro.errors import RecommendationError
from repro.graph.graph import OpGraph
from repro.workloads.dataset import TrainingJob
from repro.core.estimator import TrainingPrediction
from repro.core.recommend import Recommender


def pareto_frontier(
    predictions: Sequence[TrainingPrediction],
) -> List[TrainingPrediction]:
    """Return the non-dominated predictions, sorted fastest-first.

    A prediction is dominated when another is at least as fast *and* at
    least as cheap (and strictly better on one axis). Ties on both axes
    keep the first occurrence.
    """
    if not predictions:
        raise RecommendationError("pareto_frontier needs at least one prediction")
    by_total_us = sorted(predictions, key=lambda p: (p.total_us, p.cost_dollars))
    frontier: List[TrainingPrediction] = []
    best_usd = float("inf")
    for prediction in by_total_us:
        if prediction.cost_dollars < best_usd:
            frontier.append(prediction)
            best_usd = prediction.cost_dollars
    return frontier


@dataclass
class ParetoAnalysis:
    """The full sweep plus its frontier for one (model, job) pair."""

    model: str
    predictions: List[TrainingPrediction]
    frontier: List[TrainingPrediction]

    @property
    def fastest(self) -> TrainingPrediction:
        return self.frontier[0]

    @property
    def cheapest(self) -> TrainingPrediction:
        return self.frontier[-1]

    def is_efficient(self, instance_name: str) -> bool:
        return any(p.instance_name == instance_name for p in self.frontier)

    def knee(self) -> TrainingPrediction:
        """The frontier point with the best marginal tradeoff.

        Chosen by minimal normalised distance to the (fastest, cheapest)
        utopia point — a standard knee heuristic.
        """
        t_min = self.fastest.total_us
        t_max = self.cheapest.total_us
        c_min = self.cheapest.cost_dollars
        c_max = self.fastest.cost_dollars
        t_span = (t_max - t_min) or 1.0
        c_span = (c_max - c_min) or 1.0

        def distance(p: TrainingPrediction) -> float:
            time_axis_norm = (p.total_us - t_min) / t_span
            cost_axis_norm = (p.cost_dollars - c_min) / c_span
            return time_axis_norm**2 + cost_axis_norm**2

        return min(self.frontier, key=distance)

    def best_under_budget(self, budget_dollars: float) -> TrainingPrediction:  # staticcheck: ignore[unit-suffix] (returns a prediction, not a quantity)
        """Fastest frontier point within a total budget (Fig. 10's query)."""
        feasible = [p for p in self.frontier if p.cost_dollars <= budget_dollars]
        if not feasible:
            raise RecommendationError(
                f"no configuration for {self.model!r} fits "
                f"{format_dollars(budget_dollars)}"
            )
        return feasible[0]

    def render(self) -> str:
        rows = []
        for p in sorted(self.predictions, key=lambda p: p.total_us):
            tag = ""
            if p.instance_name == self.knee().instance_name:
                tag = "knee"
            elif self.is_efficient(p.instance_name):
                tag = "efficient"
            rows.append(
                [
                    p.instance_name, f"{p.num_gpus}x{p.gpu_key}",
                    format_us(p.total_us), format_dollars(p.cost_dollars), tag,
                ]
            )
        return format_table(
            ["instance", "config", "time", "cost", ""],
            rows,
            title=f"Time-cost tradeoff for {self.model!r} "
                  f"({len(self.frontier)} efficient of {len(self.predictions)})",
        )


def analyze_tradeoff(
    recommender: Recommender,
    model: Union[str, OpGraph],
    job: TrainingJob,
) -> ParetoAnalysis:
    """Sweep all candidate instances and compute the Pareto frontier."""
    predictions = recommender.sweep(model, job)
    return ParetoAnalysis(
        model=getattr(model, "name", str(model)),
        predictions=predictions,
        frontier=pareto_frontier(predictions),
    )
