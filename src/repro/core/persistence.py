"""Persistence for fitted Ceer estimators.

The paper's offline phase (profiling 8 CNNs on 4 GPU models over 1,000
iterations) is by far the expensive part of Ceer; the fitted models are a
handful of regression coefficients and two medians. This module
serialises a fitted :class:`CeerEstimator` to a compact JSON document so
the offline phase runs once (e.g. in CI, or by whoever pays for the cloud
instances) and the online recommendation phase loads it instantly.

The format captures everything prediction needs: the heavy/light/CPU
classification, each per-(GPU, op type) regression, the light/CPU medians,
and the per-(GPU, k) communication regressions. Diagnostics (R² tables)
are preserved where available.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

from repro.errors import ModelingError
from repro.core.classify import OpClassification
from repro.core.comm_model import CommunicationModel
from repro.core.estimator import CeerEstimator
from repro.core.op_models import ComputeTimeModels, HeavyOpModel
from repro.core.regression import RegressionModel

FORMAT_NAME = "repro-ceer-estimator"
FORMAT_VERSION = 1


def _regression_to_json(model: RegressionModel) -> Dict:
    return {
        "degree": model.degree,
        "intercept": model.intercept,
        "coef": list(model.coef),
        "r2": model.r2,
        "adjusted_r2": model.adjusted_r2,
        "n_train": model.n_train,
        "feature_names": list(model.feature_names),
        "clip_max": model.clip_max,
    }


def _regression_from_json(data: Dict) -> RegressionModel:
    return RegressionModel(
        degree=data["degree"],
        intercept=data["intercept"],
        coef=tuple(data["coef"]),
        r2=data["r2"],
        adjusted_r2=data["adjusted_r2"],
        n_train=data["n_train"],
        feature_names=tuple(data.get("feature_names", ())),
        clip_max=data.get("clip_max"),
    )


def estimator_to_dict(estimator: CeerEstimator) -> Dict:
    """Serialise a fitted estimator to a JSON-ready dictionary."""
    models = estimator.compute_models
    classification = models.classification
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "classification": {
            "heavy": sorted(classification.heavy),
            "light": sorted(classification.light),
            "cpu": sorted(classification.cpu),
            "threshold_us": classification.threshold_us,
            "reference_gpu": classification.reference_gpu,
        },
        "light_median_us": models.light_median_us,
        "cpu_median_us": models.cpu_median_us,
        "strict_unseen": models.strict_unseen,
        "heavy_models": [
            {
                "gpu_key": gpu_key,
                "op_type": op_type,
                "regression": _regression_to_json(model.regression),
            }
            for (gpu_key, op_type), model in sorted(models.heavy_models.items())
        ],
        "comm_models": [
            {
                "gpu_key": gpu_key,
                "num_gpus": num_gpus,
                "regression": _regression_to_json(regression),
                "r2": estimator.comm_model.r2.get((gpu_key, num_gpus)),
            }
            for (gpu_key, num_gpus), regression in sorted(
                estimator.comm_model.models.items()
            )
        ],
        "include_communication": estimator.include_communication,
        "heavy_only": estimator.heavy_only,
    }


def estimator_from_dict(data: Dict) -> CeerEstimator:
    """Reconstruct a usable estimator from its dictionary representation."""
    if data.get("format") != FORMAT_NAME:
        raise ModelingError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ModelingError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}"
        )
    cls_data = data["classification"]
    classification = OpClassification(
        heavy=frozenset(cls_data["heavy"]),
        light=frozenset(cls_data["light"]),
        cpu=frozenset(cls_data["cpu"]),
        threshold_us=cls_data["threshold_us"],
        reference_gpu=cls_data["reference_gpu"],
    )
    heavy_models = {}
    train_r2 = {}
    for item in data["heavy_models"]:
        key = (item["gpu_key"], item["op_type"])
        regression = _regression_from_json(item["regression"])
        heavy_models[key] = HeavyOpModel(item["gpu_key"], item["op_type"], regression)
        train_r2[key] = regression.r2
    compute_models = ComputeTimeModels(
        classification=classification,
        heavy_models=heavy_models,
        light_median_us=data["light_median_us"],
        cpu_median_us=data["cpu_median_us"],
        strict_unseen=data.get("strict_unseen", False),
        train_r2=train_r2,
    )
    comm_models = {}
    comm_r2 = {}
    for item in data["comm_models"]:
        key = (item["gpu_key"], item["num_gpus"])
        comm_models[key] = _regression_from_json(item["regression"])
        if item.get("r2") is not None:
            comm_r2[key] = item["r2"]
    comm_model = CommunicationModel(models=comm_models, r2=comm_r2)
    return CeerEstimator(
        compute_models,
        comm_model,
        include_communication=data.get("include_communication", True),
        heavy_only=data.get("heavy_only", False),
    )


def save_estimator(estimator: CeerEstimator, path: Union[str, Path]) -> None:
    """Write a fitted estimator to ``path`` as JSON, atomically.

    The document is staged in a same-directory temp file and moved into
    place with ``os.replace``, so a concurrent :func:`load_estimator` (or a
    crash mid-write) sees either the old complete file or the new one,
    never a torn document.
    """
    from repro.artifacts.store import atomic_write_bytes

    target = Path(path)
    data = json.dumps(estimator_to_dict(estimator)).encode("utf-8")
    atomic_write_bytes(target, data)


def load_estimator(path: Union[str, Path]) -> CeerEstimator:
    """Load a fitted estimator previously written by :func:`save_estimator`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ModelingError(f"{path} is not valid JSON: {exc}") from exc
    return estimator_from_dict(data)
