"""Persistence for fitted Ceer estimators.

The paper's offline phase (profiling 8 CNNs on 4 GPU models over 1,000
iterations) is by far the expensive part of Ceer; the fitted models are a
handful of regression coefficients and two medians. This module
serialises a fitted :class:`CeerEstimator` to a compact JSON document so
the offline phase runs once (e.g. in CI, or by whoever pays for the cloud
instances) and the online recommendation phase loads it instantly.

The format captures everything prediction needs: the heavy/light/CPU
classification, each per-(GPU, op type) regression, the light/CPU medians,
and the per-(GPU, k) communication regressions. Diagnostics (R² tables)
are preserved where available.

Two schema versions coexist:

* version 1 — the per-GPU backend. Byte-for-byte stable since PR 1: a
  per-GPU fit emits *exactly* the same document it always has, so
  content-addressed workspace keys and golden snapshots never roll.
* version 2 — the transfer backend. Adds ``backend`` and ``transfer``
  keys (the pooled per-op-type fits plus their residual stds);
  ``heavy_models`` is empty because per-device models are synthesized
  from the transfer fits at predict time.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Union

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.core.transfer import TransferOpModel

from repro.errors import ModelingError
from repro.core.classify import OpClassification
from repro.core.comm_model import CommunicationModel
from repro.core.estimator import CeerEstimator
from repro.core.op_models import ComputeTimeModels, HeavyOpModel
from repro.core.regression import RegressionModel

FORMAT_NAME = "repro-ceer-estimator"
FORMAT_VERSION = 1
#: Version written for transfer-backend estimators (version 1 documents
#: stay byte-identical to the pre-backend format).
TRANSFER_FORMAT_VERSION = 2
SUPPORTED_VERSIONS = (FORMAT_VERSION, TRANSFER_FORMAT_VERSION)


def _regression_to_json(model: RegressionModel) -> Dict:
    return {
        "degree": model.degree,
        "intercept": model.intercept,
        "coef": list(model.coef),
        "r2": model.r2,
        "adjusted_r2": model.adjusted_r2,
        "n_train": model.n_train,
        "feature_names": list(model.feature_names),
        "clip_max": model.clip_max,
    }


def _regression_from_json(data: Dict) -> RegressionModel:
    return RegressionModel(
        degree=data["degree"],
        intercept=data["intercept"],
        coef=tuple(data["coef"]),
        r2=data["r2"],
        adjusted_r2=data["adjusted_r2"],
        n_train=data["n_train"],
        feature_names=tuple(data.get("feature_names", ())),
        clip_max=data.get("clip_max"),
    )


def _transfer_op_to_json(model: "TransferOpModel") -> Dict:
    return {
        "op_type": model.op_type,
        "degree": model.degree,
        "feature_names": list(model.feature_names),
        "intercept": model.intercept,
        "size_coef": list(model.size_coef),
        "device_coef": list(model.device_coef),
        "interaction_coef": [list(c) for c in model.interaction_coef],
        "residual_std_us": model.residual_std_us,
        "r2": model.r2,
        "adjusted_r2": model.adjusted_r2,
        "n_train": model.n_train,
        "clip_max": model.clip_max,
        "proportional": model.proportional,
    }


def _transfer_op_from_json(data: Dict) -> "TransferOpModel":
    from repro.core.transfer import TransferOpModel

    interaction = data["interaction_coef"]
    return TransferOpModel(
        op_type=data["op_type"],
        degree=data["degree"],
        feature_names=tuple(data["feature_names"]),
        intercept=data["intercept"],
        size_coef=tuple(data["size_coef"]),
        device_coef=(data["device_coef"][0], data["device_coef"][1]),
        interaction_coef=(tuple(interaction[0]), tuple(interaction[1])),
        residual_std_us=data["residual_std_us"],
        r2=data["r2"],
        adjusted_r2=data["adjusted_r2"],
        n_train=data["n_train"],
        clip_max=data.get("clip_max"),
        proportional=data.get("proportional", False),
    )


def estimator_to_dict(estimator: CeerEstimator) -> Dict:
    """Serialise a fitted estimator to a JSON-ready dictionary.

    Per-GPU estimators produce the version-1 document unchanged (the new
    keys would roll every content-addressed workspace fingerprint);
    transfer estimators produce version 2 with ``backend``/``transfer``
    appended after the stable key prefix.
    """
    models = estimator.compute_models
    transfer = models.transfer
    version = FORMAT_VERSION if transfer is None else TRANSFER_FORMAT_VERSION
    classification = models.classification
    doc = {
        "format": FORMAT_NAME,
        "version": version,
        "classification": {
            "heavy": sorted(classification.heavy),
            "light": sorted(classification.light),
            "cpu": sorted(classification.cpu),
            "threshold_us": classification.threshold_us,
            "reference_gpu": classification.reference_gpu,
        },
        "light_median_us": models.light_median_us,
        "cpu_median_us": models.cpu_median_us,
        "strict_unseen": models.strict_unseen,
        "heavy_models": [
            {
                "gpu_key": gpu_key,
                "op_type": op_type,
                "regression": _regression_to_json(model.regression),
            }
            for (gpu_key, op_type), model in sorted(models.heavy_models.items())
        ],
        "comm_models": [
            {
                "gpu_key": gpu_key,
                "num_gpus": num_gpus,
                "regression": _regression_to_json(regression),
                "r2": estimator.comm_model.r2.get((gpu_key, num_gpus)),
            }
            for (gpu_key, num_gpus), regression in sorted(
                estimator.comm_model.models.items()
            )
        ],
        "include_communication": estimator.include_communication,
        "heavy_only": estimator.heavy_only,
    }
    if transfer is not None:
        doc["backend"] = models.backend
        doc["transfer"] = {
            "reference_gpu": transfer.reference_gpu,
            "train_gpu_keys": list(transfer.train_gpu_keys),
            "models": [
                _transfer_op_to_json(transfer.models[op_type])
                for op_type in transfer.op_types()
            ],
        }
    return doc


def estimator_from_dict(data: Dict) -> CeerEstimator:
    """Reconstruct a usable estimator from its dictionary representation."""
    if data.get("format") != FORMAT_NAME:
        raise ModelingError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    if data.get("version") not in SUPPORTED_VERSIONS:
        raise ModelingError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}"
        )
    cls_data = data["classification"]
    classification = OpClassification(
        heavy=frozenset(cls_data["heavy"]),
        light=frozenset(cls_data["light"]),
        cpu=frozenset(cls_data["cpu"]),
        threshold_us=cls_data["threshold_us"],
        reference_gpu=cls_data["reference_gpu"],
    )
    heavy_models = {}
    train_r2 = {}
    for item in data["heavy_models"]:
        key = (item["gpu_key"], item["op_type"])
        regression = _regression_from_json(item["regression"])
        heavy_models[key] = HeavyOpModel(item["gpu_key"], item["op_type"], regression)
        train_r2[key] = regression.r2
    transfer = None
    heavy_std_us: Dict[str, float] = {}
    if "transfer" in data:
        from repro.core.transfer import TransferModelSet

        transfer_data = data["transfer"]
        transfer_models = {
            item["op_type"]: _transfer_op_from_json(item)
            for item in transfer_data["models"]
        }
        transfer = TransferModelSet(
            models=transfer_models,
            train_gpu_keys=tuple(transfer_data["train_gpu_keys"]),
            reference_gpu=transfer_data["reference_gpu"],
        )
        heavy_std_us = transfer.residual_std_us()
        for op_type, model in sorted(transfer_models.items()):
            train_r2[("pooled", op_type)] = model.r2
    compute_models = ComputeTimeModels(
        classification=classification,
        heavy_models=heavy_models,
        light_median_us=data["light_median_us"],
        cpu_median_us=data["cpu_median_us"],
        strict_unseen=data.get("strict_unseen", False),
        train_r2=train_r2,
        backend=data.get("backend", "per_gpu"),
        transfer=transfer,
        heavy_std_us=heavy_std_us,
    )
    comm_models = {}
    comm_r2 = {}
    for item in data["comm_models"]:
        key = (item["gpu_key"], item["num_gpus"])
        comm_models[key] = _regression_from_json(item["regression"])
        if item.get("r2") is not None:
            comm_r2[key] = item["r2"]
    comm_model = CommunicationModel(models=comm_models, r2=comm_r2)
    return CeerEstimator(
        compute_models,
        comm_model,
        include_communication=data.get("include_communication", True),
        heavy_only=data.get("heavy_only", False),
    )


def save_estimator(estimator: CeerEstimator, path: Union[str, Path]) -> None:
    """Write a fitted estimator to ``path`` as JSON, atomically.

    The document is staged in a same-directory temp file and moved into
    place with ``os.replace``, so a concurrent :func:`load_estimator` (or a
    crash mid-write) sees either the old complete file or the new one,
    never a torn document.
    """
    from repro.artifacts.store import atomic_write_bytes

    target = Path(path)
    data = json.dumps(estimator_to_dict(estimator)).encode("utf-8")
    atomic_write_bytes(target, data)


def load_estimator(path: Union[str, Path]) -> CeerEstimator:
    """Load a fitted estimator previously written by :func:`save_estimator`."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise ModelingError(f"{path} is not valid JSON: {exc}") from exc
    return estimator_from_dict(data)
