"""Preemption model: what one spot reclaim costs, in iterations.

Spot instances are reclaimed mid-run; a preempted training job loses the
iterations since its last checkpoint and pays a restore cost (reload
weights, rebuild the input pipeline, re-warm the device) before it makes
progress again. Both are naturally denominated in *iterations* — the
per-iteration wall-clock already varies per (GPU, k, batch), so keeping
the overhead in iteration units lets one model span every candidate:
the expected per-preemption cost in microseconds is just
``overhead_iterations * per_iteration_us``.

:class:`~repro.core.estimator.TrainingPrediction` combines this with a
per-family hazard rate (preemptions/hr, derived from the spot-price
trace in :mod:`repro.cloud.spotsim`) into ``expected_makespan_hours``
and ``expected_cost_usd``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ModelingError


@dataclass(frozen=True)
class PreemptionModel:
    """Checkpoint/restore economics of one preemption.

    Attributes:
        checkpoint_interval_iterations: iterations between checkpoints;
            a uniformly timed preemption loses half an interval of
            progress in expectation.
        restore_overhead_iterations: fixed restart cost (reload, warmup)
            expressed in equivalent training iterations.
    """

    checkpoint_interval_iterations: float = 100.0
    restore_overhead_iterations: float = 50.0  # staticcheck: ignore[unit-suffix] (an iteration count, not a duration)

    def __post_init__(self) -> None:
        if self.checkpoint_interval_iterations < 0:
            raise ModelingError(
                f"checkpoint_interval_iterations must be >= 0, got "
                f"{self.checkpoint_interval_iterations}"
            )
        if self.restore_overhead_iterations < 0:
            raise ModelingError(
                f"restore_overhead_iterations must be >= 0, got "
                f"{self.restore_overhead_iterations}"
            )

    @property
    def overhead_iterations(self) -> float:  # staticcheck: ignore[unit-suffix] (an iteration count, not a duration)
        """Expected iterations replayed per preemption."""
        return (
            self.checkpoint_interval_iterations / 2.0
            + self.restore_overhead_iterations
        )


#: The default checkpoint policy used by spot recommendations.
DEFAULT_PREEMPTION = PreemptionModel()
