"""Instance recommendation: pick the optimal GPU deployment (paper, IV-D, V).

Given a CNN, a workload, and a user objective over (training time T, cost
C), Ceer estimates T and C for every candidate (GPU model, GPU count)
configuration and recommends the feasible one minimising the objective.
The objectives implemented match the paper's evaluation scenarios:

* :class:`MinimizeCost` — the budget-minimisation scenarios (Figs. 11, 12);
* :class:`MinimizeTime` — plain fastest-instance selection;
* :class:`HourlyBudget` — minimise per-iteration time subject to an hourly
  rental budget (Fig. 9, $3/hr);
* :class:`TotalBudget` — minimise training time subject to a total cost
  budget (Fig. 10, $10).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple, Union

from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.errors import CatalogError, RecommendationError
from repro.graph.graph import OpGraph
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import span, tracing_enabled
from repro.workloads.dataset import TrainingJob
from repro.core.estimator import CeerEstimator, TrainingPrediction

#: Candidate GPU counts per GPU model the recommender sweeps by default.
DEFAULT_GPU_COUNTS: Tuple[int, ...] = (1, 2, 3, 4)


class Objective:
    """A user objective Obj(T, C) plus a feasibility rule."""

    name: str = "abstract"

    def feasible(self, prediction: TrainingPrediction) -> bool:
        return True

    def score(self, prediction: TrainingPrediction) -> float:
        """Lower is better among feasible predictions."""
        raise NotImplementedError


@dataclass(frozen=True)
class MinimizeCost(Objective):
    """Minimise total training cost (Figs. 11-12)."""

    name: str = "min-cost"

    def score(self, prediction: TrainingPrediction) -> float:
        return prediction.cost_dollars


@dataclass(frozen=True)
class MinimizeTime(Objective):
    """Minimise total training time, no budget."""

    name: str = "min-time"

    def score(self, prediction: TrainingPrediction) -> float:
        return prediction.total_us


@dataclass(frozen=True)
class HourlyBudget(Objective):
    """Minimise per-iteration time subject to an hourly rental budget.

    ``slack_usd_per_hr`` reproduces the paper's Fig. 9 accommodation: the $3/hr
    budget is allowed to be "slightly exceeded for P3, by 6 cents", and by
    42 cents for the 3-GPU G3 instance ("alternatively, we can consider the
    budget to be $3.42/hr").
    """

    budget_usd_per_hr: float = 3.0
    slack_usd_per_hr: float = 0.0
    name: str = "hourly-budget"

    def feasible(self, prediction: TrainingPrediction) -> bool:
        return prediction.usd_per_hr <= self.budget_usd_per_hr + self.slack_usd_per_hr

    def score(self, prediction: TrainingPrediction) -> float:
        return prediction.per_iteration_us


@dataclass(frozen=True)
class TotalBudget(Objective):
    """Minimise training time subject to a total-cost budget (Fig. 10)."""

    budget_dollars: float = 10.0
    name: str = "total-budget"

    def feasible(self, prediction: TrainingPrediction) -> bool:
        return prediction.cost_dollars <= self.budget_dollars

    def score(self, prediction: TrainingPrediction) -> float:
        return prediction.total_us


@dataclass(frozen=True)
class SpotRiskObjective(Objective):
    """Expected cost plus a risk-aversion penalty on expected makespan.

    The spot scenario's objective: candidates are scored on their
    preemption-aware expectations (``expected_cost_usd``,
    ``expected_makespan_hours``) rather than the deterministic T and C.
    ``risk_aversion_usd_per_hr`` (the CLI's λ) prices each expected
    wall-clock hour — λ = 0 is pure expected-cost minimisation, large λ
    prefers expensive-but-stable instances over cheap-but-preemptible
    ones.
    """

    risk_aversion_usd_per_hr: float = 0.0
    name: str = "spot-risk"

    def score(self, prediction: TrainingPrediction) -> float:
        return (
            prediction.expected_cost_usd
            + self.risk_aversion_usd_per_hr * prediction.expected_makespan_hours
        )


@dataclass(frozen=True)
class WeightedTimeCost(Objective):
    """A generic Obj(T, C) = w_t * T_hours + w_c * C_dollars tradeoff."""

    time_weight: float = 1.0
    cost_weight: float = 1.0
    name: str = "weighted"

    def score(self, prediction: TrainingPrediction) -> float:
        # The weights carry the bridging units (score/hr and score/USD), so
        # the summed terms are dimensionless scores by construction.
        time_term = self.time_weight * prediction.total_hours
        cost_term = self.cost_weight * prediction.cost_dollars
        return time_term + cost_term


@dataclass
class Recommendation:
    """The recommender's output: the winner plus the full ranked sweep."""

    objective: str
    best: TrainingPrediction
    ranked: List[TrainingPrediction] = field(default_factory=list)
    infeasible: List[TrainingPrediction] = field(default_factory=list)

    def summary(self) -> str:
        b = self.best
        lines = [
            f"Recommended instance for {b.model!r} under objective "
            f"{self.objective!r}: {b.instance_name} "
            f"({b.num_gpus}x {b.gpu_key}, ${b.usd_per_hr:.3f}/hr)",
            f"  predicted training time: {b.total_hours:.2f} h, "
            f"cost: ${b.cost_dollars:.2f}",
        ]
        for p in self.ranked[1:4]:
            lines.append(
                f"  runner-up: {p.instance_name:<22s} "
                f"time {p.total_hours:8.2f} h  cost ${p.cost_dollars:8.2f}"
            )
        if self.infeasible:
            lines.append(f"  ({len(self.infeasible)} configurations infeasible)")
        return "\n".join(lines)


class Recommender:
    """Sweeps candidate instances and applies an objective (Section IV-D)."""

    def __init__(
        self,
        estimator: CeerEstimator,
        pricing: PricingScheme = ON_DEMAND,
        gpu_keys: Sequence[str] = GPU_KEYS,
        gpu_counts: Sequence[int] = DEFAULT_GPU_COUNTS,
        check_memory: bool = False,
    ) -> None:
        """``check_memory=True`` additionally excludes GPU models whose
        device memory cannot hold the model's training working set (see
        :mod:`repro.hardware.memory`); the paper's scenarios keep it off."""
        self.estimator = estimator
        self.pricing = pricing
        self.gpu_keys = tuple(gpu_keys)
        self.gpu_counts = tuple(gpu_counts)
        self.check_memory = check_memory

    def _memory_feasible_gpus(self, graph: OpGraph) -> Tuple[str, ...]:
        if not self.check_memory:
            return self.gpu_keys
        from repro.hardware.memory import estimate_memory

        estimate = estimate_memory(graph)
        return tuple(g for g in self.gpu_keys if estimate.fits(g))

    def sweep(
        self, model: Union[str, OpGraph], job: TrainingJob
    ) -> List[TrainingPrediction]:
        """Predict T and C for every candidate (GPU model, k) configuration.

        The sweep runs through the batched engine
        (:func:`~repro.core.batch.evaluate_sweep`): the graph is resolved
        and compiled *once*, one stacked matmul per heavy op type prices
        every GPU model simultaneously, and candidates are materialised
        from the result tensors — no per-candidate prediction calls.
        :meth:`sweep_reference` keeps the historical per-candidate loop
        as the equivalence oracle.

        With ``check_memory`` enabled, GPU models that cannot hold the
        model's working set are dropped from the sweep entirely (under
        data parallelism every replica needs the full working set, so GPU
        count does not help).
        """
        from repro.core.batch import SweepPlan, evaluate_sweep

        graph = self.estimator.resolve_graph(model, job.batch_size)
        gpu_keys = self._memory_feasible_gpus(graph)
        if not gpu_keys:
            raise RecommendationError(
                f"model {graph.name!r} does not fit in any "
                f"candidate GPU's memory at batch {job.batch_size}"
            )
        # Only inspect the engine when the estimator actually routes
        # through it: touching the lazy `engine` property on a scalar
        # estimator would build a PredictionEngine just for accounting.
        engine = (
            self.estimator.engine
            if tracing_enabled() and self.estimator.use_engine
            else None
        )
        stats_before = dict(engine.stats) if engine is not None else {}
        with span(
            "recommend.sweep", model=graph.name,
            candidates=len(gpu_keys) * len(self.gpu_counts),
        ) as sweep_span:
            plan = SweepPlan(
                gpu_keys=gpu_keys,
                gpu_counts=self.gpu_counts,
                batch_sizes=(job.batch_size,),
                pricings=(self.pricing,),
            )
            predictions = evaluate_sweep(
                self.estimator, graph, job, plan
            ).predictions()
            if engine is not None:
                # Per-sweep engine accounting: how much of the candidate
                # matrix was served from caches vs compiled/evaluated.
                for stat_name, count in engine.stats.items():
                    delta = count - stats_before.get(stat_name, 0)
                    if delta:
                        sweep_span.set_attribute(stat_name, delta)
        return predictions

    def sweep_reference(
        self, model: Union[str, OpGraph], job: TrainingJob
    ) -> List[TrainingPrediction]:
        """Per-candidate reference sweep: one ``predict_training`` per cell.

        The pre-batching implementation, kept as the equivalence oracle
        (tests assert rel diff < 1e-9 against :meth:`sweep`) and as the
        slow side of ``tools/bench_sweep_catalog.py``. Same candidate
        order, same memory filtering; (GPU, count) pairs the pricing
        scheme cannot serve are skipped exactly as the batched path masks
        them.
        """
        graph = self.estimator.resolve_graph(model, job.batch_size)
        gpu_keys = self._memory_feasible_gpus(graph)
        if not gpu_keys:
            raise RecommendationError(
                f"model {graph.name!r} does not fit in any "
                f"candidate GPU's memory at batch {job.batch_size}"
            )
        predictions: List[TrainingPrediction] = []
        for gpu_key in gpu_keys:
            for k in self.gpu_counts:
                try:
                    predictions.append(
                        self.estimator.predict_training(
                            graph, gpu_key, k, job, pricing=self.pricing
                        )
                    )
                except CatalogError:
                    continue
        return predictions

    def recommend(
        self,
        model: Union[str, OpGraph],
        job: TrainingJob,
        objective: Optional[Objective] = None,
    ) -> Recommendation:
        """Recommend the objective-optimal feasible instance for a job."""
        objective = objective or MinimizeCost()
        predictions = self.sweep(model, job)
        feasible = [p for p in predictions if objective.feasible(p)]
        infeasible = [p for p in predictions if not objective.feasible(p)]
        if not feasible:
            raise RecommendationError(
                f"no candidate instance satisfies objective {objective.name!r} "
                f"for model {getattr(model, 'name', model)!r}"
            )
        ranked = sorted(feasible, key=objective.score)
        if not math.isfinite(objective.score(ranked[0])):
            raise RecommendationError(
                f"objective {objective.name!r} produced a non-finite score"
            )
        return Recommendation(
            objective=objective.name,
            best=ranked[0],
            ranked=ranked,
            infeasible=infeasible,
        )
