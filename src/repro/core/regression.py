"""Least-squares regression with linear/quadratic model selection.

Paper, Section IV-B: "we find that linear regression works well for most
heavy operations ... However, for a few operations, e.g.
Conv2DBackpropFilter, a quadratic fit is much better suited". We implement
ordinary least squares on the op's size features, optionally augmented with
squared terms, and select between the two by adjusted R² with a preference
margin for the simpler model.

Implemented directly on numpy (lstsq) — no sklearn dependency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np
from numpy.typing import ArrayLike

from repro.errors import ModelingError

#: Quadratic must beat linear by this much adjusted-R² to be selected.
QUADRATIC_PREFERENCE_MARGIN = 0.003

#: Floor applied to predictions: a kernel can't take less than ~1 us.
PREDICTION_FLOOR_US = 1.0

#: Extrapolation guard: predictions are clipped to this multiple of the
#: largest training observation. Quadratic fits in particular can explode
#: when queried far outside the fitted input range (e.g. pricing a
#: Transformer's matmuls with CNN-trained models); a clipped estimate is
#: wrong but bounded, which keeps downstream recommendations sane.
EXTRAPOLATION_CLIP_FACTOR = 10.0


def _expand_quadratic(x: np.ndarray) -> np.ndarray:
    """Augment a design matrix with per-feature squared terms."""
    return np.hstack([x, x**2])


@dataclass(frozen=True)
class RegressionModel:
    """A fitted OLS model: ``y ~ intercept + coef . phi(x)``.

    ``degree`` is 1 (linear in the features) or 2 (features + their
    squares). ``r2`` and ``adjusted_r2`` are training-set statistics.
    """

    degree: int
    intercept: float
    coef: Tuple[float, ...]
    r2: float
    adjusted_r2: float
    n_train: int
    feature_names: Tuple[str, ...] = ()
    #: Upper clip for predictions (see EXTRAPOLATION_CLIP_FACTOR); None
    #: disables the guard.
    clip_max: Optional[float] = None

    def _design(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] * (2 if self.degree == 2 else 1) != len(self.coef):
            raise ModelingError(
                f"feature count mismatch: model has {len(self.coef)} coefficients "
                f"(degree {self.degree}), got {x.shape[1]} features"
            )
        return _expand_quadratic(x) if self.degree == 2 else x

    def predict(self, x: ArrayLike) -> np.ndarray:
        """Predict times for a feature matrix (or single feature vector)."""
        phi = self._design(x)
        pred = self.intercept + phi @ np.asarray(self.coef)
        if self.clip_max is not None:
            pred = np.minimum(pred, self.clip_max)
        return np.maximum(pred, PREDICTION_FLOOR_US)

    def predict_one(self, features: Sequence[float]) -> float:
        return float(self.predict(np.asarray(features, dtype=float)[None, :])[0])

    def predict_batch(self, x: ArrayLike) -> np.ndarray:
        """Vectorized prediction over an (n, features) matrix.

        One ``X @ w`` plus the same clip/floor as :meth:`predict_one`:
        ``predict_batch(X)[i] == predict_one(X[i])`` for every row (the
        engine's equivalence tests assert this across the model zoo).
        """
        x = np.asarray(x, dtype=float)
        if x.ndim != 2:
            raise ModelingError(
                f"predict_batch expects an (n, features) matrix, got ndim={x.ndim}"
            )
        return self.predict(x)


def _fit_ols(
    x: np.ndarray, y: np.ndarray, degree: int, feature_names: Tuple[str, ...]
) -> RegressionModel:
    phi = _expand_quadratic(x) if degree == 2 else x
    design = np.hstack([np.ones((phi.shape[0], 1)), phi])
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    residuals = y - design @ coef
    ss_res = float(residuals @ residuals)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    n, p = design.shape
    if n > p:
        adjusted = 1.0 - (1.0 - r2) * (n - 1) / (n - p)
    else:
        adjusted = r2
    return RegressionModel(
        degree=degree,
        intercept=float(coef[0]),
        coef=tuple(float(c) for c in coef[1:]),
        r2=r2,
        adjusted_r2=adjusted,
        n_train=n,
        feature_names=feature_names,
        clip_max=float(EXTRAPOLATION_CLIP_FACTOR * y.max()),
    )


def fit_regression(
    x: ArrayLike,
    y: ArrayLike,
    feature_names: Tuple[str, ...] = (),
    allow_quadratic: bool = True,
) -> RegressionModel:
    """Fit OLS, selecting linear vs quadratic by adjusted R².

    The linear model wins ties (and near-ties within
    :data:`QUADRATIC_PREFERENCE_MARGIN`): parsimony matches the paper's
    finding that most ops are linear and only a few need curvature.

    Raises :class:`ModelingError` with a clear message when there are too
    few observations to fit anything.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float)
    if x.shape[0] != y.shape[0]:
        raise ModelingError(
            f"x has {x.shape[0]} rows but y has {y.shape[0]} values"
        )
    if x.shape[0] < x.shape[1] + 2:
        raise ModelingError(
            f"need at least {x.shape[1] + 2} observations to fit "
            f"{x.shape[1]} features, got {x.shape[0]}"
        )
    linear = _fit_ols(x, y, 1, feature_names)
    if not allow_quadratic or x.shape[0] < 2 * x.shape[1] + 3:
        return linear
    quadratic = _fit_ols(x, y, 2, feature_names)
    if quadratic.adjusted_r2 > linear.adjusted_r2 + QUADRATIC_PREFERENCE_MARGIN:
        return quadratic
    return linear


def fit_proportional(x: ArrayLike, y: ArrayLike, feature_names: Tuple[str, ...] = ()) -> RegressionModel:
    """Fit a through-origin model on the *first* feature only.

    A last-resort fallback for heavy op types with too few instances for a
    full OLS fit (e.g. LRN, which appears only twice per network): compute
    time is taken proportional to input size, the dominant first-order
    behaviour of every heavy kernel (paper, Section III-C).
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    y = np.asarray(y, dtype=float)
    if x.shape[0] < 1:
        raise ModelingError("need at least one observation for a proportional fit")
    x1 = x[:, 0]
    denom = float(x1 @ x1)
    if denom <= 0:
        raise ModelingError("proportional fit needs a positive first feature")
    slope = float(x1 @ y) / denom
    predicted = slope * x1
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    coef = (slope,) + (0.0,) * (x.shape[1] - 1)
    return RegressionModel(
        degree=1, intercept=0.0, coef=coef, r2=r2, adjusted_r2=r2,
        n_train=x.shape[0], feature_names=feature_names,
        clip_max=float(EXTRAPOLATION_CLIP_FACTOR * y.max()),
    )


def mean_absolute_percentage_error(observed: ArrayLike, predicted: ArrayLike) -> float:
    """MAPE in [0, inf): mean of |pred - obs| / obs."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise ModelingError("observed and predicted must have the same shape")
    if np.any(observed <= 0):
        raise ModelingError("MAPE requires strictly positive observed values")
    return float(np.mean(np.abs(predicted - observed) / observed))


def r_squared(observed: ArrayLike, predicted: ArrayLike) -> float:
    """Out-of-sample R² of predictions against observations."""
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    ss_res = float(((observed - predicted) ** 2).sum())
    ss_tot = float(((observed - observed.mean()) ** 2).sum())
    return 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
