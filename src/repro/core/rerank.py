"""Incremental spot re-ranking: price ticks without re-evaluating Eq. (2).

A spot price tick changes *only* the price axis of the sweep: the
``(G, K, B)`` time tensors of :func:`~repro.core.batch.evaluate_sweep`
are pricing-independent, and the On-Demand rate grid already holds every
candidate's base rate. So a tick's ranking needs no graph compile, no
stacked matmul, no communication grid — just a re-scale of cached
tensors:

    spot_rate[g, k]   = od_rate[g, k] * ratio[g]
    makespan[g, k, b] = total_us + (hazard[g] * total_hr) * replay_us
    score[g, k, b]    = cost(spot_rate, makespan) + λ * makespan_hr

:class:`SpotRerankSession` caches the base sweep once and replays
exactly the arithmetic :class:`~repro.core.estimator.TrainingPrediction`
performs per candidate — same operation sequence, same order — so the
scores (and therefore the stable-sorted ranking) are *bit-identical* to
a full re-sweep with the tick's pricing scored through
:class:`~repro.core.recommend.SpotRiskObjective`. The test suite and
``tools/bench_spot_rerank.py`` assert this equivalence; the perf gate
enforces the ≥10x latency win that justifies the layer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

import numpy as np

from repro.cloud.catalog import InstanceType, admitted_gpu_keys
from repro.cloud.pricing import ON_DEMAND
from repro.errors import ModelingError, RecommendationError
from repro.graph.graph import OpGraph
from repro.hardware.gpus import GPU_KEYS
from repro.obs.metrics import default_registry
from repro.units import us_to_hr, usd_per_hr_to_usd
from repro.workloads.dataset import TrainingJob
from repro.core.batch import (
    DEFAULT_SWEEP_BATCH_SIZES,
    SweepPlan,
    SweepResult,
    evaluate_sweep,
)
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.core.preempt import DEFAULT_PREEMPTION, PreemptionModel


@dataclass(frozen=True, eq=False)
class SpotRanking:
    """One tick's ranking: flat candidate order plus materialisation.

    ``order`` indexes the session's flattened (g-major, k, b) candidate
    grid, best score first; unpriceable cells (no instance, or no spot
    ratio for the GPU at this tick) are already filtered out.
    Predictions materialise lazily — a serving response only renders the
    best few of 1000+ candidates.
    """

    session: "SpotRerankSession"
    order: np.ndarray  # axes: (R)
    scores: np.ndarray  # axes: (R)
    ratio_by_gpu: Mapping[str, float]
    hazard_by_gpu: Mapping[str, float]
    risk_aversion_usd_per_hr: float
    preempt: PreemptionModel

    @property
    def n_candidates(self) -> int:
        return int(self.order.shape[0])

    def prediction(self, rank: int) -> TrainingPrediction:
        """Materialise the rank-th best candidate."""
        if not 0 <= rank < self.n_candidates:
            raise RecommendationError(
                f"rank {rank} outside {self.n_candidates} spot candidates"
            )
        return self.session.materialize(
            int(self.order[rank]),
            self.ratio_by_gpu,
            self.hazard_by_gpu,
            self.preempt,
        )

    def best(self) -> TrainingPrediction:
        if self.n_candidates == 0:
            raise RecommendationError(
                "no spot-priceable candidates at this tick"
            )
        return self.prediction(0)

    def predictions(self, top: Optional[int] = None) -> List[TrainingPrediction]:
        """The ranking's best ``top`` candidates (all when ``None``)."""
        n = self.n_candidates if top is None else min(top, self.n_candidates)
        return [self.prediction(r) for r in range(n)]


class SpotRerankSession:
    """A cached base sweep that re-ranks per spot tick in O(candidates).

    Built from one On-Demand :class:`SweepResult` (the expensive part:
    graph compile + stacked matmuls + catalog resolution). Each
    :meth:`rerank` call is pure tensor re-scaling over the cached
    ``(G, K, B)`` grids.
    """

    def __init__(self, base: SweepResult) -> None:
        if len(base.plan.pricings) != 1:
            raise ModelingError(
                f"SpotRerankSession needs a single-pricing base sweep, "
                f"got {len(base.plan.pricings)} pricing tiers"
            )
        if base.plan.pricings[0].name != ON_DEMAND.name:
            raise ModelingError(
                f"SpotRerankSession bases on On-Demand rates (spot = "
                f"ratio x On-Demand), got {base.plan.pricings[0].name!r}"
            )
        self.base = base
        self.plan = base.plan
        #: On-Demand rate per (GPU, count); NaN where the catalog has no
        #: instance — those cells stay NaN through every tick.
        self.od_rate_usd_per_hr = base.usd_per_hr[0]  # axes: (G, K) nan
        self.total_us = base.total_us  # axes: (G, K, B)
        self.total_hr = us_to_hr(base.total_us)  # axes: (G, K, B)
        # Same addition TrainingPrediction.per_iteration_us performs.
        self.per_iteration_us = (  # axes: (G, K, B)
            base.compute_us[:, None, :] + base.comm_us[:, :, None]
        )
        self.instances = base.instances[0]
        self.shape = self.total_us.shape

    @classmethod
    def from_estimator(
        cls,
        estimator: CeerEstimator,
        model: Union[str, OpGraph],
        job: TrainingJob,
        batch_sizes: Sequence[int] = DEFAULT_SWEEP_BATCH_SIZES,
        gpu_keys: Optional[Sequence[str]] = None,
    ) -> "SpotRerankSession":
        """Run the base On-Demand sweep and wrap it.

        With ``gpu_keys=None`` the sweep covers the full catalog plus
        any admitted GPU the estimator can synthesize models for (the
        transfer backend) — the same widening rule as the CLI's
        ``--full-catalog``.
        """
        if gpu_keys is None:
            extra = [
                key for key in admitted_gpu_keys()
                if estimator.compute_models.supports_gpu(key)
            ]
            gpu_keys = tuple(GPU_KEYS) + tuple(extra) if extra else None
        plan = SweepPlan.full_catalog(
            batch_sizes=tuple(batch_sizes),
            pricings=(ON_DEMAND,),
            gpu_keys=gpu_keys,
        )
        return cls(evaluate_sweep(estimator, model, job, plan))

    # ------------------------------------------------------------------
    def _gpu_vector(self, table: Mapping[str, float]) -> np.ndarray:
        """Per-GPU values in plan order; NaN for GPUs the table omits."""
        return np.array(
            [table.get(key, np.nan) for key in self.plan.gpu_keys]
        )  # axes: (G) nan

    def rerank(
        self,
        ratio_by_gpu: Mapping[str, float],
        hazard_by_gpu: Optional[Mapping[str, float]] = None,
        risk_aversion_usd_per_hr: float = 0.0,
        preempt: PreemptionModel = DEFAULT_PREEMPTION,
    ) -> SpotRanking:
        """Re-rank every candidate under one tick's (ratios, hazards).

        GPUs missing from ``ratio_by_gpu`` mask (NaN score) rather than
        raise — the tick simply has no quote for them, mirroring the
        batched sweep's mask-not-raise contract. ``hazard_by_gpu=None``
        means hazard 0 everywhere: scores reduce to deterministic spot
        cost plus the λ·hours term.
        """
        if risk_aversion_usd_per_hr < 0:
            raise ModelingError(
                f"risk_aversion_usd_per_hr must be >= 0, got "
                f"{risk_aversion_usd_per_hr}"
            )
        ratio_g = self._gpu_vector(ratio_by_gpu)  # axes: (G) nan
        if hazard_by_gpu is None:
            hazard_g = np.zeros(len(self.plan.gpu_keys))  # axes: (G)
        else:
            hazard_g = self._gpu_vector(hazard_by_gpu)  # axes: (G) nan
        # Identical float sequence to SpotPricing.instance: the base
        # On-Demand rate times the tick's ratio.
        spot_rate = self.od_rate_usd_per_hr * ratio_g[:, None]  # axes: (G, K) nan
        # Identical float sequence to the expected_makespan_us property:
        # total + (hazard * total_hours) * (overhead_iters * per_iter).
        replay_us = preempt.overhead_iterations * self.per_iteration_us
        makespan_us = self.total_us + (
            hazard_g[:, None, None] * self.total_hr
        ) * replay_us  # axes: (G, K, B)
        makespan_hr = us_to_hr(makespan_us)  # axes: (G, K, B)
        expected_cost_usd = usd_per_hr_to_usd(  # axes: (G, K, B) nan
            spot_rate[:, :, None], makespan_hr
        )
        # SpotRiskObjective.score, vectorised.
        score = (  # axes: (G, K, B) nan
            expected_cost_usd + risk_aversion_usd_per_hr * makespan_hr
        )
        flat = score.ravel()  # axes: (C)
        order = np.argsort(flat, kind="stable")  # axes: (C)
        # Stable argsort places NaN last; keep the finite prefix. An
        # unpriceable cell is NaN on every tick (od rate NaN) or on this
        # one (no ratio quote / no hazard for the GPU).
        n_finite = int(np.isfinite(flat).sum())
        order = order[:n_finite]  # staticcheck: ignore[axis-drop] — the finite prefix re-labels candidates (C) as ranks (R)
        default_registry().counter("spot.reranks").inc()
        return SpotRanking(
            session=self,
            order=order,
            scores=flat[order],
            ratio_by_gpu=dict(ratio_by_gpu),
            hazard_by_gpu=dict(hazard_by_gpu or {}),
            risk_aversion_usd_per_hr=risk_aversion_usd_per_hr,
            preempt=preempt,
        )

    # ------------------------------------------------------------------
    def materialize(
        self,
        flat_index: int,
        ratio_by_gpu: Mapping[str, float],
        hazard_by_gpu: Mapping[str, float],
        preempt: PreemptionModel,
    ) -> TrainingPrediction:
        """One flat candidate as a preemption-aware prediction.

        The prediction's derived properties recompute the tick's score
        components from the same stored floats with the same arithmetic,
        so they equal the rerank tensors exactly — and equal a full
        re-sweep's materialisation, because the spot instance is rebuilt
        by the same rule ``SpotPricing`` applies (On-Demand base rate
        times ratio, ``spot:`` name prefix).
        """
        g, k, b = np.unravel_index(flat_index, self.shape)
        base_instance = self.instances[g][k]
        if base_instance is None:
            raise ModelingError(
                f"candidate ({g}, {k}) has no catalog instance"
            )
        gpu_key = self.plan.gpu_keys[g]
        ratio = ratio_by_gpu[gpu_key]
        spot_instance = InstanceType(
            name=f"spot:{base_instance.name}",
            gpu_key=base_instance.gpu_key,
            num_gpus=base_instance.num_gpus,
            usd_per_hr=base_instance.usd_per_hr * ratio,
            proxy_of=base_instance.proxy_of or base_instance.name,
        )
        deterministic = self.base.prediction(0, int(g), int(k), int(b))
        return replace(
            deterministic,
            instance_name=spot_instance.name,
            usd_per_hr=spot_instance.usd_per_hr,
            hazard_per_hr=float(hazard_by_gpu.get(gpu_key, 0.0)),
            preempt_overhead_iterations=preempt.overhead_iterations,
        )
