"""Cross-hardware transfer: one pooled fit per heavy op type.

The paper fits one regression per (GPU model, heavy op type), which caps
the estimator at the four GPUs it profiled. Habitat (arXiv:2102.00527)
and PROFET (arXiv:2208.05130) show that op-level compute times transfer
across devices through a small set of hardware descriptors; the
:class:`~repro.hardware.gpus.GpuSpec` catalog already carries the two
that dominate kernel runtime — peak FLOP/s (compute-bound ops) and
memory bandwidth (bandwidth-bound ops).

The transfer backend pools *all* GPUs' profile rows for an op type and
fits, per op type, one OLS model on

    [phi(x), d, d0 * phi(x), d1 * phi(x)]

where ``phi(x)`` is the op's size features (optionally with squared
terms, selected exactly like :func:`~repro.core.regression.fit_regression`)
and ``d = (d0, d1)`` are *inverse-normalized* device features

    d0 = peak_gflops(ref) / peak_gflops(g)        # inverse relative FLOP/s
    d1 = bandwidth(ref) / bandwidth(g)            # inverse relative bandwidth

with the reference fixed to the V100, so a slower device has larger
``d`` and the interaction terms ``d * phi(x)`` scale compute time up —
the roofline intuition that time ~ work / throughput.

The payoff of this particular design: for any *fixed* device the model
collapses to an ordinary :class:`~repro.core.regression.RegressionModel`
over size features alone::

    intercept_g = b + a . d
    coef_g[j]   = c[j] + d0 * e0[j] + d1 * e1[j]

so the vectorized engine and the stacked (G, K, B) sweep tensors work
unchanged for any catalog GPU — including ones admitted from a spec
sheet that were never profiled. Each fit also carries its residual
standard deviation, which propagates to prediction-level uncertainty
bands (something the per-GPU backend cannot offer for unseen devices).

Leave-one-GPU-out (:func:`logo_report`) is the honest evaluation: hold
out each profiled GPU, fit the transfer model on the other three, and
score MAPE on the holdout against the paper's own in-sample per-GPU fit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ModelingError
from repro.hardware.gpus import GpuSpec, gpu_spec
from repro.obs.metrics import default_registry
from repro.obs.spans import span
from repro.profiling.features import feature_schema
from repro.profiling.records import ProfileDataset
from repro.core.classify import OpClassification
from repro.core.op_models import fit_heavy_regression
from repro.core.regression import (
    EXTRAPOLATION_CLIP_FACTOR,
    QUADRATIC_PREFERENCE_MARGIN,
    RegressionModel,
    mean_absolute_percentage_error,
)

#: Device features are normalized against this GPU (the paper's fastest):
#: the V100 maps to d = (1, 1), slower devices to larger components.
REFERENCE_TRANSFER_GPU = "V100"

#: Type alias for one pooled training cell shipped to a worker process:
#: (op_type, feature rows, mean times, per-row device features).
TransferCell = Tuple[
    str,
    Tuple[Tuple[float, ...], ...],
    Tuple[float, ...],
    Tuple[Tuple[float, float], ...],
]

#: One holdout evaluation cell: (op_type, feature rows, mean times).
EvalCell = Tuple[str, Tuple[Tuple[float, ...], ...], Tuple[float, ...]]


def device_features(spec: GpuSpec, reference: GpuSpec) -> Tuple[float, float]:
    """Inverse-normalized device features ``(d0, d1)`` for one GPU.

    Both components are *reference / device* ratios, so they act as
    multipliers on work terms: a GPU with half the V100's FLOP/s gets
    ``d0 = 2`` and its compute-bound coefficients double.
    """
    if spec.peak_gflops <= 0 or spec.memory_bandwidth_gbps <= 0:
        raise ModelingError(
            f"GPU {spec.key!r} needs positive peak_gflops and "
            f"memory_bandwidth_gbps for transfer prediction"
        )
    return (
        reference.peak_gflops / spec.peak_gflops,
        reference.memory_bandwidth_gbps / spec.memory_bandwidth_gbps,
    )


@dataclass(frozen=True)
class TransferOpModel:
    """One pooled cross-GPU fit for a heavy op type.

    Coefficient layout (``F = len(size_coef)`` expanded size features,
    ``F = n_features * degree``)::

        y ~ intercept + size_coef . phi(x) + device_coef . d
            + d0 * interaction_coef[0] . phi(x)
            + d1 * interaction_coef[1] . phi(x)

    ``proportional`` marks the few-rows fallback (through-origin on
    ``x[0] * d0``), the transfer analog of
    :func:`~repro.core.regression.fit_proportional`.
    """

    op_type: str
    degree: int
    feature_names: Tuple[str, ...]
    intercept: float
    size_coef: Tuple[float, ...]
    device_coef: Tuple[float, float]
    interaction_coef: Tuple[Tuple[float, ...], Tuple[float, ...]]
    residual_std_us: float
    r2: float
    adjusted_r2: float
    n_train: int
    clip_max: Optional[float] = None
    proportional: bool = False

    def collapse(self, spec: GpuSpec, reference: GpuSpec) -> RegressionModel:
        """Specialize to one device: an ordinary size-feature regression.

        The collapsed model has the same degree and feature schema as a
        per-GPU fit, so every downstream consumer (scalar path, engine,
        stacked sweep tensors) works on it unchanged.
        """
        d0, d1 = device_features(spec, reference)
        e0, e1 = self.interaction_coef
        coef = tuple(
            c + d0 * a + d1 * b for c, a, b in zip(self.size_coef, e0, e1)
        )
        intercept = (
            self.intercept + d0 * self.device_coef[0] + d1 * self.device_coef[1]
        )
        return RegressionModel(
            degree=self.degree,
            intercept=intercept,
            coef=coef,
            r2=self.r2,
            adjusted_r2=self.adjusted_r2,
            n_train=self.n_train,
            feature_names=self.feature_names,
            clip_max=self.clip_max,
        )


def _expand(x: np.ndarray, degree: int) -> np.ndarray:
    return np.hstack([x, x**2]) if degree == 2 else x


def _transfer_design(phi: np.ndarray, d: np.ndarray) -> np.ndarray:
    """Assemble ``[1, phi, d, d0*phi, d1*phi]`` — shape (n, 3F + 3)."""
    ones = np.ones((phi.shape[0], 1))
    return np.hstack(
        [ones, phi, d, d[:, 0:1] * phi, d[:, 1:2] * phi]
    )


def _fit_transfer_ols(
    op_type: str,
    x: np.ndarray,
    y: np.ndarray,
    d: np.ndarray,
    degree: int,
    schema: Tuple[str, ...],
) -> TransferOpModel:
    phi = _expand(x, degree)
    design = _transfer_design(phi, d)
    coef, *_ = np.linalg.lstsq(design, y, rcond=None)
    residuals = y - design @ coef
    ss_res = float(residuals @ residuals)
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    n, p = design.shape
    if n > p:
        adjusted = 1.0 - (1.0 - r2) * (n - 1) / (n - p)
    else:
        adjusted = r2
    f = phi.shape[1]
    return TransferOpModel(
        op_type=op_type,
        degree=degree,
        feature_names=schema,
        intercept=float(coef[0]),
        size_coef=tuple(float(c) for c in coef[1 : 1 + f]),
        device_coef=(float(coef[1 + f]), float(coef[2 + f])),
        interaction_coef=(
            tuple(float(c) for c in coef[3 + f : 3 + 2 * f]),
            tuple(float(c) for c in coef[3 + 2 * f : 3 + 3 * f]),
        ),
        residual_std_us=float(np.sqrt(ss_res / max(n - p, 1))),
        r2=r2,
        adjusted_r2=adjusted,
        n_train=n,
        clip_max=float(EXTRAPOLATION_CLIP_FACTOR * y.max()),
    )


def _fit_transfer_proportional(
    op_type: str,
    x: np.ndarray,
    y: np.ndarray,
    d: np.ndarray,
    schema: Tuple[str, ...],
) -> TransferOpModel:
    """Few-rows fallback: through-origin on ``x[0] * d0``.

    Stored entirely in ``interaction_coef[0][0]``, so :meth:`collapse`
    reproduces a per-device proportional model (``coef[0] = slope * d0``)
    with zero intercept — mirroring ``fit_proportional``.
    """
    z = x[:, 0] * d[:, 0]
    denom = float(z @ z)
    if denom <= 0:
        raise ModelingError(
            f"transfer proportional fit for {op_type!r} needs a positive "
            "first feature"
        )
    slope = float(z @ y) / denom
    predicted = slope * z
    ss_res = float(((y - predicted) ** 2).sum())
    ss_tot = float(((y - y.mean()) ** 2).sum())
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    n_features = x.shape[1]
    zeros = (0.0,) * n_features
    return TransferOpModel(
        op_type=op_type,
        degree=1,
        feature_names=schema,
        intercept=0.0,
        size_coef=zeros,
        device_coef=(0.0, 0.0),
        interaction_coef=((slope,) + (0.0,) * (n_features - 1), zeros),
        residual_std_us=float(np.sqrt(ss_res / max(x.shape[0] - 1, 1))),
        r2=r2,
        adjusted_r2=r2,
        n_train=x.shape[0],
        clip_max=float(EXTRAPOLATION_CLIP_FACTOR * y.max()),
        proportional=True,
    )


def fit_transfer_op(
    op_type: str,
    rows: Sequence[Sequence[float]],
    targets: Sequence[float],
    device_rows: Sequence[Tuple[float, float]],
    schema: Tuple[str, ...],
    allow_quadratic: bool = True,
) -> TransferOpModel:
    """Fit one pooled transfer model for one heavy op type.

    Linear vs quadratic size terms are selected by adjusted R² with the
    same preference margin as the per-GPU path; the quadratic variant is
    attempted only when the pooled sample comfortably overdetermines its
    ``6 * n_features + 3`` parameters. The single fitting routine behind
    both the serial loop and the parallel
    :class:`~repro.parallel.plan.TransferFitTask` — one code path, so a
    fan-out fit is bit-identical to a serial one.
    """
    x = np.asarray([list(r) for r in rows], dtype=float)
    y = np.asarray(targets, dtype=float)
    d = np.asarray([list(r) for r in device_rows], dtype=float)
    if x.shape[0] != y.shape[0] or x.shape[0] != d.shape[0]:
        raise ModelingError(
            f"transfer fit for {op_type!r}: rows/targets/device_rows "
            f"lengths differ ({x.shape[0]}/{y.shape[0]}/{d.shape[0]})"
        )
    n, n_features = x.shape
    p_linear = 3 * n_features + 3
    if n < p_linear + 1:
        return _fit_transfer_proportional(op_type, x, y, d, schema)
    linear = _fit_transfer_ols(op_type, x, y, d, 1, schema)
    p_quadratic = 6 * n_features + 3
    if not allow_quadratic or n < p_quadratic + 2:
        return linear
    quadratic = _fit_transfer_ols(op_type, x, y, d, 2, schema)
    if quadratic.adjusted_r2 > linear.adjusted_r2 + QUADRATIC_PREFERENCE_MARGIN:
        return quadratic
    return linear


@dataclass
class TransferModelSet:
    """All pooled transfer fits plus the device normalization anchor."""

    models: Dict[str, TransferOpModel]
    train_gpu_keys: Tuple[str, ...]
    reference_gpu: str = REFERENCE_TRANSFER_GPU

    def collapse(self, gpu_key: str, op_type: str) -> Optional[RegressionModel]:
        """Per-device regression for one op type (None if type unknown).

        Raises :class:`~repro.errors.HardwareError` for an unknown GPU
        key — the caller decides whether that is an unseen-op situation.
        """
        model = self.models.get(op_type)
        if model is None:
            return None
        return model.collapse(gpu_spec(gpu_key), gpu_spec(self.reference_gpu))

    def residual_std_us(self) -> Dict[str, float]:
        """Per-op-type residual std, the raw material of uncertainty bands."""
        return {
            op_type: model.residual_std_us
            for op_type, model in sorted(self.models.items())
        }

    def op_types(self) -> Tuple[str, ...]:
        return tuple(sorted(self.models))


def _pooled_cells(
    train_profiles: ProfileDataset, classification: OpClassification
) -> List[TransferCell]:
    """Pool every GPU's rows per heavy op type, in deterministic order.

    Rows are ordered by (sorted GPU key, dataset order) so serial and
    fanned-out fits see byte-identical inputs.
    """
    gpu_records = train_profiles.gpu_records()
    reference = gpu_spec(REFERENCE_TRANSFER_GPU)
    per_gpu = {
        gpu_key: (gpu_records.for_gpu(gpu_key), device_features(gpu_spec(gpu_key), reference))
        for gpu_key in gpu_records.gpu_keys()
    }
    cells: List[TransferCell] = []
    for op_type in sorted(classification.heavy):
        rows: List[Tuple[float, ...]] = []
        targets: List[float] = []
        devices: List[Tuple[float, float]] = []
        for gpu_key in gpu_records.gpu_keys():
            subset, dev = per_gpu[gpu_key]
            for record in subset.for_op_type(op_type):
                rows.append(tuple(record.features))
                targets.append(record.mean_us)
                devices.append(dev)
        if rows:
            cells.append((op_type, tuple(rows), tuple(targets), tuple(devices)))
    return cells


def fit_transfer_models(
    train_profiles: ProfileDataset,
    classification: OpClassification,
    allow_quadratic: bool = True,
    jobs: Optional[int] = None,
) -> TransferModelSet:
    """Fit one pooled transfer model per heavy op type.

    ``jobs`` fans the per-op-type fits out over worker processes (None =
    serial); results are identical either way.
    """
    if not train_profiles:
        raise ModelingError("cannot fit transfer models from an empty profile set")
    with span("transfer.fit", jobs=jobs or 1):
        cells = _pooled_cells(train_profiles, classification)
        if not cells:
            raise ModelingError("no heavy-op observations to fit transfer models")
        if jobs is not None and jobs != 1 and len(cells) > 1:
            from repro.parallel import TransferFitTask, run_fanout

            tasks = [
                TransferFitTask(
                    op_type=op_type, rows=rows, targets=targets,
                    device_rows=devices, schema=feature_schema(op_type),
                    allow_quadratic=allow_quadratic,
                )
                for op_type, rows, targets, devices in cells
            ]
            fitted = [outcome.value for outcome in run_fanout(tasks, jobs=jobs)]
        else:
            fitted = [
                fit_transfer_op(
                    op_type, rows, targets, devices, feature_schema(op_type),
                    allow_quadratic=allow_quadratic,
                )
                for op_type, rows, targets, devices in cells
            ]
        default_registry().counter("transfer.fits").inc(len(fitted))
        return TransferModelSet(
            models={model.op_type: model for model in fitted},
            train_gpu_keys=train_profiles.gpu_records().gpu_keys(),
        )


# ----------------------------------------------------------------------
# Leave-one-GPU-out evaluation
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class LogoFold:
    """One holdout GPU's scores: transfer (out-of-sample) vs paper fit.

    ``per_gpu_mape`` is the *in-sample* MAPE of the paper's own
    per-(GPU, op) fits on the same rows — the floor a transfer model
    that never saw this GPU is compared against.
    """

    gpu_key: str
    n_rows: int
    n_op_types: int
    transfer_mape: float
    per_gpu_mape: float


@dataclass(frozen=True)
class LogoReport:
    """Leave-one-GPU-out error table across all profiled GPUs."""

    folds: Tuple[LogoFold, ...]
    reference_gpu: str = REFERENCE_TRANSFER_GPU

    def to_dict(self) -> Dict[str, object]:
        return {
            "reference_gpu": self.reference_gpu,
            "folds": [
                {
                    "gpu_key": f.gpu_key,
                    "n_rows": f.n_rows,
                    "n_op_types": f.n_op_types,
                    "transfer_mape": f.transfer_mape,
                    "per_gpu_mape": f.per_gpu_mape,
                }
                for f in self.folds
            ],
        }


def logo_fold(
    holdout_gpu: str,
    holdout_device: Tuple[float, float],
    train_cells: Tuple[TransferCell, ...],
    eval_cells: Tuple[EvalCell, ...],
    allow_quadratic: bool = True,
) -> LogoFold:
    """Score one holdout GPU: fit on the rest, evaluate on the holdout.

    Pure function of its arguments — the single code path behind both
    the serial loop and :class:`~repro.parallel.plan.TransferLogoTask`,
    so a fanned-out LOGO report is byte-identical to a serial one.
    """
    fitted = {
        op_type: fit_transfer_op(
            op_type, rows, targets, devices, feature_schema(op_type),
            allow_quadratic=allow_quadratic,
        )
        for op_type, rows, targets, devices in train_cells
    }
    observed: List[float] = []
    predicted: List[float] = []
    baseline: List[float] = []
    n_op_types = 0
    for op_type, rows, targets in eval_cells:
        model = fitted.get(op_type)
        if model is None:
            continue
        n_op_types += 1
        x = np.asarray([list(r) for r in rows], dtype=float)
        d0, d1 = holdout_device
        e0, e1 = model.interaction_coef
        phi = _expand(x, model.degree)
        coef = np.asarray(
            [c + d0 * a + d1 * b for c, a, b in zip(model.size_coef, e0, e1)]
        )
        intercept = (
            model.intercept + d0 * model.device_coef[0] + d1 * model.device_coef[1]
        )
        pred = intercept + phi @ coef
        if model.clip_max is not None:
            pred = np.minimum(pred, model.clip_max)
        pred = np.maximum(pred, 1.0)
        own = fit_heavy_regression(
            rows, targets, feature_schema(op_type), allow_quadratic
        )
        observed.extend(targets)
        predicted.extend(float(v) for v in pred)
        baseline.extend(float(v) for v in own.predict_batch(x))
    if not observed:
        raise ModelingError(
            f"no evaluable heavy rows for holdout GPU {holdout_gpu!r}"
        )
    return LogoFold(
        gpu_key=holdout_gpu,
        n_rows=len(observed),
        n_op_types=n_op_types,
        transfer_mape=mean_absolute_percentage_error(observed, predicted),
        per_gpu_mape=mean_absolute_percentage_error(observed, baseline),
    )


def logo_report(
    train_profiles: ProfileDataset,
    classification: OpClassification,
    allow_quadratic: bool = True,
    jobs: Optional[int] = None,
) -> LogoReport:
    """Leave-one-GPU-out over every GPU in the profile set.

    Each fold fits the transfer model on the other GPUs' pooled rows and
    scores MAPE on the holdout's heavy rows; ``jobs`` fans folds out over
    worker processes with byte-identical results.
    """
    gpu_records = train_profiles.gpu_records()
    gpu_keys = gpu_records.gpu_keys()
    if len(gpu_keys) < 2:
        raise ModelingError(
            "leave-one-GPU-out needs at least two profiled GPUs, got "
            f"{len(gpu_keys)}"
        )
    reference = gpu_spec(REFERENCE_TRANSFER_GPU)
    with span("transfer.logo", gpus=len(gpu_keys), jobs=jobs or 1):
        fold_args: List[
            Tuple[str, Tuple[float, float], Tuple[TransferCell, ...], Tuple[EvalCell, ...]]
        ] = []
        for holdout in gpu_keys:
            train_cells = tuple(
                _pooled_cells(
                    train_profiles.filter(lambda r, h=holdout: r.gpu_key != h),
                    classification,
                )
            )
            holdout_records = gpu_records.for_gpu(holdout)
            eval_cells: List[EvalCell] = []
            for op_type in sorted(classification.heavy):
                subset = holdout_records.for_op_type(op_type)
                if subset:
                    eval_cells.append((
                        op_type,
                        tuple(tuple(r.features) for r in subset),
                        tuple(r.mean_us for r in subset),
                    ))
            fold_args.append((
                holdout,
                device_features(gpu_spec(holdout), reference),
                train_cells,
                tuple(eval_cells),
            ))
        if jobs is not None and jobs != 1 and len(fold_args) > 1:
            from repro.parallel import TransferLogoTask, run_fanout

            tasks = [
                TransferLogoTask(
                    holdout_gpu=holdout, holdout_device=device,
                    train_cells=train_cells, eval_cells=eval_cells,
                    allow_quadratic=allow_quadratic,
                )
                for holdout, device, train_cells, eval_cells in fold_args
            ]
            folds = tuple(outcome.value for outcome in run_fanout(tasks, jobs=jobs))
        else:
            folds = tuple(
                logo_fold(holdout, device, train_cells, eval_cells, allow_quadratic)
                for holdout, device, train_cells, eval_cells in fold_args
            )
        default_registry().counter("transfer.folds").inc(len(folds))
        return LogoReport(folds=folds)
