"""Incremental Ceer updates: learning newly-encountered operations.

The paper's first stated limitation (Section VI): "Ceer cannot predict
(without retraining) the training time of a CNN that includes a heavy
operation that has not been observed during training ... In such cases,
Ceer will have to be updated with new training data to provide estimates
for these new heavy operations" (Section IV-D).

This module implements that update path:

* :func:`extend_ceer` merges newly-collected profiles into a fitted Ceer's
  training data, re-classifies, and refits the per-op compute models —
  while keeping the (unchanged) communication model. Existing op types
  benefit from the extra observations; new op types become predictable.
* :func:`learn_model` is the convenience wrapper: profile a CNN (e.g. one
  that contains the new operation) on the given GPU models and extend.
"""

from __future__ import annotations

from typing import Sequence, Union

from repro.errors import ModelingError
from repro.graph.graph import OpGraph
from repro.hardware.gpus import GPU_KEYS
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset
from repro.core.classify import classify_operations
from repro.core.estimator import CeerEstimator
from repro.core.fit import CeerDiagnostics, FittedCeer
from repro.core.op_models import fit_compute_models


def extend_ceer(fitted: FittedCeer, new_profiles: ProfileDataset) -> FittedCeer:
    """Return a new fitted Ceer whose compute models also cover
    ``new_profiles``.

    The union of the old and new profiles is re-classified with the
    original threshold/reference settings and the per-(GPU, op type)
    regressions and medians are refit. The communication model is reused
    unchanged: it depends only on parameter counts, not op types
    (Section IV-C), so new operations do not invalidate it.
    """
    if not new_profiles:
        raise ModelingError("extend_ceer called with no new profiles")
    old_models = fitted.estimator.compute_models
    merged = fitted.train_profiles.merge(new_profiles)
    classification = classify_operations(
        merged,
        threshold_us=old_models.classification.threshold_us,
        reference_gpu=old_models.classification.reference_gpu,
    )
    compute_models = fit_compute_models(
        merged, classification, strict_unseen=old_models.strict_unseen
    )
    estimator = CeerEstimator(
        compute_models,
        fitted.estimator.comm_model,
        include_communication=fitted.estimator.include_communication,
        heavy_only=fitted.estimator.heavy_only,
    )
    old = fitted.diagnostics
    diagnostics = CeerDiagnostics(
        train_models=tuple(sorted(set(old.train_models) | set(new_profiles.models()))),
        gpu_keys=tuple(sorted(set(old.gpu_keys) | set(new_profiles.gpu_keys()))),
        n_profile_records=len(merged),
        heavy_op_types=tuple(sorted(classification.heavy)),
        light_op_types=tuple(sorted(classification.light)),
        cpu_op_types=tuple(sorted(classification.cpu)),
        light_median_us=compute_models.light_median_us,
        cpu_median_us=compute_models.cpu_median_us,
        heavy_r2=dict(compute_models.train_r2),
        comm_r2=dict(old.comm_r2),
    )
    return FittedCeer(
        estimator=estimator, train_profiles=merged, diagnostics=diagnostics
    )


def learn_model(
    fitted: FittedCeer,
    model: Union[str, OpGraph],
    gpu_keys: Sequence[str] = GPU_KEYS,
    n_iterations: int = 300,
    batch_size: int = 32,
    seed_context: str = "",
) -> FittedCeer:
    """Profile ``model`` on ``gpu_keys`` and fold the data into ``fitted``.

    Use this when a prediction raised
    :class:`~repro.errors.UnseenOperationError` (or returned a light-median
    fallback you do not trust): profile any CNN that exercises the new
    operation, then retry the prediction on the returned estimator.
    """
    profiler = Profiler(n_iterations=n_iterations, batch_size=batch_size)
    new_profiles = profiler.profile_many([model], list(gpu_keys), seed_context)
    return extend_ceer(fitted, new_profiles)
