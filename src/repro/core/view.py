"""Read-only estimator view: the serving layer's window onto a fit.

A long-lived server (:mod:`repro.serve`) keeps one fitted
:class:`~repro.core.estimator.CeerEstimator` alive across thousands of
requests. Two properties matter there that the batch CLI never needed:

* **immutability** — nothing in a request handler may flip ablation
  flags (``heavy_only``, ``include_communication``, ``use_engine``) or
  rebind the fitted models mid-flight: a request that starts under one
  configuration must finish under it. :class:`ReadOnlyEstimator` wraps
  the estimator and raises on any attribute assignment while delegating
  every read, so the whole prediction surface (``predict_training``,
  :class:`~repro.core.recommend.Recommender`,
  :func:`~repro.core.batch.evaluate_sweep`) works unchanged.
* **warmth** — the first query for a model pays graph construction,
  compilation, and coefficient stacking. :meth:`ReadOnlyEstimator.warm`
  pre-pays all of it at load time by driving one batched sweep per
  (model, batch size) through the exact caches the live queries will
  hit: the engine's compiled graphs, the stacked per-GPU coefficient
  matrices, the communication grid, and the plan's price grid.

The view is intentionally *not* a deep freeze: the underlying lazy
caches (engine LRU, stacked-model memos) still fill in on miss — that is
the point of them — but they are internal, append-only state that never
changes an answer, only how fast it arrives.
"""

from __future__ import annotations

from typing import Any, Optional, Sequence, Tuple

from repro.errors import ModelingError
from repro.core.estimator import CeerEstimator

__all__ = ["ReadOnlyEstimator", "WarmReport"]


class WarmReport:
    """What one :meth:`ReadOnlyEstimator.warm` pass touched."""

    __slots__ = ("models", "batch_sizes", "graphs_compiled", "candidates")

    def __init__(
        self,
        models: Tuple[str, ...],
        batch_sizes: Tuple[int, ...],
        graphs_compiled: int,
        candidates: int,
    ) -> None:
        self.models = models
        self.batch_sizes = batch_sizes
        self.graphs_compiled = graphs_compiled
        self.candidates = candidates

    def to_json(self) -> dict:
        return {
            "models": list(self.models),
            "batch_sizes": list(self.batch_sizes),
            "graphs_compiled": self.graphs_compiled,
            "candidates": self.candidates,
        }


class ReadOnlyEstimator:
    """An immutable delegating facade over a fitted estimator.

    Every attribute *read* (methods, fitted models, lazy caches) passes
    through to the wrapped estimator, so the view is a drop-in argument
    anywhere a :class:`CeerEstimator` duck-types — the recommender, the
    batched sweep, persistence diagnostics. Attribute *writes* raise
    :class:`~repro.errors.ModelingError`: a server holding this view
    cannot accidentally reconfigure the estimator under its clients.
    """

    __slots__ = ("_estimator",)

    def __init__(self, estimator: CeerEstimator) -> None:
        object.__setattr__(self, "_estimator", estimator)

    @property
    def wrapped(self) -> CeerEstimator:
        """The underlying estimator (for tests and diagnostics)."""
        return object.__getattribute__(self, "_estimator")

    def __getattr__(self, name: str) -> Any:
        return getattr(object.__getattribute__(self, "_estimator"), name)

    def __setattr__(self, name: str, value: Any) -> None:
        raise ModelingError(
            f"estimator view is read-only: cannot set {name!r} on a "
            f"serving snapshot (reload a new snapshot instead)"
        )

    def __delattr__(self, name: str) -> None:
        raise ModelingError(
            f"estimator view is read-only: cannot delete {name!r}"
        )

    def __repr__(self) -> str:
        backend = getattr(self.wrapped.compute_models, "backend", "per_gpu")
        return f"ReadOnlyEstimator(backend={backend!r})"

    # ------------------------------------------------------------------
    def warm(
        self,
        models: Optional[Sequence[str]] = None,
        batch_sizes: Sequence[int] = (32,),
        gpu_keys: Optional[Sequence[str]] = None,
    ) -> WarmReport:
        """Pre-compile every (model, batch size) the server will answer for.

        Runs one full-catalog batched sweep per (model, batch) pair,
        which fills — in one pass — the engine's graph/compile caches,
        the stacked coefficient matrices, the totals and comm-grid
        memos, and the shared plan's price grid. After this, a live
        ``predict``/``recommend``/``pareto`` query for any warmed pair
        runs with zero compilation work.
        """
        from repro.core.batch import SweepPlan, evaluate_sweep
        from repro.models.zoo import model_names
        from repro.workloads.dataset import IMAGENET, TrainingJob

        names = tuple(models) if models is not None else model_names()
        batches = tuple(batch_sizes)
        plan = SweepPlan.full_catalog(
            batch_sizes=batches,
            gpu_keys=tuple(gpu_keys) if gpu_keys is not None else None,
        )
        estimator = self.wrapped
        candidates = 0
        for name in names:
            job = TrainingJob(IMAGENET, batch_size=batches[0], epochs=1)
            result = evaluate_sweep(estimator, name, job, plan)
            candidates += result.n_candidates
        return WarmReport(
            models=names,
            batch_sizes=batches,
            graphs_compiled=len(names) * len(batches),
            candidates=candidates,
        )
