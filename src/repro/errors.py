"""Exception hierarchy for the repro (Ceer reproduction) library.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch a single base class. Subclasses are organised by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ShapeError(ReproError):
    """A tensor shape is invalid or incompatible with an operation."""


class GraphError(ReproError):
    """An operation graph is malformed (cycles, dangling inputs, ...)."""


class UnknownOpError(ReproError):
    """An operation type is not present in the op registry."""


class ModelZooError(ReproError):
    """A requested CNN architecture is unknown or misconfigured."""


class HardwareError(ReproError):
    """A device or calibration entry is unknown or inconsistent."""


class CatalogError(ReproError):
    """A cloud instance type or pricing scheme lookup failed."""


class ProfilingError(ReproError):
    """Profiling produced no usable records or was misconfigured."""


class ModelingError(ReproError):
    """Fitting or applying a Ceer model failed (e.g. unseen heavy op)."""


class ArtifactError(ReproError):
    """The artifact workspace was misconfigured or a store invariant broke.

    Corrupt or stale artifact *files* never raise this (they are treated as
    cache misses); it covers real misuse: unserialisable fingerprint specs,
    unknown artifact kinds, or a lock that could not be acquired.
    """


class UnseenOperationError(ModelingError):
    """A heavy operation type was not observed during Ceer training.

    Section IV-D of the paper: Ceer cannot predict (without retraining) the
    compute time of a heavy operation absent from the training profiles.
    """

    def __init__(self, op_type: str, device: str) -> None:
        self.op_type = op_type
        self.device = device
        super().__init__(
            f"heavy operation {op_type!r} on device {device!r} was not "
            f"observed during Ceer training; retrain with profiles that "
            f"include it (paper, Section IV-D)"
        )


class FanoutError(ReproError):
    """A parallel fan-out task failed after exhausting its retries.

    Carries the failed work units as structured ``(task_id, error)`` pairs
    so callers (and CI logs) see *which* (model, GPU) cell or fit unit
    died, instead of a hung pool or an anonymous ``BrokenProcessPool``.
    """

    def __init__(self, failures: "tuple") -> None:
        self.failures = tuple(failures)
        detail = "; ".join(f"{task_id}: {error}" for task_id, error in self.failures)
        super().__init__(
            f"{len(self.failures)} fan-out task(s) failed after retry: {detail}"
        )


class RecommendationError(ReproError):
    """No instance satisfies the requested objective/constraints."""


class ServeError(ReproError):
    """The serving layer rejected a request or could not swap a snapshot."""
