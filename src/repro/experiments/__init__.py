"""Experiment drivers regenerating every figure of the paper's evaluation.

Each ``run_figN`` function returns a structured result object whose
``render()`` method prints the rows/series the corresponding paper figure
reports. The benchmark harness under ``benchmarks/`` invokes these.
"""

from repro.experiments.ablations import AblationResult, run_ablations
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    SCALING_JOB,
    fitted_ceer,
    observed_training,
    test_profiles,
    training_profiles,
)
from repro.experiments.fig2_op_times import Fig2Result, run_fig2
from repro.experiments.fig3_op_costs import Fig3Result, run_fig3
from repro.experiments.fig4_relu_scaling import Fig4Result, run_fig4
from repro.experiments.fig5_variability import Fig5Result, run_fig5
from repro.experiments.fig6_scaling import Fig6Result, run_fig6
from repro.experiments.fig7_comm_overhead import Fig7Result, run_fig7
from repro.experiments.fig8_validation import Fig8Result, run_fig8
from repro.experiments.fig9_hourly_budget import Fig9Result, run_fig9
from repro.experiments.fig10_total_budget import Fig10Result, run_fig10
from repro.experiments.fig11_cost_min import Fig11Result, run_fig11
from repro.experiments.fig12_market_prices import run_fig12
from repro.experiments.ext_spot_dynamics import (
    SpotDynamicsResult,
    run_spot_dynamics,
)
from repro.experiments.ext_transfer_logo import (
    TransferLogoResult,
    run_transfer_logo,
)
from repro.experiments.extensions import (
    BatchSizeStudyResult,
    EstimatorChoiceResult,
    RnnStudyResult,
    MultiHostResult,
    SensitivityResult,
    TransformerStudyResult,
    run_batch_size_study,
    run_estimator_choice_study,
    run_multihost_study,
    run_rnn_study,
    run_sensitivity_study,
    run_transformer_study,
)

__all__ = [
    "run_fig2", "run_fig3", "run_fig4", "run_fig5", "run_fig6", "run_fig7",
    "run_fig8", "run_fig9", "run_fig10", "run_fig11", "run_fig12",
    "run_ablations",
    "run_multihost_study",
    "run_sensitivity_study",
    "run_estimator_choice_study",
    "run_transformer_study",
    "TransformerStudyResult",
    "run_batch_size_study",
    "BatchSizeStudyResult",
    "run_rnn_study",
    "RnnStudyResult",
    "run_spot_dynamics",
    "SpotDynamicsResult",
    "run_transfer_logo",
    "TransferLogoResult",
    "MultiHostResult",
    "SensitivityResult",
    "EstimatorChoiceResult",
    "Fig2Result", "Fig3Result", "Fig4Result", "Fig5Result", "Fig6Result",
    "Fig7Result", "Fig8Result", "Fig9Result", "Fig10Result", "Fig11Result",
    "AblationResult",
    "fitted_ceer", "training_profiles", "test_profiles", "observed_training",
    "CANONICAL_ITERATIONS", "IMAGENET_JOB", "SCALING_JOB",
]
