"""Ablations and baseline comparisons backing the paper's prose claims.

Four studies:

* **heavy-only** (Section IV-B): dropping the light/CPU medians from Eq.
  (2) raises training-time error to 15-25%.
* **no-comm** (Section IV-A): using Eq. (1) — ignoring the communication
  term — raises error by 5-20% on single-GPU instances (AlexNet ~30%) and
  more on multi-GPU ones.
* **regression quality** (Section IV-B): heavy-op regressions reach R²
  0.84-0.98 on training data and 2-10% MAPE on the held-out test CNNs.
* **baselines** (Sections I, V, VII): Ceer vs a PALEO-style FLOP model and
  a Giannini-style layer-level model for accuracy, and vs the
  cheapest-instance / latest-GPU strategies for rental cost (the paper
  reports 36% and 44% savings).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace
from repro.core.baselines import (
    LayerLevelEstimator,
    PaleoStyleEstimator,
    heavy_only_variant,
    no_comm_variant,
)
from repro.core.estimator import CeerEstimator
from repro.core.regression import mean_absolute_percentage_error
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    fitted_ceer,
    observed_training,
    test_profiles,
    training_profiles,
)
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TEST_MODELS, TRAIN_MODELS
from repro.obs.spans import traced


@dataclass
class AblationResult:
    """Per-(model, GPU) per-iteration errors of Ceer and its ablations."""

    errors: Dict[str, Dict[Tuple[str, str, int], float]]  # variant -> errors
    heavy_r2_range: Tuple[float, float]
    heavy_test_mape: Dict[str, float]  # op type -> held-out MAPE
    strategy_cost_ratio: Dict[str, float]  # strategy -> cost vs Ceer pick

    def mean_error(self, variant: str, num_gpus: int = None) -> float:
        values = [
            err for (m, g, k), err in self.errors[variant].items()
            if num_gpus is None or k == num_gpus
        ]
        return sum(values) / len(values)

    def render(self) -> str:
        rows = []
        for variant in self.errors:
            rows.append(
                [
                    variant,
                    f"{self.mean_error(variant, 1):.1%}",
                    f"{self.mean_error(variant, 4):.1%}",
                    f"{self.mean_error(variant):.1%}",
                ]
            )
        table = format_table(
            ["estimator", "err (k=1)", "err (k=4)", "err (all)"],
            rows,
            title="Ablations - per-iteration time prediction error on test CNNs",
        )
        mape_sorted = sorted(self.heavy_test_mape.items(), key=lambda kv: kv[1])
        lines = [
            table,
            "",
            f"heavy-op regression R^2 (train): "
            f"{self.heavy_r2_range[0]:.3f} - {self.heavy_r2_range[1]:.3f}",
            "heavy-op test MAPE (best/worst): "
            f"{mape_sorted[0][0]} {mape_sorted[0][1]:.1%} / "
            f"{mape_sorted[-1][0]} {mape_sorted[-1][1]:.1%}",
            "strategy cost vs Ceer's cost-optimal pick:",
        ]
        for strategy, ratio in self.strategy_cost_ratio.items():
            lines.append(f"  {strategy}: {ratio:.2f}x  "
                         f"(Ceer saves {1 - 1 / ratio:.0%})")
        return "\n".join(lines)


def _per_iteration_errors(
    estimator,
    models: Sequence[str],
    gpu_counts: Sequence[int],
    n_iterations: int,
    workspace: Optional[Workspace] = None,
) -> Dict[Tuple[str, str, int], float]:
    errors: Dict[Tuple[str, str, int], float] = {}
    for model in models:
        for gpu_key in GPU_KEYS:
            for k in gpu_counts:
                obs = observed_training(
                    model, gpu_key, k, IMAGENET_JOB, n_iterations,
                    workspace=workspace,
                ).per_iteration_us
                pred = estimator.predict_iteration_us(model, gpu_key, k)
                errors[(model, gpu_key, k)] = abs(pred - obs) / obs
    return errors


def _heavy_test_mape(
    fitted, n_iterations: int, workspace: Optional[Workspace] = None
) -> Dict[str, float]:
    """Held-out MAPE per heavy op type, pooled over GPUs (paper: 2-10%)."""
    models = fitted.estimator.compute_models
    held_out = test_profiles(n_iterations, workspace=workspace).gpu_records()
    mape: Dict[str, float] = {}
    for op_type in models.classification.heavy:
        observed, predicted = [], []
        for record in held_out.for_op_type(op_type):
            model = models.heavy_models.get((record.gpu_key, op_type))
            if model is None:
                continue
            observed.append(record.mean_us)
            predicted.append(model.predict_us(record.features))
        if observed:
            mape[op_type] = mean_absolute_percentage_error(observed, predicted)
    return mape


def _strategy_cost_ratios(
    estimator: CeerEstimator,
    n_iterations: int,
    workspace: Optional[Workspace] = None,
) -> Dict[str, float]:
    """Observed cost of naive strategies relative to Ceer's pick, averaged
    over the test CNNs (cost-minimisation objective, 1-4 GPU candidates)."""
    ratios: Dict[str, List[float]] = {"cheapest-instance": [], "latest-gpu (P3)": []}
    for model in TEST_MODELS:
        predictions = {
            (g, k): estimator.predict_training(model, g, k, IMAGENET_JOB)
            for g in GPU_KEYS for k in (1, 2, 3, 4)
        }
        ceer_pick = min(predictions, key=lambda key: predictions[key].cost_dollars)
        observed_usd = {
            key: observed_training(model, key[0], key[1], IMAGENET_JOB,
                                   n_iterations, workspace=workspace).cost_dollars
            for key in predictions
        }
        base = observed_usd[ceer_pick]
        # "Cheapest" = lowest hourly rate (the paper's G3 single-GPU);
        # "latest" = the most powerful P3 instance (4 GPUs).
        ratios["cheapest-instance"].append(observed_usd[("M60", 1)] / base)
        ratios["latest-gpu (P3)"].append(observed_usd[("V100", 4)] / base)
    return {k: sum(v) / len(v) for k, v in ratios.items()}


@traced("experiments.ablations")
def run_ablations(
    gpu_counts: Sequence[int] = (1, 4),
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> AblationResult:
    """Run all ablation/baseline studies on the held-out test CNNs."""
    fitted = fitted_ceer(n_iterations, workspace=workspace)
    estimator = fitted.estimator
    paleo = PaleoStyleEstimator.fit(
        list(TRAIN_MODELS), list(GPU_KEYS), n_iterations=min(n_iterations, 200)
    )
    layer_level = LayerLevelEstimator.fit(
        training_profiles(n_iterations, workspace=workspace)
    )

    variants = {
        "ceer (full)": estimator,
        "heavy-ops-only": heavy_only_variant(estimator),
        "no-communication (Eq. 1)": no_comm_variant(estimator),
        "layer-level (Giannini-style)": layer_level,
        "paleo-style (FLOPs)": paleo,
    }
    errors = {
        name: _per_iteration_errors(
            est, TEST_MODELS, gpu_counts, n_iterations, workspace=workspace
        )
        for name, est in variants.items()
    }
    r2_values = sorted(fitted.diagnostics.heavy_r2.values())
    return AblationResult(
        errors=errors,
        heavy_r2_range=(r2_values[0], r2_values[-1]),
        heavy_test_mape=_heavy_test_mape(fitted, n_iterations, workspace=workspace),
        strategy_cost_ratio=_strategy_cost_ratios(
            estimator, n_iterations, workspace=workspace
        ),
    )
