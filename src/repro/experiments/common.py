"""Shared experiment infrastructure: canonical setup and cached artifacts.

All figure drivers share one canonical configuration (the paper's: 8
training CNNs, 4 GPU models, batch 32, ImageNet) and reuse one profiled
dataset and one fitted Ceer estimator per process. Profiling iteration
counts are configurable; the default trades the paper's 1,000 iterations
down to 300, which leaves per-op mean estimates within a fraction of a
percent (heavy-op noise is sigma <= 0.06) while keeping the full
figure suite fast.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Tuple

from repro.core.fit import FittedCeer, fit_ceer
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TEST_MODELS, TRAIN_MODELS
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset
from repro.sim.trace import TrainingMeasurement
from repro.sim.trainer import measure_training
from repro.workloads.dataset import IMAGENET, IMAGENET_6400, TrainingJob

#: Profiling iterations used by the experiment suite (paper: 1,000).
CANONICAL_ITERATIONS = 300

#: Seed context separating "training-time" measurements from the
#: independent "evaluation" runs the figures compare against.
EVAL_SEED = "evaluation"

#: The paper's evaluation workload: one epoch of ImageNet, batch 32/GPU.
IMAGENET_JOB = TrainingJob(IMAGENET, batch_size=32)

#: The Fig. 6 scaling workload: 6,400 ImageNet samples.
SCALING_JOB = TrainingJob(IMAGENET_6400, batch_size=32)

#: GPU family labels in presentation order, as the paper writes them.
FAMILY_LABELS: Tuple[Tuple[str, str], ...] = (
    ("V100", "P3"), ("K80", "P2"), ("T4", "G4"), ("M60", "G3")
)


@lru_cache(maxsize=4)
def training_profiles(n_iterations: int = CANONICAL_ITERATIONS) -> ProfileDataset:
    """Profiles of the 8 training-set CNNs on all four GPU models."""
    profiler = Profiler(n_iterations=n_iterations)
    return profiler.profile_many(list(TRAIN_MODELS), list(GPU_KEYS))


@lru_cache(maxsize=4)
def test_profiles(n_iterations: int = CANONICAL_ITERATIONS) -> ProfileDataset:
    """Profiles of the 4 held-out test CNNs (for validation experiments)."""
    profiler = Profiler(n_iterations=n_iterations)
    return profiler.profile_many(list(TEST_MODELS), list(GPU_KEYS), EVAL_SEED)


@lru_cache(maxsize=4)
def fitted_ceer(n_iterations: int = CANONICAL_ITERATIONS) -> FittedCeer:
    """The canonical fitted Ceer estimator (cached per process)."""
    return fit_ceer(
        n_iterations=n_iterations,
        train_profiles=training_profiles(n_iterations),
    )


@lru_cache(maxsize=1024)
def observed_training(
    model: str,
    gpu_key: str,
    num_gpus: int,
    job: TrainingJob = IMAGENET_JOB,
    n_iterations: int = CANONICAL_ITERATIONS,
) -> TrainingMeasurement:
    """Ground-truth ("rent the instance and run it") measurement, cached.

    Uses an evaluation seed context so the observation is statistically
    independent of the measurements Ceer was trained on.
    """
    return measure_training(
        model, gpu_key, num_gpus, job,
        n_profile_iterations=n_iterations, seed_context=EVAL_SEED,
    )
