"""Shared experiment infrastructure: canonical setup and cached artifacts.

All figure drivers share one canonical configuration (the paper's: 8
training CNNs, 4 GPU models, batch 32, ImageNet) and resolve every
expensive artifact — profile datasets, the fitted Ceer estimator,
ground-truth training measurements — through the active
:class:`~repro.artifacts.workspace.Workspace`. Within a process that gives
the same identity semantics the old ``@lru_cache`` globals did (the store's
memory tier returns the identical object); across processes the same
workspace directory means ``repro fit`` followed by ``repro figures``
profiles exactly once.

The module-level helpers below are thin delegating wrappers kept for
callers that do not thread a workspace explicitly.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.artifacts.workspace import (
    CANONICAL_ITERATIONS,
    EVAL_SEED,
    Workspace,
    active_workspace,
)
from repro.core.fit import FittedCeer
from repro.profiling.records import ProfileDataset
from repro.sim.trace import TrainingMeasurement
from repro.workloads.dataset import IMAGENET, IMAGENET_6400, TrainingJob

__all__ = [
    "CANONICAL_ITERATIONS", "EVAL_SEED", "IMAGENET_JOB", "SCALING_JOB",
    "FAMILY_LABELS", "training_profiles", "test_profiles", "fitted_ceer",
    "observed_training",
]

#: The paper's evaluation workload: one epoch of ImageNet, batch 32/GPU.
IMAGENET_JOB = TrainingJob(IMAGENET, batch_size=32)

#: The Fig. 6 scaling workload: 6,400 ImageNet samples.
SCALING_JOB = TrainingJob(IMAGENET_6400, batch_size=32)

#: GPU family labels in presentation order, as the paper writes them.
FAMILY_LABELS: Tuple[Tuple[str, str], ...] = (
    ("V100", "P3"), ("K80", "P2"), ("T4", "G4"), ("M60", "G3")
)


def training_profiles(
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> ProfileDataset:
    """Profiles of the 8 training-set CNNs on all four GPU models."""
    return (workspace or active_workspace()).training_profiles(n_iterations)


def test_profiles(
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> ProfileDataset:
    """Profiles of the 4 held-out test CNNs (for validation experiments)."""
    return (workspace or active_workspace()).test_profiles(n_iterations)


def fitted_ceer(
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> FittedCeer:
    """The canonical fitted Ceer estimator (cached in the workspace)."""
    return (workspace or active_workspace()).fitted_ceer(n_iterations)


def observed_training(
    model: str,
    gpu_key: str,
    num_gpus: int,
    job: TrainingJob = IMAGENET_JOB,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> TrainingMeasurement:
    """Ground-truth ("rent the instance and run it") measurement, cached.

    Uses an evaluation seed context so the observation is statistically
    independent of the measurements Ceer was trained on.
    """
    return (workspace or active_workspace()).observed_training(
        model, gpu_key, num_gpus, job, n_iterations
    )
