"""Spot-market dynamics: recommendation stability under streaming prices.

The paper prices every recommendation against fixed tiers (On-Demand,
static spot ratios, market ratios) — Fig. 11/12 are one-shot rankings.
Real spot markets move: discounts drift, capacity crunches spike prices,
and a deeper discount correlates with a higher preemption hazard. This
study streams a seeded synthetic spot-price trace
(:mod:`repro.cloud.spotsim`) through the incremental re-rank layer
(:mod:`repro.core.rerank`) and asks two questions the static figures
cannot:

* **Churn** — across a trace, how often does the best spot instance
  change? A ranking that flips every tick is an operational hazard in
  itself; one that never flips means the dynamics don't matter.
* **Risk aversion** — how does the winner shift as λ (dollars per
  expected hour) grows? At λ=0 the deepest discount wins even with a
  high preemption hazard; at large λ the ranking converges toward the
  deterministic min-time choice.

Everything is deterministic from the trace seed: same seed, same table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.cloud.spotsim import SpotMarket
from repro.core.fit import fit_ceer
from repro.core.preempt import DEFAULT_PREEMPTION
from repro.core.rerank import SpotRerankSession
from repro.experiments.common import CANONICAL_ITERATIONS, IMAGENET_JOB
from repro.obs.spans import traced

__all__ = ["SpotDynamicsResult", "run_spot_dynamics"]


@dataclass
class SpotDynamicsResult:
    """Winner churn and risk-aversion sensitivity over one spot trace."""

    model: str
    seed: int
    n_ticks: int
    #: λ (USD per expected hour) -> sequence of per-tick winners
    #: ``(instance_name, expected_cost_usd, expected_makespan_hours)``.
    winners_by_lambda: Dict[float, Tuple[Tuple[str, float, float], ...]]

    def churn(self, risk_aversion_usd_per_hr: float) -> int:
        """How many ticks changed the best instance at this λ."""
        winners = self.winners_by_lambda[risk_aversion_usd_per_hr]
        return sum(
            1 for prev, cur in zip(winners, winners[1:])
            if prev[0] != cur[0]
        )

    def render(self) -> str:
        rows = []
        for lam in sorted(self.winners_by_lambda):
            winners = self.winners_by_lambda[lam]
            names = [name for name, _, _ in winners]
            final_name, final_cost_usd, final_hr = winners[-1]
            rows.append([
                f"{lam:.2f}",
                f"{self.churn(lam)}/{self.n_ticks - 1}",
                len(set(names)),
                final_name,
                f"${final_cost_usd:.2f}",
                f"{final_hr:.2f} h",
            ])
        return format_table(
            ["lambda ($/h)", "winner flips", "distinct winners",
             "final winner", "expected cost", "expected makespan"],
            rows,
            title=f"Extension - spot dynamics for '{self.model}' "
                  f"(seed {self.seed}, {self.n_ticks} ticks)",
        )


@traced("experiments.ext.spot_dynamics")
def run_spot_dynamics(
    model: str = "resnet_50",
    seed: int = 2020,
    n_ticks: int = 16,
    risk_aversions: Sequence[float] = (0.0, 0.5, 2.0, 8.0),
    n_iterations: int = CANONICAL_ITERATIONS,
) -> SpotDynamicsResult:
    """Stream ``n_ticks`` prices and record each λ's per-tick winner.

    The base sweep runs once; every (tick, λ) cell is an incremental
    re-rank over the cached tensors — the same path ``repro serve``
    takes on ``POST /spot/tick``.
    """
    fitted = fit_ceer(n_iterations=n_iterations)
    session = SpotRerankSession.from_estimator(
        fitted.estimator, model, IMAGENET_JOB
    )
    markets = {lam: SpotMarket(seed=seed) for lam in risk_aversions}
    winners_by_lambda: Dict[float, List[Tuple[str, float, float]]] = {
        lam: [] for lam in risk_aversions
    }
    for tick in range(n_ticks):
        for lam, market in markets.items():
            if tick > 0:
                market.tick()
            best = session.rerank(
                market.ratios(),
                market.hazards_per_hr(),
                risk_aversion_usd_per_hr=lam,
                preempt=DEFAULT_PREEMPTION,
            ).best()
            winners_by_lambda[lam].append((
                best.instance_name,
                best.expected_cost_usd,
                best.expected_makespan_hours,
            ))
    return SpotDynamicsResult(
        model=model,
        seed=seed,
        n_ticks=n_ticks,
        winners_by_lambda={
            lam: tuple(winners) for lam, winners in winners_by_lambda.items()
        },
    )
