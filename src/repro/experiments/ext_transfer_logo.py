"""Leave-one-GPU-out evaluation of the cross-hardware transfer backend.

The paper fits every compute-time regression per (GPU model, op type) —
it cannot say anything about a GPU it never profiled. The transfer
backend (DESIGN.md section 5h) pools all GPUs' profile rows and fits each
heavy op type once on size features crossed with normalized device
features, so a *spec-only* GPU gets a synthesized model. This study
quantifies what that extrapolation costs: for each profiled GPU, fit the
transfer model on the other GPUs only and score its heavy-op MAPE on the
holdout — against the in-sample MAPE of the paper's own per-GPU fits on
the same rows (the accuracy floor a never-profiled GPU is giving up).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace
from repro.core.classify import classify_operations
from repro.core.transfer import LogoReport, logo_report
from repro.experiments.common import CANONICAL_ITERATIONS, training_profiles
from repro.obs.spans import traced


@dataclass
class TransferLogoResult:
    """Per-holdout-GPU transfer error vs the paper's in-sample fits."""

    report: LogoReport

    def render(self) -> str:
        rows = [
            [
                fold.gpu_key,
                fold.n_rows,
                fold.n_op_types,
                f"{fold.transfer_mape:.1%}",
                f"{fold.per_gpu_mape:.1%}",
            ]
            for fold in self.report.folds
        ]
        table = format_table(
            ["holdout GPU", "heavy rows", "op types",
             "transfer MAPE", "per-GPU MAPE (in-sample)"],
            rows,
            title="Extension - leave-one-GPU-out transfer accuracy "
                  f"(device features vs {self.report.reference_gpu})",
        )
        return (
            f"{table}\n"
            "transfer MAPE: heavy-op error on a GPU the pooled fit never "
            "saw;\nper-GPU MAPE: the paper's own fits scored in-sample on "
            "the same rows."
        )


@traced("experiments.ext.transfer_logo")
def run_transfer_logo(
    n_iterations: int = CANONICAL_ITERATIONS,
    jobs: Optional[int] = None,
    workspace: Optional[Workspace] = None,
    allow_quadratic: bool = True,
) -> TransferLogoResult:
    """Score every leave-one-GPU-out fold of the transfer backend.

    ``jobs`` fans the folds out over worker processes; the report is
    byte-identical at any job count.
    """
    profiles = training_profiles(n_iterations, workspace=workspace)
    classification = classify_operations(profiles)
    report = logo_report(
        profiles, classification, allow_quadratic=allow_quadratic, jobs=jobs
    )
    return TransferLogoResult(report=report)
