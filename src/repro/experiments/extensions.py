"""Extension studies beyond the paper's figures.

Studies that stress-test the design decisions and limitations the paper
discusses in prose:

* **Multi-host placement** (Section VI, limitation 2): how data-parallel
  scaling degrades when the GPUs span hosts, and that a placement-retrained
  Ceer recovers prediction accuracy while the single-host Ceer does not.
* **Training-set size sensitivity**: Ceer's held-out accuracy as a
  function of how many CNNs the models were fitted on — quantifying the
  paper's implicit claim that 8 training CNNs suffice.
* **Median-vs-mean light/CPU estimator** (Section IV-B): the paper picks
  the sample median "to avoid the unfair impact of possible outliers";
  this study measures what the mean would have cost.
* **Transformers** (Section VI's closing future-work note): a CNN-trained
  Ceer cannot price a Transformer — its core kernels (``BatchMatMul``,
  ``LayerNorm``, ``Gelu``) were never profiled — but one
  :func:`~repro.core.update.learn_model` update on a single Transformer
  restores accuracy on *other* Transformer configurations.
* **Batch-size generalisation**: the paper fits and evaluates everything
  at batch 32; because Ceer's features are sizes, its predictions remain
  accurate at batch sizes it never profiled.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace
from repro.core.classify import classify_operations
from repro.core.estimator import CeerEstimator
from repro.core.fit import fit_ceer
from repro.core.op_models import fit_compute_models
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    SCALING_JOB,
    training_profiles,
)
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TEST_MODELS
from repro.obs.spans import traced
from repro.sim.trainer import measure_training


# ---------------------------------------------------------------------------
# multi-host placement
# ---------------------------------------------------------------------------

@dataclass
class MultiHostResult:
    """Scaling and accuracy comparison across GPU placements."""

    model: str
    #: (placement, gpu, k) -> observed training time (us)
    observed_us: Dict[Tuple[str, str, int], float]
    #: estimator tag -> mean per-iteration error on multi-host observations
    multihost_errors: Dict[str, float]

    def reduction(self, placement: str, gpu_key: str, num_gpus: int) -> float:
        return 1 - (
            self.observed_us[(placement, gpu_key, num_gpus)]
            / self.observed_us[(placement, gpu_key, 1)]
        )

    def render(self) -> str:
        rows = []
        for gpu_key in GPU_KEYS:
            rows.append(
                [
                    gpu_key,
                    f"{self.reduction('single-host', gpu_key, 4):.1%}",
                    f"{self.reduction('multi-host', gpu_key, 4):.1%}",
                ]
            )
        table = format_table(
            ["GPU", "4-GPU cut (single host)", "4-GPU cut (multi host)"],
            rows,
            title=f"Extension - placement study ({self.model})",
        )
        lines = [table, "", "prediction error on multi-host deployments:"]
        for tag, err in self.multihost_errors.items():
            lines.append(f"  {tag}: {err:.1%}")
        return "\n".join(lines)


@traced("experiments.ext.multihost")
def run_multihost_study(
    model: str = "inception_v1",
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> MultiHostResult:
    """Compare placements and show that Ceer must be placement-retrained."""
    observed: Dict[Tuple[str, str, int], float] = {}
    for placement in ("single-host", "multi-host"):
        for gpu_key in GPU_KEYS:
            for k in (1, 4):
                measurement = measure_training(
                    model, gpu_key, k, SCALING_JOB,
                    n_profile_iterations=n_iterations,
                    seed_context="placement-eval", placement=placement,
                )
                observed[(placement, gpu_key, k)] = measurement.total_us

    profiles = training_profiles(n_iterations, workspace=workspace)
    single = fit_ceer(n_iterations=n_iterations, train_profiles=profiles,
                      placement="single-host")
    multi = fit_ceer(n_iterations=n_iterations, train_profiles=profiles,
                     placement="multi-host")

    def _error(estimator: CeerEstimator) -> float:
        errors: List[float] = []
        for test_model in TEST_MODELS:
            for gpu_key in GPU_KEYS:
                obs = measure_training(
                    test_model, gpu_key, 4, IMAGENET_JOB,
                    n_profile_iterations=n_iterations,
                    seed_context="placement-eval", placement="multi-host",
                ).per_iteration_us
                pred = estimator.predict_iteration_us(test_model, gpu_key, 4)
                errors.append(abs(pred - obs) / obs)
        return sum(errors) / len(errors)

    return MultiHostResult(
        model=model,
        observed_us=observed,
        multihost_errors={
            "single-host Ceer (stale comm model)": _error(single.estimator),
            "multi-host Ceer (retrained, Section VI)": _error(multi.estimator),
        },
    )


# ---------------------------------------------------------------------------
# training-set size sensitivity
# ---------------------------------------------------------------------------

@dataclass
class SensitivityResult:
    """Held-out accuracy vs number of training CNNs."""

    #: training-set size -> (models used, mean per-iteration error)
    by_size: Dict[int, Tuple[Tuple[str, ...], float]]

    def render(self) -> str:
        rows = [
            [size, f"{error:.1%}", ", ".join(models)]
            for size, (models, error) in sorted(self.by_size.items())
        ]
        return format_table(
            ["#train CNNs", "held-out error", "training set"],
            rows,
            title="Extension - accuracy vs training-set size",
        )


#: Nested prefixes of the training set, ordered to keep architecture
#: diversity at every size (a VGG, an Inception, a ResNet early).
_SENSITIVITY_ORDER: Tuple[str, ...] = (
    "vgg_11", "inception_v1", "resnet_50", "inception_v4",
    "resnet_152", "inception_resnet_v2", "vgg_16", "resnet_200",
)


@traced("experiments.ext.sensitivity")
def run_sensitivity_study(
    sizes: Sequence[int] = (3, 5, 8),
    n_iterations: int = 150,
) -> SensitivityResult:
    """Refit Ceer on nested training subsets and measure held-out error."""
    by_size: Dict[int, Tuple[Tuple[str, ...], float]] = {}
    for size in sizes:
        subset = _SENSITIVITY_ORDER[:size]
        fitted = fit_ceer(
            train_models=subset, n_iterations=n_iterations, gpu_counts=(1, 4)
        )
        errors: List[float] = []
        for model in TEST_MODELS:
            for gpu_key in GPU_KEYS:
                for k in (1, 4):
                    obs = measure_training(
                        model, gpu_key, k, IMAGENET_JOB,
                        n_profile_iterations=n_iterations,
                        seed_context="sensitivity-eval",
                    ).per_iteration_us
                    pred = fitted.estimator.predict_iteration_us(model, gpu_key, k)
                    errors.append(abs(pred - obs) / obs)
        by_size[size] = (tuple(subset), sum(errors) / len(errors))
    return SensitivityResult(by_size=by_size)


# ---------------------------------------------------------------------------
# transformers (future work of Section VI)
# ---------------------------------------------------------------------------

@dataclass
class TransformerStudyResult:
    """Ceer on Transformers: before and after the unseen-op update."""

    learned_from: str
    evaluated_on: Tuple[str, ...]
    #: estimator tag -> mean per-iteration error on held-out transformers
    errors: Dict[str, float]
    strict_raises: bool

    def render(self) -> str:
        lines = [
            "Extension - Ceer on Transformers (paper Section VI future work)",
            f"  strict CNN-trained Ceer raises UnseenOperationError: "
            f"{self.strict_raises}",
            f"  learned from: transformer_{self.learned_from}; evaluated on: "
            + ", ".join(f"transformer_{p}" for p in self.evaluated_on),
        ]
        for tag, err in self.errors.items():
            lines.append(f"  {tag}: {err:.1%} mean per-iteration error")
        return "\n".join(lines)


@traced("experiments.ext.transformer")
def run_transformer_study(
    learn_preset: str = "small",
    eval_presets: Sequence[str] = ("tiny", "mini", "medium"),
    n_iterations: int = 150,
    seq_len: int = 64,
    batch_size: int = 16,
    workspace: Optional[Workspace] = None,
) -> TransformerStudyResult:
    """Evaluate Ceer on Transformer encoders before/after an update.

    The update profiles exactly one Transformer preset; accuracy is then
    measured on the *other* presets (different depth/width), so the study
    tests generalisation of the newly-fitted op models, not memorisation.
    """
    from repro.errors import UnseenOperationError
    from repro.models.transformer import build_transformer
    from repro.core.update import extend_ceer
    from repro.profiling.profiler import Profiler
    from repro.workloads.dataset import DatasetSpec, TrainingJob

    job = TrainingJob(DatasetSpec("nlp-corpus", 1_000_000), batch_size=batch_size)
    profiles = training_profiles(n_iterations, workspace=workspace)
    cnn_fitted = fit_ceer(n_iterations=n_iterations, train_profiles=profiles)

    # 1. Strict mode: prediction must fail (the paper's stated limitation).
    strict_fitted = fit_ceer(
        n_iterations=n_iterations, train_profiles=profiles, strict_unseen=True
    )
    probe = build_transformer("tiny", batch_size=batch_size, seq_len=seq_len)
    try:
        strict_fitted.estimator.predict_iteration_us(probe, "V100", 1)
        strict_raises = False
    except UnseenOperationError:
        strict_raises = True

    # 2. Update with one transformer's profiles (Section IV-D's remedy).
    learn_graph = build_transformer(
        learn_preset, batch_size=batch_size, seq_len=seq_len
    )
    new_profiles = Profiler(
        n_iterations=n_iterations, batch_size=batch_size
    ).profile_many([learn_graph], list(GPU_KEYS))
    updated = extend_ceer(cnn_fitted, new_profiles)

    def _errors(estimator: CeerEstimator) -> float:
        values: List[float] = []
        for preset in eval_presets:
            graph = build_transformer(preset, batch_size=batch_size, seq_len=seq_len)
            for gpu_key in GPU_KEYS:
                obs = measure_training(
                    graph, gpu_key, 1, job, n_profile_iterations=n_iterations,
                    seed_context="transformer-eval",
                ).per_iteration_us
                pred = estimator.predict_iteration_us(graph, gpu_key, 1)
                values.append(abs(pred - obs) / obs)
        return sum(values) / len(values)

    return TransformerStudyResult(
        learned_from=learn_preset,
        evaluated_on=tuple(eval_presets),
        errors={
            "CNN-trained Ceer (light-median fallback)": _errors(cnn_fitted.estimator),
            "after learn_model on one Transformer": _errors(updated.estimator),
        },
        strict_raises=strict_raises,
    )


# ---------------------------------------------------------------------------
# median-vs-mean light/CPU estimator
# ---------------------------------------------------------------------------

@dataclass
class EstimatorChoiceResult:
    """Accuracy of the median vs mean pooling for light/CPU estimates."""

    errors: Dict[str, float]
    light_estimates_us: Dict[str, float]
    cpu_estimates_us: Dict[str, float]

    def render(self) -> str:
        rows = [
            [
                choice,
                f"{self.light_estimates_us[choice]:.1f}",
                f"{self.cpu_estimates_us[choice]:.1f}",
                f"{self.errors[choice]:.2%}",
            ]
            for choice in self.errors
        ]
        return format_table(
            ["pooling", "light estimate (us)", "cpu estimate (us)",
             "held-out error"],
            rows,
            title="Extension - light/CPU estimator choice (paper uses median)",
        )


@traced("experiments.ext.estimator_choice")
def run_estimator_choice_study(
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> EstimatorChoiceResult:
    """Compare the paper's median pooling against the mean alternative."""
    profiles = training_profiles(n_iterations, workspace=workspace)
    classification = classify_operations(profiles)
    base = fit_ceer(n_iterations=n_iterations, train_profiles=profiles)

    errors: Dict[str, float] = {}
    light: Dict[str, float] = {}
    cpu: Dict[str, float] = {}
    for choice in ("median", "mean"):
        compute_models = fit_compute_models(
            profiles, classification, light_estimator=choice
        )
        estimator = CeerEstimator(compute_models, base.estimator.comm_model)
        light[choice] = compute_models.light_median_us
        cpu[choice] = compute_models.cpu_median_us
        per_model: List[float] = []
        for model in TEST_MODELS:
            for gpu_key in GPU_KEYS:
                obs = measure_training(
                    model, gpu_key, 1, IMAGENET_JOB,
                    n_profile_iterations=n_iterations,
                    seed_context="estimator-choice-eval",
                ).per_iteration_us
                pred = estimator.predict_iteration_us(model, gpu_key, 1)
                per_model.append(abs(pred - obs) / obs)
        errors[choice] = sum(per_model) / len(per_model)
    return EstimatorChoiceResult(
        errors=errors, light_estimates_us=light, cpu_estimates_us=cpu
    )


# ---------------------------------------------------------------------------
# batch-size generalisation
# ---------------------------------------------------------------------------

@dataclass
class BatchSizeStudyResult:
    """Ceer accuracy when predicting batch sizes it was not fitted at."""

    fitted_batch: int
    #: evaluated batch size -> mean per-iteration error over test CNNs/GPUs
    errors: Dict[int, float]

    def render(self) -> str:
        rows = [
            [batch, "fitted" if batch == self.fitted_batch else "extrapolated",
             f"{error:.1%}"]
            for batch, error in sorted(self.errors.items())
        ]
        return format_table(
            ["batch size", "regime", "held-out error"],
            rows,
            title="Extension - batch-size generalisation "
                  f"(Ceer fitted at batch {self.fitted_batch})",
        )


@traced("experiments.ext.batch_size")
def run_batch_size_study(
    batch_sizes: Sequence[int] = (16, 32, 64),
    fitted_batch: int = 32,
    n_iterations: int = 150,
    models: Sequence[str] = ("inception_v3", "resnet_101"),
    workspace: Optional[Workspace] = None,
) -> BatchSizeStudyResult:
    """Fit Ceer at one batch size, evaluate at others.

    The paper profiles everything at batch 32 (Section V); a practitioner
    may want predictions for other batch sizes. Because Ceer's features are
    input *sizes* — which scale smoothly with batch — the regressions
    interpolate/extrapolate across batch sizes without refitting.
    """
    from repro.models.zoo import build_model
    from repro.workloads.dataset import IMAGENET, TrainingJob

    fitted = fit_ceer(
        n_iterations=n_iterations,
        train_profiles=training_profiles(n_iterations, workspace=workspace),
        batch_size=fitted_batch,
    )
    errors: Dict[int, float] = {}
    for batch in batch_sizes:
        job = TrainingJob(IMAGENET, batch_size=batch)
        values: List[float] = []
        for model in models:
            graph = build_model(model, batch_size=batch)
            for gpu_key in GPU_KEYS:
                obs = measure_training(
                    graph, gpu_key, 1, job, n_profile_iterations=n_iterations,
                    seed_context="batch-study-eval",
                ).per_iteration_us
                pred = fitted.estimator.predict_iteration_us(graph, gpu_key, 1)
                values.append(abs(pred - obs) / obs)
        errors[batch] = sum(values) / len(values)
    return BatchSizeStudyResult(fitted_batch=fitted_batch, errors=errors)


# ---------------------------------------------------------------------------
# RNNs (the other half of Section VI's future-work note)
# ---------------------------------------------------------------------------

@dataclass
class RnnStudyResult:
    """Ceer on unrolled LSTMs: before and after the unseen-op update."""

    learned_from: str
    evaluated_on: Tuple[str, ...]
    errors: Dict[str, float]
    #: observed V100/T4 per-iteration ratio — LSTMs are launch-bound small
    #: kernels, so the big GPU's advantage can invert.
    v100_over_t4_time_ratio: float

    def render(self) -> str:
        lines = [
            "Extension - Ceer on RNNs/LSTMs (paper Section VI future work)",
            f"  learned from: lstm_{self.learned_from}; evaluated on: "
            + ", ".join(f"lstm_{p}" for p in self.evaluated_on),
            f"  observed V100/T4 per-iteration time ratio: "
            f"{self.v100_over_t4_time_ratio:.2f}x "
            f"({'V100 slower - launch-bound!' if self.v100_over_t4_time_ratio > 1 else 'V100 faster'})",
        ]
        for tag, err in self.errors.items():
            lines.append(f"  {tag}: {err:.1%} mean per-iteration error")
        return "\n".join(lines)


@traced("experiments.ext.rnn")
def run_rnn_study(
    learn_preset: str = "small",
    eval_presets: Sequence[str] = ("medium", "large"),
    n_iterations: int = 150,
    seq_len: int = 32,
    batch_size: int = 16,
    workspace: Optional[Workspace] = None,
) -> RnnStudyResult:
    """Evaluate Ceer on stacked LSTMs before/after an unseen-op update."""
    from repro.models.lstm import build_lstm
    from repro.core.update import extend_ceer
    from repro.profiling.profiler import Profiler
    from repro.workloads.dataset import DatasetSpec, TrainingJob

    job = TrainingJob(DatasetSpec("nlp-corpus", 1_000_000), batch_size=batch_size)
    profiles = training_profiles(n_iterations, workspace=workspace)
    cnn_fitted = fit_ceer(n_iterations=n_iterations, train_profiles=profiles)

    learn_graph = build_lstm(learn_preset, batch_size=batch_size, seq_len=seq_len)
    new_profiles = Profiler(
        n_iterations=n_iterations, batch_size=batch_size
    ).profile_many([learn_graph], list(GPU_KEYS))
    updated = extend_ceer(cnn_fitted, new_profiles)

    observed: Dict[Tuple[str, str], float] = {}
    for preset in eval_presets:
        graph = build_lstm(preset, batch_size=batch_size, seq_len=seq_len)
        for gpu_key in GPU_KEYS:
            observed[(preset, gpu_key)] = measure_training(
                graph, gpu_key, 1, job, n_profile_iterations=n_iterations,
                seed_context="rnn-eval",
            ).per_iteration_us

    def _errors(estimator: CeerEstimator) -> float:
        values: List[float] = []
        for preset in eval_presets:
            graph = build_lstm(preset, batch_size=batch_size, seq_len=seq_len)
            for gpu_key in GPU_KEYS:
                pred = estimator.predict_iteration_us(graph, gpu_key, 1)
                obs = observed[(preset, gpu_key)]
                values.append(abs(pred - obs) / obs)
        return sum(values) / len(values)

    anchor = eval_presets[0]
    return RnnStudyResult(
        learned_from=learn_preset,
        evaluated_on=tuple(eval_presets),
        errors={
            "CNN-trained Ceer (fallback)": _errors(cnn_fitted.estimator),
            "after learn_model on one LSTM": _errors(updated.estimator),
        },
        v100_over_t4_time_ratio=observed[(anchor, "V100")] / observed[(anchor, "T4")],
    )
