"""Figure 10: total-budget-constrained instance selection (ResNet-101).

Paper, Section V ("Total budget constrained scenario"): train ResNet-101
on one ImageNet epoch without exceeding a fixed total rental budget,
minimising training time. The paper's $10 budget excludes the 4-GPU P3
instance and every P2 instance; the optimal feasible choice is the 3-GPU
P3 proxy, and the cheapest-per-hour feasible instance (1-GPU G3) is ~9.1x
slower.

Our simulated substrate is uniformly slower in absolute terms than the
authors' testbed, so the default budget is scaled to $12.95 — which
reproduces the same feasibility frontier (all P2 and the 4-GPU P3
infeasible, 3-GPU P3 optimal, 1-GPU G3 feasible-but-slow); see
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import format_dollars, format_table, format_us
from repro.artifacts.workspace import Workspace
from repro.core.batch import SweepPlan, evaluate_sweep
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    fitted_ceer,
    observed_training,
)
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import traced
from repro.sim.trace import TrainingMeasurement
from repro.workloads.dataset import TrainingJob

#: Scaled equivalent of the paper's $10 budget (see module docstring).
TOTAL_BUDGET_USD = 12.95


@dataclass
class Fig10Result:
    """Observed/predicted cost and time for every (GPU model, k) config."""

    model: str
    budget_usd: float
    observed: Dict[Tuple[str, int], TrainingMeasurement]
    predicted: Dict[Tuple[str, int], TrainingPrediction]

    def feasible(self, predicted: bool = False) -> Tuple[Tuple[str, int], ...]:
        source = self.predicted if predicted else self.observed
        return tuple(
            sorted(k for k, v in source.items() if v.cost_dollars <= self.budget_usd)
        )

    def best_config(self, predicted: bool = False) -> Tuple[str, int]:
        source = self.predicted if predicted else self.observed
        feasible = self.feasible(predicted)
        return min(feasible, key=lambda key: source[key].total_us)

    def feasibility_agreement(self) -> float:
        """Fraction of configurations whose feasibility Ceer gets right."""
        obs = set(self.feasible(predicted=False))
        pred = set(self.feasible(predicted=True))
        agree = sum(
            1 for key in self.observed if (key in obs) == (key in pred)
        )
        return agree / len(self.observed)

    def cheapest_rate_penalty(self) -> float:
        """Slowdown of the cheapest-hourly-rate feasible instance vs optimal."""
        feasible = self.feasible(predicted=False)
        cheapest = min(feasible, key=lambda key: self.observed[key].usd_per_hr)
        best = self.best_config(predicted=False)
        return self.observed[cheapest].total_us / self.observed[best].total_us

    def average_error(self) -> float:
        errors = [
            abs(self.predicted[key].total_us - obs.total_us) / obs.total_us
            for key, obs in self.observed.items()
        ]
        return sum(errors) / len(errors)

    def render(self) -> str:
        rows = []
        for (gpu_key, k), obs in sorted(self.observed.items()):
            pred = self.predicted[(gpu_key, k)]
            rows.append(
                [
                    f"{gpu_key}x{k}",
                    format_us(obs.total_us), format_us(pred.total_us),
                    format_dollars(obs.cost_dollars), format_dollars(pred.cost_dollars),
                    "yes" if obs.cost_dollars <= self.budget_usd else "NO",
                    "yes" if pred.cost_dollars <= self.budget_usd else "NO",
                ]
            )
        table = format_table(
            ["config", "obs T", "pred T", "obs C", "pred C",
             "obs feasible", "pred feasible"],
            rows,
            title=f"Fig 10 - {self.model} under a total budget of "
                  f"{format_dollars(self.budget_usd)}",
        )
        best_obs = self.best_config(False)
        best_pred = self.best_config(True)
        return "\n".join(
            [
                table,
                "",
                f"observed optimum: {best_obs[0]}x{best_obs[1]}; "
                f"Ceer picks: {best_pred[0]}x{best_pred[1]}",
                f"feasibility agreement: {self.feasibility_agreement():.0%}",
                f"cheapest-rate feasible instance is "
                f"{self.cheapest_rate_penalty():.1f}x slower than the optimum",
                f"average prediction error: {self.average_error():.1%}",
            ]
        )


@traced("experiments.fig10")
def run_fig10(
    model: str = "resnet_101",
    budget_usd: float = TOTAL_BUDGET_USD,
    job: TrainingJob = IMAGENET_JOB,
    estimator: CeerEstimator = None,
    gpu_counts: Sequence[int] = (1, 2, 3, 4),
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig10Result:
    """Regenerate Figure 10 across all (GPU model, k) configurations."""
    if estimator is None:
        estimator = fitted_ceer(n_iterations, workspace=workspace).estimator
    observed: Dict[Tuple[str, int], TrainingMeasurement] = {}
    predicted: Dict[Tuple[str, int], TrainingPrediction] = {}
    # One batched sweep prices the whole 16-configuration grid; each
    # cell reads its prediction out of the result tensors.
    plan = SweepPlan(
        gpu_keys=GPU_KEYS, gpu_counts=tuple(gpu_counts),
        batch_sizes=(job.batch_size,),
    )
    result = evaluate_sweep(estimator, model, job, plan)
    for g, gpu_key in enumerate(GPU_KEYS):
        for ki, k in enumerate(plan.gpu_counts):
            observed[(gpu_key, k)] = observed_training(
                model, gpu_key, k, job, n_iterations, workspace=workspace
            )
            predicted[(gpu_key, k)] = result.prediction(0, g, ki, 0)
    return Fig10Result(
        model=model, budget_usd=budget_usd, observed=observed, predicted=predicted
    )
