"""Figure 11: budget minimisation — cheapest instance for Inception-v3.

Paper, Section V ("Budget minimization scenario"): minimise the total
rental cost of training Inception-v3 on one ImageNet epoch, with no
performance target. The 1-GPU G4 instance is cheapest; the
cheapest-per-hour instance (1-GPU G3) and the most powerful (4-GPU P3)
cost 1.6x and 1.8x more respectively; Ceer's cost prediction error is
~2.1%.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import format_dollars, format_table
from repro.artifacts.workspace import Workspace, active_workspace
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.core.batch import SweepPlan, evaluate_sweep
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    fitted_ceer,
)
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import traced
from repro.sim.trace import TrainingMeasurement
from repro.workloads.dataset import TrainingJob


@dataclass
class Fig11Result:
    """Observed/predicted training cost for every (GPU model, k) config."""

    model: str
    pricing_name: str
    observed: Dict[Tuple[str, int], TrainingMeasurement]
    predicted: Dict[Tuple[str, int], TrainingPrediction]

    def best_config(self, predicted: bool = False) -> Tuple[str, int]:
        source = self.predicted if predicted else self.observed
        return min(source, key=lambda key: source[key].cost_dollars)

    def cost_ratio(self, gpu_key: str, num_gpus: int) -> float:
        """Observed cost of a config relative to the observed optimum."""
        best = self.best_config(predicted=False)
        return (
            self.observed[(gpu_key, num_gpus)].cost_dollars
            / self.observed[best].cost_dollars
        )

    def average_error(self) -> float:
        errors = [
            abs(self.predicted[key].cost_dollars - obs.cost_dollars) / obs.cost_dollars
            for key, obs in self.observed.items()
        ]
        return sum(errors) / len(errors)

    def render(self) -> str:
        rows = []
        for (gpu_key, k), obs in sorted(self.observed.items()):
            pred = self.predicted[(gpu_key, k)]
            rows.append(
                [
                    f"{gpu_key}x{k}",
                    format_dollars(obs.cost_dollars),
                    format_dollars(pred.cost_dollars),
                    f"{self.cost_ratio(gpu_key, k):.2f}x",
                ]
            )
        table = format_table(
            ["config", "observed cost", "predicted cost", "vs optimum"],
            rows,
            title=f"Fig 11-style cost minimisation - {self.model} "
                  f"({self.pricing_name} prices)",
        )
        best_obs = self.best_config(False)
        best_pred = self.best_config(True)
        return "\n".join(
            [
                table,
                "",
                f"observed cheapest: {best_obs[0]}x{best_obs[1]}; "
                f"Ceer picks: {best_pred[0]}x{best_pred[1]}",
                f"average cost prediction error: {self.average_error():.1%}",
            ]
        )


@traced("experiments.fig11")
def run_fig11(
    model: str = "inception_v3",
    job: TrainingJob = IMAGENET_JOB,
    estimator: CeerEstimator = None,
    pricing: PricingScheme = ON_DEMAND,
    gpu_counts: Sequence[int] = (1, 2, 3, 4),
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig11Result:
    """Regenerate the Figure 11 cost-minimisation sweep."""
    ws = workspace or active_workspace()
    if estimator is None:
        estimator = fitted_ceer(n_iterations, workspace=ws).estimator
    observed: Dict[Tuple[str, int], TrainingMeasurement] = {}
    predicted: Dict[Tuple[str, int], TrainingPrediction] = {}
    # One batched sweep prices the whole 16-configuration grid under the
    # scenario's pricing scheme (Fig. 12 passes market-ratio prices).
    plan = SweepPlan(
        gpu_keys=GPU_KEYS, gpu_counts=tuple(gpu_counts),
        batch_sizes=(job.batch_size,), pricings=(pricing,),
    )
    result = evaluate_sweep(estimator, model, job, plan)
    for g, gpu_key in enumerate(GPU_KEYS):
        for ki, k in enumerate(plan.gpu_counts):
            observed[(gpu_key, k)] = ws.observed_training(
                model, gpu_key, k, job, n_iterations, pricing=pricing
            )
            predicted[(gpu_key, k)] = result.prediction(0, g, ki, 0)
    return Fig11Result(
        model=model, pricing_name=pricing.name,
        observed=observed, predicted=predicted,
    )
