"""Figure 12: budget minimisation under commodity-market GPU price ratios.

Paper, Section V ("Budget minimization with commodity GPU prices ratio"):
the Fig. 11 scenario re-run with hypothetical instance prices reflecting
the GPUs' market-value ratios (P3:G4:G3:P2 hourly = $3.06:$0.95:$0.55:
$0.15, scaled linearly with GPU count). Under these prices the cheapest
configuration flips from the 1-GPU G4 to the 1-GPU P2 instance — showing
how strongly instance pricing shapes the optimal choice — and choosing
the Fig. 11 winner instead costs a multiple of the optimum.
"""

from __future__ import annotations

from typing import Optional

from repro.artifacts.workspace import Workspace
from repro.cloud.pricing import MARKET_RATIO
from repro.core.estimator import CeerEstimator
from repro.experiments.common import CANONICAL_ITERATIONS, IMAGENET_JOB
from repro.experiments.fig11_cost_min import Fig11Result, run_fig11
from repro.obs.spans import traced
from repro.workloads.dataset import TrainingJob


@traced("experiments.fig12")
def run_fig12(
    model: str = "inception_v3",
    job: TrainingJob = IMAGENET_JOB,
    estimator: CeerEstimator = None,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig11Result:
    """Regenerate Figure 12: the cost sweep under market-ratio prices.

    Delegates to :func:`run_fig11`, so it inherits the batched sweep path
    (:func:`~repro.core.batch.evaluate_sweep`): re-pricing the grid reuses
    the stacked compute totals and communication grid already cached by
    the estimator — only the price tensor changes.
    """
    return run_fig11(
        model=model, job=job, estimator=estimator,
        pricing=MARKET_RATIO, n_iterations=n_iterations,
        workspace=workspace,
    )
