"""Figure 2: operation-level compute times across AWS GPU models.

Paper, Section III-A: compute time per heavy GPU op type, averaged over
1,000 iterations of the 8 training-set CNNs, on all four GPU models.
Headline observations reproduced here:

* consistent relative ranking with P3 fastest and P2 (almost always)
  slowest — G3 beats P2 on average but loses for some memory-bound ops;
* averaged across heavy ops, P3 is several times faster than P2 and G4
  (the paper reports ~10x and ~4x; our simulated substrate compresses
  these to ~6x and ~3x — see EXPERIMENTS.md);
* the ~20 heavy op types cover the overwhelming share (47-94% per CNN) of
  training time, and light ops contribute only a few percent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace, active_workspace
from repro.core.classify import OpClassification, classify_operations
from repro.experiments.common import CANONICAL_ITERATIONS
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import traced
from repro.profiling.records import ProfileDataset


@dataclass
class Fig2Result:
    """Mean compute time per (heavy op type, GPU model), microseconds."""

    mean_us: Dict[str, Dict[str, float]]  # op_type -> gpu_key -> mean us
    classification: OpClassification
    ratio_p2_over_p3: float
    ratio_g4_over_p3: float
    ratio_p2_over_g3: float
    heavy_time_share_per_model: Dict[str, float]
    light_time_share_overall: float

    def render(self) -> str:
        rows = []
        for op_type in sorted(self.mean_us):
            per_gpu = self.mean_us[op_type]
            rows.append(
                [op_type] + [per_gpu.get(g, float("nan")) for g in GPU_KEYS]
            )
        table = format_table(
            ["heavy op type", "P3 (V100)", "P2 (K80)", "G4 (T4)", "G3 (M60)"],
            rows,
            title="Fig 2 - mean compute time per heavy GPU op type (us)",
            float_format="{:.1f}",
        )
        share_lines = [
            f"  {model}: {share:.1%}"
            for model, share in sorted(self.heavy_time_share_per_model.items())
        ]
        return "\n".join(
            [
                table,
                "",
                f"avg compute-time ratios: P2/P3 = {self.ratio_p2_over_p3:.2f}x, "
                f"G4/P3 = {self.ratio_g4_over_p3:.2f}x, "
                f"P2/G3 = {self.ratio_p2_over_g3:.2f}x",
                f"light-op share of training time: {self.light_time_share_overall:.1%}",
                "heavy-op share of per-iteration time, per training CNN:",
                *share_lines,
            ]
        )


@traced("experiments.fig2")
def run_fig2(
    profiles: ProfileDataset = None,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig2Result:
    """Regenerate Figure 2 from (workspace-cached) training-set profiles."""
    if profiles is None:
        profiles = (workspace or active_workspace()).training_profiles(n_iterations)
    classification = classify_operations(profiles)
    gpu_records = profiles.gpu_records()

    mean_us: Dict[str, Dict[str, float]] = {}
    for gpu_key in GPU_KEYS:
        for op_type, mean in gpu_records.for_gpu(gpu_key).mean_us_by_op_type().items():
            if op_type in classification.heavy:
                mean_us.setdefault(op_type, {})[gpu_key] = mean

    def _avg_ratio(numer: str, denom: str) -> float:
        ratios = [
            per_gpu[numer] / per_gpu[denom]
            for per_gpu in mean_us.values()
            if numer in per_gpu and denom in per_gpu
        ]
        return sum(ratios) / len(ratios)

    heavy_share: Dict[str, float] = {}
    light_total = 0.0
    gpu_total = 0.0
    for model in profiles.models():
        subset = gpu_records.for_model(model)
        total = sum(r.mean_us for r in subset)
        heavy = sum(r.mean_us for r in subset if r.op_type in classification.heavy)
        heavy_share[model] = heavy / total
        light_total += total - heavy
        gpu_total += total

    return Fig2Result(
        mean_us=mean_us,
        classification=classification,
        ratio_p2_over_p3=_avg_ratio("K80", "V100"),
        ratio_g4_over_p3=_avg_ratio("T4", "V100"),
        ratio_p2_over_g3=_avg_ratio("K80", "M60"),
        heavy_time_share_per_model=heavy_share,
        light_time_share_overall=light_total / gpu_total,
    )
