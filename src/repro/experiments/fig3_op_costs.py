"""Figure 3: operation-level compute costs across AWS GPU models.

Paper, Section III-B: the Fig. 2 compute times multiplied by the basic
single-GPU instance's rental cost per microsecond. Headline observations:

* G4 provides the lowest cost for most heavy ops, P3 for the pooling ops;
* P3's pooling-cost advantage averages ~20% (peak: AvgPool);
* the compute-time advantage of P3 shrinks dramatically in cost terms.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.experiments.common import CANONICAL_ITERATIONS
from repro.experiments.fig2_op_times import Fig2Result, run_fig2
from repro.graph.ops import OpCategory, op_def
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import traced
from repro.profiling.records import ProfileDataset


@dataclass
class Fig3Result:
    """Per-op rental cost over the op's compute duration (dollars * 1e9)."""

    cost_nano_dollars: Dict[str, Dict[str, float]]  # op_type -> gpu -> cost
    cheapest_gpu: Dict[str, str]
    g4_win_count: int
    p3_win_count: int
    p3_wins: Tuple[str, ...]
    pooling_p3_advantage: float  # mean cost reduction of P3 over G4 on pooling
    other_g4_advantage: float  # mean cost reduction of G4 over P3 elsewhere

    def render(self) -> str:
        rows: List[List[object]] = []
        for op_type in sorted(self.cost_nano_dollars):
            per_gpu = self.cost_nano_dollars[op_type]
            rows.append(
                [op_type]
                + [per_gpu.get(g, float("nan")) for g in GPU_KEYS]
                + [self.cheapest_gpu[op_type]]
            )
        table = format_table(
            ["heavy op type", "P3", "P2", "G4", "G3", "cheapest"],
            rows,
            title="Fig 3 - rental cost over op compute duration (nano-dollars)",
            float_format="{:.1f}",
        )
        return "\n".join(
            [
                table,
                "",
                f"cheapest-GPU tally: G4 wins {self.g4_win_count}, "
                f"P3 wins {self.p3_win_count} ({', '.join(self.p3_wins)})",
                f"P3 cost advantage on pooling ops vs G4: "
                f"{self.pooling_p3_advantage:.1%}",
                f"G4 cost advantage on its winning ops vs P3: "
                f"{self.other_g4_advantage:.1%}",
            ]
        )


@traced("experiments.fig3")
def run_fig3(
    profiles: ProfileDataset = None,
    pricing: PricingScheme = ON_DEMAND,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig3Result:
    """Regenerate Figure 3 from the Figure 2 times and instance prices."""
    fig2: Fig2Result = run_fig2(profiles, n_iterations, workspace=workspace)
    cost_per_us = {g: pricing.instance(g, 1).cost_per_us for g in GPU_KEYS}

    cost_nano_usd: Dict[str, Dict[str, float]] = {}
    cheapest: Dict[str, str] = {}
    for op_type, per_gpu in fig2.mean_us.items():
        cost_nano_usd[op_type] = {
            g: per_gpu[g] * cost_per_us[g] * 1e9 for g in per_gpu
        }
        cheapest[op_type] = min(cost_nano_usd[op_type], key=cost_nano_usd[op_type].get)

    pooling_deltas, other_deltas = [], []
    p3_wins = []
    g4_count = p3_count = 0
    for op_type, winner in cheapest.items():
        c = cost_nano_usd[op_type]
        if "V100" in c and "T4" in c:
            if op_def(op_type).category is OpCategory.POOLING:
                pooling_deltas.append(1 - c["V100"] / c["T4"])
            else:
                other_deltas.append(1 - c["T4"] / c["V100"])
        if winner == "T4":
            g4_count += 1
        elif winner == "V100":
            p3_count += 1
            p3_wins.append(op_type)

    return Fig3Result(
        cost_nano_dollars=cost_nano_usd,
        cheapest_gpu=cheapest,
        g4_win_count=g4_count,
        p3_win_count=p3_count,
        p3_wins=tuple(sorted(p3_wins)),
        pooling_p3_advantage=sum(pooling_deltas) / len(pooling_deltas),
        other_g4_advantage=sum(other_deltas) / len(other_deltas),
    )
