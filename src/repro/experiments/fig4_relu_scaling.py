"""Figure 4: ReLU compute time vs input size, with regression fits.

Paper, Section III-C: the compute time of the ReLU operation scales with
its input data size on every GPU model; the solid lines are the linear
regression fits Ceer uses (Section IV-B). This driver reproduces both the
scatter (one point per profiled ReLU instance) and the per-GPU fit, and
reports fit quality. The same analysis can be pointed at any heavy op type
(e.g. ``Conv2DBackpropFilter`` to see the quadratic-fit case).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace, active_workspace
from repro.core.regression import RegressionModel, fit_regression
from repro.experiments.common import CANONICAL_ITERATIONS
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import traced
from repro.profiling.features import feature_schema
from repro.profiling.records import ProfileDataset

import numpy as np


@dataclass
class Fig4Result:
    """Per-GPU scatter points and regression fit for one op type."""

    op_type: str
    #: gpu -> list of (input MB, mean time us) scatter points
    points: Dict[str, List[Tuple[float, float]]]
    fits: Dict[str, RegressionModel]

    def render(self) -> str:
        rows = []
        for gpu_key in GPU_KEYS:
            if gpu_key not in self.fits:
                continue
            fit = self.fits[gpu_key]
            pts = self.points[gpu_key]
            sizes = [p[0] for p in pts]
            rows.append(
                [
                    gpu_key,
                    len(pts),
                    min(sizes),
                    max(sizes),
                    "quadratic" if fit.degree == 2 else "linear",
                    fit.r2,
                ]
            )
        table = format_table(
            ["GPU", "points", "min MB", "max MB", "fit", "R^2"],
            rows,
            title=f"Fig 4 - {self.op_type} compute time vs input size",
        )
        samples = []
        for gpu_key in GPU_KEYS:
            pts = sorted(self.points.get(gpu_key, []))
            if len(pts) >= 3:
                picks = [pts[0], pts[len(pts) // 2], pts[-1]]
                samples.append(
                    f"  {gpu_key}: "
                    + "  ".join(f"{mb:8.1f} MB -> {us:9.1f} us" for mb, us in picks)
                )
        return "\n".join([table, "sample points (min/median/max input size):", *samples])


@traced("experiments.fig4")
def run_fig4(
    op_type: str = "Relu",
    profiles: ProfileDataset = None,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig4Result:
    """Regenerate Figure 4 for ``op_type`` (default: the paper's ReLU)."""
    if profiles is None:
        profiles = (workspace or active_workspace()).training_profiles(n_iterations)
    subset = profiles.gpu_records().for_op_type(op_type)
    points: Dict[str, List[Tuple[float, float]]] = {}
    fits: Dict[str, RegressionModel] = {}
    for gpu_key in subset.gpu_keys():
        records = subset.for_gpu(gpu_key).records
        points[gpu_key] = [(r.input_bytes / 1e6, r.mean_us) for r in records]
        x = np.asarray([r.features for r in records])
        y = np.asarray([r.mean_us for r in records])
        fits[gpu_key] = fit_regression(x, y, feature_schema(op_type))
    return Fig4Result(op_type=op_type, points=points, fits=fits)
