"""Figure 5: CDF of normalized standard deviation of heavy-op compute times.

Paper, Section III-C: for each {heavy GPU operation, input size} pair, the
standard deviation of compute time across 1,000 iterations, normalised by
the mean, is small — 95% of values below 0.1 — on every GPU model. Light
GPU and CPU ops exhibit much higher normalized deviation, which is why
Ceer models them with medians instead of regressions (Section IV-B).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.analysis.reporting import format_table
from repro.analysis.stats import fraction_below, percentile_of
from repro.artifacts.workspace import Workspace, active_workspace
from repro.core.classify import classify_operations
from repro.experiments.common import CANONICAL_ITERATIONS
from repro.obs.spans import traced
from repro.profiling.records import ProfileDataset


@dataclass
class Fig5Result:
    """Normalized-std distributions for heavy GPU, light GPU, and CPU ops."""

    heavy_by_gpu: Dict[str, List[float]]
    light_values: List[float]
    cpu_values: List[float]

    @property
    def heavy_all(self) -> List[float]:
        return [v for values in self.heavy_by_gpu.values() for v in values]

    def render(self) -> str:
        rows = []
        for gpu_key, values in sorted(self.heavy_by_gpu.items()):
            rows.append(
                [
                    gpu_key,
                    len(values),
                    percentile_of(values, 50),
                    percentile_of(values, 95),
                    fraction_below(values, 0.1),
                ]
            )
        table = format_table(
            ["GPU", "heavy ops", "p50 nstd", "p95 nstd", "frac < 0.1"],
            rows,
            title="Fig 5 - normalized std of heavy-op compute times, per GPU",
        )
        extra = [
            "",
            f"heavy ops overall: p95 = {percentile_of(self.heavy_all, 95):.3f}, "
            f"{fraction_below(self.heavy_all, 0.1):.1%} below 0.1",
            f"light GPU ops:     p50 = {percentile_of(self.light_values, 50):.3f} "
            f"(high variability -> median estimator)",
            f"CPU ops:           p50 = {percentile_of(self.cpu_values, 50):.3f} "
            f"(high variability -> median estimator)",
        ]
        return "\n".join([table, *extra])


@traced("experiments.fig5")
def run_fig5(
    profiles: ProfileDataset = None,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig5Result:
    """Regenerate Figure 5 from (workspace-cached) training-set profiles."""
    if profiles is None:
        profiles = (workspace or active_workspace()).training_profiles(n_iterations)
    classification = classify_operations(profiles)
    heavy_by_gpu: Dict[str, List[float]] = {}
    light_values: List[float] = []
    for record in profiles.gpu_records():
        if record.op_type in classification.heavy:
            heavy_by_gpu.setdefault(record.gpu_key, []).append(record.normalized_std)
        else:
            light_values.append(record.normalized_std)
    cpu_values = [r.normalized_std for r in profiles.cpu_records()]
    return Fig5Result(
        heavy_by_gpu=heavy_by_gpu,
        light_values=light_values,
        cpu_values=cpu_values,
    )
