"""Figure 6: training time vs number of GPUs under data parallelism.

Paper, Section III-D: training Inception-v1 on 6,400 ImageNet samples with
1-4 GPUs of each model type. The training time drops sub-linearly — the
paper reports average reductions of ~35.8%, ~46.6% and ~53.6% for 2, 3 and
4 GPUs — with diminishing returns caused by the synchronisation phase.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.analysis.reporting import format_table, format_us
from repro.analysis.stats import relative_reduction
from repro.artifacts.workspace import Workspace
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    SCALING_JOB,
    observed_training,
)
from repro.hardware.gpus import GPU_KEYS
from repro.obs.spans import traced
from repro.workloads.dataset import TrainingJob


@dataclass
class Fig6Result:
    """Observed training time per (GPU model, GPU count)."""

    model: str
    training_time_us: Dict[Tuple[str, int], float]
    gpu_counts: Tuple[int, ...]

    def reduction(self, gpu_key: str, num_gpus: int) -> float:
        """Relative training-time reduction vs the 1-GPU configuration."""
        return relative_reduction(
            self.training_time_us[(gpu_key, 1)],
            self.training_time_us[(gpu_key, num_gpus)],
        )

    def average_reduction(self, num_gpus: int) -> float:
        reductions = [self.reduction(g, num_gpus) for g in GPU_KEYS]
        return sum(reductions) / len(reductions)

    def render(self) -> str:
        rows = []
        for gpu_key in GPU_KEYS:
            row: list = [gpu_key]
            for k in self.gpu_counts:
                row.append(format_us(self.training_time_us[(gpu_key, k)]))
            for k in self.gpu_counts[1:]:
                row.append(f"{self.reduction(gpu_key, k):.1%}")
            rows.append(row)
        headers = (
            ["GPU"]
            + [f"time k={k}" for k in self.gpu_counts]
            + [f"cut k={k}" for k in self.gpu_counts[1:]]
        )
        table = format_table(
            headers, rows,
            title=f"Fig 6 - {self.model} training time vs #GPUs "
                  f"(6,400 ImageNet samples, batch 32/GPU)",
        )
        avgs = ", ".join(
            f"k={k}: {self.average_reduction(k):.1%}" for k in self.gpu_counts[1:]
        )
        return f"{table}\n\naverage reduction across GPU types: {avgs}"


@traced("experiments.fig6")
def run_fig6(
    model: str = "inception_v1",
    job: TrainingJob = SCALING_JOB,
    gpu_counts: Tuple[int, ...] = (1, 2, 3, 4),
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig6Result:
    """Regenerate Figure 6 (default: the paper's Inception-v1 workload)."""
    times_us: Dict[Tuple[str, int], float] = {}
    for gpu_key in GPU_KEYS:
        for k in gpu_counts:
            measurement = observed_training(
                model, gpu_key, k, job, n_iterations, workspace=workspace
            )
            times_us[(gpu_key, k)] = measurement.total_us
    return Fig6Result(model=model, training_time_us=times_us, gpu_counts=gpu_counts)
