"""Figure 7: per-iteration communication overhead vs model parameters.

Paper, Section IV-C: for k=2 GPUs (and similarly 3 and 4), the measured
per-iteration communication overhead of data parallelism is nearly linear
in the CNN's parameter count, for every GPU model — the relationship
Ceer's S_GPU model regresses (R² 0.88-0.98 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.core.comm_model import (
    CommObservation,
    CommunicationModel,
    collect_comm_observations,
    fit_comm_model,
)
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TRAIN_MODELS
from repro.obs.spans import traced
from repro.units import us_to_ms


@dataclass
class Fig7Result:
    """Comm-overhead observations and fitted per-(GPU, k) linear models."""

    observations: List[CommObservation]
    model: CommunicationModel
    gpu_counts: Tuple[int, ...]

    def points(self, gpu_key: str, num_gpus: int) -> List[Tuple[float, float]]:
        """(Mparams, overhead us) scatter for one GPU model and GPU count."""
        return sorted(
            (o.num_parameters / 1e6, o.overhead_us)
            for o in self.observations
            if o.gpu_key == gpu_key and o.num_gpus == num_gpus
        )

    def render(self) -> str:
        rows = []
        for gpu_key in GPU_KEYS:
            for k in self.gpu_counts:
                key = (gpu_key, k)
                if key not in self.model.models:
                    continue
                fit = self.model.models[key]
                rows.append(
                    [
                        gpu_key, k,
                        fit.intercept / 1e3,
                        fit.coef[0] / 1e3,
                        fit.r2,
                    ]
                )
        table = format_table(
            ["GPU", "k", "intercept ms", "slope ms/Mparam", "R^2"],
            rows,
            title="Fig 7 - comm overhead vs #parameters: linear fits",
        )
        k2 = [
            f"  {gpu_key}: " + "  ".join(
                f"({mp:5.0f}Mp, {us_to_ms(us):7.1f}ms)" for mp, us in self.points(gpu_key, 2)[::3]
            )
            for gpu_key in GPU_KEYS
        ]
        return "\n".join([table, "k=2 scatter (every 3rd point):", *k2])


@traced("experiments.fig7")
def run_fig7(
    models: Sequence[str] = TRAIN_MODELS,
    gpu_counts: Tuple[int, ...] = (1, 2, 3, 4),
    n_iterations: int = 300,
) -> Fig7Result:
    """Regenerate Figure 7: measure overheads and fit the linear models."""
    observations = collect_comm_observations(
        list(models), list(GPU_KEYS), gpu_counts, n_iterations=n_iterations
    )
    model = fit_comm_model(observations)
    return Fig7Result(
        observations=observations, model=model, gpu_counts=gpu_counts
    )
