"""Figure 8: validation — observed vs Ceer-predicted training time and cost.

Paper, Section V ("Validation test"): the 4 held-out test CNNs trained on
one epoch of ImageNet (1.2M samples, batch 32/GPU) on the 4-GPU instance
of every GPU model. The paper reports 5.4% average training-time
prediction error, identical cost error (cost = time x price), and perfect
agreement between predicted and observed GPU rankings per CNN.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.analysis.reporting import format_dollars, format_table, format_us
from repro.analysis.stats import rank_agreement
from repro.artifacts.workspace import Workspace
from repro.core.estimator import CeerEstimator, TrainingPrediction
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    fitted_ceer,
    observed_training,
)
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TEST_MODELS
from repro.obs.spans import traced
from repro.sim.trace import TrainingMeasurement
from repro.workloads.dataset import TrainingJob


@dataclass
class Fig8Result:
    """Observed and predicted training time/cost per (test CNN, GPU model)."""

    num_gpus: int
    observed: Dict[Tuple[str, str], TrainingMeasurement]
    predicted: Dict[Tuple[str, str], TrainingPrediction]

    def time_error(self, model: str, gpu_key: str) -> float:
        obs = self.observed[(model, gpu_key)].total_us
        pred = self.predicted[(model, gpu_key)].total_us
        return abs(pred - obs) / obs

    @property
    def average_error(self) -> float:
        errors = [self.time_error(m, g) for (m, g) in self.observed]
        return sum(errors) / len(errors)

    def ranking_correct(self, model: str) -> bool:
        obs = [self.observed[(model, g)].total_us for g in GPU_KEYS]
        pred = [self.predicted[(model, g)].total_us for g in GPU_KEYS]
        return rank_agreement(obs, pred)

    def p3_time_reduction(self, versus: str) -> float:
        """Average observed training-time reduction of P3 vs another GPU."""
        reductions = [
            1 - self.observed[(m, "V100")].total_us / self.observed[(m, versus)].total_us
            for m in TEST_MODELS
        ]
        return sum(reductions) / len(reductions)

    def cheapest_gpu(self, model: str) -> str:
        costs_usd = {g: self.observed[(model, g)].cost_dollars for g in GPU_KEYS}
        return min(costs_usd, key=costs_usd.get)

    def render(self) -> str:
        rows = []
        for (model, gpu_key), obs in sorted(self.observed.items()):
            pred = self.predicted[(model, gpu_key)]
            rows.append(
                [
                    model, gpu_key,
                    format_us(obs.total_us), format_us(pred.total_us),
                    f"{self.time_error(model, gpu_key):.1%}",
                    format_dollars(obs.cost_dollars),
                    format_dollars(pred.cost_dollars),
                ]
            )
        table = format_table(
            ["CNN", "GPU", "observed T", "predicted T", "err",
             "observed C", "predicted C"],
            rows,
            title=f"Fig 8 - validation on {self.num_gpus}-GPU instances "
                  f"(ImageNet epoch)",
        )
        ranking = ", ".join(
            f"{m}: {'OK' if self.ranking_correct(m) else 'WRONG'}"
            for m in TEST_MODELS
        )
        return "\n".join(
            [
                table,
                "",
                f"average training-time prediction error: {self.average_error:.1%}",
                f"GPU ranking agreement per CNN: {ranking}",
                f"P3 training-time reduction vs P2/G3/G4: "
                f"{self.p3_time_reduction('K80'):.1%} / "
                f"{self.p3_time_reduction('M60'):.1%} / "
                f"{self.p3_time_reduction('T4'):.1%}",
                "observed-cheapest GPU per CNN: "
                + ", ".join(f"{m}: {self.cheapest_gpu(m)}" for m in TEST_MODELS),
            ]
        )


@traced("experiments.fig8")
def run_fig8(
    models: Sequence[str] = TEST_MODELS,
    num_gpus: int = 4,
    job: TrainingJob = IMAGENET_JOB,
    estimator: CeerEstimator = None,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig8Result:
    """Regenerate Figure 8 (observed vs predicted, 4-GPU instances)."""
    if estimator is None:
        estimator = fitted_ceer(n_iterations, workspace=workspace).estimator
    observed: Dict[Tuple[str, str], TrainingMeasurement] = {}
    predicted: Dict[Tuple[str, str], TrainingPrediction] = {}
    for model in models:
        # Resolve once per CNN: the prediction engine compiles the graph a
        # single time and reuses it across all four GPU models.
        graph = estimator.resolve_graph(model, job.batch_size)
        for gpu_key in GPU_KEYS:
            observed[(model, gpu_key)] = observed_training(
                model, gpu_key, num_gpus, job, n_iterations, workspace=workspace
            )
            predicted[(model, gpu_key)] = estimator.predict_training(
                graph, gpu_key, num_gpus, job
            )
    return Fig8Result(num_gpus=num_gpus, observed=observed, predicted=predicted)
