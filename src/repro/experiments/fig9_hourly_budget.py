"""Figure 9: hourly-budget-constrained instance selection ($3/hr).

Paper, Section V ("Hourly budget constrained scenario"): minimise the
per-iteration training time (equivalently, maximise training throughput)
subject to an hourly rental budget of $3/hr. For each GPU model the
largest instance fitting the budget is considered — with the paper's
small-slack accommodation (P3's single-GPU instance exceeds the budget by
6 cents, the 3-GPU G3 proxy by 42 cents; "alternatively, we can consider
the budget to be $3.42/hr").

The paper finds the optimal choice is CNN-dependent (P3 for the
pooling-rich Inception-v3/VGG-19, G4 for AlexNet/ResNet-101) and that the
default strategy of renting the biggest-affordable P3 costs up to 91%
extra per-iteration time. Our simulated substrate reproduces the
CNN-dependent split and the Ceer-vs-default gap, with a different
assignment of CNNs to sides (see EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import format_table
from repro.artifacts.workspace import Workspace
from repro.cloud.catalog import InstanceType
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.core.batch import SweepPlan, evaluate_sweep
from repro.core.estimator import CeerEstimator
from repro.experiments.common import (
    CANONICAL_ITERATIONS,
    IMAGENET_JOB,
    fitted_ceer,
    observed_training,
)
from repro.hardware.gpus import GPU_KEYS
from repro.models.zoo import TEST_MODELS
from repro.obs.spans import traced
from repro.units import us_to_ms
from repro.workloads.dataset import TrainingJob

#: The paper's budget and slack (Fig. 9 discussion).
HOURLY_BUDGET_USD_PER_HR = 3.0
BUDGET_SLACK_USD_PER_HR = 0.42


def affordable_configs(
    budget_usd_per_hr: float = HOURLY_BUDGET_USD_PER_HR,
    slack_usd_per_hr: float = BUDGET_SLACK_USD_PER_HR,
    pricing: PricingScheme = ON_DEMAND,
    max_gpus: int = 4,
) -> List[InstanceType]:
    """Largest affordable configuration per GPU model (paper's candidates).

    With the paper's prices and slack this yields the 3-GPU P2/G3/G4
    proxies and the 1-GPU P3 instance, exactly as in Section V.
    """
    out: List[InstanceType] = []
    for gpu_key in GPU_KEYS:
        best = None
        for k in range(1, max_gpus + 1):
            instance = pricing.instance(gpu_key, k)
            if instance.usd_per_hr <= budget_usd_per_hr + slack_usd_per_hr:
                best = instance
        if best is not None:
            out.append(best)
    return out


@dataclass
class Fig9Result:
    """Observed/predicted per-sample training time per (CNN, config)."""

    configs: Tuple[InstanceType, ...]
    #: (model, instance name) -> (observed us/sample, predicted us/sample)
    per_sample_us: Dict[Tuple[str, str], Tuple[float, float]]
    batch_size: int

    def _times_us(self, model: str, predicted: bool) -> Dict[str, float]:
        index = 1 if predicted else 0
        return {
            inst.name: self.per_sample_us[(model, inst.name)][index]
            for inst in self.configs
        }

    def best_config(self, model: str, predicted: bool = False) -> str:
        times_us = self._times_us(model, predicted)
        return min(times_us, key=times_us.get)

    def prediction_error(self, model: str) -> float:
        errors = []
        for inst in self.configs:
            obs, pred = self.per_sample_us[(model, inst.name)]
            errors.append(abs(pred - obs) / obs)
        return sum(errors) / len(errors)

    def p3_default_penalty(self, model: str) -> float:
        """Extra per-sample time of the biggest-affordable-P3 default over
        the observed-optimal configuration (paper: up to +91%)."""
        times_us = self._times_us(model, predicted=False)
        p3_names = [i.name for i in self.configs if i.gpu_key == "V100"]
        if not p3_names:
            return float("nan")
        return times_us[p3_names[0]] / min(times_us.values()) - 1

    def render(self) -> str:
        rows = []
        for model in sorted({m for m, _ in self.per_sample_us}):
            for inst in self.configs:
                obs, pred = self.per_sample_us[(model, inst.name)]
                rows.append(
                    [
                        model, inst.name, f"{inst.num_gpus}x{inst.gpu_key}",
                        f"${inst.usd_per_hr:.2f}", us_to_ms(obs), us_to_ms(pred),
                    ]
                )
        table = format_table(
            ["CNN", "instance", "config", "$/hr",
             "obs ms/sample", "pred ms/sample"],
            rows,
            title=f"Fig 9 - per-sample training time under a "
                  f"${HOURLY_BUDGET_USD_PER_HR:.2f}/hr budget",
        )
        models = sorted({m for m, _ in self.per_sample_us})
        lines = [
            f"  {m}: observed best = {self.best_config(m)}, "
            f"Ceer pick = {self.best_config(m, predicted=True)}, "
            f"error = {self.prediction_error(m):.1%}, "
            f"P3-default penalty = {self.p3_default_penalty(m):+.0%}"
            for m in models
        ]
        return "\n".join([table, "", *lines])


@traced("experiments.fig9")
def run_fig9(
    models: Sequence[str] = TEST_MODELS,
    job: TrainingJob = IMAGENET_JOB,
    estimator: CeerEstimator = None,
    pricing: PricingScheme = ON_DEMAND,
    n_iterations: int = CANONICAL_ITERATIONS,
    workspace: Optional[Workspace] = None,
) -> Fig9Result:
    """Regenerate Figure 9 under the paper's $3/hr (+slack) budget."""
    if estimator is None:
        estimator = fitted_ceer(n_iterations, workspace=workspace).estimator
    configs = tuple(affordable_configs(pricing=pricing))
    per_sample: Dict[Tuple[str, str], Tuple[float, float]] = {}
    # One batched sweep per CNN prices every budget config at once: the
    # plan spans the configs' (GPU model, count) axes and each config
    # reads its cell out of the result tensors.
    gpu_axis = tuple(g for g in GPU_KEYS if any(i.gpu_key == g for i in configs))
    count_axis = tuple(sorted({inst.num_gpus for inst in configs}))
    plan = SweepPlan(
        gpu_keys=gpu_axis, gpu_counts=count_axis,
        batch_sizes=(job.batch_size,), pricings=(pricing,),
    )
    for model in models:
        result = evaluate_sweep(estimator, model, job, plan)
        for inst in configs:
            obs = observed_training(
                model, inst.gpu_key, inst.num_gpus, job, n_iterations,
                workspace=workspace,
            )
            pred = result.prediction(
                0, gpu_axis.index(inst.gpu_key),
                count_axis.index(inst.num_gpus), 0,
            )
            samples = inst.num_gpus * job.batch_size
            per_sample[(model, inst.name)] = (
                obs.per_iteration_us / samples,
                pred.per_iteration_us / samples,
            )
    return Fig9Result(
        configs=configs, per_sample_us=per_sample, batch_size=job.batch_size
    )
