"""CNN op-graph IR: shapes, operations, DAG container, builder, autodiff.

This package is the reproduction's substitute for TensorFlow's graph layer
(see DESIGN.md, Section 2): it produces, for any CNN architecture, the DAG
of TF-style training operations (forward, backward, optimizer, and host-side
input pipeline) with fully resolved shapes — the interface Ceer consumes.
"""

from repro.graph.builder import GraphBuilder
from repro.graph.recurrent import RecurrentGraphBuilder
from repro.graph.sequence import SequenceGraphBuilder
from repro.graph.flops import flop_count, graph_flops, memory_bytes
from repro.graph.graph import OpGraph
from repro.graph.layers import TensorRef, VariableSpec
from repro.graph.ops import (
    CPU_OP_TYPES,
    OP_REGISTRY,
    Device,
    OpCategory,
    OpDef,
    Operation,
    op_def,
)
from repro.graph.serialization import (
    graph_from_dict,
    graph_to_dict,
    load_graph,
    save_graph,
)
from repro.graph.shapes import TensorShape, conv_output_hw, dtype_size, total_bytes

__all__ = [
    "GraphBuilder",
    "SequenceGraphBuilder",
    "RecurrentGraphBuilder",
    "OpGraph",
    "Operation",
    "OpDef",
    "OpCategory",
    "Device",
    "OP_REGISTRY",
    "CPU_OP_TYPES",
    "op_def",
    "TensorShape",
    "TensorRef",
    "VariableSpec",
    "conv_output_hw",
    "dtype_size",
    "total_bytes",
    "flop_count",
    "graph_flops",
    "memory_bytes",
    "save_graph",
    "load_graph",
    "graph_to_dict",
    "graph_from_dict",
]
