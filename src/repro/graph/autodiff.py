"""Reverse-mode expansion: replay the builder's tape to emit backward ops.

This pass produces the TensorFlow-style gradient operations that dominate
CNN training time in the paper's empirical study (Section III):
``Conv2DBackpropFilter``/``Conv2DBackpropInput``, ``MaxPoolGrad``/
``AvgPoolGrad``, ``FusedBatchNormGradV3``, ``ReluGrad``, ``BiasAddGrad``,
and the ``AddN`` gradient-accumulation ops that appear wherever a forward
tensor fans out to multiple consumers (residual shortcuts, Inception branch
inputs).

The entry point is :func:`append_backward`, called by
:meth:`GraphBuilder.finalize`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.layers import TapeEntry, TensorRef, activation_grad_op_type
from repro.graph.shapes import TensorShape

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.graph.builder import GraphBuilder


class _GradState:
    """Accumulates gradient refs per forward tensor during the reverse sweep."""

    def __init__(self, builder: "GraphBuilder") -> None:
        self.builder = builder
        self.pending: Dict[Tuple[str, int], List[TensorRef]] = {}

    def accumulate(self, forward_ref: TensorRef, grad_ref: TensorRef) -> None:
        self.pending.setdefault(forward_ref.key, []).append(grad_ref)

    def coalesce(self, forward_ref: TensorRef, scope: str) -> TensorRef:
        """Combine all gradient contributions for ``forward_ref``.

        Multiple contributions (forward fan-out) are summed with an ``AddN``
        op, exactly as TensorFlow's gradient builder does.
        """
        grads = self.pending.pop(forward_ref.key, [])
        if not grads:
            raise GraphError(
                f"no gradient reached tensor {forward_ref.op_name!r}; "
                f"is the graph connected to the loss?"
            )
        if len(grads) == 1:
            return grads[0]
        return self.builder.emit("AddN", scope, grads, [forward_ref.shape])[0]

    def has_gradient(self, forward_ref: TensorRef) -> bool:
        return forward_ref.key in self.pending


def append_backward(
    builder: "GraphBuilder", logits: TensorRef, dlogits: TensorRef
) -> Dict[str, TensorRef]:
    """Emit the backward pass; return a map from variable name to grad ref.

    Args:
        builder: the graph builder whose tape to differentiate.
        logits: the forward tensor the loss consumed.
        dlogits: the gradient of the loss w.r.t. ``logits`` (produced by the
            fused ``SparseSoftmaxCrossEntropyWithLogits`` op).
    """
    state = _GradState(builder)
    state.accumulate(logits, dlogits)
    var_grads: Dict[str, TensorRef] = {}
    input_key = builder._input_ref.key if builder._input_ref is not None else None

    for entry in reversed(builder.tape):
        if not state.has_gradient(entry.output):
            # Dead branch (output never consumed) — nothing to differentiate.
            continue
        scope = f"gradients/{entry.scope}"
        dy = state.coalesce(entry.output, scope)
        _BACKWARD_FNS[entry.kind](builder, entry, dy, scope, state, var_grads, input_key)

    return var_grads


# ---------------------------------------------------------------------------
# per-kind backward emitters
# ---------------------------------------------------------------------------

def _activation_backward(
    builder: "GraphBuilder", entry: TapeEntry, dy: TensorRef, scope: str
) -> TensorRef:
    """If the entry ended in an activation, emit its gradient op first."""
    activation = entry.attrs.get("activation")
    if not activation:
        return dy
    act_out = entry.intermediates["act_out"]
    grad_op = activation_grad_op_type(activation)
    return builder.emit(grad_op, scope, [dy, act_out], [dy.shape])[0]


def _propagate(
    builder: "GraphBuilder",
    state: _GradState,
    forward_ref: TensorRef,
    grad_ref: TensorRef,
    input_key: Optional[Tuple[str, int]],
) -> None:
    """Route a gradient to a forward tensor unless it is the network input."""
    if forward_ref.key == input_key:
        return  # data input: gradients are discarded, as in TF
    state.accumulate(forward_ref, grad_ref)


def _conv_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    dy = _activation_backward(builder, entry, dy, scope)
    filters = entry.attrs["filters"]
    param_shape = TensorShape.of(filters)
    if entry.attrs.get("batch_norm"):
        bn_in = entry.intermediates["conv_out"]
        outs = builder.emit(
            "FusedBatchNormGradV3", scope, [dy, bn_in],
            [bn_in.shape, param_shape, param_shape],
            extra_input_shapes=[param_shape] * 2,
        )
        dy, dgamma, dbeta = outs
        var_grads[entry.variables["gamma"].name] = dgamma
        var_grads[entry.variables["beta"].name] = dbeta
    elif entry.attrs.get("use_bias"):
        dbias = builder.emit("BiasAddGrad", scope, [dy], [param_shape])[0]
        var_grads[entry.variables["bias"].name] = dbias

    conv_in = entry.intermediates["conv_in"]
    weights = entry.variables["weights"]
    attrs = {k: entry.attrs[k] for k in ("kernel", "strides", "padding")}
    dweights = builder.emit(
        "Conv2DBackpropFilter", scope, [conv_in, dy], [weights.shape],
        extra_input_shapes=[weights.shape], attrs=attrs,
    )[0]
    var_grads[weights.name] = dweights
    if conv_in.key != input_key:
        dx = builder.emit(
            "Conv2DBackpropInput", scope, [dy], [conv_in.shape],
            extra_input_shapes=[weights.shape], attrs=attrs,
        )[0]
        state.accumulate(conv_in, dx)


def _pool_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    pool_in = entry.intermediates["pool_in"]
    pool_out = entry.intermediates["pool_out"]
    attrs = {k: entry.attrs[k] for k in ("kernel", "strides", "padding")}
    if entry.attrs["pool_kind"] == "max":
        dx = builder.emit(
            "MaxPoolGrad", scope, [pool_in, pool_out, dy], [pool_in.shape], attrs=attrs
        )[0]
    else:
        dx = builder.emit(
            "AvgPoolGrad", scope, [dy], [pool_in.shape], attrs=attrs
        )[0]
    _propagate(builder, state, pool_in, dx, input_key)


def _lrn_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    lrn_in = entry.intermediates["lrn_in"]
    lrn_out = entry.intermediates["lrn_out"]
    dx = builder.emit(
        "LRNGrad", scope, [dy, lrn_in, lrn_out], [lrn_in.shape],
        attrs={"depth_radius": entry.attrs["depth_radius"]},
    )[0]
    _propagate(builder, state, lrn_in, dx, input_key)


def _dense_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    dy = _activation_backward(builder, entry, dy, scope)
    if entry.attrs.get("use_bias"):
        units = entry.attrs["units"]
        dbias = builder.emit("BiasAddGrad", scope, [dy], [TensorShape.of(units)])[0]
        var_grads[entry.variables["bias"].name] = dbias
    dense_in = entry.intermediates["dense_in"]
    weights = entry.variables["weights"]
    dweights = builder.emit(
        "MatMul", scope, [dense_in, dy], [weights.shape], attrs={"transpose_a": True}
    )[0]
    var_grads[weights.name] = dweights
    if dense_in.key != input_key:
        dx = builder.emit(
            "MatMul", scope, [dy], [dense_in.shape],
            extra_input_shapes=[weights.shape], attrs={"transpose_b": True},
        )[0]
        state.accumulate(dense_in, dx)


def _concat_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    out_shapes = [r.shape for r in entry.inputs]
    slices = builder.emit("ConcatGrad", scope, [dy], out_shapes,
                          attrs={"axis": entry.attrs["axis"]})
    for forward_ref, grad_ref in zip(entry.inputs, slices):
        _propagate(builder, state, forward_ref, grad_ref, input_key)


def _add_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    dy = _activation_backward(builder, entry, dy, scope)
    for forward_ref in entry.inputs:
        _propagate(builder, state, forward_ref, dy, input_key)


def _dropout_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    x = entry.inputs[0]
    dx = builder.emit("Mul", scope, [dy], [x.shape], extra_input_shapes=[x.shape])[0]
    _propagate(builder, state, x, dx, input_key)


def _reshape_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    x = entry.inputs[0]
    dx = builder.emit("Reshape", scope, [dy], [x.shape])[0]
    _propagate(builder, state, x, dx, input_key)


def _gap_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    # Gradient of a spatial mean: broadcast-and-scale, lowered to a Mul.
    x = entry.inputs[0]
    dx = builder.emit("Mul", scope, [dy], [x.shape])[0]
    _propagate(builder, state, x, dx, input_key)


def _pad_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: _GradState,
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    x = entry.inputs[0]
    dx = builder.emit("Slice", scope, [dy], [x.shape])[0]
    _propagate(builder, state, x, dx, input_key)


#: Per-kind backward emitter signature; extension builders (sequence,
#: recurrent) register additional kinds at import time.
BackwardFn = Callable[
    ["GraphBuilder", TapeEntry, TensorRef, str, _GradState,
     Dict[str, TensorRef], Optional[Tuple[str, int]]],
    None,
]

_BACKWARD_FNS: Dict[str, BackwardFn] = {
    "conv": _conv_backward,
    "pool": _pool_backward,
    "lrn": _lrn_backward,
    "dense": _dense_backward,
    "concat": _concat_backward,
    "add": _add_backward,
    "dropout": _dropout_backward,
    "reshape": _reshape_backward,
    "global_avg_pool": _gap_backward,
    "pad": _pad_backward,
}
