"""Functional graph builder: from layer calls to a TensorFlow-style op DAG.

Usage mirrors a minimal Keras functional API::

    b = GraphBuilder("tiny", batch_size=32, image_hw=(32, 32))
    x = b.input()
    x = b.conv(x, filters=16, kernel=3)
    x = b.max_pool(x, kernel=2, stride=2)
    x = b.flatten(x)
    logits = b.dense(x, units=10, activation=None)
    graph = b.finalize(logits)

``finalize`` appends the loss, the full backward pass (via
:mod:`repro.graph.autodiff`), and one optimizer-update op per trainable
variable, then returns a validated :class:`~repro.graph.graph.OpGraph` whose
``num_parameters`` matches the sum of variable sizes. The resulting op
multiset is what the paper's Figure 1 depicts for Inception-v3: forward
convolutions/poolings plus their gradient counterparts plus host-side input
pipeline ops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import GraphError, ShapeError
from repro.graph.graph import OpGraph
from repro.graph.layers import (
    TapeEntry,
    TensorRef,
    VariableSpec,
    activation_op_type,
)
from repro.graph.ops import Device, Operation
from repro.graph.shapes import TensorShape, conv_output_hw

#: Layer arguments accepting an int or an (h, w) pair.
IntOrPair = Union[int, Tuple[int, int]]


def _pair(value: "IntOrPair") -> Tuple[int, int]:
    """Normalise an int-or-pair layer argument to an (h, w) tuple."""
    if isinstance(value, int):
        return (value, value)
    h, w = value
    return (int(h), int(w))


class GraphBuilder:
    """Incrementally constructs an :class:`OpGraph` for one training iteration.

    Args:
        name: model name, used for the graph and error messages.
        batch_size: per-device batch size (the paper's default is 32).
        image_hw: input image spatial size (e.g. ``(224, 224)``).
        image_channels: input channel count (3 for ImageNet RGB).
        num_classes: label cardinality (1000 for ImageNet).
        optimizer: ``"momentum"`` (default, TF-Slim style) or ``"sgd"``.
    """

    def __init__(
        self,
        name: str,
        batch_size: int = 32,
        image_hw: Tuple[int, int] = (224, 224),
        image_channels: int = 3,
        num_classes: int = 1000,
        optimizer: str = "momentum",
    ) -> None:
        if optimizer not in ("momentum", "sgd"):
            raise GraphError(f"unknown optimizer {optimizer!r}")
        self.graph = OpGraph(name=name, batch_size=batch_size)
        self.batch_size = batch_size
        self.image_hw = _pair(image_hw)
        self.image_channels = image_channels
        self.num_classes = num_classes
        self.optimizer = optimizer
        self.tape: List[TapeEntry] = []
        self.variables: List[VariableSpec] = []
        self._name_counts: Dict[str, int] = {}
        self._finalized = False
        self._input_ref: Optional[TensorRef] = None
        self._labels_ref: Optional[TensorRef] = None

    # ------------------------------------------------------------------
    # naming / low-level emission
    # ------------------------------------------------------------------
    def _unique(self, scope: str) -> str:
        """Return a unique hierarchical node name for ``scope``."""
        n = self._name_counts.get(scope, 0)
        self._name_counts[scope] = n + 1
        return scope if n == 0 else f"{scope}_{n}"

    def emit(
        self,
        op_type: str,
        scope: str,
        inputs: Sequence[TensorRef],
        outputs: Sequence[TensorShape],
        extra_input_shapes: Sequence[TensorShape] = (),
        attrs: Optional[Dict[str, object]] = None,
        device: Optional[Device] = None,
    ) -> List[TensorRef]:
        """Emit one operation and return refs to each of its outputs.

        ``extra_input_shapes`` covers tensors that are inputs by *size* but
        not graph edges we track (weights, constants): they contribute to the
        op's input-size feature without creating producer dependencies.
        """
        if self._finalized:
            raise GraphError(f"graph {self.graph.name!r} is already finalized")
        name = self._unique(f"{scope}/{op_type}")
        from repro.graph.ops import op_def  # local to avoid cycle at import

        resolved_device = device if device is not None else op_def(op_type).device
        op = Operation(
            name=name,
            op_type=op_type,
            inputs=tuple(r.shape for r in inputs) + tuple(extra_input_shapes),
            outputs=tuple(outputs),
            input_ops=tuple(dict.fromkeys(r.op_name for r in inputs)),
            attrs=attrs or {},
            device=resolved_device,
        )
        self.graph.add(op)
        return [TensorRef(name, s, i) for i, s in enumerate(outputs)]

    def add_variable(self, name: str, shape: TensorShape) -> VariableSpec:
        var = VariableSpec(name=name, shape=shape)
        self.variables.append(var)
        return var

    # ------------------------------------------------------------------
    # input pipeline (host-side ops, Section IV-B's "CPU operations")
    # ------------------------------------------------------------------
    def input(self, scope: str = "input_pipeline") -> TensorRef:
        """Create the host-side input pipeline and return the image batch ref.

        Emits ``IteratorGetNext`` -> ``DecodeAndResize`` -> ``Cast`` for the
        images and ``SparseToDense``/``OneHot`` for the labels — the CPU ops
        whose high-variance compute times Ceer covers with a sample-median
        estimate (paper, Section IV-B).
        """
        if self._input_ref is not None:
            raise GraphError("input() may only be called once per builder")
        h, w = self.image_hw
        img = TensorShape.of(self.batch_size, h, w, self.image_channels)
        lbl = TensorShape.of(self.batch_size, dtype="int64")
        nxt = self.emit("IteratorGetNext", scope, [], [img, lbl])
        raw_images, raw_labels = nxt[0], nxt[1]
        decoded = self.emit("DecodeAndResize", scope, [raw_images], [img])[0]
        images = self.emit("Cast", scope, [decoded], [img])[0]
        dense = self.emit("SparseToDense", scope, [raw_labels], [lbl])[0]
        onehot_shape = TensorShape.of(self.batch_size, self.num_classes)
        self.emit("OneHot", scope, [dense], [onehot_shape])
        labels = self.emit(
            "Cast", scope, [dense], [TensorShape.of(self.batch_size, dtype="int32")]
        )[0]
        self._input_ref = images
        self._labels_ref = labels
        return images

    # ------------------------------------------------------------------
    # layer primitives
    # ------------------------------------------------------------------
    def conv(
        self,
        x: TensorRef,
        filters: int,
        kernel: IntOrPair,
        stride: IntOrPair = 1,
        padding: str = "SAME",
        activation: Optional[str] = "relu",
        use_bias: bool = True,
        batch_norm: bool = False,
        scope: Optional[str] = None,
    ) -> TensorRef:
        """A convolution block: Conv2D [+ BiasAdd | FusedBatchNormV3] [+ Relu].

        When ``batch_norm`` is set the bias is dropped (standard practice —
        BN's beta subsumes it), matching TF-Slim's conv2d+BN arg scoping.
        """
        kh, kw = _pair(kernel)
        sh, sw = _pair(stride)
        scope = self._unique(scope or "conv")
        in_c = x.shape.channels
        out_h, out_w = conv_output_hw(x.shape.height, x.shape.width, kh, kw, sh, sw, padding)
        filter_shape = TensorShape.of(kh, kw, in_c, filters)
        out_shape = TensorShape.of(x.shape.batch, out_h, out_w, filters)
        weights = self.add_variable(f"{scope}/weights", filter_shape)
        attrs = {"kernel": (kh, kw), "strides": (sh, sw), "padding": padding.upper()}
        y = self.emit(
            "Conv2D", scope, [x], [out_shape],
            extra_input_shapes=[filter_shape], attrs=attrs,
        )[0]
        entry = TapeEntry(
            kind="conv",
            inputs=(x,),
            output=y,
            scope=scope,
            variables={"weights": weights},
            intermediates={"conv_out": y, "conv_in": x},
            attrs=dict(attrs, activation=activation, batch_norm=batch_norm,
                       use_bias=use_bias and not batch_norm, filters=filters),
        )
        if batch_norm:
            param_shape = TensorShape.of(filters)
            gamma = self.add_variable(f"{scope}/gamma", param_shape)
            beta = self.add_variable(f"{scope}/beta", param_shape)
            y = self.emit(
                "FusedBatchNormV3", scope, [y], [out_shape],
                extra_input_shapes=[param_shape] * 4,
            )[0]
            entry.variables["gamma"] = gamma
            entry.variables["beta"] = beta
            entry.intermediates["bn_out"] = y
        elif use_bias:
            bias_shape = TensorShape.of(filters)
            bias = self.add_variable(f"{scope}/bias", bias_shape)
            y = self.emit(
                "BiasAdd", scope, [y], [out_shape], extra_input_shapes=[bias_shape]
            )[0]
            entry.variables["bias"] = bias
            entry.intermediates["bias_out"] = y
        act_op = activation_op_type(activation)
        if act_op is not None:
            y = self.emit(act_op, scope, [y], [out_shape])[0]
            entry.intermediates["act_out"] = y
        entry.output = y
        self.tape.append(entry)
        return y

    def _pool(
        self, x: TensorRef, kind: str, kernel: IntOrPair, stride: IntOrPair,
        padding: str, scope: Optional[str]
    ) -> TensorRef:
        kh, kw = _pair(kernel)
        sh, sw = _pair(stride)
        scope = self._unique(scope or f"{kind}_pool")
        out_h, out_w = conv_output_hw(x.shape.height, x.shape.width, kh, kw, sh, sw, padding)
        out_shape = TensorShape.of(x.shape.batch, out_h, out_w, x.shape.channels)
        op_type = "MaxPool" if kind == "max" else "AvgPool"
        attrs = {"kernel": (kh, kw), "strides": (sh, sw), "padding": padding.upper()}
        y = self.emit(op_type, scope, [x], [out_shape], attrs=attrs)[0]
        self.tape.append(
            TapeEntry(
                kind="pool", inputs=(x,), output=y, scope=scope,
                intermediates={"pool_in": x, "pool_out": y},
                attrs=dict(attrs, pool_kind=kind),
            )
        )
        return y

    def max_pool(self, x: TensorRef, kernel: IntOrPair, stride: IntOrPair,
             padding: str = "VALID", scope: Optional[str] = None) -> TensorRef:
        return self._pool(x, "max", kernel, stride, padding, scope)

    def avg_pool(self, x: TensorRef, kernel: IntOrPair, stride: IntOrPair,
             padding: str = "VALID", scope: Optional[str] = None) -> TensorRef:
        return self._pool(x, "avg", kernel, stride, padding, scope)

    def lrn(self, x: TensorRef, depth_radius: int = 5, scope: Optional[str] = None) -> TensorRef:
        """Local response normalisation (AlexNet)."""
        scope = self._unique(scope or "lrn")
        y = self.emit("LRN", scope, [x], [x.shape], attrs={"depth_radius": depth_radius})[0]
        self.tape.append(
            TapeEntry(
                kind="lrn", inputs=(x,), output=y, scope=scope,
                intermediates={"lrn_in": x, "lrn_out": y},
                attrs={"depth_radius": depth_radius},
            )
        )
        return y

    def concat(self, xs: Sequence[TensorRef], scope: Optional[str] = None) -> TensorRef:
        """Channel-axis concatenation (Inception branch merge)."""
        if len(xs) < 2:
            raise GraphError("concat needs at least two inputs")
        first = xs[0].shape
        for r in xs[1:]:
            if (r.shape.batch, r.shape.height, r.shape.width) != (
                first.batch, first.height, first.width,
            ):
                raise ShapeError(
                    f"concat inputs disagree on N/H/W: {first} vs {r.shape}"
                )
        scope = self._unique(scope or "concat")
        out_c = sum(r.shape.channels for r in xs)
        out_shape = TensorShape.of(first.batch, first.height, first.width, out_c)
        y = self.emit("ConcatV2", scope, list(xs), [out_shape], attrs={"axis": 3})[0]
        self.tape.append(
            TapeEntry(kind="concat", inputs=tuple(xs), output=y, scope=scope,
                      attrs={"axis": 3})
        )
        return y

    def add(self, a: TensorRef, b: TensorRef, activation: Optional[str] = None,
            scope: Optional[str] = None) -> TensorRef:
        """Elementwise residual addition, optionally followed by an activation."""
        if a.shape != b.shape:
            raise ShapeError(f"residual add shape mismatch: {a.shape} vs {b.shape}")
        scope = self._unique(scope or "residual_add")
        y = self.emit("AddV2", scope, [a, b], [a.shape])[0]
        entry = TapeEntry(kind="add", inputs=(a, b), output=y, scope=scope,
                          attrs={"activation": activation})
        act_op = activation_op_type(activation)
        if act_op is not None:
            y = self.emit(act_op, scope, [y], [a.shape])[0]
            entry.intermediates["act_out"] = y
            entry.output = y
        self.tape.append(entry)
        return y

    def dropout(self, x: TensorRef, rate: float = 0.5, scope: Optional[str] = None) -> TensorRef:
        """Dropout as an elementwise mask multiply (training mode)."""
        scope = self._unique(scope or "dropout")
        y = self.emit("Mul", scope, [x], [x.shape], extra_input_shapes=[x.shape],
                      attrs={"rate": rate})[0]
        self.tape.append(
            TapeEntry(kind="dropout", inputs=(x,), output=y, scope=scope,
                      attrs={"rate": rate})
        )
        return y

    def scale(self, x: TensorRef, factor: float, scope: Optional[str] = None) -> TensorRef:
        """Multiply by a scalar (Inception-ResNet residual scaling).

        Emitted as an elementwise ``Mul``; the backward pass is another Mul,
        shared with dropout's tape handling.
        """
        scope = self._unique(scope or "scale")
        y = self.emit(
            "Mul", scope, [x], [x.shape],
            extra_input_shapes=[TensorShape.scalar()], attrs={"factor": factor},
        )[0]
        self.tape.append(
            TapeEntry(kind="dropout", inputs=(x,), output=y, scope=scope,
                      attrs={"factor": factor})
        )
        return y

    def pad(self, x: TensorRef, pad_h: int, pad_w: int, scope: Optional[str] = None) -> TensorRef:
        """Zero-pad spatial dims by (pad_h, pad_w) on each side."""
        scope = self._unique(scope or "pad")
        out_shape = TensorShape.of(
            x.shape.batch, x.shape.height + 2 * pad_h, x.shape.width + 2 * pad_w,
            x.shape.channels,
        )
        y = self.emit("Pad", scope, [x], [out_shape],
                      attrs={"paddings": (pad_h, pad_w)})[0]
        self.tape.append(
            TapeEntry(kind="pad", inputs=(x,), output=y, scope=scope,
                      attrs={"paddings": (pad_h, pad_w)})
        )
        return y

    def flatten(self, x: TensorRef, scope: Optional[str] = None) -> TensorRef:
        """Collapse an NHWC tensor to (batch, features) via a Reshape."""
        scope = self._unique(scope or "flatten")
        out_shape = TensorShape.of(
            x.shape.batch, x.shape.height * x.shape.width * x.shape.channels
        )
        y = self.emit("Reshape", scope, [x], [out_shape])[0]
        self.tape.append(TapeEntry(kind="reshape", inputs=(x,), output=y, scope=scope))
        return y

    def global_avg_pool(self, x: TensorRef, scope: Optional[str] = None) -> TensorRef:
        """Spatial mean reduction to (batch, channels) (Inception/ResNet heads)."""
        scope = self._unique(scope or "global_avg_pool")
        out_shape = TensorShape.of(x.shape.batch, x.shape.channels)
        y = self.emit("Mean", scope, [x], [out_shape], attrs={"axes": (1, 2)})[0]
        self.tape.append(
            TapeEntry(kind="global_avg_pool", inputs=(x,), output=y, scope=scope)
        )
        return y

    def dense(
        self,
        x: TensorRef,
        units: int,
        activation: Optional[str] = "relu",
        use_bias: bool = True,
        scope: Optional[str] = None,
    ) -> TensorRef:
        """A fully-connected block: MatMul [+ BiasAdd] [+ activation]."""
        if x.shape.rank != 2:
            raise ShapeError(f"dense expects rank-2 input, got {x.shape}; flatten first")
        scope = self._unique(scope or "dense")
        batch, in_features = x.shape.dims
        w_shape = TensorShape.of(in_features, units)
        out_shape = TensorShape.of(batch, units)
        weights = self.add_variable(f"{scope}/weights", w_shape)
        y = self.emit("MatMul", scope, [x], [out_shape], extra_input_shapes=[w_shape])[0]
        entry = TapeEntry(
            kind="dense", inputs=(x,), output=y, scope=scope,
            variables={"weights": weights},
            intermediates={"matmul_out": y, "dense_in": x},
            attrs={"units": units, "activation": activation, "use_bias": use_bias},
        )
        if use_bias:
            bias_shape = TensorShape.of(units)
            bias = self.add_variable(f"{scope}/bias", bias_shape)
            y = self.emit("BiasAdd", scope, [y], [out_shape],
                          extra_input_shapes=[bias_shape])[0]
            entry.variables["bias"] = bias
            entry.intermediates["bias_out"] = y
        act_op = activation_op_type(activation)
        if act_op is not None:
            y = self.emit(act_op, scope, [y], [out_shape])[0]
            entry.intermediates["act_out"] = y
        entry.output = y
        self.tape.append(entry)
        return y

    # ------------------------------------------------------------------
    # finalisation: loss + backward + optimizer
    # ------------------------------------------------------------------
    def finalize(self, logits: TensorRef) -> OpGraph:
        """Append loss, backward pass, and optimizer updates; return the graph."""
        if self._finalized:
            raise GraphError(f"graph {self.graph.name!r} is already finalized")
        if self._labels_ref is None:
            raise GraphError("call input() before finalize() so labels exist")
        if logits.shape.rank != 2 or logits.shape.dims[1] != self.num_classes:
            raise ShapeError(
                f"logits shape {logits.shape} does not match num_classes={self.num_classes}"
            )
        batch = logits.shape.dims[0]
        loss_shape = TensorShape.of(batch)
        loss_outs = self.emit(
            "SparseSoftmaxCrossEntropyWithLogits",
            "loss",
            [logits, self._labels_ref],
            [loss_shape, logits.shape],  # (per-sample loss, dlogits)
        )
        per_sample_loss, dlogits = loss_outs
        self.emit("Mean", "loss", [per_sample_loss], [TensorShape.scalar()])

        from repro.graph.autodiff import append_backward  # deferred: avoids cycle

        grads = append_backward(self, logits, dlogits)
        self._emit_optimizer(grads)
        self.graph.num_parameters = sum(v.num_parameters for v in self.variables)
        self.graph.num_variables = len(self.variables)
        self._finalized = True
        self.graph.validate()
        return self.graph

    def _emit_optimizer(self, grads: Dict[str, TensorRef]) -> None:
        """One parameter-update op per trainable variable."""
        op_type = "ApplyMomentum" if self.optimizer == "momentum" else "ApplyGradientDescent"
        missing = [v.name for v in self.variables if v.name not in grads]
        if missing:
            raise GraphError(
                f"backward pass produced no gradient for variables {missing[:5]}"
            )
        for var in self.variables:
            grad_ref = grads[var.name]
            self.emit(
                op_type,
                f"train/{var.name}",
                [grad_ref],
                [var.shape],
                extra_input_shapes=[var.shape, TensorShape.scalar()],
            )
