"""Per-operation FLOP counts and memory-traffic estimates.

Two consumers:

* the simulated hardware's ground-truth kernel-time law
  (:mod:`repro.hardware.kernel_model`), which uses a roofline over FLOPs and
  bytes, and
* the PALEO-style baseline predictor (:mod:`repro.core.baselines`), which the
  paper's related-work section describes as "a linear model of the number of
  floating-point operations in each iteration".

Ceer itself never uses FLOP counts — its features are input *sizes*
(Section IV-B) — so these calculators sit on the hardware/baseline side of
the simulation boundary.

Conventions: a fused multiply-add counts as 2 FLOPs; comparisons (max
pooling) count as 1. Memory traffic is the sum of input and output bytes
(each tensor read/written once — fused kernels, which is what TF emits for
these ops, do not re-read intermediates).
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Iterable

from repro.errors import ShapeError, UnknownOpError
from repro.graph.ops import Operation


def _out_elements(op: Operation) -> int:
    return sum(s.num_elements for s in op.outputs)


def _in_elements(op: Operation) -> int:
    return sum(s.num_elements for s in op.inputs)


def _conv2d_flops(op: Operation) -> int:
    """2 * output_elements * (KH * KW * C_reduced) for Conv2D and gradients.

    Both backprop ops perform the same multiply-accumulate volume as the
    forward pass (standard result; see e.g. the PALEO paper). The window
    size comes from the op's ``kernel`` attr; the reduced channel count from
    the relevant tensor shape:

    * ``Conv2D``: inputs are ``(x, filter)``; volume = |y| * KH*KW*IC.
    * ``Conv2DBackpropInput``: inputs are ``(dy, filter)``, output is dx;
      volume = |dy| * KH*KW*IC where IC = dx channels.
    * ``Conv2DBackpropFilter``: inputs are ``(x, dy, filter)``;
      volume = |dy| * KH*KW*IC where IC = x channels.
    """
    kernel = op.attrs.get("kernel")
    if kernel is None:
        raise ShapeError(f"{op.op_type} {op.name!r} is missing the 'kernel' attr")
    kh, kw = kernel
    if op.op_type == "Conv2D":
        out_elems = _out_elements(op)
        reduced_c = op.inputs[0].channels
    elif op.op_type == "Conv2DBackpropInput":
        out_elems = op.inputs[0].num_elements  # dy
        reduced_c = op.outputs[0].channels
    else:  # Conv2DBackpropFilter
        if len(op.inputs) < 2:
            raise ShapeError(f"{op.op_type} {op.name!r} needs (x, dy) input shapes")
        out_elems = op.inputs[1].num_elements  # dy
        reduced_c = op.inputs[0].channels
    return 2 * out_elems * kh * kw * reduced_c


def _matmul_flops(op: Operation) -> int:
    """2 * |output| * shared_dim, robust to transposed operand layouts.

    For any of the three matmuls a dense layer emits — forward (B,K)x(K,N),
    weight gradient (B,K)^T x (B,N), input gradient (B,N) x (K,N)^T — the
    product of input element counts divided by the output element count is
    the square of the contracted dimension.
    """
    if len(op.inputs) < 2 or op.inputs[0].rank != 2 or op.inputs[1].rank != 2:
        raise ShapeError(f"MatMul {op.name!r} needs two rank-2 inputs")
    a, b = op.inputs[0], op.inputs[1]
    out = op.outputs[0]
    shared_sq, rem = divmod(a.num_elements * b.num_elements, out.num_elements)
    shared = math.isqrt(shared_sq)
    if rem or shared * shared != shared_sq:
        raise ShapeError(
            f"MatMul {op.name!r} shapes are inconsistent: {a} x {b} -> {out}"
        )
    return 2 * out.num_elements * shared


def _batch_matmul_flops(op: Operation) -> int:
    """2 * B * M * K * N for batched matmuls, robust to transposed layouts.

    As with :func:`_matmul_flops`, the contracted dimension is recovered
    from element counts: for any (B,M,K)-by-(B,K,N)-to-(B,M,N) product (up
    to per-operand transposes), ``|a| * |b| / (|out| * B)`` is the square
    of the contracted dimension.
    """
    if len(op.inputs) < 2 or op.inputs[0].rank != 3 or op.inputs[1].rank != 3:
        raise ShapeError(f"BatchMatMul {op.name!r} needs two rank-3 inputs")
    a, b = op.inputs[0], op.inputs[1]
    out = op.outputs[0]
    batch = a.dims[0]
    if b.dims[0] != batch or out.dims[0] != batch:
        raise ShapeError(
            f"BatchMatMul {op.name!r} batch dims disagree: {a} x {b} -> {out}"
        )
    shared_sq, rem = divmod(a.num_elements * b.num_elements, out.num_elements * batch)
    shared = math.isqrt(shared_sq)
    if rem or shared * shared != shared_sq:
        raise ShapeError(
            f"BatchMatMul {op.name!r} shapes are inconsistent: {a} x {b} -> {out}"
        )
    return 2 * out.num_elements * shared


def _pool_flops(op: Operation) -> int:
    """One op (compare or add) per window element per output element."""
    window = op.attrs.get("kernel", (2, 2))
    kh, kw = window
    grad = op.op_type.endswith("Grad")
    # Grad kernels touch every input element once plus routing logic.
    base = _in_elements(op) if grad else _out_elements(op) * kh * kw
    return int(base * (2 if grad else 1))


def _batchnorm_flops(op: Operation) -> int:
    # ~8 flops/element forward (normalise + scale/shift), ~13 backward
    per_elem = 13 if op.op_type.endswith("GradV3") else 8
    return _in_elements(op) * per_elem


def _lrn_flops(op: Operation) -> int:
    depth = int(op.attrs.get("depth_radius", 5))
    per_elem = (2 * depth + 1) * 3
    return _in_elements(op) * per_elem


def _elementwise_flops(op: Operation) -> int:
    return max(_in_elements(op), _out_elements(op))


def _softmax_flops(op: Operation) -> int:
    return 5 * _in_elements(op)  # exp, sum, div (+ log for the fused loss)


def _optimizer_flops(op: Operation) -> int:
    return 4 * _out_elements(op)  # momentum update: 2 muls + 2 adds per param


def _zero_flops(op: Operation) -> int:
    return 0


_FLOP_FNS: Dict[str, Callable[[Operation], int]] = {
    "Conv2D": _conv2d_flops,
    "Conv2DBackpropInput": _conv2d_flops,
    "Conv2DBackpropFilter": _conv2d_flops,
    "MatMul": _matmul_flops,
    "BatchMatMul": _batch_matmul_flops,
    "MaxPool": _pool_flops,
    "MaxPoolGrad": _pool_flops,
    "AvgPool": _pool_flops,
    "AvgPoolGrad": _pool_flops,
    "FusedBatchNormV3": _batchnorm_flops,
    "FusedBatchNormGradV3": _batchnorm_flops,
    "LRN": _lrn_flops,
    "LRNGrad": _lrn_flops,
    "LayerNorm": _batchnorm_flops,
    "LayerNormGrad": _batchnorm_flops,
    "Relu": _elementwise_flops,
    "ReluGrad": _elementwise_flops,
    "BiasAdd": _elementwise_flops,
    "BiasAddGrad": _elementwise_flops,
    "AddV2": _elementwise_flops,
    "AddN": _elementwise_flops,
    "ConcatV2": _zero_flops,
    "ConcatGrad": _zero_flops,
    "Softmax": _softmax_flops,
    "SparseSoftmaxCrossEntropyWithLogits": _softmax_flops,
    "Mul": _elementwise_flops,
    "Sub": _elementwise_flops,
    "Mean": _elementwise_flops,
    "Pad": _zero_flops,
    "Tanh": _softmax_flops,
    "Gelu": _softmax_flops,
    "GeluGrad": _softmax_flops,
    "Sigmoid": _softmax_flops,
    "SigmoidGrad": _elementwise_flops,
    "SoftmaxGrad": _elementwise_flops,
    "ApplyMomentum": _optimizer_flops,
    "ApplyGradientDescent": _optimizer_flops,
    "Identity": _zero_flops,
    "Reshape": _zero_flops,
    "Squeeze": _zero_flops,
    "Slice": _zero_flops,
    "Transpose": _zero_flops,
    "Gather": _zero_flops,
    "Scatter": _zero_flops,
    "IteratorGetNext": _zero_flops,
    "DecodeAndResize": _elementwise_flops,
    "SparseToDense": _zero_flops,
    "OneHot": _zero_flops,
    "Cast": _elementwise_flops,
    "Shape": _zero_flops,
}


def flop_count(op: Operation) -> int:
    """Floating-point operations executed by ``op`` (0 for pure data movement)."""
    try:
        fn = _FLOP_FNS[op.op_type]
    except KeyError:
        raise UnknownOpError(f"no FLOP model for op type {op.op_type!r}")
    return int(fn(op))


def memory_bytes(op: Operation) -> int:
    """Bytes moved to/from device memory by ``op`` (inputs read + outputs written)."""
    return op.input_bytes + op.output_bytes


def graph_flops(ops: Iterable[Operation]) -> int:
    """Total FLOPs across an iterable of operations (PALEO baseline feature)."""
    return sum(flop_count(op) for op in ops)
