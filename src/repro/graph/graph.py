"""The operation-graph container: a validated DAG of :class:`Operation` nodes.

An :class:`OpGraph` is what the rest of the system consumes: the simulator
iterates its nodes to produce timings, the profiler extracts per-op features
from it, and Ceer's estimator sums per-op predictions over it (Eq. (1)/(2)
of the paper). The graph also carries the trainable-parameter count, which
is the sole input to Ceer's communication-overhead model (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import GraphError
from repro.graph.ops import Device, OpCategory, Operation


@dataclass
class OpGraph:
    """A directed acyclic graph of operations for one training iteration.

    Attributes:
        name: model name (e.g. ``"inception_v3"``).
        batch_size: per-device batch size the graph was built for.
        num_parameters: total trainable parameters (weights + biases + BN
            scales/offsets) of the model.
        num_variables: number of trainable weight *tensors* (each one is a
            separate synchronisation unit under data parallelism).
    """

    name: str
    batch_size: int
    num_parameters: int = 0
    num_variables: int = 0
    _ops: Dict[str, Operation] = field(default_factory=dict)
    _topo_cache: Optional[List[Operation]] = field(default=None, repr=False)

    # -- construction -----------------------------------------------------
    def add(self, op: Operation) -> Operation:
        """Add an operation; producer ops must already be present."""
        if op.name in self._ops:
            raise GraphError(f"duplicate operation name {op.name!r} in graph {self.name!r}")
        for producer in op.input_ops:
            if producer not in self._ops:
                raise GraphError(
                    f"operation {op.name!r} references unknown producer {producer!r}; "
                    f"add producers before consumers"
                )
        self._ops[op.name] = op
        self._topo_cache = None
        return op

    def extend(self, ops: Iterable[Operation]) -> None:
        for op in ops:
            self.add(op)

    # -- accessors -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops.values())

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def get(self, name: str) -> Operation:
        try:
            return self._ops[name]
        except KeyError:
            raise GraphError(f"no operation named {name!r} in graph {self.name!r}")

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """All operations in insertion order (a valid topological order,
        since producers must be added before consumers)."""
        return tuple(self._ops.values())

    def ops_on(self, device: Device) -> Tuple[Operation, ...]:
        return tuple(op for op in self._ops.values() if op.device is device)

    def ops_of_type(self, op_type: str) -> Tuple[Operation, ...]:
        return tuple(op for op in self._ops.values() if op.op_type == op_type)

    def op_type_counts(self) -> Dict[str, int]:
        """Histogram of op types — the paper's observation that CNNs share a
        small set of unique op types (Section III-A) is checkable from this."""
        counts: Dict[str, int] = {}
        for op in self._ops.values():
            counts[op.op_type] = counts.get(op.op_type, 0) + 1
        return counts

    def category_counts(self) -> Dict[OpCategory, int]:
        counts: Dict[OpCategory, int] = {}
        for op in self._ops.values():
            counts[op.category] = counts.get(op.category, 0) + 1
        return counts

    # -- validation ---------------------------------------------------------
    def topological_order(self) -> List[Operation]:
        """Kahn's algorithm topological sort; raises on cycles.

        Insertion order is already topological by construction, but this
        method re-derives and *validates* the ordering independently, which
        the graph tests rely on.
        """
        if self._topo_cache is not None:
            return self._topo_cache
        indegree = {name: len(op.input_ops) for name, op in self._ops.items()}
        consumers: Dict[str, List[str]] = {name: [] for name in self._ops}
        for op in self._ops.values():
            for producer in op.input_ops:
                consumers[producer].append(op.name)
        ready = [name for name, deg in indegree.items() if deg == 0]
        order: List[Operation] = []
        while ready:
            name = ready.pop()
            order.append(self._ops[name])
            for consumer in consumers[name]:
                indegree[consumer] -= 1
                if indegree[consumer] == 0:
                    ready.append(consumer)
        if len(order) != len(self._ops):
            stuck = sorted(name for name, deg in indegree.items() if deg > 0)
            raise GraphError(f"graph {self.name!r} has a cycle involving {stuck[:5]}")
        self._topo_cache = order
        return order

    def validate(self) -> None:
        """Run all structural checks; raises :class:`GraphError` on failure."""
        if self.batch_size <= 0:
            raise GraphError(f"graph {self.name!r} has non-positive batch size")
        if self.num_parameters < 0:
            raise GraphError(f"graph {self.name!r} has negative parameter count")
        if not self._ops:
            raise GraphError(f"graph {self.name!r} is empty")
        self.topological_order()

    # -- summaries --------------------------------------------------------------
    def summary(self) -> str:
        """A human-readable multi-line summary (used by examples)."""
        counts = self.op_type_counts()
        lines = [
            f"OpGraph {self.name!r}: {len(self)} ops, "
            f"{len(counts)} unique op types, "
            f"{self.num_parameters / 1e6:.1f}M parameters, batch={self.batch_size}",
        ]
        for op_type, n in sorted(counts.items(), key=lambda kv: -kv[1]):
            lines.append(f"  {op_type:<40s} x{n}")
        return "\n".join(lines)
