"""Building blocks shared by the graph builder and the autodiff pass.

The builder (:mod:`repro.graph.builder`) exposes a functional, Keras-like
API. Internally it records a *tape* of :class:`TapeEntry` records — one per
layer-level primitive (conv block, pooling, dense, concat, ...) — which the
autodiff pass (:mod:`repro.graph.autodiff`) replays in reverse to emit the
TensorFlow-style backward operations (``Conv2DBackpropFilter``,
``MaxPoolGrad``, ``FusedBatchNormGradV3``, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.graph.shapes import TensorShape


@dataclass(frozen=True)
class TensorRef:
    """A symbolic handle to the output of an operation in the graph.

    ``op_name`` identifies the producing node; ``shape`` is the produced
    tensor's shape; ``index`` selects among multi-output ops.
    """

    op_name: str
    shape: TensorShape
    index: int = 0

    @property
    def key(self) -> Tuple[str, int]:
        return (self.op_name, self.index)


@dataclass(frozen=True)
class VariableSpec:
    """A trainable variable (weights, bias, or batch-norm scale/offset)."""

    name: str
    shape: TensorShape

    @property
    def num_parameters(self) -> int:
        return self.shape.num_elements


@dataclass
class TapeEntry:
    """One differentiable layer-level step recorded during forward building.

    Attributes:
        kind: layer primitive kind — one of ``conv``, ``pool``, ``lrn``,
            ``dense``, ``concat``, ``add``, ``dropout``, ``reshape``,
            ``global_avg_pool``, ``pad``, ``activation``.
        inputs: forward-input refs (activations only; variables are in
            ``variables``).
        output: the final forward output ref of this step.
        variables: trainable variables owned by this step, keyed by role
            (``"weights"``, ``"bias"``, ``"gamma"``, ``"beta"``).
        intermediates: named refs to interior tensors the backward pass
            needs (e.g. pre-activation output, the pool's input).
        attrs: layer configuration (kernel, strides, padding, activation,
            batch_norm, axis, rate, ...).
        scope: name scope used to derive backward op names.
        stop_gradient: when true, no gradient is propagated to ``inputs``
            (used for the network input, which is data, not a variable).
    """

    kind: str
    inputs: Tuple[TensorRef, ...]
    output: TensorRef
    scope: str
    variables: Dict[str, VariableSpec] = field(default_factory=dict)
    intermediates: Dict[str, TensorRef] = field(default_factory=dict)
    attrs: Dict[str, object] = field(default_factory=dict)
    stop_gradient: bool = False


#: Activation function names the builder accepts. ``None`` means linear.
SUPPORTED_ACTIVATIONS = ("relu", "tanh", "gelu", "sigmoid", None)


def activation_op_type(activation: Optional[str]) -> Optional[str]:
    """Map an activation name to its forward op type (``None`` -> no op)."""
    if activation is None:
        return None
    mapping = {"relu": "Relu", "tanh": "Tanh", "gelu": "Gelu",
               "sigmoid": "Sigmoid"}
    if activation not in mapping:
        raise ValueError(
            f"unsupported activation {activation!r}; expected one of {SUPPORTED_ACTIVATIONS}"
        )
    return mapping[activation]


def activation_grad_op_type(activation: str) -> str:
    """Backward op type for an activation. Tanh has no dedicated fused grad
    kernel in our registry; its gradient lowers to an elementwise ``Mul``."""
    return {"relu": "ReluGrad", "tanh": "Mul", "gelu": "GeluGrad",
            "sigmoid": "SigmoidGrad"}[activation]
