"""Operation types and operation instances for the CNN op-graph IR.

The paper (Section II) models a CNN, as TensorFlow does, as a DAG whose
nodes are *operations* — ``Conv2D``, ``MaxPoolGrad``, ``ApplyMomentum``,
``SparseToDense``, ... — and whose edges carry tensors. This module defines:

* :class:`OpCategory` — coarse functional categories. The simulated
  hardware's ground-truth timing law is parameterised per
  (category, device), mirroring the paper's observation that e.g. pooling
  ops are memory-intensive while convolutions are compute-intensive
  (Section III-B).
* :class:`OpDef` — registered metadata for each operation *type*.
* :data:`OP_REGISTRY` — the registry of all op types the IR can emit.
* :class:`Operation` — one node instance in a concrete graph, with fully
  resolved input/output shapes.

Ceer itself never reads :class:`OpCategory`; it classifies operations as
heavy/light/CPU purely from profiled compute times (Section IV-B), exactly
as the paper does. Categories exist only on the "hardware" side of the
simulation boundary.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional, Tuple

from repro.errors import UnknownOpError
from repro.graph.shapes import TensorShape


class Device(str, enum.Enum):
    """Where an operation executes. The paper's CPU ops (e.g. SparseToDense)
    lack GPU kernels and always run on the host CPU."""

    GPU = "GPU"
    CPU = "CPU"


class OpCategory(str, enum.Enum):
    """Functional category of an op type (ground-truth side only)."""

    #: Dense linear algebra: convolutions, their gradients, matmuls.
    CONV_COMPUTE = "conv_compute"
    #: Window reductions: {Max,Avg}Pool and their gradients. Memory-bound.
    POOLING = "pooling"
    #: Batch normalisation forward/backward; bandwidth-heavy fused kernels.
    NORMALIZATION = "normalization"
    #: Streaming elementwise math (activations, adds, bias, concat, loss).
    ELEMENTWISE = "elementwise"
    #: Parameter update kernels (one per trainable variable).
    OPTIMIZER = "optimizer"
    #: Shape bookkeeping and copies; negligible math.
    DATA_MOVEMENT = "data_movement"
    #: Host-side ops with no GPU kernel (input pipeline, sparse ops).
    HOST = "host"


@dataclass(frozen=True)
class OpDef:
    """Registered metadata for an operation type.

    Attributes:
        name: TensorFlow-style op type name (e.g. ``"Conv2DBackpropFilter"``).
        category: functional category (see :class:`OpCategory`).
        device: where instances of this type execute.
        gradient_of: for backward ops, the forward op type they differentiate;
            purely informational.
        description: one-line human description.
    """

    name: str
    category: OpCategory
    device: Device = Device.GPU
    gradient_of: Optional[str] = None
    description: str = ""


OP_REGISTRY: Dict[str, OpDef] = {}


def register_op(op_def: OpDef) -> OpDef:
    """Add an :class:`OpDef` to the global registry (idempotent by name)."""
    OP_REGISTRY[op_def.name] = op_def
    return op_def


def op_def(op_type: str) -> OpDef:
    """Look up an op type, raising :class:`UnknownOpError` when absent."""
    try:
        return OP_REGISTRY[op_type]
    except KeyError:
        raise UnknownOpError(
            f"op type {op_type!r} is not registered; known types: {sorted(OP_REGISTRY)}"
        )


def _register_all() -> None:
    """Populate the registry with every op type the graph builders emit."""
    defs = [
        # --- convolution / dense compute -------------------------------
        OpDef("Conv2D", OpCategory.CONV_COMPUTE,
              description="2-D convolution over NHWC input with HWIO filters"),
        OpDef("Conv2DBackpropInput", OpCategory.CONV_COMPUTE, gradient_of="Conv2D",
              description="gradient of Conv2D w.r.t. its input"),
        OpDef("Conv2DBackpropFilter", OpCategory.CONV_COMPUTE, gradient_of="Conv2D",
              description="gradient of Conv2D w.r.t. its filters"),
        OpDef("MatMul", OpCategory.CONV_COMPUTE,
              description="dense matrix multiply (fully-connected layers)"),
        OpDef("BatchMatMul", OpCategory.CONV_COMPUTE,
              description="batched matrix multiply (attention scores/context)"),
        # --- pooling -----------------------------------------------------
        OpDef("MaxPool", OpCategory.POOLING,
              description="max pooling over spatial windows"),
        OpDef("MaxPoolGrad", OpCategory.POOLING, gradient_of="MaxPool",
              description="gradient of MaxPool"),
        OpDef("AvgPool", OpCategory.POOLING,
              description="average pooling over spatial windows"),
        OpDef("AvgPoolGrad", OpCategory.POOLING, gradient_of="AvgPool",
              description="gradient of AvgPool"),
        # --- normalisation ------------------------------------------------
        OpDef("FusedBatchNormV3", OpCategory.NORMALIZATION,
              description="fused batch normalisation, forward"),
        OpDef("FusedBatchNormGradV3", OpCategory.NORMALIZATION,
              gradient_of="FusedBatchNormV3",
              description="fused batch normalisation, backward"),
        OpDef("LRN", OpCategory.NORMALIZATION,
              description="local response normalisation (AlexNet-era)"),
        OpDef("LRNGrad", OpCategory.NORMALIZATION, gradient_of="LRN",
              description="gradient of LRN"),
        OpDef("LayerNorm", OpCategory.NORMALIZATION,
              description="layer normalisation (transformers)"),
        OpDef("LayerNormGrad", OpCategory.NORMALIZATION, gradient_of="LayerNorm",
              description="gradient of LayerNorm"),
        # --- elementwise / streaming --------------------------------------
        OpDef("Relu", OpCategory.ELEMENTWISE,
              description="rectified linear activation"),
        OpDef("ReluGrad", OpCategory.ELEMENTWISE, gradient_of="Relu",
              description="gradient of Relu"),
        OpDef("BiasAdd", OpCategory.ELEMENTWISE,
              description="add a per-channel bias vector"),
        OpDef("BiasAddGrad", OpCategory.ELEMENTWISE, gradient_of="BiasAdd",
              description="reduce a gradient over all but the channel axis"),
        OpDef("AddV2", OpCategory.ELEMENTWISE,
              description="elementwise addition (residual shortcuts)"),
        OpDef("AddN", OpCategory.ELEMENTWISE,
              description="sum of N tensors (gradient accumulation)"),
        OpDef("ConcatV2", OpCategory.ELEMENTWISE,
              description="concatenation along the channel axis"),
        OpDef("ConcatGrad", OpCategory.ELEMENTWISE, gradient_of="ConcatV2",
              description="slice a gradient back into concat inputs"),
        OpDef("Softmax", OpCategory.ELEMENTWISE,
              description="softmax over logits"),
        OpDef("SparseSoftmaxCrossEntropyWithLogits", OpCategory.ELEMENTWISE,
              description="fused softmax cross-entropy loss with int labels"),
        OpDef("Mul", OpCategory.ELEMENTWISE,
              description="elementwise multiply (dropout scaling etc.)"),
        OpDef("Sub", OpCategory.ELEMENTWISE,
              description="elementwise subtract"),
        OpDef("Mean", OpCategory.ELEMENTWISE,
              description="mean reduction (global average pooling, loss mean)"),
        OpDef("Pad", OpCategory.ELEMENTWISE,
              description="pad a tensor with zeros"),
        OpDef("Tanh", OpCategory.ELEMENTWISE,
              description="hyperbolic tangent activation"),
        OpDef("Gelu", OpCategory.ELEMENTWISE,
              description="Gaussian-error linear unit activation (transformers)"),
        OpDef("GeluGrad", OpCategory.ELEMENTWISE, gradient_of="Gelu",
              description="gradient of Gelu"),
        OpDef("Sigmoid", OpCategory.ELEMENTWISE,
              description="logistic activation (LSTM gates)"),
        OpDef("SigmoidGrad", OpCategory.ELEMENTWISE, gradient_of="Sigmoid",
              description="gradient of Sigmoid"),
        OpDef("SoftmaxGrad", OpCategory.ELEMENTWISE, gradient_of="Softmax",
              description="gradient of a standalone Softmax (attention)"),
        # --- optimizer ------------------------------------------------------
        OpDef("ApplyMomentum", OpCategory.OPTIMIZER,
              description="SGD-with-momentum parameter update"),
        OpDef("ApplyGradientDescent", OpCategory.OPTIMIZER,
              description="plain SGD parameter update"),
        # --- data movement ---------------------------------------------------
        OpDef("Identity", OpCategory.DATA_MOVEMENT,
              description="pass-through (control-flow anchoring)"),
        OpDef("Reshape", OpCategory.DATA_MOVEMENT,
              description="metadata-only shape change"),
        OpDef("Squeeze", OpCategory.DATA_MOVEMENT,
              description="drop size-1 dimensions"),
        OpDef("Slice", OpCategory.DATA_MOVEMENT,
              description="extract a contiguous sub-tensor"),
        OpDef("Transpose", OpCategory.DATA_MOVEMENT,
              description="permute tensor dimensions"),
        OpDef("Gather", OpCategory.DATA_MOVEMENT,
              description="embedding-table row lookup"),
        OpDef("Scatter", OpCategory.DATA_MOVEMENT,
              description="scatter-add of embedding gradients"),
        # --- host (CPU-only) ---------------------------------------------------
        OpDef("IteratorGetNext", OpCategory.HOST, Device.CPU,
              description="input pipeline: fetch the next training batch"),
        OpDef("DecodeAndResize", OpCategory.HOST, Device.CPU,
              description="input pipeline: decode and resize raw samples"),
        OpDef("SparseToDense", OpCategory.HOST, Device.CPU,
              description="densify sparse labels (no GPU kernel; paper IV-B)"),
        OpDef("OneHot", OpCategory.HOST, Device.CPU,
              description="one-hot encode integer labels"),
        OpDef("Cast", OpCategory.HOST, Device.CPU,
              description="dtype cast on the host"),
        OpDef("Shape", OpCategory.HOST, Device.CPU,
              description="materialise a shape tensor"),
    ]
    for d in defs:
        register_op(d)


_register_all()


#: Op types pinned to the CPU (no GPU implementation), per the registry.
CPU_OP_TYPES = frozenset(name for name, d in OP_REGISTRY.items() if d.device is Device.CPU)


@dataclass(frozen=True)
class Operation:
    """One node of a concrete CNN op graph.

    Attributes:
        name: unique node name, hierarchical like TF (``"conv1/Conv2D"``).
        op_type: key into :data:`OP_REGISTRY`.
        inputs: shapes of data inputs (images, filters, gradients, ...). The
            byte sizes of these shapes are the input-size features Ceer's
            per-op regressions consume (paper, Section IV-B).
        outputs: shapes of produced tensors.
        input_ops: names of producer nodes, defining the DAG edges.
        attrs: supplemental attributes (kernel/stride/padding, axis, ...);
            values must be hashable primitives or tuples.
        device: execution placement, defaulted from the op registry.
    """

    name: str
    op_type: str
    inputs: Tuple[TensorShape, ...]
    outputs: Tuple[TensorShape, ...]
    input_ops: Tuple[str, ...] = ()
    attrs: Mapping[str, object] = field(default_factory=dict)
    device: Device = Device.GPU

    def __post_init__(self) -> None:
        op_def(self.op_type)  # validate against the registry
        if not isinstance(self.inputs, tuple):
            object.__setattr__(self, "inputs", tuple(self.inputs))
        if not isinstance(self.outputs, tuple):
            object.__setattr__(self, "outputs", tuple(self.outputs))
        if not isinstance(self.input_ops, tuple):
            object.__setattr__(self, "input_ops", tuple(self.input_ops))

    @property
    def category(self) -> OpCategory:
        return op_def(self.op_type).category

    @property
    def input_bytes(self) -> int:
        """Total bytes across data inputs — Ceer's primary size feature."""
        return sum(s.num_bytes for s in self.inputs)

    @property
    def output_bytes(self) -> int:
        return sum(s.num_bytes for s in self.outputs)

    def __str__(self) -> str:
        ins = ", ".join(str(s) for s in self.inputs)
        outs = ", ".join(str(s) for s in self.outputs)
        return f"{self.name} = {self.op_type}({ins}) -> {outs} @{self.device.value}"
