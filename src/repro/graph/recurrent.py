"""Recurrent building blocks: the RNN/LSTM extension.

The other half of the paper's Section VI future-work sentence ("other
types of DNNs, such as Recurrent Neural Nets (RNNs) or Transformer
models"). A :class:`RecurrentGraphBuilder` extends the sequence builder
with the primitives an unrolled LSTM needs — binary elementwise multiply,
standalone activations, feature/time slicing, and rank-generic
concatenation — plus the LSTM cell and layer themselves.

Unrolling is explicit, as TensorFlow 1.x's ``static_rnn`` does: one set of
ops per timestep, all sharing the layer's weight variables. The op mix is
very different from a CNN's — many small MatMuls and elementwise kernels,
no convolutions — which is exactly what makes RNNs interesting for Ceer
(dominant ops are small, launch-bound, and GPU-unfriendly).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import GraphError, ShapeError
from repro.graph import autodiff
from repro.graph.builder import GraphBuilder
from repro.graph.layers import (
    TapeEntry,
    TensorRef,
    activation_grad_op_type,
    activation_op_type,
)
from repro.graph.sequence import SequenceGraphBuilder
from repro.graph.shapes import TensorShape


class RecurrentGraphBuilder(SequenceGraphBuilder):
    """A sequence builder with recurrent-cell primitives and LSTM layers."""

    # ------------------------------------------------------------------
    # primitives
    # ------------------------------------------------------------------
    def activation(self, x: TensorRef, name: str, scope: Optional[str] = None) -> TensorRef:
        """A standalone activation with its own gradient op."""
        op_type = activation_op_type(name)
        if op_type is None:
            raise GraphError("activation name must not be None")
        scope = self._unique(scope or name)
        y = self.emit(op_type, scope, [x], [x.shape])[0]
        self.tape.append(
            TapeEntry(
                kind="activation_op", inputs=(x,), output=y, scope=scope,
                intermediates={"act_out": y}, attrs={"activation": name},
            )
        )
        return y

    def multiply(self, a: TensorRef, b: TensorRef, scope: Optional[str] = None) -> TensorRef:
        """Binary elementwise multiply with gradients to both operands."""
        if a.shape != b.shape:
            raise ShapeError(f"multiply shape mismatch: {a.shape} vs {b.shape}")
        scope = self._unique(scope or "mul")
        y = self.emit("Mul", scope, [a, b], [a.shape])[0]
        self.tape.append(
            TapeEntry(kind="binary_mul", inputs=(a, b), output=y, scope=scope)
        )
        return y

    def slice_features(
        self, x: TensorRef, begin: int, size: int, scope: Optional[str] = None
    ) -> TensorRef:
        """Slice ``size`` features from the last axis starting at ``begin``."""
        last = x.shape.dims[-1]
        if begin < 0 or begin + size > last:
            raise ShapeError(
                f"slice [{begin}:{begin + size}] out of range for last dim {last}"
            )
        scope = self._unique(scope or "slice")
        out_shape = TensorShape(x.shape.dims[:-1] + (size,), x.shape.dtype)
        y = self.emit("Slice", scope, [x], [out_shape],
                      attrs={"begin": begin, "size": size})[0]
        self.tape.append(
            TapeEntry(kind="slice_op", inputs=(x,), output=y, scope=scope)
        )
        return y

    def timestep_slice(self, x: TensorRef, t: int, scope: Optional[str] = None) -> TensorRef:
        """Extract timestep ``t``: ``(B, L, D)`` -> ``(B, D)``."""
        if x.shape.rank != 3:
            raise ShapeError("timestep_slice needs a rank-3 (B, L, D) input")
        batch, seq, d_model = x.shape.dims
        if not 0 <= t < seq:
            raise ShapeError(f"timestep {t} out of range for sequence {seq}")
        scope = self._unique(scope or f"t{t}")
        y = self.emit("Slice", scope, [x], [TensorShape.of(batch, d_model)],
                      attrs={"t": t})[0]
        self.tape.append(
            TapeEntry(kind="slice_op", inputs=(x,), output=y, scope=scope)
        )
        return y

    def concat_features(self, xs: Sequence[TensorRef], scope: Optional[str] = None) -> TensorRef:
        """Concatenate along the last axis (any rank >= 2)."""
        if len(xs) < 2:
            raise GraphError("concat_features needs at least two inputs")
        lead = xs[0].shape.dims[:-1]
        for ref in xs[1:]:
            if ref.shape.dims[:-1] != lead:
                raise ShapeError(
                    f"concat_features leading dims disagree: "
                    f"{xs[0].shape} vs {ref.shape}"
                )
        scope = self._unique(scope or "concat")
        total = sum(ref.shape.dims[-1] for ref in xs)
        out_shape = TensorShape(lead + (total,), xs[0].shape.dtype)
        y = self.emit("ConcatV2", scope, list(xs), [out_shape],
                      attrs={"axis": -1})[0]
        self.tape.append(
            TapeEntry(kind="concat", inputs=tuple(xs), output=y, scope=scope,
                      attrs={"axis": -1})
        )
        return y

    def stack_timesteps(self, steps: Sequence[TensorRef], scope: Optional[str] = None) -> TensorRef:
        """Stack per-timestep ``(B, H)`` outputs into ``(B, L, H)``."""
        if len(steps) < 1:
            raise GraphError("stack_timesteps needs at least one step output")
        batch, hidden = steps[0].shape.dims
        scope = self._unique(scope or "stack_timesteps")
        out_shape = TensorShape.of(batch, len(steps), hidden)
        y = self.emit("ConcatV2", scope, list(steps), [out_shape],
                      attrs={"axis": 1})[0]
        self.tape.append(
            TapeEntry(kind="concat", inputs=tuple(steps), output=y, scope=scope,
                      attrs={"axis": 1})
        )
        return y

    def zero_state(self, hidden: int, scope: Optional[str] = None) -> TensorRef:
        """An all-zeros initial hidden/cell state tensor."""
        scope = self._unique(scope or "zero_state")
        shape = TensorShape.of(self.batch_size, hidden)
        return self.emit("Identity", scope, [], [shape])[0]

    # ------------------------------------------------------------------
    # LSTM cell and layer
    # ------------------------------------------------------------------
    def lstm_cell(
        self,
        x_t: TensorRef,
        h_prev: TensorRef,
        c_prev: TensorRef,
        hidden: int,
        scope: str,
    ) -> Tuple[TensorRef, TensorRef]:
        """One LSTM step; returns ``(h_t, c_t)``.

        Standard formulation: a single fused projection of ``[x_t, h]`` to
        the four gates, sigmoid/tanh nonlinearities, and the elementwise
        state update.
        """
        z = self.concat_features([x_t, h_prev], scope=f"{scope}/concat")
        gates = self.dense(z, 4 * hidden, activation=None, scope=f"{scope}/gates")
        i = self.activation(
            self.slice_features(gates, 0, hidden, scope=f"{scope}/i"),
            "sigmoid", scope=f"{scope}/i_act",
        )
        f = self.activation(
            self.slice_features(gates, hidden, hidden, scope=f"{scope}/f"),
            "sigmoid", scope=f"{scope}/f_act",
        )
        o = self.activation(
            self.slice_features(gates, 2 * hidden, hidden, scope=f"{scope}/o"),
            "sigmoid", scope=f"{scope}/o_act",
        )
        g = self.activation(
            self.slice_features(gates, 3 * hidden, hidden, scope=f"{scope}/g"),
            "tanh", scope=f"{scope}/g_act",
        )
        c_t = self.add(
            self.multiply(f, c_prev, scope=f"{scope}/forget"),
            self.multiply(i, g, scope=f"{scope}/input"),
            scope=f"{scope}/state",
        )
        h_t = self.multiply(
            o, self.activation(c_t, "tanh", scope=f"{scope}/c_act"),
            scope=f"{scope}/hidden",
        )
        return h_t, c_t

    def lstm_layer(self, x: TensorRef, hidden: int, scope: Optional[str] = None) -> TensorRef:
        """An unrolled LSTM over a ``(B, L, D)`` sequence -> ``(B, L, H)``.

        Weights are created once by the first timestep's dense projection
        and shared by reusing its variable scope is *not* how this IR
        works — each step's dense layer owns its own variable entry, but
        we deduplicate parameter accounting by recording the per-step
        projections under one logical layer (TF's static_rnn reuses one
        kernel; our graph replicates the op per step, which is what the
        profiler needs, while the parameter count must not multiply).
        """
        if x.shape.rank != 3:
            raise ShapeError("lstm_layer needs a rank-3 (B, L, D) input")
        scope = self._unique(scope or "lstm")
        seq_len = x.shape.dims[1]
        h = self.zero_state(hidden, scope=f"{scope}/h0")
        c = self.zero_state(hidden, scope=f"{scope}/c0")
        params_before = sum(v.num_parameters for v in self.variables)
        n_vars_before = len(self.variables)
        outputs: List[TensorRef] = []
        for t in range(seq_len):
            x_t = self.timestep_slice(x, t, scope=f"{scope}/x_t{t}")
            h, c = self.lstm_cell(x_t, h, c, hidden, scope=f"{scope}/step{t}")
            outputs.append(h)
        # Deduplicate the replicated per-step gate weights: TF shares one
        # (D+H, 4H) kernel across the unroll. Keep the first step's
        # variables; mark the rest as shared replicas (zero extra params).
        self._deduplicate_unrolled_weights(n_vars_before, params_before, seq_len)
        return self.stack_timesteps(outputs, scope=f"{scope}/stack")

    def _deduplicate_unrolled_weights(
        self, n_vars_before: int, params_before: int, seq_len: int
    ) -> None:
        """Keep one timestep's worth of new variables; drop the replicas.

        The optimizer still emits one update op per retained variable (the
        shared kernel is updated once per iteration, as in TF), while the
        forward/backward ops of every timestep remain in the graph.
        """
        new_vars = self.variables[n_vars_before:]
        if not new_vars or seq_len <= 1:
            return
        per_step = len(new_vars) // seq_len
        if per_step * seq_len != len(new_vars):
            return  # unexpected layering; keep everything (conservative)
        del self.variables[n_vars_before + per_step:]


def _activation_op_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    name = entry.attrs["activation"]
    act_out = entry.intermediates["act_out"]
    grad_op = activation_grad_op_type(name)
    dx = builder.emit(grad_op, scope, [dy, act_out], [dy.shape])[0]
    autodiff._propagate(builder, state, entry.inputs[0], dx, input_key)


def _binary_mul_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    a, b = entry.inputs
    da = builder.emit("Mul", scope, [dy, b], [a.shape])[0]
    db = builder.emit("Mul", scope, [dy, a], [b.shape])[0]
    autodiff._propagate(builder, state, a, da, input_key)
    autodiff._propagate(builder, state, b, db, input_key)


def _slice_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    x = entry.inputs[0]
    dx = builder.emit("Pad", scope, [dy], [x.shape])[0]
    autodiff._propagate(builder, state, x, dx, input_key)


autodiff._BACKWARD_FNS.update(
    {
        "activation_op": _activation_op_backward,
        "binary_mul": _binary_mul_backward,
        "slice_op": _slice_backward,
    }
)
