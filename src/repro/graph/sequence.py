"""Sequence-model building blocks: the Transformer extension.

The paper's Section VI closes with: "It will be interesting to see how
Ceer performs on other types of DNNs, such as Recurrent Neural Nets (RNNs)
or Transformer models". This module implements that future-work direction
on the substrate side: a :class:`SequenceGraphBuilder` that extends the
CNN builder with token inputs, embeddings, layer normalisation,
multi-head self-attention (batched matmuls + softmax), and GELU MLPs —
enough to express BERT-style Transformer encoders whose training graphs
flow through the same profiler/Ceer pipeline as the CNNs.

The new layer kinds register their backward rules with the autodiff pass
at import time, so ``finalize()`` produces full training graphs
(including ``BatchMatMul`` gradients and embedding ``Scatter`` updates).
"""

from __future__ import annotations

import math
from typing import Dict, Optional, Tuple

from repro.errors import GraphError, ShapeError
from repro.graph import autodiff
from repro.graph.builder import GraphBuilder
from repro.graph.layers import TapeEntry, TensorRef
from repro.graph.shapes import TensorShape


class SequenceGraphBuilder(GraphBuilder):
    """A :class:`GraphBuilder` for token-sequence models (Transformers).

    Activations are rank-3 ``(batch, seq_len, d_model)`` tensors; dense
    projections reshape through rank-2 as real frameworks do. The
    classifier consumes a mean-pooled sequence representation.
    """

    def __init__(
        self,
        name: str,
        batch_size: int = 32,
        seq_len: int = 128,
        vocab_size: int = 30_000,
        num_classes: int = 2,
        optimizer: str = "momentum",
    ) -> None:
        super().__init__(
            name, batch_size=batch_size, image_hw=(1, 1), image_channels=1,
            num_classes=num_classes, optimizer=optimizer,
        )
        self.seq_len = seq_len
        self.vocab_size = vocab_size

    # ------------------------------------------------------------------
    # inputs
    # ------------------------------------------------------------------
    def sequence_input(self, scope: str = "input_pipeline") -> TensorRef:
        """Host-side pipeline producing a token batch ``(B, L)`` int64."""
        if self._input_ref is not None:
            raise GraphError("sequence_input() may only be called once")
        tokens = TensorShape.of(self.batch_size, self.seq_len, dtype="int64")
        labels = TensorShape.of(self.batch_size, dtype="int64")
        nxt = self.emit("IteratorGetNext", scope, [], [tokens, labels])
        raw_tokens, raw_labels = nxt[0], nxt[1]
        dense_tokens = self.emit("SparseToDense", scope, [raw_tokens], [tokens])[0]
        label_ids = self.emit(
            "Cast", scope, [raw_labels],
            [TensorShape.of(self.batch_size, dtype="int32")],
        )[0]
        self._input_ref = dense_tokens
        self._labels_ref = label_ids
        return dense_tokens

    # ------------------------------------------------------------------
    # sequence layers
    # ------------------------------------------------------------------
    def embedding(self, tokens: TensorRef, d_model: int, scope: Optional[str] = None) -> TensorRef:
        """Token-embedding lookup: ``(B, L)`` int64 -> ``(B, L, D)``."""
        scope = self._unique(scope or "embedding")
        table_shape = TensorShape.of(self.vocab_size, d_model)
        table = self.add_variable(f"{scope}/table", table_shape)
        out_shape = TensorShape.of(tokens.shape.dims[0], tokens.shape.dims[1], d_model)
        y = self.emit(
            "Gather", scope, [tokens], [out_shape], extra_input_shapes=[table_shape]
        )[0]
        self.tape.append(
            TapeEntry(
                kind="embedding", inputs=(tokens,), output=y, scope=scope,
                variables={"table": table},
                attrs={"d_model": d_model},
            )
        )
        return y

    def layer_norm(self, x: TensorRef, scope: Optional[str] = None) -> TensorRef:
        """Layer normalisation over the model dimension."""
        scope = self._unique(scope or "layer_norm")
        d_model = x.shape.dims[-1]
        param_shape = TensorShape.of(d_model)
        gamma = self.add_variable(f"{scope}/gamma", param_shape)
        beta = self.add_variable(f"{scope}/beta", param_shape)
        y = self.emit(
            "LayerNorm", scope, [x], [x.shape], extra_input_shapes=[param_shape] * 2
        )[0]
        self.tape.append(
            TapeEntry(
                kind="layer_norm", inputs=(x,), output=y, scope=scope,
                variables={"gamma": gamma, "beta": beta},
                intermediates={"ln_in": x},
                attrs={"d_model": d_model},
            )
        )
        return y

    def dense_tokens(
        self, x: TensorRef, units: int, activation: Optional[str] = None,
        scope: Optional[str] = None,
    ) -> TensorRef:
        """Per-token dense projection: reshape -> dense -> reshape back."""
        scope = self._unique(scope or "proj")
        batch, seq, d_in = x.shape.dims
        flat = self.emit(
            "Reshape", scope, [x], [TensorShape.of(batch * seq, d_in)]
        )[0]
        self.tape.append(
            TapeEntry(kind="reshape", inputs=(x,), output=flat, scope=scope)
        )
        projected = self.dense(
            flat, units, activation=activation, scope=f"{scope}/dense"
        )
        back = self.emit(
            "Reshape", f"{scope}/unflatten", [projected],
            [TensorShape.of(batch, seq, units)],
        )[0]
        self.tape.append(
            TapeEntry(
                kind="reshape", inputs=(projected,), output=back,
                scope=f"{scope}/unflatten",
            )
        )
        return back

    def batch_matmul(
        self, a: TensorRef, b: TensorRef, out_shape: TensorShape, scope: Optional[str] = None
    ) -> TensorRef:
        """Batched matmul of two rank-3 tensors (attention primitives)."""
        if a.shape.rank != 3 or b.shape.rank != 3:
            raise ShapeError("batch_matmul needs rank-3 inputs")
        scope = self._unique(scope or "batch_matmul")
        y = self.emit("BatchMatMul", scope, [a, b], [out_shape])[0]
        self.tape.append(
            TapeEntry(kind="batch_matmul", inputs=(a, b), output=y, scope=scope)
        )
        return y

    def softmax(self, x: TensorRef, scope: Optional[str] = None) -> TensorRef:
        """Standalone softmax over the last dimension (attention weights)."""
        scope = self._unique(scope or "softmax")
        y = self.emit("Softmax", scope, [x], [x.shape])[0]
        self.tape.append(
            TapeEntry(
                kind="softmax_op", inputs=(x,), output=y, scope=scope,
                intermediates={"softmax_out": y},
            )
        )
        return y

    def sequence_mean(self, x: TensorRef, scope: Optional[str] = None) -> TensorRef:
        """Mean-pool the sequence dimension: ``(B, L, D)`` -> ``(B, D)``."""
        scope = self._unique(scope or "sequence_mean")
        batch, _, d_model = x.shape.dims
        y = self.emit(
            "Mean", scope, [x], [TensorShape.of(batch, d_model)],
            attrs={"axes": (1,)},
        )[0]
        self.tape.append(
            TapeEntry(kind="global_avg_pool", inputs=(x,), output=y, scope=scope)
        )
        return y

    # ------------------------------------------------------------------
    # composite transformer blocks
    # ------------------------------------------------------------------
    def self_attention(self, x: TensorRef, num_heads: int, scope: Optional[str] = None) -> TensorRef:
        """Multi-head self-attention (pre-projected Q/K/V, scaled dot
        product, output projection)."""
        scope = self._unique(scope or "attention")
        batch, seq, d_model = x.shape.dims
        if d_model % num_heads:
            raise ShapeError(
                f"d_model {d_model} not divisible by {num_heads} heads"
            )
        d_head = d_model // num_heads
        heads = batch * num_heads

        def to_heads(ref: TensorRef, tag: str) -> TensorRef:
            shaped = self.emit(
                "Reshape", f"{scope}/{tag}_heads", [ref],
                [TensorShape.of(heads, seq, d_head)],
            )[0]
            self.tape.append(
                TapeEntry(kind="reshape", inputs=(ref,), output=shaped,
                          scope=f"{scope}/{tag}_heads")
            )
            return shaped

        q = to_heads(self.dense_tokens(x, d_model, scope=f"{scope}/q"), "q")
        k = to_heads(self.dense_tokens(x, d_model, scope=f"{scope}/k"), "k")
        v = to_heads(self.dense_tokens(x, d_model, scope=f"{scope}/v"), "v")

        # Scores: Q x K^T -> (heads, L, L); the transpose is a light op.
        k_t = self.emit(
            "Transpose", f"{scope}/k_transpose", [k],
            [TensorShape.of(heads, d_head, seq)],
        )[0]
        self.tape.append(
            TapeEntry(kind="reshape", inputs=(k,), output=k_t,
                      scope=f"{scope}/k_transpose")
        )
        scores = self.batch_matmul(
            q, k_t, TensorShape.of(heads, seq, seq), scope=f"{scope}/scores"
        )
        scaled = self.scale(scores, 1.0 / math.sqrt(d_head), scope=f"{scope}/scale")
        weights = self.softmax(scaled, scope=f"{scope}/softmax")
        context = self.batch_matmul(
            weights, v, TensorShape.of(heads, seq, d_head), scope=f"{scope}/context"
        )
        merged = self.emit(
            "Reshape", f"{scope}/merge_heads", [context],
            [TensorShape.of(batch, seq, d_model)],
        )[0]
        self.tape.append(
            TapeEntry(kind="reshape", inputs=(context,), output=merged,
                      scope=f"{scope}/merge_heads")
        )
        return self.dense_tokens(merged, d_model, scope=f"{scope}/out")

    def encoder_block(
        self, x: TensorRef, num_heads: int, ffn_multiplier: int = 4, scope: Optional[str] = None
    ) -> TensorRef:
        """One pre-norm Transformer encoder block."""
        scope = self._unique(scope or "encoder")
        d_model = x.shape.dims[-1]
        attended = self.self_attention(
            self.layer_norm(x, scope=f"{scope}/ln1"), num_heads,
            scope=f"{scope}/attn",
        )
        x = self.add(x, attended, scope=f"{scope}/residual1")
        ffn = self.dense_tokens(
            self.layer_norm(x, scope=f"{scope}/ln2"),
            ffn_multiplier * d_model, activation="gelu", scope=f"{scope}/ffn_up",
        )
        ffn = self.dense_tokens(ffn, d_model, scope=f"{scope}/ffn_down")
        return self.add(x, ffn, scope=f"{scope}/residual2")


# ---------------------------------------------------------------------------
# backward rules for the sequence layer kinds
# ---------------------------------------------------------------------------

def _embedding_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    table = entry.variables["table"]
    dtable = builder.emit(
        "Scatter", scope, [dy], [table.shape], extra_input_shapes=[table.shape]
    )[0]
    var_grads[table.name] = dtable
    # Token indices receive no gradient.


def _layer_norm_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    ln_in = entry.intermediates["ln_in"]
    param_shape = TensorShape.of(entry.attrs["d_model"])
    dx, dgamma, dbeta = builder.emit(
        "LayerNormGrad", scope, [dy, ln_in],
        [ln_in.shape, param_shape, param_shape],
        extra_input_shapes=[param_shape],
    )
    var_grads[entry.variables["gamma"].name] = dgamma
    var_grads[entry.variables["beta"].name] = dbeta
    autodiff._propagate(builder, state, ln_in, dx, input_key)


def _batch_matmul_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    a, b = entry.inputs
    batch, m, k_dim = a.shape.dims
    _, _, n = b.shape.dims
    # dA = dY x B^T : (B,M,N) x (B,N,K) -> (B,M,K)
    da = builder.emit(
        "BatchMatMul", scope, [dy], [a.shape],
        extra_input_shapes=[TensorShape.of(batch, n, k_dim)],
    )[0]
    # dB = A^T x dY : (B,K,M) x (B,M,N) -> (B,K,N); emit with dY as the
    # tracked input and A^T as a size-only operand.
    db = builder.emit(
        "BatchMatMul", scope, [dy], [b.shape],
        extra_input_shapes=[TensorShape.of(batch, k_dim, m)],
    )[0]
    autodiff._propagate(builder, state, a, da, input_key)
    autodiff._propagate(builder, state, b, db, input_key)


def _softmax_backward(
    builder: "GraphBuilder",
    entry: TapeEntry,
    dy: TensorRef,
    scope: str,
    state: "autodiff._GradState",
    var_grads: Dict[str, TensorRef],
    input_key: Optional[Tuple[str, int]],
) -> None:
    y = entry.intermediates["softmax_out"]
    dx = builder.emit("SoftmaxGrad", scope, [dy, y], [y.shape])[0]
    autodiff._propagate(builder, state, entry.inputs[0], dx, input_key)


autodiff._BACKWARD_FNS.update(
    {
        "embedding": _embedding_backward,
        "layer_norm": _layer_norm_backward,
        "batch_matmul": _batch_matmul_backward,
        "softmax_op": _softmax_backward,
    }
)
