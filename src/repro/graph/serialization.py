"""Op-graph (de)serialisation: a GraphDef-like JSON format.

The paper's deployment story (Section IV-D) extracts the CNN's DAG from
the training framework — op types, shapes, parameter count — and feeds it
to Ceer. This module provides the equivalent portable artifact: a JSON
document that fully describes a training graph, so a graph captured on one
machine (e.g. by a framework plugin) can be priced on another without the
model-building code.

Format (version 1)::

    {
      "format": "repro-opgraph",
      "version": 1,
      "name": "...", "batch_size": 32,
      "num_parameters": 23834568, "num_variables": 284,
      "ops": [
        {"name": "...", "op_type": "...", "device": "GPU",
         "inputs": [[dims...], ...] | [{"dims": [...], "dtype": "int64"}],
         "outputs": [...], "input_ops": [...], "attrs": {...}},
        ...
      ]
    }

Float32 shapes are stored as bare dim lists for compactness; other dtypes
use the explicit object form. Attr values must be JSON-representable
(ints, floats, strings, bools, lists/tuples thereof); tuples round-trip as
tuples.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Union

from repro.errors import GraphError
from repro.graph.graph import OpGraph
from repro.graph.ops import Device, Operation
from repro.graph.shapes import DEFAULT_DTYPE, TensorShape

FORMAT_NAME = "repro-opgraph"
FORMAT_VERSION = 1


def _shape_to_json(shape: TensorShape) -> Union[List[int], Dict]:
    if shape.dtype == DEFAULT_DTYPE:
        return list(shape.dims)
    return {"dims": list(shape.dims), "dtype": shape.dtype}


def _shape_from_json(data: Union[List[int], Dict]) -> TensorShape:
    if isinstance(data, dict):
        return TensorShape(tuple(data["dims"]), data.get("dtype", DEFAULT_DTYPE))
    return TensorShape(tuple(data))


def _attr_to_json(value: object) -> object:
    if isinstance(value, tuple):
        return {"__tuple__": [_attr_to_json(v) for v in value]}
    if isinstance(value, (int, float, str, bool)) or value is None:
        return value
    raise GraphError(f"attr value {value!r} is not serialisable")


def _attr_from_json(value: object) -> object:
    if isinstance(value, dict) and "__tuple__" in value:
        return tuple(_attr_from_json(v) for v in value["__tuple__"])
    return value


def graph_to_dict(graph: OpGraph) -> Dict:
    """Convert a graph to its JSON-ready dictionary representation."""
    return {
        "format": FORMAT_NAME,
        "version": FORMAT_VERSION,
        "name": graph.name,
        "batch_size": graph.batch_size,
        "num_parameters": graph.num_parameters,
        "num_variables": graph.num_variables,
        "ops": [
            {
                "name": op.name,
                "op_type": op.op_type,
                "device": op.device.value,
                "inputs": [_shape_to_json(s) for s in op.inputs],
                "outputs": [_shape_to_json(s) for s in op.outputs],
                "input_ops": list(op.input_ops),
                "attrs": {k: _attr_to_json(v) for k, v in op.attrs.items()},
            }
            for op in graph.operations
        ],
    }


def graph_from_dict(data: Dict) -> OpGraph:
    """Reconstruct and validate a graph from its dictionary representation."""
    if data.get("format") != FORMAT_NAME:
        raise GraphError(
            f"not a {FORMAT_NAME} document (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise GraphError(
            f"unsupported {FORMAT_NAME} version {data.get('version')!r}; "
            f"this library reads version {FORMAT_VERSION}"
        )
    graph = OpGraph(
        name=data["name"],
        batch_size=data["batch_size"],
        num_parameters=data.get("num_parameters", 0),
        num_variables=data.get("num_variables", 0),
    )
    for op_data in data["ops"]:
        graph.add(
            Operation(
                name=op_data["name"],
                op_type=op_data["op_type"],
                inputs=tuple(_shape_from_json(s) for s in op_data["inputs"]),
                outputs=tuple(_shape_from_json(s) for s in op_data["outputs"]),
                input_ops=tuple(op_data.get("input_ops", ())),
                attrs={
                    k: _attr_from_json(v)
                    for k, v in op_data.get("attrs", {}).items()
                },
                device=Device(op_data.get("device", "GPU")),
            )
        )
    graph.validate()
    return graph


def save_graph(graph: OpGraph, path: Union[str, Path]) -> None:
    """Write a graph as JSON to ``path``."""
    Path(path).write_text(json.dumps(graph_to_dict(graph)))


def load_graph(path: Union[str, Path]) -> OpGraph:
    """Read a JSON graph document from ``path`` and validate it."""
    try:
        data = json.loads(Path(path).read_text())
    except json.JSONDecodeError as exc:
        raise GraphError(f"{path} is not valid JSON: {exc}") from exc
    return graph_from_dict(data)
