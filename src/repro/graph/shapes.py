"""Tensor shapes and data-type sizes for the CNN op-graph IR.

The IR follows TensorFlow's NHWC convention for image tensors:
``(batch, height, width, channels)``. Shapes are immutable value objects;
all sizes are computed in elements and bytes (the byte sizes are the "input
size" features that Ceer's regression models consume, per Section IV-B of
the paper).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple

from repro.errors import ShapeError

#: Bytes per element for the dtypes the simulator supports. CNN training in
#: the paper uses single-precision TensorFlow (r1.14) throughout.
DTYPE_BYTES = {
    "float32": 4,
    "float16": 2,
    "int32": 4,
    "int64": 8,
    "bool": 1,
}

DEFAULT_DTYPE = "float32"


def dtype_size(dtype: str) -> int:
    """Return the size in bytes of one element of ``dtype``.

    Raises :class:`ShapeError` for unknown dtypes so that typos in model
    definitions fail fast.
    """
    try:
        return DTYPE_BYTES[dtype]
    except KeyError:
        raise ShapeError(f"unknown dtype {dtype!r}; known: {sorted(DTYPE_BYTES)}")


@dataclass(frozen=True)
class TensorShape:
    """An immutable, fully-defined tensor shape with a dtype.

    Unlike TensorFlow we do not allow unknown dimensions: the simulator and
    Ceer's feature extraction both need concrete sizes. Rank-0 (scalar)
    shapes are permitted, e.g. for loss values and learning rates.
    """

    dims: Tuple[int, ...]
    dtype: str = DEFAULT_DTYPE

    def __post_init__(self) -> None:
        if not isinstance(self.dims, tuple):
            object.__setattr__(self, "dims", tuple(self.dims))
        for d in self.dims:
            if not isinstance(d, int) or d <= 0:
                raise ShapeError(f"all dimensions must be positive ints, got {self.dims}")
        dtype_size(self.dtype)  # validate eagerly

    # -- constructors ----------------------------------------------------
    @classmethod
    def of(cls, *dims: int, dtype: str = DEFAULT_DTYPE) -> "TensorShape":
        """Build a shape from positional dimensions: ``TensorShape.of(32, 224, 224, 3)``."""
        return cls(tuple(dims), dtype)

    @classmethod
    def scalar(cls, dtype: str = DEFAULT_DTYPE) -> "TensorShape":
        """A rank-0 shape (single element)."""
        return cls((), dtype)

    # -- accessors --------------------------------------------------------
    @property
    def rank(self) -> int:
        return len(self.dims)

    @property
    def num_elements(self) -> int:
        """Total number of elements (1 for scalars)."""
        return math.prod(self.dims) if self.dims else 1

    @property
    def num_bytes(self) -> int:
        """Total size in bytes; this is the unit of Ceer's input-size features."""
        return self.num_elements * dtype_size(self.dtype)

    # -- NHWC helpers ------------------------------------------------------
    def _dim(self, index: int, name: str) -> int:
        if self.rank != 4:
            raise ShapeError(f"{name} requires a rank-4 NHWC shape, got rank {self.rank}: {self.dims}")
        return self.dims[index]

    @property
    def batch(self) -> int:
        return self._dim(0, "batch")

    @property
    def height(self) -> int:
        return self._dim(1, "height")

    @property
    def width(self) -> int:
        return self._dim(2, "width")

    @property
    def channels(self) -> int:
        return self._dim(3, "channels")

    def with_batch(self, batch: int) -> "TensorShape":
        """Return this NHWC shape with a different batch dimension."""
        if self.rank == 0:
            return self
        return TensorShape((batch,) + self.dims[1:], self.dtype)

    def __str__(self) -> str:  # compact, TF-like rendering
        return f"[{', '.join(map(str, self.dims))}]{'' if self.dtype == DEFAULT_DTYPE else ':' + self.dtype}"


def conv_output_hw(
    in_h: int,
    in_w: int,
    kernel_h: int,
    kernel_w: int,
    stride_h: int,
    stride_w: int,
    padding: str,
) -> Tuple[int, int]:
    """Spatial output size of a convolution/pooling window, TF semantics.

    ``padding`` is ``"SAME"`` (output = ceil(in/stride)) or ``"VALID"``
    (output = ceil((in - kernel + 1)/stride)). Raises :class:`ShapeError`
    when a VALID window does not fit.
    """
    if stride_h <= 0 or stride_w <= 0:
        raise ShapeError(f"strides must be positive, got ({stride_h}, {stride_w})")
    padding = padding.upper()
    if padding == "SAME":
        return (
            -(-in_h // stride_h),
            -(-in_w // stride_w),
        )
    if padding == "VALID":
        if in_h < kernel_h or in_w < kernel_w:
            raise ShapeError(
                f"VALID window {kernel_h}x{kernel_w} does not fit input {in_h}x{in_w}"
            )
        return (
            -(-(in_h - kernel_h + 1) // stride_h),
            -(-(in_w - kernel_w + 1) // stride_w),
        )
    raise ShapeError(f"padding must be 'SAME' or 'VALID', got {padding!r}")


def total_bytes(shapes: Iterable[TensorShape]) -> int:
    """Sum of byte sizes over an iterable of shapes."""
    return sum(s.num_bytes for s in shapes)
