"""Simulated GPU/CPU hardware: specs, calibration, and the timing ground truth.

This package substitutes for the physical AWS GPUs of the paper's study
(DESIGN.md, Section 2). Ceer (:mod:`repro.core`) never imports it — the
simulation boundary runs between here and :mod:`repro.profiling`.
"""

from repro.hardware.calibration import (
    EFFICIENCY,
    OP_TYPE_TWEAKS,
    QUADRATIC_OP_TYPES,
    efficiency,
    op_tweak,
)
from repro.hardware.gpus import (
    FAMILY_TO_GPU,
    GPU_KEYS,
    GPU_SPECS,
    HOST_CPU,
    CpuSpec,
    GpuSpec,
    gpu_spec,
)
from repro.hardware.kernel_model import (
    base_time_us,
    gpu_base_time_us,
    host_base_time_us,
    sample_op_times_us,
)
from repro.hardware.memory import (
    MemoryEstimate,
    estimate_memory,
    max_batch_size,
)
from repro.hardware.noise import noise_sigma, rng_for, sample_lognormal_times_us

__all__ = [
    "GpuSpec",
    "CpuSpec",
    "GPU_SPECS",
    "GPU_KEYS",
    "FAMILY_TO_GPU",
    "HOST_CPU",
    "gpu_spec",
    "EFFICIENCY",
    "OP_TYPE_TWEAKS",
    "QUADRATIC_OP_TYPES",
    "efficiency",
    "op_tweak",
    "base_time_us",
    "gpu_base_time_us",
    "host_base_time_us",
    "sample_op_times_us",
    "noise_sigma",
    "rng_for",
    "sample_lognormal_times_us",
    "MemoryEstimate",
    "estimate_memory",
    "max_batch_size",
]
