"""Achieved-efficiency calibration: fraction of peak per (GPU, op category).

Real kernels never hit datasheet peaks, and how close they get depends on
both the kernel family and the GPU generation — this is exactly the effect
the paper measures in Section III ("while the latest generation of GPU
model instances (P3) are better suited ... for memory-intensive operations
(e.g., MaxPool-Grad), older generation of GPU instances (e.g., G4) are more
cost-efficient for moderately compute-intensive operations").

The fractions below were calibrated so the simulated measurements reproduce
the paper's observed relationships (paper -> target):

* P3 ~10x faster than P2 and ~4x faster than G4, averaged over heavy ops
  (Section III-A);
* P2 ~50% slower than G3 on average, but G3 slower than P2 for some
  memory-bound ops (Section III-A);
* pooling ops cost-optimal on P3 by ~20% (peak 31% for AvgPool), the other
  16 heavy ops cost-optimal on G4 by ~16% (peak ~29% for
  FusedBatchNormGradV3) (Section III-B).

Each entry gives ``(compute_efficiency, memory_efficiency)``: achieved
fraction of ``peak_gflops`` and of ``memory_bandwidth_gbps`` respectively.
``OP_TYPE_TWEAKS`` applies a final per-op-type multiplicative factor to the
base time (values > 1 mean slower), modelling kernel-level quirks inside a
category (e.g. AvgPool's simpler fused kernel on V100 vs. T4).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import HardwareError
from repro.graph.ops import OpCategory

#: Version of the calibration tables below. Folded into every artifact
#: fingerprint (see :mod:`repro.artifacts.fingerprint`): retuning these
#: constants changes every simulated measurement, so bumping this number
#: self-invalidates all cached profiles/fits/measurements instead of letting
#: stale artifacts mis-resolve against the new substrate.
CALIBRATION_VERSION = 1

#: (gpu key, category) -> (fraction of peak GFLOP/s, fraction of peak GB/s)
EFFICIENCY: Dict[Tuple[str, OpCategory], Tuple[float, float]] = {
    # --- V100 / P3: excellent everywhere, exceptional at memory-bound work
    ("V100", OpCategory.CONV_COMPUTE): (0.49, 0.60),
    ("V100", OpCategory.POOLING): (0.50, 0.85),
    ("V100", OpCategory.NORMALIZATION): (0.35, 0.48),
    ("V100", OpCategory.ELEMENTWISE): (0.35, 0.52),
    ("V100", OpCategory.OPTIMIZER): (0.35, 0.50),
    ("V100", OpCategory.DATA_MOVEMENT): (0.30, 0.60),
    # --- K80 / P2: old Kepler silicon; poor achieved fractions throughout
    ("K80", OpCategory.CONV_COMPUTE): (0.22, 0.40),
    ("K80", OpCategory.POOLING): (0.20, 0.40),
    ("K80", OpCategory.NORMALIZATION): (0.18, 0.35),
    ("K80", OpCategory.ELEMENTWISE): (0.20, 0.35),
    ("K80", OpCategory.OPTIMIZER): (0.20, 0.34),
    ("K80", OpCategory.DATA_MOVEMENT): (0.18, 0.35),
    # --- T4 / G4: efficient Turing chip; the cost champion for compute
    ("T4", OpCategory.CONV_COMPUTE): (0.30, 0.58),
    ("T4", OpCategory.POOLING): (0.30, 0.45),
    ("T4", OpCategory.NORMALIZATION): (0.28, 0.53),
    ("T4", OpCategory.ELEMENTWISE): (0.28, 0.55),
    ("T4", OpCategory.OPTIMIZER): (0.28, 0.53),
    ("T4", OpCategory.DATA_MOVEMENT): (0.25, 0.50),
    # --- M60 / G3: Maxwell; decent compute fractions, weak memory system
    ("M60", OpCategory.CONV_COMPUTE): (0.28, 0.50),
    ("M60", OpCategory.POOLING): (0.26, 0.55),
    ("M60", OpCategory.NORMALIZATION): (0.25, 0.50),
    ("M60", OpCategory.ELEMENTWISE): (0.25, 0.50),
    ("M60", OpCategory.OPTIMIZER): (0.25, 0.48),
    ("M60", OpCategory.DATA_MOVEMENT): (0.22, 0.45),
}

#: Final per-(op type, gpu) time multipliers (> 1 = slower). ``"*"`` applies
#: to all GPUs. These model intra-category kernel quirks the paper surfaces:
#: AvgPool is the *most* P3-favoured op in Fig. 3, FusedBatchNormGradV3 the
#: most G4-favoured.
OP_TYPE_TWEAKS: Dict[str, Dict[str, float]] = {
    "MatMul": {"V100": 1.30},
    "AvgPool": {"T4": 1.15, "M60": 1.10},
    "AvgPoolGrad": {"T4": 1.05},
    "MaxPoolGrad": {"K80": 1.10},
    "FusedBatchNormV3": {"T4": 0.85},
    "FusedBatchNormGradV3": {"T4": 0.82, "V100": 1.05},
    "LRN": {"*": 1.20, "V100": 2.20},
    "LRNGrad": {"*": 1.30, "V100": 2.40},
    "SparseSoftmaxCrossEntropyWithLogits": {"*": 1.50},
}

#: Ops whose ground-truth time grows mildly *superlinearly* with input size
#: (paper, Section IV-B: "for a few operations, e.g. Conv2DBackpropFilter,
#: a quadratic fit is much better suited"). The extra factor is
#: ``1 + input_bytes / QUADRATIC_SCALE_BYTES``.
QUADRATIC_OP_TYPES = frozenset({"Conv2DBackpropFilter", "LRNGrad"})
QUADRATIC_SCALE_BYTES = 400e6


def efficiency(gpu_key: str, category: OpCategory) -> Tuple[float, float]:
    """Return (compute, memory) achieved fractions for a (GPU, category)."""
    if category is OpCategory.HOST:
        raise HardwareError("host ops are not timed by the GPU kernel model")
    try:
        return EFFICIENCY[(gpu_key, category)]
    except KeyError:
        raise HardwareError(
            f"no calibration entry for GPU {gpu_key!r}, category {category.value!r}"
        )


def op_tweak(op_type: str, gpu_key: str) -> float:
    """Per-op-type fine multiplier for a GPU (1.0 when not tweaked)."""
    tweaks = OP_TYPE_TWEAKS.get(op_type)
    if not tweaks:
        return 1.0
    return tweaks.get(gpu_key, tweaks.get("*", 1.0))
