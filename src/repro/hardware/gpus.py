"""Device specifications for the four AWS GPU models (and the host CPU).

These are the GPUs behind AWS's P3, P2, G4, and G3 instance families
(paper, Section II):

* **V100** — NVIDIA Tesla V100 (P3): 5,120 CUDA cores, 640 tensor cores,
  16 GB HBM2.
* **K80**  — NVIDIA K80 (P2): one GK210 die of the dual-die board AWS
  exposes per "GPU", 2,496 cores, 12 GB GDDR5.
* **T4**   — NVIDIA T4 Tensor Core (G4): 2,560 cores, 16 GB GDDR6.
* **M60**  — NVIDIA Tesla M60 (G3): one GM204 die, 2,048 cores, 8 GB GDDR5.

Peak numbers are the published datasheet figures; the *achieved* fractions
of peak per operation category live in :mod:`repro.hardware.calibration`
and were calibrated so the simulated measurements reproduce the paper's
observed relationships (see DESIGN.md, Section 2). The communication
coefficients parameterise the ground-truth data-parallel synchronisation
law in :mod:`repro.sim.dataparallel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import HardwareError


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU model.

    Attributes:
        key: short identifier used throughout the library (``"V100"``).
        family: AWS instance family exposing this GPU (``"P3"``).
        marketing_name: full product name.
        cuda_cores: parallel processing cores (paper, Section II).
        tensor_cores: tensor cores (V100 only among these models).
        memory_gb: GPU memory in GB.
        peak_gflops: peak single-precision throughput, GFLOP/s.
        memory_bandwidth_gbps: peak DRAM bandwidth, GB/s.
        launch_overhead_us: fixed per-kernel launch/dispatch cost.
        saturation_elements: output-elements of parallel work needed to
            reach ~50% of the achievable rate. Wide chips (V100) need much
            more parallelism to saturate than narrow ones (T4) — the reason
            small-kernel networks like AlexNet close much of the nominal
            performance gap on real hardware.
        comm_base_us: fixed per-iteration host<->device synchronisation cost.
        comm_us_per_mparam: per-iteration communication microseconds per
            million model parameters at k=1 (scaled up by the k-factor for
            data-parallel training; see :mod:`repro.sim.dataparallel`).
    """

    key: str
    family: str
    marketing_name: str
    cuda_cores: int
    tensor_cores: int
    memory_gb: int
    peak_gflops: float
    memory_bandwidth_gbps: float
    launch_overhead_us: float
    saturation_elements: float
    comm_base_us: float
    comm_us_per_mparam: float


#: The four GPU models of the paper's study, keyed by GPU key.
GPU_SPECS: Dict[str, GpuSpec] = {
    spec.key: spec
    for spec in (
        GpuSpec(
            key="V100", family="P3", marketing_name="NVIDIA Tesla V100",
            cuda_cores=5120, tensor_cores=640, memory_gb=16,
            peak_gflops=15700.0, memory_bandwidth_gbps=900.0,
            launch_overhead_us=3.0, saturation_elements=1.4e6,
            comm_base_us=2600.0, comm_us_per_mparam=200.0,
        ),
        GpuSpec(
            key="K80", family="P2", marketing_name="NVIDIA K80",
            cuda_cores=2496, tensor_cores=0, memory_gb=12,
            peak_gflops=2800.0, memory_bandwidth_gbps=240.0,
            launch_overhead_us=8.0, saturation_elements=1.8e5,
            comm_base_us=45000.0, comm_us_per_mparam=2400.0,
        ),
        GpuSpec(
            key="T4", family="G4", marketing_name="NVIDIA T4 Tensor Core",
            cuda_cores=2560, tensor_cores=320, memory_gb=16,
            peak_gflops=8100.0, memory_bandwidth_gbps=320.0,
            launch_overhead_us=4.0, saturation_elements=1.2e5,
            comm_base_us=8500.0, comm_us_per_mparam=450.0,
        ),
        GpuSpec(
            key="M60", family="G3", marketing_name="NVIDIA Tesla M60",
            cuda_cores=2048, tensor_cores=0, memory_gb=8,
            peak_gflops=4800.0, memory_bandwidth_gbps=160.0,
            launch_overhead_us=6.0, saturation_elements=1.5e5,
            comm_base_us=17000.0, comm_us_per_mparam=900.0,
        ),
    )
}

#: GPU keys in the paper's canonical presentation order.
GPU_KEYS: Tuple[str, ...] = ("V100", "K80", "T4", "M60")

#: Map from AWS family name (P3/P2/G4/G3) to GPU key.
FAMILY_TO_GPU: Dict[str, str] = {spec.family: key for key, spec in GPU_SPECS.items()}


@dataclass(frozen=True)
class CpuSpec:
    """Host CPU description for the CPU-pinned ops of the input pipeline.

    Host op times are dominated by framework bookkeeping and (prefetch-
    amortised) data preparation; ``effective_bandwidth_gbps`` is therefore
    an *effective* figure, far above DRAM speed for the tiny metadata most
    host ops touch and far below it for full-batch decodes.
    """

    key: str = "HOST_CPU"
    overhead_us: float = 500.0
    effective_bandwidth_gbps: float = 12.0


HOST_CPU = CpuSpec()


#: GPUs registered at runtime from spec sheets (``repro catalog admit``).
#: These were never profiled — only the transfer backend can price them.
_RUNTIME_SPECS: Dict[str, GpuSpec] = {}  # staticcheck: ignore[unit-suffix]


def register_gpu_spec(spec: GpuSpec) -> GpuSpec:
    """Register a runtime (spec-only) GPU; re-registering a key replaces it.

    The four built-in paper GPUs cannot be shadowed: their fitted models,
    calibrations, and golden artifacts all assume the datasheet values.
    """
    if spec.key in GPU_SPECS or spec.key in FAMILY_TO_GPU:
        raise HardwareError(
            f"cannot register {spec.key!r}: it is a built-in GPU key/family"
        )
    _RUNTIME_SPECS[spec.key] = spec  # staticcheck: ignore[unit-suffix]
    return spec


def unregister_gpu_spec(key: str) -> None:
    """Remove a runtime GPU registration (no-op if absent)."""
    _RUNTIME_SPECS.pop(key, None)


def runtime_gpu_keys() -> Tuple[str, ...]:
    """Keys of runtime-registered GPUs, sorted."""
    return tuple(sorted(_RUNTIME_SPECS))


def is_runtime_gpu(key: str) -> bool:  # staticcheck: ignore[unit-suffix]
    """Whether ``key`` names a runtime-registered (spec-only) GPU."""
    return key in _RUNTIME_SPECS


def gpu_spec(key: str) -> GpuSpec:
    """Look up a GPU by key (``"V100"``) or AWS family name (``"P3"``).

    Runtime-registered GPUs resolve after the built-ins (by key or
    family), so admitting a spec-only device makes it addressable
    everywhere a built-in key is.
    """
    if key in GPU_SPECS:
        return GPU_SPECS[key]
    if key in FAMILY_TO_GPU:
        return GPU_SPECS[FAMILY_TO_GPU[key]]
    if key in _RUNTIME_SPECS:
        return _RUNTIME_SPECS[key]
    for spec in _RUNTIME_SPECS.values():
        if spec.family == key:
            return spec
    raise HardwareError(
        f"unknown GPU {key!r}; known keys: {sorted(GPU_SPECS)}, "
        f"families: {sorted(FAMILY_TO_GPU)}"
        + (f", runtime: {sorted(_RUNTIME_SPECS)}" if _RUNTIME_SPECS else "")
    )
