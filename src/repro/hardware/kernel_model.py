"""Ground-truth kernel-time law for the simulated GPUs and host CPU.

This module is the reproduction's stand-in for physical hardware: given an
operation (with resolved shapes) and a device, it produces the
*deterministic base* compute time; :func:`sample_op_times_us` then adds the
measurement noise from :mod:`repro.hardware.noise`.

The law is a classic roofline with per-(GPU, category) achieved
efficiencies::

    t = launch_overhead
        + max(flops / achieved_gflops, bytes / achieved_bandwidth)
        * op_tweak * quadratic_factor

plus a mild superlinear term for the ops the paper found to need quadratic
regression fits (Conv2DBackpropFilter; Section IV-B). Host (CPU) ops use a
separate bandwidth + overhead model.

Nothing in :mod:`repro.core` (Ceer) imports this module: Ceer only ever
sees sampled measurements, never the law that generated them.
"""

from __future__ import annotations

import numpy as np

from repro.graph.flops import flop_count, memory_bytes
from repro.graph.ops import Device, OpCategory, Operation
from repro.hardware.calibration import (
    QUADRATIC_OP_TYPES,
    QUADRATIC_SCALE_BYTES,
    efficiency,
    op_tweak,
)
from repro.hardware.gpus import HOST_CPU, CpuSpec, GpuSpec, gpu_spec
from repro.hardware.noise import noise_sigma, rng_for, sample_lognormal_times_us


def host_base_time_us(op: Operation, cpu: CpuSpec = HOST_CPU) -> float:
    """Deterministic base time for a CPU-pinned op.

    Host ops are bookkeeping-dominated; data-bearing ops (decode, batch
    fetch) additionally pay an effective-bandwidth cost on the larger of
    their input/output footprints (prefetching hides most of the raw work,
    which is why the effective bandwidth is generous).
    """
    data = max(op.input_bytes, op.output_bytes)
    return cpu.overhead_us + data / (cpu.effective_bandwidth_gbps * 1e3)


def utilization(op: Operation, gpu: GpuSpec) -> float:
    """Occupancy factor in (0, 1]: fraction of the achievable rate realised.

    A kernel only saturates a GPU when it offers enough parallel work.
    We measure parallelism as output elements (~CUDA threads) and apply the
    standard latency-throughput interpolation ``p / (p + p_half)``, where
    ``p_half`` (:attr:`GpuSpec.saturation_elements`) is the half-saturation
    point. Wide chips (V100) have a much higher ``p_half`` than narrow ones
    (T4), which is why small-kernel networks like AlexNet close much of the
    nominal performance gap on real hardware — the effect behind the
    paper's Fig. 9 finding that 3x G4 beats 1x P3 for AlexNet/ResNet-101.
    """
    parallelism = max(
        sum(s.num_elements for s in op.inputs),
        sum(s.num_elements for s in op.outputs),
    )
    return parallelism / (parallelism + gpu.saturation_elements)


#: Spread of the per-instance heterogeneity factor (see below).
_INSTANCE_SPREAD = 0.10


def instance_factor(op: Operation, gpu_key: str) -> float:
    """Stable per-(op instance, GPU) heterogeneity factor in [0.9, 1.1].

    Two instances of the same op type with identical sizes still differ on
    real hardware — cache residency, kernel-algorithm selection (cuDNN
    picks per-shape algorithms), and memory layout all vary per call site.
    The factor is a deterministic function of the op's name and the GPU,
    *constant across iterations*: it shifts an instance's mean without
    adding iteration-to-iteration variance, which is exactly the scatter
    visible around the paper's Fig. 4 regression lines (and the reason its
    heavy-op R² values are 0.84-0.98 rather than 1.0).
    """
    rng = rng_for("instance", gpu_key, op.name)
    return 1.0 + _INSTANCE_SPREAD * (2.0 * rng.random() - 1.0)


def gpu_base_time_us(op: Operation, gpu: GpuSpec) -> float:
    """Deterministic base time for a GPU op under the roofline law."""
    compute_eff, memory_eff = efficiency(gpu.key, op.category)
    flops = flop_count(op)
    bytes_moved = memory_bytes(op)
    compute_us = flops / (gpu.peak_gflops * compute_eff * 1e3)
    memory_us = bytes_moved / (gpu.memory_bandwidth_gbps * memory_eff * 1e3)
    t = gpu.launch_overhead_us + max(compute_us, memory_us) / utilization(op, gpu)
    t *= op_tweak(op.op_type, gpu.key)
    t *= instance_factor(op, gpu.key)
    if op.op_type in QUADRATIC_OP_TYPES:
        t *= 1.0 + op.input_bytes / QUADRATIC_SCALE_BYTES
    return t


def base_time_us(op: Operation, device_key: str) -> float:
    """Dispatch to the GPU or host law based on the op's placement.

    ``device_key`` identifies the GPU model the graph is running on; CPU
    ops ignore it (the host is the same across instance families).
    """
    if op.device is Device.CPU or op.category is OpCategory.HOST:
        return host_base_time_us(op)
    return gpu_base_time_us(op, gpu_spec(device_key))


def sample_op_times_us(
    op: Operation,
    device_key: str,
    n_samples: int,
    seed_context: str = "",
) -> np.ndarray:
    """Simulate ``n_samples`` measured compute times (microseconds) for one op.

    Sampling is vectorised (one RNG call per op) and deterministic: the
    stream is keyed by (device, op name, op type, context), so repeated
    profiling runs of the same graph reproduce identical traces unless the
    caller varies ``seed_context`` (e.g. per training run).
    """
    base = base_time_us(op, device_key)
    sigma = noise_sigma(op.op_type)
    rng = rng_for(device_key, op.name, op.op_type, seed_context)
    return sample_lognormal_times_us(base, sigma, n_samples, rng)
