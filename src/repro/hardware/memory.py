"""GPU memory-footprint estimation for training graphs.

The paper's GPU table (Section II) lists device memory — 16 GB (V100, T4),
12 GB (K80), 8 GB (M60) — but its experiments all fit. This module adds
the natural production feature: estimate a training graph's working-set
size and flag configurations that would OOM, so the recommender can skip
them (``Recommender(..., check_memory=True)``).

The estimate follows the standard training-memory decomposition:

* **parameters** + **gradients** + optimizer slots (momentum: one extra
  copy) — 3x parameter bytes;
* **activations**: every forward op output is retained for the backward
  pass (no rematerialisation in TF 1.x's default execution);
* **workspace**: scratch memory for the convolution algorithms, modelled
  as a fraction of the largest single activation, plus a fixed framework
  reserve (CUDA context, cuDNN handles).

This is intentionally a first-order model — real allocators fragment and
TF reserves memory pools — so a safety factor is applied before declaring
something feasible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

from repro.graph.graph import OpGraph
from repro.graph.layers import TensorRef  # noqa: F401  (documentation link)
from repro.graph.ops import Device
from repro.hardware.gpus import GpuSpec, gpu_spec

#: Parameter copies held on device: weights + gradients + momentum slots.
PARAMETER_COPIES = 3

#: Convolution workspace as a fraction of the largest activation.
WORKSPACE_FRACTION = 0.25

#: Fixed framework reserve (CUDA context, kernels, cuDNN), bytes.
FRAMEWORK_RESERVE_BYTES = 600e6

#: Fraction of physical memory usable before we call a config infeasible
#: (allocator fragmentation, TF memory pools).
USABLE_FRACTION = 0.92


@dataclass(frozen=True)
class MemoryEstimate:
    """Breakdown of a training graph's estimated device working set."""

    model: str
    batch_size: int
    parameter_bytes: int
    activation_bytes: int
    workspace_bytes: int
    reserve_bytes: int

    @property
    def total_bytes(self) -> float:
        return (
            PARAMETER_COPIES * self.parameter_bytes
            + self.activation_bytes
            + self.workspace_bytes
            + self.reserve_bytes
        )

    @property
    def total_gb(self) -> float:
        return self.total_bytes / 1e9

    def fits(self, gpu: Union[str, GpuSpec]) -> bool:
        """Whether the working set fits in a GPU's usable memory."""
        spec = gpu if isinstance(gpu, GpuSpec) else gpu_spec(gpu)
        return self.total_bytes <= spec.memory_gb * 1e9 * USABLE_FRACTION

    def render(self) -> str:
        return (
            f"memory estimate for {self.model!r} (batch {self.batch_size}): "
            f"{self.total_gb:.2f} GB  "
            f"(params x{PARAMETER_COPIES} {PARAMETER_COPIES * self.parameter_bytes / 1e9:.2f} GB, "
            f"activations {self.activation_bytes / 1e9:.2f} GB, "
            f"workspace {self.workspace_bytes / 1e9:.2f} GB, "
            f"reserve {self.reserve_bytes / 1e9:.2f} GB)"
        )


def estimate_memory(graph: OpGraph) -> MemoryEstimate:
    """Estimate the per-GPU training working set of a graph.

    Activations are the outputs of forward GPU ops — identified as GPU ops
    that are not gradient/optimizer nodes (their names are scoped under
    ``gradients/`` and ``train/`` by the builder). Backward ops' outputs
    are transient and reuse freed forward buffers, so they contribute via
    the workspace term only.
    """
    parameter_bytes = graph.num_parameters * 4  # float32 training
    activation_bytes = 0
    largest_activation = 0
    for op in graph:
        if op.device is not Device.GPU:
            continue
        if op.name.startswith(("gradients/", "train/")):
            continue
        out_bytes = op.output_bytes
        activation_bytes += out_bytes
        largest_activation = max(largest_activation, out_bytes)
    workspace = int(WORKSPACE_FRACTION * largest_activation)
    return MemoryEstimate(
        model=graph.name,
        batch_size=graph.batch_size,
        parameter_bytes=parameter_bytes,
        activation_bytes=activation_bytes,
        workspace_bytes=workspace,
        reserve_bytes=int(FRAMEWORK_RESERVE_BYTES),
    )


def max_batch_size(
    build_fn, gpu: Union[str, GpuSpec], candidates=(8, 16, 32, 64, 128, 256)
) -> int:
    """Largest candidate batch size whose working set fits on ``gpu``.

    ``build_fn(batch_size)`` must return a training graph. Returns 0 when
    even the smallest candidate does not fit.
    """
    best = 0
    for batch in sorted(candidates):
        graph = build_fn(batch)
        if estimate_memory(graph).fits(gpu):
            best = batch
    return best
