"""Seeded stochastic noise for simulated measurements.

The paper's central variability finding (Section III-C, Fig. 5): for a
given {heavy GPU operation, input size} pair, compute times are nearly
deterministic (95% of normalized standard deviations below 0.1), while
light GPU ops and CPU ops fluctuate much more — enough that regression on
them fails and Ceer falls back to sample medians (Section IV-B).

We reproduce that structure with multiplicative lognormal noise whose sigma
is a property of the *op type*: the dominant kernels (convolutions,
pooling, batch norm, the big elementwise ops) get sigma ~= 0.02-0.06;
bookkeeping/data-movement ops get sigma ~= 0.25-0.45; host ops ~= 0.5.

All randomness flows through :func:`rng_for`, which derives a
``numpy.random.Generator`` from a stable hash of string/int keys — the
whole simulation is exactly reproducible and independent of dict ordering
or process hash seeds.
"""

from __future__ import annotations

import hashlib
from typing import Tuple, Union

import numpy as np

from repro.graph.ops import OP_REGISTRY, OpCategory, op_def

#: Global seed namespace; bump to regenerate an entirely fresh "cloud".
GLOBAL_SEED_NAMESPACE = "ceer-repro-v1"

#: Lognormal sigma per op category (see module docstring).
_CATEGORY_SIGMA = {
    OpCategory.CONV_COMPUTE: 0.030,
    OpCategory.POOLING: 0.040,
    OpCategory.NORMALIZATION: 0.045,
    OpCategory.ELEMENTWISE: 0.060,
    # Parameter-update kernels are mostly tiny (biases, BN scales) and are
    # scheduled in bursts at iteration end — high jitter in practice.
    OpCategory.OPTIMIZER: 0.200,
    OpCategory.DATA_MOVEMENT: 0.350,
    OpCategory.HOST: 0.500,
}

#: Per-op-type overrides for ops that behave unlike their category.
_OP_TYPE_SIGMA = {
    # Tiny kernels that the scheduler jitters around a lot:
    "Softmax": 0.250,
    "SparseSoftmaxCrossEntropyWithLogits": 0.200,
    "Mean": 0.220,
    "Mul": 0.100,
    "Sub": 0.200,
    "Pad": 0.300,
    "BiasAddGrad": 0.090,
}


def noise_sigma(op_type: str) -> float:
    """Lognormal sigma for an op type's compute-time noise."""
    if op_type in _OP_TYPE_SIGMA:
        return _OP_TYPE_SIGMA[op_type]
    return _CATEGORY_SIGMA[op_def(op_type).category]


def rng_for(*keys: Union[str, int]) -> np.random.Generator:
    """A deterministic Generator derived from a stable hash of ``keys``."""
    digest = hashlib.sha256(
        "/".join([GLOBAL_SEED_NAMESPACE, *map(str, keys)]).encode("utf-8")
    ).digest()
    return np.random.default_rng(int.from_bytes(digest[:8], "little"))


def sample_lognormal_times_us(
    base_us: float, sigma: float, n: int, rng: np.random.Generator
) -> np.ndarray:
    """Draw ``n`` compute-time samples around ``base_us``.

    The lognormal is parameterised so its *median* equals ``base_us`` —
    matching how a deterministic kernel time gets inflated by scheduling
    interference: frequent values near the floor, occasional slow outliers.
    A tiny additive jitter floor (0.2 us) keeps zero-cost ops measurable.
    """
    if n <= 0:
        raise ValueError(f"need n >= 1 samples, got {n}")
    samples = base_us * np.exp(sigma * rng.standard_normal(n))
    jitter = 0.2 * rng.random(n)
    return samples + jitter


def mean_and_percentiles(base_us: float, sigma: float) -> Tuple[float, float]:
    """Analytic (mean, std) of the lognormal noise model, for tests."""
    mean = base_us * float(np.exp(sigma**2 / 2.0))
    std = mean * float(np.sqrt(np.exp(sigma**2) - 1.0))
    return mean, std


def all_known_sigmas() -> dict:
    """Sigma per registered op type (diagnostics and property tests)."""
    return {name: noise_sigma(name) for name in OP_REGISTRY}
