"""Model zoo: the 12 CNN architectures of the paper's empirical study."""

from repro.models.alexnet import build_alexnet
from repro.models.inception_resnet import build_inception_resnet_v2
from repro.models.inception_v1 import build_inception_v1
from repro.models.inception_v3 import build_inception_v3
from repro.models.inception_v4 import build_inception_v4
from repro.models.resnet import RESNET_STAGES, build_resnet
from repro.models.lstm import LSTM_PRESETS, build_lstm
from repro.models.transformer import TRANSFORMER_PRESETS, build_transformer
from repro.models.vgg import VGG_CONFIGS, build_vgg
from repro.models.zoo import (
    MODEL_BUILDERS,
    TEST_MODELS,
    TRAIN_MODELS,
    build_model,
    model_names,
)

__all__ = [
    "build_model",
    "model_names",
    "MODEL_BUILDERS",
    "TRAIN_MODELS",
    "TEST_MODELS",
    "build_alexnet",
    "build_vgg",
    "build_resnet",
    "build_inception_v1",
    "build_inception_v3",
    "build_inception_v4",
    "build_inception_resnet_v2",
    "VGG_CONFIGS",
    "RESNET_STAGES",
    "build_transformer",
    "TRANSFORMER_PRESETS",
    "build_lstm",
    "LSTM_PRESETS",
]
