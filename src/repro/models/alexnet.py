"""AlexNet (Krizhevsky et al., 2012) — one of the paper's four test-set CNNs.

Five convolutional layers (the first two followed by local response
normalisation and max pooling), then three fully-connected layers with
dropout. Mostly convolutions and large dense layers; only a few pooling
operations — which is why, in the paper's hourly-budget scenario (Fig. 9),
AlexNet favours G4 over the pooling-friendly P3.

Trainable parameters: ~60.9M (the classic figure is 60.97M), dominated by
the first fully-connected layer.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, OpGraph


def build_alexnet(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build the AlexNet training graph (227x227 input, as in the original)."""
    b = GraphBuilder(
        "alexnet", batch_size=batch_size, image_hw=(227, 227), num_classes=num_classes
    )
    x = b.input()
    x = b.conv(x, filters=96, kernel=11, stride=4, padding="VALID", scope="conv1")
    x = b.lrn(x, scope="lrn1")
    x = b.max_pool(x, kernel=3, stride=2, scope="pool1")
    x = b.conv(x, filters=256, kernel=5, padding="SAME", scope="conv2")
    x = b.lrn(x, scope="lrn2")
    x = b.max_pool(x, kernel=3, stride=2, scope="pool2")
    x = b.conv(x, filters=384, kernel=3, scope="conv3")
    x = b.conv(x, filters=384, kernel=3, scope="conv4")
    x = b.conv(x, filters=256, kernel=3, scope="conv5")
    x = b.max_pool(x, kernel=3, stride=2, scope="pool5")
    x = b.flatten(x)
    x = b.dense(x, 4096, scope="fc6")
    x = b.dropout(x, 0.5, scope="dropout6")
    x = b.dense(x, 4096, scope="fc7")
    x = b.dropout(x, 0.5, scope="dropout7")
    logits = b.dense(x, num_classes, activation=None, scope="fc8")
    return b.finalize(logits)
