"""Inception-ResNet-v2 (Szegedy et al., 2016) — training-set CNN.

"Similar to Inception-v3, but augmented with shortcut connections" (paper,
Section III): Inception-style multi-branch blocks whose concatenated output
is projected by a linear 1x1 convolution, scaled, and added back to the
block input. 10x block35 at 35x35, 20x block17 at 17x17, and 10x block8 at
8x8, following the TF-Slim reference. ~55M parameters — the largest model
in the paper's training set, anchoring the high-parameter end of the
communication-overhead regression (Fig. 7).
"""

from __future__ import annotations

from repro.graph import GraphBuilder, OpGraph
from repro.graph.layers import TensorRef


def _conv(b: GraphBuilder, x: TensorRef, filters: int, kernel, scope: str,
          stride=1, padding: str = "SAME", activation: str = "relu") -> TensorRef:
    return b.conv(x, filters, kernel, stride=stride, padding=padding,
                  batch_norm=True, activation=activation, scope=scope)


def _stem(b: GraphBuilder, x: TensorRef) -> TensorRef:
    """Inception-v3-style stem plus the mixed_5b module; 35x35x320 output."""
    x = _conv(b, x, 32, 3, "stem/conv1a", stride=2, padding="VALID")
    x = _conv(b, x, 32, 3, "stem/conv1b", padding="VALID")
    x = _conv(b, x, 64, 3, "stem/conv1c")
    x = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope="stem/pool1")
    x = _conv(b, x, 80, 1, "stem/conv2a", padding="VALID")
    x = _conv(b, x, 192, 3, "stem/conv2b", padding="VALID")
    x = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope="stem/pool2")
    # mixed_5b
    b1 = _conv(b, x, 96, 1, "mixed_5b/b1_1x1")
    b5 = _conv(b, x, 48, 1, "mixed_5b/b5_reduce")
    b5 = _conv(b, b5, 64, 5, "mixed_5b/b5_5x5")
    b3 = _conv(b, x, 64, 1, "mixed_5b/b3_reduce")
    b3 = _conv(b, b3, 96, 3, "mixed_5b/b3_3x3a")
    b3 = _conv(b, b3, 96, 3, "mixed_5b/b3_3x3b")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope="mixed_5b/bp_pool")
    bp = _conv(b, bp, 64, 1, "mixed_5b/bp_proj")
    return b.concat([b1, b5, b3, bp], scope="mixed_5b/concat")


def _block35(b: GraphBuilder, x: TensorRef, scope: str, scale: float = 0.17) -> TensorRef:
    """Inception-ResNet-A residual block at 35x35 (320 channels)."""
    b1 = _conv(b, x, 32, 1, f"{scope}/b1_1x1")
    b2 = _conv(b, x, 32, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 32, 3, f"{scope}/b2_3x3")
    b3 = _conv(b, x, 32, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 48, 3, f"{scope}/b3_3x3a")
    b3 = _conv(b, b3, 64, 3, f"{scope}/b3_3x3b")
    mixed = b.concat([b1, b2, b3], scope=f"{scope}/concat")
    up = b.conv(mixed, x.shape.channels, kernel=1, activation=None,
                use_bias=True, scope=f"{scope}/proj")
    up = b.scale(up, scale, scope=f"{scope}/scale")
    return b.add(x, up, activation="relu", scope=f"{scope}/add")


def _reduction_a(b: GraphBuilder, x: TensorRef, scope: str = "mixed_6a") -> TensorRef:
    """35x35x320 -> 17x17x1088."""
    b1 = _conv(b, x, 384, 3, f"{scope}/b1_3x3", stride=2, padding="VALID")
    b2 = _conv(b, x, 256, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 256, 3, f"{scope}/b2_3x3a")
    b2 = _conv(b, b2, 384, 3, f"{scope}/b2_3x3b", stride=2, padding="VALID")
    bp = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope=f"{scope}/bp_pool")
    return b.concat([b1, b2, bp], scope=f"{scope}/concat")


def _block17(b: GraphBuilder, x: TensorRef, scope: str, scale: float = 0.10) -> TensorRef:
    """Inception-ResNet-B residual block at 17x17 (1088 channels)."""
    b1 = _conv(b, x, 192, 1, f"{scope}/b1_1x1")
    b2 = _conv(b, x, 128, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 160, (1, 7), f"{scope}/b2_1x7")
    b2 = _conv(b, b2, 192, (7, 1), f"{scope}/b2_7x1")
    mixed = b.concat([b1, b2], scope=f"{scope}/concat")
    up = b.conv(mixed, x.shape.channels, kernel=1, activation=None,
                use_bias=True, scope=f"{scope}/proj")
    up = b.scale(up, scale, scope=f"{scope}/scale")
    return b.add(x, up, activation="relu", scope=f"{scope}/add")


def _reduction_b(b: GraphBuilder, x: TensorRef, scope: str = "mixed_7a") -> TensorRef:
    """17x17x1088 -> 8x8x2080."""
    b1 = _conv(b, x, 256, 1, f"{scope}/b1_reduce")
    b1 = _conv(b, b1, 384, 3, f"{scope}/b1_3x3", stride=2, padding="VALID")
    b2 = _conv(b, x, 256, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 288, 3, f"{scope}/b2_3x3", stride=2, padding="VALID")
    b3 = _conv(b, x, 256, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 288, 3, f"{scope}/b3_3x3a")
    b3 = _conv(b, b3, 320, 3, f"{scope}/b3_3x3b", stride=2, padding="VALID")
    bp = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope=f"{scope}/bp_pool")
    return b.concat([b1, b2, b3, bp], scope=f"{scope}/concat")


def _block8(b: GraphBuilder, x: TensorRef, scope: str, scale: float = 0.20,
            activation: str = "relu") -> TensorRef:
    """Inception-ResNet-C residual block at 8x8 (2080 channels)."""
    b1 = _conv(b, x, 192, 1, f"{scope}/b1_1x1")
    b2 = _conv(b, x, 192, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 224, (1, 3), f"{scope}/b2_1x3")
    b2 = _conv(b, b2, 256, (3, 1), f"{scope}/b2_3x1")
    mixed = b.concat([b1, b2], scope=f"{scope}/concat")
    up = b.conv(mixed, x.shape.channels, kernel=1, activation=None,
                use_bias=True, scope=f"{scope}/proj")
    up = b.scale(up, scale, scope=f"{scope}/scale")
    return b.add(x, up, activation=activation, scope=f"{scope}/add")


def build_inception_resnet_v2(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build the Inception-ResNet-v2 training graph (299x299 input)."""
    b = GraphBuilder(
        "inception_resnet_v2", batch_size=batch_size, image_hw=(299, 299),
        num_classes=num_classes,
    )
    x = b.input()
    x = _stem(b, x)
    for i in range(10):
        x = _block35(b, x, f"block35_{i + 1}")
    x = _reduction_a(b, x)
    for i in range(20):
        x = _block17(b, x, f"block17_{i + 1}")
    x = _reduction_b(b, x)
    for i in range(9):
        x = _block8(b, x, f"block8_{i + 1}")
    x = _block8(b, x, "block8_10", activation=None)
    x = _conv(b, x, 1536, 1, "conv_final")
    x = b.global_avg_pool(x)
    x = b.dropout(x, 0.2, scope="dropout")
    logits = b.dense(x, num_classes, activation=None, scope="logits")
    return b.finalize(logits)
