"""Inception-v1 / GoogLeNet (Szegedy et al., 2014) — training-set CNN.

Nine Inception modules (four parallel branches merged by channel concat)
between a convolutional stem and a global-average-pool head. Following the
paper's evaluation we omit the two auxiliary classifier heads (TF-Slim's
inception_v1 does the same by default). ~7M parameters — the smallest model
in the study, which makes it the anchor point of the communication-overhead
regression in Fig. 7 and the subject of the GPU-scaling study in Fig. 6.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, OpGraph
from repro.graph.layers import TensorRef

#: Branch widths of the nine modules: (1x1, 3x3-reduce, 3x3, 5x5-reduce,
#: 5x5, pool-proj), from Table 1 of the GoogLeNet paper.
INCEPTION_V1_MODULES = {
    "mixed_3a": (64, 96, 128, 16, 32, 32),
    "mixed_3b": (128, 128, 192, 32, 96, 64),
    "mixed_4a": (192, 96, 208, 16, 48, 64),
    "mixed_4b": (160, 112, 224, 24, 64, 64),
    "mixed_4c": (128, 128, 256, 24, 64, 64),
    "mixed_4d": (112, 144, 288, 32, 64, 64),
    "mixed_4e": (256, 160, 320, 32, 128, 128),
    "mixed_5a": (256, 160, 320, 32, 128, 128),
    "mixed_5b": (384, 192, 384, 48, 128, 128),
}


def _inception_module(b: GraphBuilder, x: TensorRef, widths, scope: str) -> TensorRef:
    """The classic four-branch Inception block, merged with a channel concat."""
    w1, w3r, w3, w5r, w5, wp = widths
    branch1 = b.conv(x, w1, kernel=1, scope=f"{scope}/b1_1x1")
    branch3 = b.conv(x, w3r, kernel=1, scope=f"{scope}/b3_reduce")
    branch3 = b.conv(branch3, w3, kernel=3, scope=f"{scope}/b3_3x3")
    branch5 = b.conv(x, w5r, kernel=1, scope=f"{scope}/b5_reduce")
    branch5 = b.conv(branch5, w5, kernel=5, scope=f"{scope}/b5_5x5")
    pooled = b.max_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    branchp = b.conv(pooled, wp, kernel=1, scope=f"{scope}/bp_proj")
    return b.concat([branch1, branch3, branch5, branchp], scope=f"{scope}/concat")


def build_inception_v1(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build the GoogLeNet training graph (224x224 input)."""
    b = GraphBuilder(
        "inception_v1", batch_size=batch_size, image_hw=(224, 224),
        num_classes=num_classes,
    )
    x = b.input()
    x = b.conv(x, 64, kernel=7, stride=2, padding="SAME", scope="conv1")
    x = b.max_pool(x, kernel=3, stride=2, padding="SAME", scope="pool1")
    x = b.lrn(x, scope="lrn1")
    x = b.conv(x, 64, kernel=1, scope="conv2_reduce")
    x = b.conv(x, 192, kernel=3, scope="conv2")
    x = b.lrn(x, scope="lrn2")
    x = b.max_pool(x, kernel=3, stride=2, padding="SAME", scope="pool2")
    for name, widths in INCEPTION_V1_MODULES.items():
        x = _inception_module(b, x, widths, scope=name)
        if name in ("mixed_3b", "mixed_4e"):
            x = b.max_pool(x, kernel=3, stride=2, padding="SAME",
                           scope=f"pool_after_{name}")
    x = b.global_avg_pool(x)
    x = b.dropout(x, 0.4, scope="dropout")
    logits = b.dense(x, num_classes, activation=None, scope="logits")
    return b.finalize(logits)
