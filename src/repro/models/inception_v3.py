"""Inception-v3 (Szegedy et al., 2015) — one of the paper's test-set CNNs.

The factorised-convolution Inception: a 299x299 stem, three 35x35 modules
(5x5 branch), a grid reduction, four 17x17 modules (factorised 7x7
branches), a second reduction, and two 8x8 modules (expanded-filter-bank
branches), all batch-normalised and merged with channel concats. The DAG in
the paper's Figure 1 is exactly this network. ~23.9M parameters.

Inception-v3 is pooling-rich (one AvgPool per module), which is why it
favours the P3 instance in the paper's hourly-budget scenario (Fig. 9).
"""

from __future__ import annotations

from repro.graph import GraphBuilder, OpGraph
from repro.graph.layers import TensorRef


def _conv(b: GraphBuilder, x: TensorRef, filters: int, kernel, scope: str,
          stride=1, padding: str = "SAME") -> TensorRef:
    """Inception-v3's conv block: batch-normalised, ReLU, no bias."""
    return b.conv(x, filters, kernel, stride=stride, padding=padding,
                  batch_norm=True, scope=scope)


def _module_a(b: GraphBuilder, x: TensorRef, pool_proj: int, scope: str) -> TensorRef:
    """35x35 'Inception-A' module (Mixed_5b/5c/5d)."""
    b1 = _conv(b, x, 64, 1, f"{scope}/b1_1x1")
    b5 = _conv(b, x, 48, 1, f"{scope}/b5_reduce")
    b5 = _conv(b, b5, 64, 5, f"{scope}/b5_5x5")
    b3 = _conv(b, x, 64, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 96, 3, f"{scope}/b3_3x3a")
    b3 = _conv(b, b3, 96, 3, f"{scope}/b3_3x3b")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    bp = _conv(b, bp, pool_proj, 1, f"{scope}/bp_proj")
    return b.concat([b1, b5, b3, bp], scope=f"{scope}/concat")


def _reduction_a(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    """35x35 -> 17x17 grid reduction (Mixed_6a)."""
    b3 = _conv(b, x, 384, 3, f"{scope}/b3_3x3", stride=2, padding="VALID")
    bd = _conv(b, x, 64, 1, f"{scope}/bd_reduce")
    bd = _conv(b, bd, 96, 3, f"{scope}/bd_3x3a")
    bd = _conv(b, bd, 96, 3, f"{scope}/bd_3x3b", stride=2, padding="VALID")
    bp = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope=f"{scope}/bp_pool")
    return b.concat([b3, bd, bp], scope=f"{scope}/concat")


def _module_b(b: GraphBuilder, x: TensorRef, channels_7x7: int, scope: str) -> TensorRef:
    """17x17 'Inception-B' module with factorised 7x7 convs (Mixed_6b..6e)."""
    c = channels_7x7
    b1 = _conv(b, x, 192, 1, f"{scope}/b1_1x1")
    b7 = _conv(b, x, c, 1, f"{scope}/b7_reduce")
    b7 = _conv(b, b7, c, (1, 7), f"{scope}/b7_1x7")
    b7 = _conv(b, b7, 192, (7, 1), f"{scope}/b7_7x1")
    bd = _conv(b, x, c, 1, f"{scope}/bd_reduce")
    bd = _conv(b, bd, c, (7, 1), f"{scope}/bd_7x1a")
    bd = _conv(b, bd, c, (1, 7), f"{scope}/bd_1x7a")
    bd = _conv(b, bd, c, (7, 1), f"{scope}/bd_7x1b")
    bd = _conv(b, bd, 192, (1, 7), f"{scope}/bd_1x7b")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    bp = _conv(b, bp, 192, 1, f"{scope}/bp_proj")
    return b.concat([b1, b7, bd, bp], scope=f"{scope}/concat")


def _reduction_b(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    """17x17 -> 8x8 grid reduction (Mixed_7a)."""
    b3 = _conv(b, x, 192, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 320, 3, f"{scope}/b3_3x3", stride=2, padding="VALID")
    b7 = _conv(b, x, 192, 1, f"{scope}/b7_reduce")
    b7 = _conv(b, b7, 192, (1, 7), f"{scope}/b7_1x7")
    b7 = _conv(b, b7, 192, (7, 1), f"{scope}/b7_7x1")
    b7 = _conv(b, b7, 192, 3, f"{scope}/b7_3x3", stride=2, padding="VALID")
    bp = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope=f"{scope}/bp_pool")
    return b.concat([b3, b7, bp], scope=f"{scope}/concat")


def _module_c(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    """8x8 'Inception-C' module with expanded filter banks (Mixed_7b/7c)."""
    b1 = _conv(b, x, 320, 1, f"{scope}/b1_1x1")
    b3 = _conv(b, x, 384, 1, f"{scope}/b3_reduce")
    b3a = _conv(b, b3, 384, (1, 3), f"{scope}/b3_1x3")
    b3b = _conv(b, b3, 384, (3, 1), f"{scope}/b3_3x1")
    bd = _conv(b, x, 448, 1, f"{scope}/bd_reduce")
    bd = _conv(b, bd, 384, 3, f"{scope}/bd_3x3")
    bda = _conv(b, bd, 384, (1, 3), f"{scope}/bd_1x3")
    bdb = _conv(b, bd, 384, (3, 1), f"{scope}/bd_3x1")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    bp = _conv(b, bp, 192, 1, f"{scope}/bp_proj")
    return b.concat([b1, b3a, b3b, bda, bdb, bp], scope=f"{scope}/concat")


def build_inception_v3(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build the Inception-v3 training graph (299x299 input)."""
    b = GraphBuilder(
        "inception_v3", batch_size=batch_size, image_hw=(299, 299),
        num_classes=num_classes,
    )
    x = b.input()
    x = _conv(b, x, 32, 3, "conv1a", stride=2, padding="VALID")
    x = _conv(b, x, 32, 3, "conv1b", padding="VALID")
    x = _conv(b, x, 64, 3, "conv1c")
    x = b.max_pool(x, kernel=3, stride=2, scope="pool1")
    x = _conv(b, x, 80, 1, "conv2a", padding="VALID")
    x = _conv(b, x, 192, 3, "conv2b", padding="VALID")
    x = b.max_pool(x, kernel=3, stride=2, scope="pool2")
    x = _module_a(b, x, 32, "mixed_5b")
    x = _module_a(b, x, 64, "mixed_5c")
    x = _module_a(b, x, 64, "mixed_5d")
    x = _reduction_a(b, x, "mixed_6a")
    x = _module_b(b, x, 128, "mixed_6b")
    x = _module_b(b, x, 160, "mixed_6c")
    x = _module_b(b, x, 160, "mixed_6d")
    x = _module_b(b, x, 192, "mixed_6e")
    x = _reduction_b(b, x, "mixed_7a")
    x = _module_c(b, x, "mixed_7b")
    x = _module_c(b, x, "mixed_7c")
    x = b.global_avg_pool(x)
    x = b.dropout(x, 0.2, scope="dropout")
    logits = b.dense(x, num_classes, activation=None, scope="logits")
    return b.finalize(logits)
