"""Inception-v4 (Szegedy et al., 2016) — training-set CNN.

A deeper, pure-Inception network (no residual connections) with a
branching stem: 4x Inception-A at 35x35, 7x Inception-B at 17x17, and
3x Inception-C at 8x8, separated by dedicated grid-reduction modules.
~42.7M parameters.
"""

from __future__ import annotations

from repro.graph import GraphBuilder, OpGraph
from repro.graph.layers import TensorRef


def _conv(b: GraphBuilder, x: TensorRef, filters: int, kernel, scope: str,
          stride=1, padding: str = "SAME") -> TensorRef:
    return b.conv(x, filters, kernel, stride=stride, padding=padding,
                  batch_norm=True, scope=scope)


def _stem(b: GraphBuilder, x: TensorRef) -> TensorRef:
    """The Inception-v4 stem: three successive branch-and-concat stages,
    taking 299x299x3 to 35x35x384."""
    x = _conv(b, x, 32, 3, "stem/conv1a", stride=2, padding="VALID")
    x = _conv(b, x, 32, 3, "stem/conv1b", padding="VALID")
    x = _conv(b, x, 64, 3, "stem/conv1c")
    pool_a = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope="stem/pool_a")
    conv_a = _conv(b, x, 96, 3, "stem/conv_a", stride=2, padding="VALID")
    x = b.concat([pool_a, conv_a], scope="stem/concat_a")
    left = _conv(b, x, 64, 1, "stem/left_reduce")
    left = _conv(b, left, 96, 3, "stem/left_3x3", padding="VALID")
    right = _conv(b, x, 64, 1, "stem/right_reduce")
    right = _conv(b, right, 64, (1, 7), "stem/right_1x7")
    right = _conv(b, right, 64, (7, 1), "stem/right_7x1")
    right = _conv(b, right, 96, 3, "stem/right_3x3", padding="VALID")
    x = b.concat([left, right], scope="stem/concat_b")
    conv_c = _conv(b, x, 192, 3, "stem/conv_c", stride=2, padding="VALID")
    pool_c = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope="stem/pool_c")
    return b.concat([conv_c, pool_c], scope="stem/concat_c")


def _module_a(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    b1 = _conv(b, x, 96, 1, f"{scope}/b1_1x1")
    b2 = _conv(b, x, 64, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 96, 3, f"{scope}/b2_3x3")
    b3 = _conv(b, x, 64, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 96, 3, f"{scope}/b3_3x3a")
    b3 = _conv(b, b3, 96, 3, f"{scope}/b3_3x3b")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    bp = _conv(b, bp, 96, 1, f"{scope}/bp_proj")
    return b.concat([b1, b2, b3, bp], scope=f"{scope}/concat")


def _reduction_a(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    b1 = _conv(b, x, 384, 3, f"{scope}/b1_3x3", stride=2, padding="VALID")
    b2 = _conv(b, x, 192, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 224, 3, f"{scope}/b2_3x3a")
    b2 = _conv(b, b2, 256, 3, f"{scope}/b2_3x3b", stride=2, padding="VALID")
    bp = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope=f"{scope}/bp_pool")
    return b.concat([b1, b2, bp], scope=f"{scope}/concat")


def _module_b(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    b1 = _conv(b, x, 384, 1, f"{scope}/b1_1x1")
    b2 = _conv(b, x, 192, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 224, (1, 7), f"{scope}/b2_1x7")
    b2 = _conv(b, b2, 256, (7, 1), f"{scope}/b2_7x1")
    b3 = _conv(b, x, 192, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 192, (7, 1), f"{scope}/b3_7x1a")
    b3 = _conv(b, b3, 224, (1, 7), f"{scope}/b3_1x7a")
    b3 = _conv(b, b3, 224, (7, 1), f"{scope}/b3_7x1b")
    b3 = _conv(b, b3, 256, (1, 7), f"{scope}/b3_1x7b")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    bp = _conv(b, bp, 128, 1, f"{scope}/bp_proj")
    return b.concat([b1, b2, b3, bp], scope=f"{scope}/concat")


def _reduction_b(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    b1 = _conv(b, x, 192, 1, f"{scope}/b1_reduce")
    b1 = _conv(b, b1, 192, 3, f"{scope}/b1_3x3", stride=2, padding="VALID")
    b2 = _conv(b, x, 256, 1, f"{scope}/b2_reduce")
    b2 = _conv(b, b2, 256, (1, 7), f"{scope}/b2_1x7")
    b2 = _conv(b, b2, 320, (7, 1), f"{scope}/b2_7x1")
    b2 = _conv(b, b2, 320, 3, f"{scope}/b2_3x3", stride=2, padding="VALID")
    bp = b.max_pool(x, kernel=3, stride=2, padding="VALID", scope=f"{scope}/bp_pool")
    return b.concat([b1, b2, bp], scope=f"{scope}/concat")


def _module_c(b: GraphBuilder, x: TensorRef, scope: str) -> TensorRef:
    b1 = _conv(b, x, 256, 1, f"{scope}/b1_1x1")
    b2 = _conv(b, x, 384, 1, f"{scope}/b2_reduce")
    b2a = _conv(b, b2, 256, (1, 3), f"{scope}/b2_1x3")
    b2b = _conv(b, b2, 256, (3, 1), f"{scope}/b2_3x1")
    b3 = _conv(b, x, 384, 1, f"{scope}/b3_reduce")
    b3 = _conv(b, b3, 448, (1, 3), f"{scope}/b3_1x3")
    b3 = _conv(b, b3, 512, (3, 1), f"{scope}/b3_3x1")
    b3a = _conv(b, b3, 256, (1, 3), f"{scope}/b3a_1x3")
    b3b = _conv(b, b3, 256, (3, 1), f"{scope}/b3b_3x1")
    bp = b.avg_pool(x, kernel=3, stride=1, padding="SAME", scope=f"{scope}/bp_pool")
    bp = _conv(b, bp, 256, 1, f"{scope}/bp_proj")
    return b.concat([b1, b2a, b2b, b3a, b3b, bp], scope=f"{scope}/concat")


def build_inception_v4(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build the Inception-v4 training graph (299x299 input)."""
    b = GraphBuilder(
        "inception_v4", batch_size=batch_size, image_hw=(299, 299),
        num_classes=num_classes,
    )
    x = b.input()
    x = _stem(b, x)
    for i in range(4):
        x = _module_a(b, x, f"mixed_a{i + 1}")
    x = _reduction_a(b, x, "reduction_a")
    for i in range(7):
        x = _module_b(b, x, f"mixed_b{i + 1}")
    x = _reduction_b(b, x, "reduction_b")
    for i in range(3):
        x = _module_c(b, x, f"mixed_c{i + 1}")
    x = b.global_avg_pool(x)
    x = b.dropout(x, 0.2, scope="dropout")
    logits = b.dense(x, num_classes, activation=None, scope="logits")
    return b.finalize(logits)
