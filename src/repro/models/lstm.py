"""LSTM sequence classifiers — the RNN half of Section VI's future work.

Statically-unrolled stacked LSTMs over token sequences, BERT-benchmark
style: embedding -> N LSTM layers -> last-step hidden state -> classifier.
Like the Transformer presets, these exist to probe Ceer beyond CNNs: the
op mix is dominated by *small* MatMuls and elementwise gate kernels, and
the per-step Sigmoid/binary-Mul/Slice ops are new to a CNN-trained Ceer.

Presets:

* ``small``  — 1 layer,  hidden 128, seq 32  (~4M params w/ embedding)
* ``medium`` — 2 layers, hidden 256, seq 32  (~8.5M params)
* ``large``  — 2 layers, hidden 512, seq 32  (~19M params)
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ModelZooError
from repro.graph import OpGraph
from repro.graph.recurrent import RecurrentGraphBuilder

#: preset -> (num_layers, hidden units)
LSTM_PRESETS: Dict[str, Tuple[int, int]] = {
    "small": (1, 128),
    "medium": (2, 256),
    "large": (2, 512),
}


def build_lstm(
    preset: str = "medium",
    batch_size: int = 32,
    seq_len: int = 32,
    vocab_size: int = 30_000,
    num_classes: int = 2,
    embed_dim: int = 128,
) -> OpGraph:
    """Build a stacked-LSTM classifier training graph."""
    if preset not in LSTM_PRESETS:
        raise ModelZooError(
            f"unknown LSTM preset {preset!r}; available: {sorted(LSTM_PRESETS)}"
        )
    num_layers, hidden = LSTM_PRESETS[preset]
    b = RecurrentGraphBuilder(
        f"lstm_{preset}",
        batch_size=batch_size,
        seq_len=seq_len,
        vocab_size=vocab_size,
        num_classes=num_classes,
    )
    tokens = b.sequence_input()
    x = b.embedding(tokens, embed_dim)
    for layer in range(num_layers):
        x = b.lstm_layer(x, hidden, scope=f"lstm_{layer + 1}")
    last_hidden = b.timestep_slice(x, seq_len - 1, scope="last_step")
    logits = b.dense(last_hidden, num_classes, activation=None, scope="classifier")
    return b.finalize(logits)
