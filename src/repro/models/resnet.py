"""ResNet-v2 (He et al., 2016) — 50/101/152/200-layer bottleneck variants.

The paper's training set includes ResNet-v2-50/152/200; ResNet-v2-101 is in
the test set. We use the standard bottleneck residual unit (1x1 reduce ->
3x3 -> 1x1 expand, all batch-normalised) with projection shortcuts at stage
boundaries, a 7x7/2 stem and 3x3/2 max pool, global average pooling, and a
single dense classifier.

Parameter counts: ~25.6M / 44.7M / 60.4M / 64.9M for 50/101/152/200,
matching the published models to within the usual BN-accounting noise.
ResNets contain only one max-pool and one global-average-pool, so — as the
paper notes in the Fig. 9 discussion — they benefit less from P3's
pooling-friendly hardware than Inception/VGG do.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ModelZooError
from repro.graph import GraphBuilder, OpGraph
from repro.graph.layers import TensorRef

#: Bottleneck-unit counts per stage, from the ResNet papers.
RESNET_STAGES: Dict[int, Tuple[int, int, int, int]] = {
    50: (3, 4, 6, 3),
    101: (3, 4, 23, 3),
    152: (3, 8, 36, 3),
    200: (3, 24, 36, 3),
}


def _bottleneck(
    b: GraphBuilder,
    x: TensorRef,
    base_channels: int,
    stride: int,
    scope: str,
) -> TensorRef:
    """One bottleneck residual unit: 1x1/s -> 3x3 -> 1x1(x4), plus shortcut.

    A projection (1x1 convolution) shortcut is used whenever the unit
    changes the spatial size or channel count, identity otherwise.
    """
    out_channels = 4 * base_channels
    needs_projection = stride != 1 or x.shape.channels != out_channels
    if needs_projection:
        shortcut = b.conv(
            x, out_channels, kernel=1, stride=stride, activation=None,
            batch_norm=True, scope=f"{scope}/shortcut",
        )
    else:
        shortcut = x
    y = b.conv(x, base_channels, kernel=1, stride=stride, batch_norm=True,
               scope=f"{scope}/conv1")
    y = b.conv(y, base_channels, kernel=3, batch_norm=True, scope=f"{scope}/conv2")
    y = b.conv(y, out_channels, kernel=1, activation=None, batch_norm=True,
               scope=f"{scope}/conv3")
    return b.add(shortcut, y, activation="relu", scope=f"{scope}/add")


def build_resnet(depth: int, batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build a ResNet-v2 training graph for ``depth`` in {50, 101, 152, 200}."""
    if depth not in RESNET_STAGES:
        raise ModelZooError(
            f"no ResNet-{depth}; available depths: {sorted(RESNET_STAGES)}"
        )
    b = GraphBuilder(
        f"resnet_{depth}", batch_size=batch_size, image_hw=(224, 224),
        num_classes=num_classes,
    )
    x = b.input()
    x = b.conv(x, 64, kernel=7, stride=2, padding="SAME", batch_norm=True, scope="stem")
    x = b.max_pool(x, kernel=3, stride=2, padding="SAME", scope="stem_pool")
    for stage_index, units in enumerate(RESNET_STAGES[depth]):
        base_channels = 64 * (2 ** stage_index)
        for unit in range(units):
            stride = 2 if (unit == 0 and stage_index > 0) else 1
            x = _bottleneck(
                b, x, base_channels, stride,
                scope=f"stage{stage_index + 1}/unit{unit + 1}",
            )
    x = b.global_avg_pool(x)
    logits = b.dense(x, num_classes, activation=None, scope="logits")
    return b.finalize(logits)


def build_resnet50(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_resnet(50, batch_size, num_classes)


def build_resnet101(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_resnet(101, batch_size, num_classes)


def build_resnet152(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_resnet(152, batch_size, num_classes)


def build_resnet200(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_resnet(200, batch_size, num_classes)
