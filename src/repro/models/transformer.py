"""Transformer encoders — the paper's stated future-work direction.

Section VI: "It will be interesting to see how Ceer performs on other
types of DNNs, such as ... Transformer models for Natural Language
Processing." These BERT-style encoder classifiers exercise operation types
no CNN contains (``BatchMatMul``, ``LayerNorm``, ``Gelu``, ``Gather``), so
a CNN-trained Ceer cannot price them without an update — making them the
canonical test case for the unseen-operation retraining flow
(:func:`repro.core.update.learn_model`); see
``repro.experiments.extensions.run_transformer_study``.

Presets (named after the BERT family's sizing conventions):

* ``tiny``   — 2 layers, d_model 128,  2 heads  (~4M params)
* ``mini``   — 4 layers, d_model 256,  4 heads  (~11M params)
* ``small``  — 4 layers, d_model 512,  8 heads  (~29M params)
* ``medium`` — 8 layers, d_model 512,  8 heads  (~41M params)
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.errors import ModelZooError
from repro.graph import OpGraph
from repro.graph.sequence import SequenceGraphBuilder

#: preset -> (num_layers, d_model, num_heads)
TRANSFORMER_PRESETS: Dict[str, Tuple[int, int, int]] = {
    "tiny": (2, 128, 2),
    "mini": (4, 256, 4),
    "small": (4, 512, 8),
    "medium": (8, 512, 8),
}


def build_transformer(
    preset: str = "small",
    batch_size: int = 32,
    seq_len: int = 128,
    vocab_size: int = 30_000,
    num_classes: int = 2,
) -> OpGraph:
    """Build a Transformer-encoder classifier training graph.

    Args:
        preset: one of :data:`TRANSFORMER_PRESETS`.
        batch_size: sequences per iteration per GPU.
        seq_len: tokens per sequence.
        vocab_size: embedding-table rows.
        num_classes: classification labels (2 = sentiment-style).
    """
    if preset not in TRANSFORMER_PRESETS:
        raise ModelZooError(
            f"unknown transformer preset {preset!r}; "
            f"available: {sorted(TRANSFORMER_PRESETS)}"
        )
    num_layers, d_model, num_heads = TRANSFORMER_PRESETS[preset]
    b = SequenceGraphBuilder(
        f"transformer_{preset}",
        batch_size=batch_size,
        seq_len=seq_len,
        vocab_size=vocab_size,
        num_classes=num_classes,
    )
    tokens = b.sequence_input()
    x = b.embedding(tokens, d_model)
    for i in range(num_layers):
        x = b.encoder_block(x, num_heads, scope=f"encoder_{i + 1}")
    x = b.layer_norm(x, scope="final_ln")
    pooled = b.sequence_mean(x)
    logits = b.dense(pooled, num_classes, activation=None, scope="classifier")
    return b.finalize(logits)
