"""VGG (Simonyan & Zisserman, 2014) — variants 11, 16, and 19.

Uniform stacks of 3x3 SAME convolutions separated by 2x2 max pooling, then
the classic 4096-4096-1000 fully-connected head. VGG-11 and VGG-16 are in
the paper's training set; VGG-19 is in the test set (Section III).

Parameter counts: VGG-11 ~132.9M, VGG-16 ~138.4M, VGG-19 ~143.7M.
"""

from __future__ import annotations

from typing import Dict, Sequence, Union

from repro.errors import ModelZooError
from repro.graph import GraphBuilder, OpGraph

#: Per-variant configuration: each entry is either a channel count (one 3x3
#: convolution) or the literal "M" (a 2x2/2 max pool). These are columns A,
#: D, and E of Table 1 in the VGG paper.
VGG_CONFIGS: Dict[int, Sequence[Union[int, str]]] = {
    11: (64, "M", 128, "M", 256, 256, "M", 512, 512, "M", 512, 512, "M"),
    16: (64, 64, "M", 128, 128, "M", 256, 256, 256, "M",
         512, 512, 512, "M", 512, 512, 512, "M"),
    19: (64, 64, "M", 128, 128, "M", 256, 256, 256, 256, "M",
         512, 512, 512, 512, "M", 512, 512, 512, 512, "M"),
}


def build_vgg(depth: int, batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build a VGG training graph for ``depth`` in {11, 16, 19}."""
    if depth not in VGG_CONFIGS:
        raise ModelZooError(f"no VGG-{depth}; available depths: {sorted(VGG_CONFIGS)}")
    b = GraphBuilder(
        f"vgg_{depth}", batch_size=batch_size, image_hw=(224, 224),
        num_classes=num_classes,
    )
    x = b.input()
    block, conv_in_block = 1, 0
    for item in VGG_CONFIGS[depth]:
        if item == "M":
            x = b.max_pool(x, kernel=2, stride=2, scope=f"pool{block}")
            block += 1
            conv_in_block = 0
        else:
            conv_in_block += 1
            x = b.conv(x, filters=int(item), kernel=3, padding="SAME",
                       scope=f"conv{block}_{conv_in_block}")
    x = b.flatten(x)
    x = b.dense(x, 4096, scope="fc6")
    x = b.dropout(x, 0.5, scope="dropout6")
    x = b.dense(x, 4096, scope="fc7")
    x = b.dropout(x, 0.5, scope="dropout7")
    logits = b.dense(x, num_classes, activation=None, scope="fc8")
    return b.finalize(logits)


def build_vgg11(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_vgg(11, batch_size, num_classes)


def build_vgg16(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_vgg(16, batch_size, num_classes)


def build_vgg19(batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    return build_vgg(19, batch_size, num_classes)
