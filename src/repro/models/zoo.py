"""The CNN model zoo: all 12 architectures from the paper's empirical study.

Section III of the paper trains 12 CNNs on TensorFlow; 8 form the training
set for Ceer's models and 4 (Inception-v3, AlexNet, ResNet-101, VGG-19) the
held-out test set. This module provides the canonical registry, the split,
and a build cache (graph construction for the deepest models takes a
noticeable fraction of a second, and experiments build each model many
times).
"""

from __future__ import annotations

from functools import lru_cache
from typing import Callable, Dict, Tuple

from repro.errors import ModelZooError
from repro.graph import OpGraph
from repro.models.alexnet import build_alexnet
from repro.models.inception_resnet import build_inception_resnet_v2
from repro.models.inception_v1 import build_inception_v1
from repro.models.inception_v3 import build_inception_v3
from repro.models.inception_v4 import build_inception_v4
from repro.models.resnet import build_resnet
from repro.models.vgg import build_vgg

#: name -> builder(batch_size, num_classes) for all 12 CNNs of the study.
MODEL_BUILDERS: Dict[str, Callable[[int, int], OpGraph]] = {
    "alexnet": build_alexnet,
    "vgg_11": lambda bs=32, nc=1000: build_vgg(11, bs, nc),
    "vgg_16": lambda bs=32, nc=1000: build_vgg(16, bs, nc),
    "vgg_19": lambda bs=32, nc=1000: build_vgg(19, bs, nc),
    "inception_v1": build_inception_v1,
    "inception_v3": build_inception_v3,
    "inception_v4": build_inception_v4,
    "inception_resnet_v2": build_inception_resnet_v2,
    "resnet_50": lambda bs=32, nc=1000: build_resnet(50, bs, nc),
    "resnet_101": lambda bs=32, nc=1000: build_resnet(101, bs, nc),
    "resnet_152": lambda bs=32, nc=1000: build_resnet(152, bs, nc),
    "resnet_200": lambda bs=32, nc=1000: build_resnet(200, bs, nc),
}

#: The paper's held-out test set (Section III): previously-unseen CNNs used
#: only for validation and the evaluation scenarios of Section V.
TEST_MODELS: Tuple[str, ...] = ("inception_v3", "alexnet", "resnet_101", "vgg_19")

#: The remaining 8 CNNs, used to fit Ceer's regression and median models.
TRAIN_MODELS: Tuple[str, ...] = tuple(
    name for name in MODEL_BUILDERS if name not in TEST_MODELS
)


def model_names() -> Tuple[str, ...]:
    """All 12 model names, training set first (paper Section III order-ish)."""
    return TRAIN_MODELS + TEST_MODELS


@lru_cache(maxsize=64)
def build_model(name: str, batch_size: int = 32, num_classes: int = 1000) -> OpGraph:
    """Build (and cache) the training op-graph for a zoo model.

    Args:
        name: one of :func:`model_names`.
        batch_size: per-GPU batch size; the paper's default is 32.
        num_classes: label cardinality (1000 for ImageNet).

    Returns:
        A validated :class:`~repro.graph.graph.OpGraph`. Do not mutate the
        returned graph — it is shared via the cache.
    """
    try:
        builder = MODEL_BUILDERS[name]
    except KeyError:
        raise ModelZooError(
            f"unknown model {name!r}; available: {', '.join(sorted(MODEL_BUILDERS))}"
        )
    return builder(batch_size, num_classes)
