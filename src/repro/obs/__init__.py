"""repro.obs: zero-dependency tracing + metrics for the prediction pipeline.

The paper's method stands on trustworthy timing (Section III profiles ops
at microsecond granularity; Eq. (2) sums thousands of per-op estimates),
so the pipeline that *produces* those numbers must itself be observable.
This package gives the reproduction the same runtime-level instrumentation
Habitat and PROFET lean on:

* :mod:`repro.obs.spans` — nested ``span("engine.compile", graph=...)``
  context managers with monotonic wall time, attributes, and thread-safe
  span trees. Disabled by default; the off-path is a single ``None`` check
  returning a shared no-op, cheap enough to leave compiled into hot paths.
* :mod:`repro.obs.metrics` — a registry of counters/gauges/histograms.
  The artifact store's per-kind hit/miss/bytes/latency counters live on
  it, so the repo has exactly one metrics surface.
* :mod:`repro.obs.export` — serializes finished traces to Chrome
  trace-event JSON (loadable in Perfetto / ``chrome://tracing``) and
  registry snapshots to a stable metrics JSON schema.

Switches: ``repro <cmd> --trace-out trace.json --metrics-out m.json`` or
``$REPRO_TRACE`` / ``$REPRO_METRICS`` (paths). Nothing is recorded unless
one of them enables a tracer.
"""

from repro.obs.export import (
    METRICS_FORMAT,
    METRICS_SCHEMA_VERSION,
    metrics_to_json,
    trace_to_chrome_json,
    write_metrics,
    write_trace,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_registry,
)
from repro.obs.spans import (
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "METRICS_FORMAT",
    "METRICS_SCHEMA_VERSION",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "active_tracer",
    "default_registry",
    "disable_tracing",
    "enable_tracing",
    "metrics_to_json",
    "span",
    "trace_to_chrome_json",
    "tracing_enabled",
    "write_metrics",
    "write_trace",
]
