"""The registered span/metric name catalogue: one ``subsystem.verb`` namespace.

Span and metric names are an API: traces are diffed across runs, CI
asserts on specific counters, and dashboards key on exact strings. A typo
(``engine.comple``) or an unregistered ad-hoc name silently forks the
namespace — the trace still renders, nothing fails, and the data is
quietly unfindable. This module is the single source of truth for which
names exist; ``repro.staticcheck``'s obs-contract rule checks every
``span(...)`` / ``@traced(...)`` / ``registry.counter(...)`` literal in
the tree against it.

Conventions:

* Names are ``subsystem.verb`` (or ``subsystem.sub.verb``): lowercase,
  ``snake_case`` segments joined by dots, at least two segments.
* A handful of sites build names dynamically (``f"cli.{command}"``,
  ``f"store.{field}"``); those register a *prefix* here instead.
* Adding an instrument means adding its name here first — the static
  check fails otherwise, which is the point.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Mapping

__all__ = [
    "DYNAMIC_METRIC_PREFIXES",
    "DYNAMIC_SPAN_PREFIXES",
    "METRIC_CATALOG",
    "SPAN_CATALOG",
    "is_registered_metric",
    "is_registered_span",
    "well_formed",
]

#: ``subsystem.verb`` shape: >= 2 lowercase snake_case segments.
_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z][a-z0-9_]*)+$")

#: Every registered span name -> one-line description.
SPAN_CATALOG: Mapping[str, str] = {
    "batch.sweep": "one batched (P,G,K,B) sweep evaluation",
    "check.file": "static analysis of one source file",
    "check.run": "one repro.staticcheck run over a path set",
    "engine.build_graph": "zoo model -> OpGraph construction (miss path)",
    "engine.compile": "OpGraph -> CompiledGraph feature matrices (miss path)",
    "engine.evaluate": "one compiled-graph total evaluation (miss path)",
    "experiments.ablations": "ablation study driver",
    "experiments.ext.batch_size": "batch-size sensitivity extension",
    "experiments.ext.estimator_choice": "estimator-choice extension",
    "experiments.ext.multihost": "multi-host placement extension",
    "experiments.ext.rnn": "RNN workload extension",
    "experiments.ext.sensitivity": "pricing sensitivity extension",
    "experiments.ext.spot_dynamics": "spot-market dynamics extension",
    "experiments.ext.transfer_logo": "leave-one-GPU-out transfer extension",
    "experiments.ext.transformer": "transformer workload extension",
    "experiments.fig2": "Fig. 2 driver", "experiments.fig3": "Fig. 3 driver",
    "experiments.fig4": "Fig. 4 driver", "experiments.fig5": "Fig. 5 driver",
    "experiments.fig6": "Fig. 6 driver", "experiments.fig7": "Fig. 7 driver",
    "experiments.fig8": "Fig. 8 driver", "experiments.fig9": "Fig. 9 driver",
    "experiments.fig10": "Fig. 10 driver", "experiments.fig11": "Fig. 11 driver",
    "experiments.fig12": "Fig. 12 driver",
    "fit.ceer": "full offline fit (profiles -> estimator)",
    "fit.compute_models": "per-(GPU, op type) regression fits",
    "fit.comm_model": "communication-overhead model fit",
    "parallel.fanout": "one run_fanout dispatch over N workers",
    "parallel.task": "one fan-out task attempt",
    "profile.run": "one (model, GPU) profiling cell",
    "profile.sweep": "a profiling sweep over (models x GPUs)",
    "recommend.sweep": "recommender candidate sweep",
    "serve.load": "initial serving-snapshot load + warm at startup",
    "serve.reload": "zero-downtime snapshot hot swap (admin/reload or SIGHUP)",
    "serve.request": "one HTTP request through the serving app",
    "serve.warm": "pre-compiling graphs / pre-touching caches for a snapshot",
    "spot.tick": "one spot-market price tick (generation advance)",
    "store.compute": "artifact store miss-path compute",
    "store.disk_read": "artifact store disk-tier read",
    "store.lock_wait": "artifact store cross-process lock wait",
    "store.write": "artifact store atomic write",
    "transfer.fit": "pooled cross-GPU transfer-model fit",
    "transfer.logo": "leave-one-GPU-out transfer evaluation",
}

#: Span-name prefixes whose suffix is dynamic (f-string call sites).
DYNAMIC_SPAN_PREFIXES: FrozenSet[str] = frozenset({
    "cli.",  # cli.<command>, one per subcommand
})

#: Every registered metric (counter/gauge/histogram) name.
METRIC_CATALOG: Mapping[str, str] = {
    "batch.candidates": "priceable candidates evaluated by batched sweeps",
    "batch.sweeps": "batched sweep evaluations",
    "check.files": "files analysed per staticcheck run {source=analyzed|cache}",
    "check.findings": "findings emitted per staticcheck run",
    "fit.proportional_fallbacks": "heavy-op cells that fell back to a proportional fit",
    "parallel.task_s": "cumulative fan-out task wall-clock seconds",
    "parallel.tasks": "fan-out task outcomes {outcome=ok|retried|failed}",
    "profiling.records": "profile records produced",
    "profiling.runs": "profiling cells run {gpu=...}",
    "serve.cache": "response LRU lookups {outcome=hit|miss}",
    "serve.cache_dropped": "cached responses dropped by hot swaps",
    "serve.coalesced": "requests that joined an identical in-flight evaluation",
    "serve.errors": "requests that hit an unexpected internal error",
    "serve.evaluations": "estimator evaluations run on the serve lane {endpoint=...}",
    "serve.reloads": "successful snapshot hot swaps",
    "serve.request_us": "request wall-clock latency in microseconds {endpoint=...}",
    "serve.requests": "HTTP requests served {endpoint=...,status=...}",
    "spot.reranks": "incremental spot re-rankings over a cached base sweep",
    "spot.ticks": "spot-market price ticks",
    "transfer.fits": "pooled transfer-model fits",
    "transfer.folds": "leave-one-GPU-out folds evaluated",
    "transfer.synthesized": "per-device models synthesized from transfer fits",
}

#: Metric-name prefixes whose suffix is dynamic (f-string call sites).
DYNAMIC_METRIC_PREFIXES: FrozenSet[str] = frozenset({
    "store.",  # store.<field>{kind=...}, one per KindCounters field
})


def well_formed(name: str) -> bool:
    """Whether ``name`` has the ``subsystem.verb`` shape."""
    return _NAME_RE.match(name) is not None


def is_registered_span(name: str) -> bool:
    """Whether a literal span name is in the catalogue."""
    return name in SPAN_CATALOG


def is_registered_metric(name: str) -> bool:
    """Whether a literal metric name is in the catalogue."""
    return name in METRIC_CATALOG
