"""Serialize traces and metrics: Chrome trace-event JSON + metrics JSON.

Trace export targets the Chrome trace-event format's complete ("X")
events, the lowest common denominator that Perfetto and
``chrome://tracing`` both load directly::

    {"displayTimeUnit": "ms",
     "traceEvents": [
        {"name": "engine.compile", "ph": "X", "ts": 12.5, "dur": 2637.0,
         "pid": 4242, "tid": 1, "cat": "engine", "args": {...}}, ...]}

``ts``/``dur`` are microseconds (the format's native unit — also the
paper's), relative to the tracer's epoch. Span nesting is preserved both
implicitly (time containment per ``tid``) and explicitly via each event's
``args["depth"]``.

Metrics export is a stable, versioned schema::

    {"format": "repro-metrics", "schema_version": 1,
     "metrics": [{"name": ..., "type": "counter", "labels": {...},
                  "value": ...}, ...]}

sorted by (name, labels) so diffs between runs are meaningful.
"""

from __future__ import annotations

import json
import os
import threading
from pathlib import Path
from typing import Dict, List, Union

from repro.obs.metrics import MetricsRegistry
from repro.obs.spans import Span, Tracer

__all__ = [
    "METRICS_FORMAT",
    "METRICS_SCHEMA_VERSION",
    "TRACE_FORMAT_NOTE",
    "metrics_to_json",
    "trace_to_chrome_json",
    "write_metrics",
    "write_trace",
]

METRICS_FORMAT = "repro-metrics"
METRICS_SCHEMA_VERSION = 1
TRACE_FORMAT_NOTE = "chrome-trace-event"

JsonDict = Dict[str, object]


def _span_event(
    finished: Span, pid: int, tid_alias: Dict[int, int], depth: int
) -> JsonDict:
    tid = tid_alias.setdefault(finished.thread_id, len(tid_alias) + 1)
    args: JsonDict = {"depth": depth}
    args.update(finished.attributes)
    return {
        "name": finished.name,
        "cat": finished.name.split(".", 1)[0],
        "ph": "X",
        "ts": finished.start_us,
        "dur": finished.duration_us,
        "pid": pid,
        "tid": tid,
        "args": args,
    }


def trace_to_chrome_json(tracer: Tracer) -> JsonDict:
    """Render every finished span tree as Chrome trace-event JSON."""
    pid = os.getpid()
    tid_alias: Dict[int, int] = {int(threading.main_thread().ident or 0): 0}
    events: List[JsonDict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": "repro"},
        }
    ]

    def emit(node: Span, depth: int) -> None:
        events.append(_span_event(node, pid, tid_alias, depth))
        for child in node.children:
            emit(child, depth + 1)

    for root in tracer.roots():
        emit(root, 0)
    return {
        "displayTimeUnit": "ms",
        "otherData": {"format": TRACE_FORMAT_NOTE, "producer": "repro.obs"},
        "traceEvents": events,
    }


def metrics_to_json(*registries: MetricsRegistry) -> JsonDict:
    """Snapshot one or more registries into the stable metrics schema.

    Passing several registries (the process default plus the active
    store's) merges their records into one sorted ``metrics`` list.
    """
    records: List[Dict[str, object]] = []
    for registry in registries:
        records.extend(registry.snapshot())
    records.sort(key=lambda r: (str(r["name"]), sorted(dict(r["labels"]).items())))  # type: ignore[arg-type]
    return {
        "format": METRICS_FORMAT,
        "schema_version": METRICS_SCHEMA_VERSION,
        "metrics": records,
    }


def write_trace(path: Union[str, Path], tracer: Tracer) -> Path:
    """Write the Chrome trace-event JSON for ``tracer`` to ``path``."""
    target = Path(path)
    target.write_text(json.dumps(trace_to_chrome_json(tracer), indent=1) + "\n")
    return target


def write_metrics(path: Union[str, Path], *registries: MetricsRegistry) -> Path:
    """Write the merged metrics JSON for ``registries`` to ``path``."""
    target = Path(path)
    target.write_text(json.dumps(metrics_to_json(*registries), indent=1) + "\n")
    return target
