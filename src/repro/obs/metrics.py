"""Process metrics: counters, gauges, and histograms in one registry.

A :class:`MetricsRegistry` hands out named, optionally labelled metric
instruments and snapshots them for export. ``counter("store.misses",
kind="profile")`` is get-or-create on ``(name, labels)``, so every call
site that names the same series shares the same instrument — the registry
is the single source of truth for "how many" and "how long" questions
about the pipeline.

Two scopes exist:

* the **process default registry** (:func:`default_registry`) — general
  pipeline metrics (profiling runs, figure renders, CLI command timing);
* **per-component registries** — the artifact store owns one per store
  instance (``ArtifactStore.metrics``) so that independent stores (tests,
  benchmarks, racing workspaces) never share counters. The CLI merges the
  active store's registry into its ``--metrics-out`` export.

Instruments are thread-safe: updates take the instrument's lock (metric
updates sit on cold paths — disk reads, profiling sweeps — never inside
the engine's warm evaluate loop).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Optional, Tuple, Type, TypeVar, Union

Number = Union[int, float]
LabelItems = Tuple[Tuple[str, str], ...]
MetricKey = Tuple[str, LabelItems]
InstrumentT = TypeVar("InstrumentT", bound="_Instrument")

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "default_registry",
    "set_default_registry",
]


def _label_items(labels: Dict[str, str]) -> LabelItems:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared identity/snapshot plumbing for all instrument types."""

    kind = "instrument"

    def __init__(self, name: str, labels: LabelItems) -> None:
        self.name = name
        self.labels: Dict[str, str] = dict(labels)
        self._lock = threading.Lock()

    def _values(self) -> Dict[str, Number]:
        raise NotImplementedError

    def snapshot(self) -> Dict[str, object]:
        """One stable-schema export record for this instrument."""
        with self._lock:
            values = self._values()
        record: Dict[str, object] = {
            "name": self.name,
            "type": self.kind,
            "labels": dict(self.labels),
        }
        record.update(values)
        return record

    def __repr__(self) -> str:
        labels = "".join(f" {k}={v}" for k, v in sorted(self.labels.items()))
        return f"{type(self).__name__}({self.name}{labels})"


class Counter(_Instrument):
    """A monotonically increasing count (events, bytes, seconds of work)."""

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self._value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease (inc {amount})")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def _values(self) -> Dict[str, Number]:
        return {"value": self._value}


class Gauge(_Instrument):
    """A point-in-time level (cache entries, active workers)."""

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self._value: Number = 0

    def set(self, value: Number) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: Number) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> Number:
        return self._value

    def _values(self) -> Dict[str, Number]:
        return {"value": self._value}


class Histogram(_Instrument):
    """A distribution summary: count / sum / min / max / mean.

    Deliberately bucket-free: the traces carry per-event timing already;
    the histogram answers "how many and how much in aggregate" without a
    bucket-boundary schema to keep stable.
    """

    kind = "histogram"

    def __init__(self, name: str, labels: LabelItems) -> None:
        super().__init__(name, labels)
        self.count = 0
        self.sum: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: Number) -> None:
        v = float(value)
        with self._lock:
            self.count += 1
            self.sum += v
            self.min = v if self.min is None else min(self.min, v)
            self.max = v if self.max is None else max(self.max, v)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def _values(self) -> Dict[str, Number]:
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.sum / self.count if self.count else 0.0,
        }


class MetricsRegistry:
    """Get-or-create home for instruments, keyed by ``(name, labels)``."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._instruments: Dict[MetricKey, _Instrument] = {}

    def _get_or_create(
        self, cls: Type[InstrumentT], name: str, labels: Dict[str, str]
    ) -> InstrumentT:
        key: MetricKey = (name, _label_items(labels))
        with self._lock:
            existing = self._instruments.get(key)
            if existing is not None:
                if not isinstance(existing, cls):
                    raise TypeError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {cls.kind}"
                    )
                return existing
            created = cls(name, _label_items(labels))
            self._instruments[key] = created
            return created

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)

    def gauge(self, name: str, **labels: str) -> Gauge:
        return self._get_or_create(Gauge, name, labels)

    def histogram(self, name: str, **labels: str) -> Histogram:
        return self._get_or_create(Histogram, name, labels)

    # -- inspection -----------------------------------------------------
    def instruments(self) -> List[_Instrument]:
        """Every registered instrument, sorted by (name, labels)."""
        with self._lock:
            items = sorted(self._instruments.items(), key=lambda kv: kv[0])
        return [instrument for _, instrument in items]

    def snapshot(self) -> List[Dict[str, object]]:
        """Stable-order export records for every instrument."""
        return [instrument.snapshot() for instrument in self.instruments()]

    def __len__(self) -> int:
        with self._lock:
            return len(self._instruments)

    def __iter__(self) -> Iterator[_Instrument]:
        return iter(self.instruments())


#: The process default registry (lazily created, replaceable for tests).
_default: Optional[MetricsRegistry] = None
_default_lock = threading.Lock()


def default_registry() -> MetricsRegistry:
    """The process-wide registry for general pipeline metrics."""
    global _default
    if _default is None:
        with _default_lock:
            if _default is None:
                _default = MetricsRegistry()
    return _default


def set_default_registry(
    registry: Optional[MetricsRegistry],
) -> Optional[MetricsRegistry]:
    """Install a replacement default registry; returns the previous one.

    Pass None to reset to lazy creation (test isolation).
    """
    global _default
    with _default_lock:
        previous = _default
        _default = registry
        return previous
