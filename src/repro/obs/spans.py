"""Nested tracing spans with monotonic wall time and thread-safe trees.

A :class:`Tracer` collects :class:`Span` trees: each thread keeps its own
stack of open spans (``threading.local``), so spans nest naturally within
a thread and interleave safely across threads; finished roots are appended
to a shared list under a lock.

The module-level :func:`span` helper is the instrumentation surface the
rest of the codebase uses::

    with span("engine.compile", graph=name, ops=n):
        ...

Tracing is **disabled by default**: when no tracer is active, ``span()``
is one global load, one ``None`` check, and a shared no-op object — cheap
enough to leave compiled into hot paths. Enable with
:func:`enable_tracing` (the CLI's ``--trace-out`` / ``$REPRO_TRACE`` do
this), export via :mod:`repro.obs.export`.

Timing uses the process monotonic clock, never the model paths' simulated
clock: span timestamps are *observations of the pipeline itself* and are
deliberately exempt from the determinism lint.
"""

from __future__ import annotations

import functools
import threading
import time
from typing import Any, Callable, Dict, Iterator, List, Optional, TypeVar, Union, cast

AttrValue = Union[str, int, float, bool, None]
F = TypeVar("F", bound=Callable[..., Any])

__all__ = [
    "Span",
    "Tracer",
    "active_tracer",
    "disable_tracing",
    "enable_tracing",
    "span",
    "traced",
    "tracing_enabled",
]


def _now_us() -> float:
    """Monotonic microseconds since an arbitrary process epoch."""
    return time.perf_counter_ns() / 1e3  # staticcheck: ignore[determinism] — pipeline self-observation, not a model path


class Span:
    """One timed, attributed region of pipeline work.

    Spans form trees: ``children`` are the spans opened (and closed) while
    this one was the innermost open span on the same thread. ``start_us``
    is relative to the owning tracer's epoch so a whole trace shares one
    timebase regardless of which thread opened which span.
    """

    __slots__ = (
        "name", "attributes", "start_us", "end_us", "thread_id",
        "children", "_tracer", "_is_root",
    )

    def __init__(
        self,
        name: str,
        attributes: Dict[str, AttrValue],
        start_us: float,
        thread_id: int,
        tracer: "Tracer",
        is_root: bool,
    ) -> None:
        self.name = name
        self.attributes = attributes
        self.start_us = start_us
        self.end_us: Optional[float] = None
        self.thread_id = thread_id
        self.children: List["Span"] = []
        self._tracer = tracer
        self._is_root = is_root

    @property
    def duration_us(self) -> float:
        """Wall-clock width; 0.0 while the span is still open."""
        if self.end_us is None:
            return 0.0
        return self.end_us - self.start_us

    def set_attribute(self, key: str, value: AttrValue) -> None:
        """Attach/overwrite one attribute on an open (or finished) span."""
        self.attributes[key] = value

    # -- context manager ------------------------------------------------
    def __enter__(self) -> "Span":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        if exc_type is not None:
            self.attributes.setdefault("error", getattr(exc_type, "__name__", str(exc_type)))
        self._tracer._finish(self)

    def __repr__(self) -> str:
        state = "open" if self.end_us is None else f"{self.duration_us:.1f}us"
        return f"Span({self.name!r}, {state}, children={len(self.children)})"

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()


class _NoopSpan:
    """The shared do-nothing span returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        return None

    def set_attribute(self, key: str, value: AttrValue) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects span trees for one traced run.

    Thread-safe by construction: the open-span stack is thread-local, and
    the shared list of finished root spans is guarded by a lock. A span is
    published to :meth:`roots` only when it finishes, so export never sees
    a half-built tree.
    """

    def __init__(self) -> None:
        self.epoch_us = _now_us()
        self._local = threading.local()
        self._lock = threading.Lock()
        self._roots: List[Span] = []
        self._finished_count = 0

    # -- recording ------------------------------------------------------
    def _stack(self) -> List[Span]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def span(self, name: str, **attributes: AttrValue) -> Span:
        """Open a span as a child of this thread's innermost open span."""
        stack = self._stack()
        opened = Span(
            name=name,
            attributes=dict(attributes),
            start_us=_now_us() - self.epoch_us,
            thread_id=threading.get_ident(),
            tracer=self,
            is_root=not stack,
        )
        if stack:
            stack[-1].children.append(opened)
        stack.append(opened)
        return opened

    def _finish(self, closing: Span) -> None:
        closing.end_us = _now_us() - self.epoch_us
        stack = self._stack()
        # Tolerate out-of-order exits (generators, re-raised exceptions):
        # pop through to the closing span if it is on this thread's stack.
        if closing in stack:
            while stack and stack[-1] is not closing:
                stack.pop()
            stack.pop()
        with self._lock:
            self._finished_count += 1
            if closing._is_root:
                self._roots.append(closing)

    # -- inspection -----------------------------------------------------
    def roots(self) -> List[Span]:
        """Finished root spans, in finish order."""
        with self._lock:
            return list(self._roots)

    def all_spans(self) -> List[Span]:
        """Every finished span (roots plus descendants), pre-order."""
        out: List[Span] = []
        for root in self.roots():
            out.extend(root.walk())
        return out

    def find(self, name: str) -> List[Span]:
        """All finished spans with exactly this name."""
        return [s for s in self.all_spans() if s.name == name]

    def __len__(self) -> int:
        with self._lock:
            return self._finished_count


#: The process-wide active tracer; None means tracing is disabled.
_active: Optional[Tracer] = None
_active_lock = threading.Lock()


def enable_tracing(tracer: Optional[Tracer] = None) -> Tracer:
    """Install (and return) the process-wide tracer; spans start recording."""
    global _active
    with _active_lock:
        _active = tracer if tracer is not None else Tracer()
        return _active


def disable_tracing() -> Optional[Tracer]:
    """Stop recording; returns the tracer that was active (for export)."""
    global _active
    with _active_lock:
        previous = _active
        _active = None
        return previous


def active_tracer() -> Optional[Tracer]:
    """The currently installed tracer, or None when tracing is off."""
    return _active


def tracing_enabled() -> bool:
    return _active is not None


def span(name: str, **attributes: AttrValue) -> Union[Span, _NoopSpan]:
    """Open a span on the active tracer, or a shared no-op when disabled.

    This is the only call sites pay on the off-path: a global load, a
    ``None`` check, and returning a singleton whose ``__enter__`` /
    ``__exit__`` do nothing.
    """
    tracer = _active
    if tracer is None:
        return _NOOP_SPAN
    return tracer.span(name, **attributes)


def traced(name: str) -> Callable[[F], F]:
    """Decorator form of :func:`span` for whole-function regions.

    Scalar keyword arguments of the call (str/int/float/bool) become span
    attributes, so ``run_fig2(n_iterations=120)`` traces as
    ``experiments.fig2 {n_iterations: 120}``. When tracing is disabled the
    wrapper is a single ``None`` check around the plain call.
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            tracer = _active
            if tracer is None:
                return fn(*args, **kwargs)
            attributes = {
                key: value for key, value in kwargs.items()
                if isinstance(value, (str, int, float, bool))
            }
            with tracer.span(name, **attributes):
                return fn(*args, **kwargs)

        return cast(F, wrapper)

    return decorate
