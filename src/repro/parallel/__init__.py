"""Process-parallel fan-out for profiling sweeps and model fitting.

``run_fanout`` executes independent, picklable work units (defined in
:mod:`repro.parallel.plan`) on a process pool with deterministic results,
retry-once failure handling, and merged observability. See
:mod:`repro.parallel.fanout` for the executor contract and DESIGN.md
section 5e for the architecture.
"""

from repro.parallel.fanout import FanoutTask, TaskOutcome, resolve_jobs, run_fanout
from repro.parallel.plan import (
    CommFitTask,
    CommObservationTask,
    FigureTask,
    MeasurementTask,
    ProfileCellTask,
    RegressionFitTask,
    TransferFitTask,
    TransferLogoTask,
)

__all__ = [
    "CommFitTask",
    "CommObservationTask",
    "FanoutTask",
    "FigureTask",
    "MeasurementTask",
    "ProfileCellTask",
    "RegressionFitTask",
    "TaskOutcome",
    "TransferFitTask",
    "TransferLogoTask",
    "resolve_jobs",
    "run_fanout",
]
