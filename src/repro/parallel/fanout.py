"""Process-pool fan-out: run independent work units on N worker processes.

The paper's measurement phase profiles 12 CNNs x 4 GPU models over 1,000
iterations each (Section III) — every (model, GPU) cell is independent, so
the sweep is embarrassingly parallel. :func:`run_fanout` executes a list
of *task specs* (picklable objects exposing ``task_id()`` and ``run()``,
see :mod:`repro.parallel.plan`) on a process pool and returns their
results in task order.

Determinism: the executor adds none of its own entropy. Every task is a
pure function of its spec (profiling tasks derive their RNGs from the
existing ``seed_context`` scheme in :mod:`repro.hardware.noise`), and
results are returned in submission order regardless of completion order —
so ``jobs=8`` and ``jobs=1`` produce identical values, and tasks that
write through the artifact workspace produce byte-identical artifacts.

Failure policy: a task that raises (or whose worker process dies, e.g.
SIGKILL -> ``BrokenProcessPool``) is retried once on a fresh pool; a task
that fails twice surfaces as a structured
:class:`~repro.errors.FanoutError` naming the failed cells — the pool is
never left hanging.

Observability: the fan-out emits a ``parallel.fanout`` span; each task
runs under a ``parallel.task`` span. Worker processes record their own
span trees (including the store's ``store.lock_wait`` / ``store.compute``
spans) and ship them back serialized; the parent grafts them into its
active tracer with worker-local times rebased onto the parent timeline,
so ``--trace-out`` yields one merged Chrome trace with one row per worker
process. Task outcomes land on the default metrics registry as
``parallel.tasks{outcome=ok|retried|failed}`` counters plus a
``parallel.task_s`` wall-clock accumulator.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Protocol, Sequence, Tuple

from repro.errors import FanoutError
from repro.obs.metrics import default_registry
from repro.obs.spans import (
    Span,
    Tracer,
    active_tracer,
    disable_tracing,
    enable_tracing,
    span,
    tracing_enabled,
)
from repro.units import s_to_us


class FanoutTask(Protocol):
    """The structural contract every fan-out work unit satisfies."""

    def task_id(self) -> str:
        """Stable human-readable identity (``"profile:alexnet:V100"``)."""
        ...  # pragma: no cover

    def run(self) -> Any:
        """Execute the work unit; must be a pure function of the spec."""
        ...  # pragma: no cover


SpanDict = Dict[str, Any]


@dataclass
class TaskOutcome:
    """One completed fan-out task, in task order.

    Attributes:
        task_id: the task's declared identity.
        value: whatever ``task.run()`` returned.
        outcome: ``"ok"`` (first attempt) or ``"retried"`` (succeeded on
            the retry attempt).
        attempts: how many attempts the task consumed (1 or 2).
        duration_s: wall-clock seconds of the successful attempt.
        worker_pid: PID of the process that ran the successful attempt.
    """

    task_id: str
    value: Any
    outcome: str
    attempts: int
    duration_s: float
    worker_pid: int


@dataclass
class _WorkerPayload:
    """What a worker ships back: the result plus its observability slice."""

    task_id: str
    value: Any
    worker_pid: int
    duration_s: float
    epoch_unix_s: float
    spans: Tuple[SpanDict, ...] = field(default_factory=tuple)


def resolve_jobs(jobs: Optional[int], n_tasks: Optional[int] = None) -> int:
    """Normalise a ``--jobs`` value: None -> CPU count, floor 1, cap tasks."""
    resolved = jobs if jobs is not None else (os.cpu_count() or 1)
    resolved = max(1, resolved)
    if n_tasks is not None:
        resolved = min(resolved, max(1, n_tasks))
    return resolved


def _mp_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap workers, inherited imports); fall back to spawn."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def _span_to_dict(node: Span) -> SpanDict:
    return {
        "name": node.name,
        "attributes": dict(node.attributes),
        "start_us": node.start_us,
        "end_us": node.end_us,
        "children": [_span_to_dict(child) for child in node.children],
    }


def _revive_span(
    data: SpanDict, offset_us: float, thread_id: int, tracer: Tracer
) -> Span:
    revived = Span(
        name=str(data["name"]),
        attributes=dict(data["attributes"]),
        start_us=float(data["start_us"]) + offset_us,
        thread_id=thread_id,
        tracer=tracer,
        is_root=False,
    )
    end_us = data.get("end_us")
    revived.end_us = (
        float(end_us) + offset_us if end_us is not None else revived.start_us
    )
    revived.children = [
        _revive_span(child, offset_us, thread_id, tracer)
        for child in data["children"]
    ]
    return revived


def _execute_task(task: FanoutTask, collect_spans: bool) -> _WorkerPayload:
    """Worker-process entry point: run one task under a fresh tracer.

    Runs in the child. A forked child inherits the parent's active tracer
    object, which must not be mutated from another process — so the child
    always installs its own tracer (or none), records the task's span
    tree, and returns it serialized for the parent to merge.
    """
    epoch_unix_s = time.time()  # staticcheck: ignore[determinism] — trace-merge clock alignment, not a model path
    started_s = time.perf_counter()  # staticcheck: ignore[determinism] — task wall-clock accounting
    tracer: Optional[Tracer]
    if collect_spans:
        tracer = enable_tracing()
    else:
        disable_tracing()
        tracer = None
    try:
        with span("parallel.task", task=task.task_id(), pid=os.getpid()):
            value = task.run()
    finally:
        disable_tracing()
    duration_s = time.perf_counter() - started_s  # staticcheck: ignore[determinism] — task wall-clock accounting
    spans: Tuple[SpanDict, ...] = ()
    if tracer is not None:
        spans = tuple(_span_to_dict(root) for root in tracer.roots())
    return _WorkerPayload(
        task_id=task.task_id(),
        value=value,
        worker_pid=os.getpid(),
        duration_s=duration_s,
        epoch_unix_s=epoch_unix_s,
        spans=spans,
    )


def _run_inline(task: FanoutTask) -> _WorkerPayload:
    """Serial (``jobs=1``) execution: same task plan, parent process.

    Spans nest directly into the parent's active tracer (no serialization
    round trip), which keeps the single-job path byte-identical in results
    and structurally identical in traces.
    """
    started_s = time.perf_counter()  # staticcheck: ignore[determinism] — task wall-clock accounting
    with span("parallel.task", task=task.task_id(), pid=os.getpid(), mode="inline"):
        value = task.run()
    duration_s = time.perf_counter() - started_s  # staticcheck: ignore[determinism] — task wall-clock accounting
    return _WorkerPayload(
        task_id=task.task_id(),
        value=value,
        worker_pid=os.getpid(),
        duration_s=duration_s,
        epoch_unix_s=0.0,
        spans=(),
    )


def _merge_worker_spans(
    parent_span: Any, payload: _WorkerPayload, fanout_unix_s: float
) -> None:
    """Graft a worker's serialized span tree into the parent trace.

    Worker span times are relative to the worker tracer's epoch; the
    parent rebases them using the wall-clock offset between the worker's
    epoch and the fan-out span's start. Wall-clock alignment is
    approximate (two clock reads), which is fine for a visual timeline.
    Each worker keeps its own trace row: revived spans carry the worker
    PID as their thread id, so Chrome-trace export assigns one ``tid``
    per worker process.
    """
    tracer = active_tracer()
    if tracer is None or not payload.spans or not isinstance(parent_span, Span):
        return
    clock_skew_us = s_to_us(payload.epoch_unix_s - fanout_unix_s)
    offset_us = clock_skew_us + parent_span.start_us
    for root in payload.spans:
        parent_span.children.append(
            _revive_span(root, offset_us, payload.worker_pid, tracer)
        )


def run_fanout(
    tasks: Sequence[FanoutTask],
    jobs: Optional[int] = None,
    retries: int = 1,
) -> List[TaskOutcome]:
    """Execute ``tasks`` on up to ``jobs`` worker processes; results in order.

    ``jobs=None`` uses the machine's CPU count; ``jobs<=1`` runs the same
    task plan serially in-process (no pool), which is the determinism
    reference the parallel path must match byte-for-byte.

    Raises:
        FanoutError: one or more tasks failed ``retries + 1`` times; the
            error names every failed task. Successful siblings' artifacts
            remain valid (workspace writes are atomic and idempotent).
    """
    task_list = list(tasks)
    if not task_list:
        return []
    n_jobs = resolve_jobs(jobs, len(task_list))
    registry = default_registry()
    payloads: Dict[int, _WorkerPayload] = {}
    attempts: Dict[int, int] = {index: 0 for index in range(len(task_list))}
    failures: Dict[int, BaseException] = {}

    with span("parallel.fanout", tasks=len(task_list), jobs=n_jobs) as fanout_span:
        fanout_unix_s = time.time()  # staticcheck: ignore[determinism] — trace-merge clock alignment, not a model path
        if n_jobs <= 1:
            for index, task in enumerate(task_list):
                attempt_error: Optional[BaseException] = None
                for _ in range(retries + 1):
                    attempts[index] += 1
                    try:
                        payloads[index] = _run_inline(task)
                        attempt_error = None
                        break
                    except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                        attempt_error = exc
                if attempt_error is not None:
                    failures[index] = attempt_error
        else:
            collect_spans = tracing_enabled()
            pending = list(enumerate(task_list))
            for _ in range(retries + 1):
                if not pending:
                    break
                failed: List[Tuple[int, FanoutTask]] = []
                # A fresh executor per round: a SIGKILLed worker breaks the
                # whole pool (BrokenProcessPool), so retries need new workers.
                with ProcessPoolExecutor(
                    max_workers=min(n_jobs, len(pending)),
                    mp_context=_mp_context(),
                ) as pool:
                    future_to_task = {
                        pool.submit(_execute_task, task, collect_spans): (index, task)
                        for index, task in pending
                    }
                    for future in as_completed(future_to_task):
                        index, task = future_to_task[future]
                        attempts[index] += 1
                        try:
                            payload = future.result()
                        except Exception as exc:  # noqa: BLE001 - retried, then surfaced
                            failures[index] = exc
                            failed.append((index, task))
                            continue
                        failures.pop(index, None)
                        payloads[index] = payload
                        _merge_worker_spans(fanout_span, payload, fanout_unix_s)
                pending = failed

        for index in sorted(payloads):
            outcome = "ok" if attempts[index] <= 1 else "retried"
            registry.counter("parallel.tasks", outcome=outcome).inc()
            registry.counter("parallel.task_s").inc(payloads[index].duration_s)
        if failures:
            registry.counter("parallel.tasks", outcome="failed").inc(len(failures))

    if failures:
        raise FanoutError(tuple(
            (task_list[index].task_id(), f"{type(exc).__name__}: {exc}")
            for index, exc in sorted(failures.items())
        ))
    return [
        TaskOutcome(
            task_id=payloads[index].task_id,
            value=payloads[index].value,
            outcome="ok" if attempts[index] <= 1 else "retried",
            attempts=attempts[index],
            duration_s=payloads[index].duration_s,
            worker_pid=payloads[index].worker_pid,
        )
        for index in range(len(task_list))
    ]
