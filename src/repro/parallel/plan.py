"""Picklable work units for the fan-out executor.

Each task class describes one independent slice of the pipeline — one
(model, GPU) profiling cell, one heavy-op regression, one communication
fit — as a frozen dataclass of plain values, so it pickles cheaply into a
worker process and its identity (:meth:`task_id`) names the cell in
traces, metrics, and :class:`~repro.errors.FanoutError` messages.

Two rules keep this module cycle-free and deterministic:

* **Lazy imports.** ``repro.core.op_models`` / ``comm_model`` /
  ``artifacts.workspace`` import this package for their ``jobs=`` support,
  so task bodies import those modules inside :meth:`run`, never at module
  level.
* **Pure functions of the spec.** A task owns everything its computation
  depends on (model name, seed context, iteration count, workspace
  directory); it reads no ambient state, so the same spec produces the
  same result in any process, in any order — the foundation of the
  ``--jobs 8`` == ``--jobs 1`` byte-identity guarantee.

Tasks that write artifacts do so *through the workspace*, which means the
store's per-key ``O_CREAT|O_EXCL`` locks arbitrate racing workers: one
computes, the rest block on ``store.lock_wait`` and then load the
winner's bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

__all__ = [
    "CommFitTask",
    "CommObservationTask",
    "FigureTask",
    "MeasurementTask",
    "ProfileCellTask",
    "RegressionFitTask",
    "TransferFitTask",
    "TransferLogoTask",
]


@dataclass(frozen=True)
class ProfileCellTask:
    """Profile one (model, GPU) cell into a workspace.

    The cell's artifact spec is exactly ``Workspace.profiles`` for a
    single-model, single-GPU dataset, so a later assembly pass (or any
    other process) re-fetching the cell gets a disk hit, never a
    recompute. Returns the cell's record count plus this worker's
    profile-miss count — the miss count is how the concurrency tests
    assert compute-once across racing processes (misses sum to 1).
    """

    model: str
    gpu_key: str
    n_iterations: int
    batch_size: int
    seed_context: str
    workspace_dir: str

    def task_id(self) -> str:
        return f"profile:{self.model}:{self.gpu_key}"

    def run(self) -> Dict[str, int]:
        from repro.artifacts.workspace import Workspace

        workspace = Workspace(self.workspace_dir)
        dataset = workspace.profiles(
            [self.model], [self.gpu_key], self.n_iterations,
            batch_size=self.batch_size, seed_context=self.seed_context,
        )
        counters = workspace.store.counters.get("profile")
        return {
            "records": len(dataset),
            "misses": counters.misses if counters is not None else 0,
        }


@dataclass(frozen=True)
class RegressionFitTask:
    """Fit one (GPU model, heavy op type) compute-time regression.

    Carries the training rows by value (floats pickle exactly), so the
    worker's fit sees bit-identical inputs to the serial path's and — the
    solvers being deterministic — produces bit-identical coefficients.
    """

    gpu_key: str
    op_type: str
    rows: Tuple[Tuple[float, ...], ...]
    targets: Tuple[float, ...]
    schema: Tuple[str, ...]
    allow_quadratic: bool

    def task_id(self) -> str:
        return f"fit:{self.gpu_key}:{self.op_type}"

    def run(self) -> Any:
        from repro.core.op_models import fit_heavy_regression

        return fit_heavy_regression(
            self.rows, self.targets, self.schema, self.allow_quadratic
        )


@dataclass(frozen=True)
class TransferFitTask:
    """Fit one pooled cross-GPU transfer model for one heavy op type.

    Like :class:`RegressionFitTask`, inputs travel by value — including
    each row's device features — so the worker's fit is bit-identical to
    the serial path's.
    """

    op_type: str
    rows: Tuple[Tuple[float, ...], ...]
    targets: Tuple[float, ...]
    device_rows: Tuple[Tuple[float, float], ...]
    schema: Tuple[str, ...]
    allow_quadratic: bool

    def task_id(self) -> str:
        return f"transferfit:{self.op_type}"

    def run(self) -> Any:
        from repro.core.transfer import fit_transfer_op

        return fit_transfer_op(
            self.op_type, self.rows, self.targets, self.device_rows,
            self.schema, self.allow_quadratic,
        )


@dataclass(frozen=True)
class TransferLogoTask:
    """Score one leave-one-GPU-out fold of the transfer evaluation.

    The fold is a pure function of its cells (training rows from the
    other GPUs, evaluation rows from the holdout), so a fanned-out LOGO
    report is byte-identical to a serial one.
    """

    holdout_gpu: str
    holdout_device: Tuple[float, float]
    train_cells: Tuple[
        Tuple[
            str,
            Tuple[Tuple[float, ...], ...],
            Tuple[float, ...],
            Tuple[Tuple[float, float], ...],
        ],
        ...,
    ]
    eval_cells: Tuple[
        Tuple[str, Tuple[Tuple[float, ...], ...], Tuple[float, ...]], ...
    ]
    allow_quadratic: bool

    def task_id(self) -> str:
        return f"logo:{self.holdout_gpu}"

    def run(self) -> Any:
        from repro.core.transfer import logo_fold

        return logo_fold(
            self.holdout_gpu, self.holdout_device,
            self.train_cells, self.eval_cells, self.allow_quadratic,
        )


@dataclass(frozen=True)
class CommObservationTask:
    """Measure communication overheads for one (model, GPU) over all k.

    Sampling is a pure function of (graph, gpu_key, seed_context), so each
    cell's observations are independent of sweep order; the caller
    concatenates cells in the serial loop's order.
    """

    model: str
    gpu_key: str
    gpu_counts: Tuple[int, ...]
    n_iterations: int
    batch_size: int
    seed_context: str
    placement: str

    def task_id(self) -> str:
        return f"comm:{self.model}:{self.gpu_key}"

    def run(self) -> Any:
        from repro.core.comm_model import collect_comm_cell
        from repro.models.zoo import build_model

        graph = build_model(self.model, batch_size=self.batch_size)
        return collect_comm_cell(
            graph, self.gpu_key, self.gpu_counts,
            n_iterations=self.n_iterations, seed_context=self.seed_context,
            placement=self.placement,
        )


@dataclass(frozen=True)
class CommFitTask:
    """Fit one (GPU model, GPU count) communication regression."""

    gpu_key: str
    num_gpus: int
    parameter_counts: Tuple[int, ...]
    overheads_us: Tuple[float, ...]

    def task_id(self) -> str:
        return f"commfit:{self.gpu_key}:k{self.num_gpus}"

    def run(self) -> Any:
        from repro.core.comm_model import fit_comm_group

        return fit_comm_group(
            (self.gpu_key, self.num_gpus),
            self.parameter_counts, self.overheads_us,
        )


@dataclass(frozen=True)
class FigureTask:
    """Render one paper figure into a workspace.

    The worker installs its workspace as the process-wide active one (so
    the figure driver's helpers resolve artifacts from it), renders, and
    caches the text through ``Workspace.figure``. The parent then re-reads
    every figure from the workspace — all disk hits — to assemble the
    report in the user's requested order.
    """

    name: str
    n_iterations: int
    workspace_dir: str

    def task_id(self) -> str:
        return f"figure:{self.name}"

    def run(self) -> str:
        from repro import experiments
        from repro.artifacts.workspace import Workspace, set_active_workspace

        runner = getattr(experiments, f"run_{self.name}")
        workspace = Workspace(self.workspace_dir)
        previous = set_active_workspace(workspace)
        try:
            return workspace.figure(
                self.name, self.n_iterations,
                lambda: runner(n_iterations=self.n_iterations).render(),
            )
        finally:
            set_active_workspace(previous)


@dataclass(frozen=True)
class MeasurementTask:
    """Run one ground-truth training measurement into a workspace.

    Used by ``tools/calibrate.py`` to warm its (model, GPU, k) measurement
    grid in parallel. Returns a small summary rather than the full
    measurement — the calibration loop re-reads cells from the workspace
    (disk hits) when it needs them.
    """

    model: str
    gpu_key: str
    num_gpus: int
    num_samples: int
    batch_size: int
    epochs: int
    n_iterations: int
    seed_context: str
    placement: str
    pricing_name: str

    workspace_dir: str

    def task_id(self) -> str:
        return f"measure:{self.model}:{self.gpu_key}:k{self.num_gpus}"

    def run(self) -> Dict[str, float]:
        from repro.artifacts.workspace import Workspace
        from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND
        from repro.workloads.dataset import DatasetSpec, TrainingJob

        pricing_by_name = {ON_DEMAND.name: ON_DEMAND, MARKET_RATIO.name: MARKET_RATIO}
        job = TrainingJob(
            DatasetSpec("calibration", num_samples=self.num_samples),
            batch_size=self.batch_size, epochs=self.epochs,
        )
        measurement = Workspace(self.workspace_dir).observed_training(
            self.model, self.gpu_key, self.num_gpus, job,
            n_iterations=self.n_iterations, seed_context=self.seed_context,
            placement=self.placement, pricing=pricing_by_name[self.pricing_name],
        )
        return {"per_iteration_us": measurement.per_iteration_us}
