"""Profiling: per-op measurement collection and datasets (paper, Section III)."""

from repro.profiling.features import (
    BYTES_SCALE,
    COMPUTE_SCHEMA,
    MAC_SCALE,
    SIZE_SCHEMA,
    describe_features,
    feature_matrix,
    feature_schema,
    features_for,
    is_host_op,
)
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset, ProfileRecord


def __getattr__(name: str):  # pragma: no cover - thin lazy-import shim
    # ProfileCache now adapts the artifact store, which depends on the core
    # fitting layer, which reads profile records from this package. Importing
    # it lazily keeps ``repro.core`` -> ``repro.profiling`` import-safe.
    if name == "ProfileCache":
        from repro.profiling.cache import ProfileCache

        return ProfileCache
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Profiler",
    "ProfileCache",
    "ProfileDataset",
    "ProfileRecord",
    "features_for",
    "feature_schema",
    "feature_matrix",
    "describe_features",
    "is_host_op",
    "SIZE_SCHEMA",
    "COMPUTE_SCHEMA",
    "BYTES_SCALE",
    "MAC_SCALE",
]
