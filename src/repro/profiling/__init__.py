"""Profiling: per-op measurement collection and datasets (paper, Section III)."""

from repro.profiling.features import (
    BYTES_SCALE,
    COMPUTE_SCHEMA,
    MAC_SCALE,
    SIZE_SCHEMA,
    describe_features,
    feature_matrix,
    feature_schema,
    features_for,
    is_host_op,
)
from repro.profiling.cache import ProfileCache
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset, ProfileRecord

__all__ = [
    "Profiler",
    "ProfileCache",
    "ProfileDataset",
    "ProfileRecord",
    "features_for",
    "feature_schema",
    "feature_matrix",
    "describe_features",
    "is_host_op",
    "SIZE_SCHEMA",
    "COMPUTE_SCHEMA",
    "BYTES_SCALE",
    "MAC_SCALE",
]
