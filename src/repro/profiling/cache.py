"""Disk caching for profile datasets (legacy adapter).

Profiling the full training matrix (8 CNNs x 4 GPU models x 1,000
iterations) is the expensive step of Ceer's offline phase. This module
predates the typed artifact workspace; :class:`ProfileCache` is now a thin
backwards-compatible adapter over
:class:`~repro.artifacts.store.ArtifactStore`, keeping its historical
``cache_key`` addressing while inheriting the store's atomic writes,
corruption-tolerant reads, and per-key locking. New code should use
:class:`~repro.artifacts.workspace.Workspace` directly.

Usage::

    cache = ProfileCache("~/.cache/repro-profiles")
    profiles = cache.get_or_profile(TRAIN_MODELS, GPU_KEYS, n_iterations=1000)
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.artifacts import kinds
from repro.artifacts.store import ArtifactStore
from repro.profiling.profiler import Profiler
from repro.profiling.records import ProfileDataset

#: On-disk layout version, folded into every cache key. Bump whenever the
#: serialized :class:`ProfileRecord` schema changes: old files then simply
#: stop being addressed (self-invalidation) instead of failing to parse.
CACHE_FORMAT_VERSION = 1


class ProfileCache:
    """A content-addressed directory of profile datasets.

    Storage is delegated to an :class:`ArtifactStore` holding ``profile``
    kind artifacts, so a ProfileCache directory is also a valid (partial)
    workspace directory and vice versa.
    """

    def __init__(self, directory: Union[str, Path]) -> None:
        self._store = ArtifactStore(directory)
        self.directory = self._store.directory
        # Legacy callers poke files into the cache directly (tests inject
        # corruption; tooling lists it) — make the kind directory eagerly.
        (self.directory / kinds.PROFILE.name).mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    @staticmethod
    def cache_key(
        models: Sequence[str],
        gpu_keys: Sequence[str],
        n_iterations: int,
        batch_size: int,
        seed_context: str = "",
    ) -> str:
        """Stable hash of the profiling configuration."""
        payload = json.dumps(
            {
                "format": CACHE_FORMAT_VERSION,
                "models": sorted(models),
                "gpus": sorted(gpu_keys),
                "iterations": n_iterations,
                "batch": batch_size,
                "seed": seed_context,
            },
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def _path(self, key: str) -> Path:
        return self._store.path_for(kinds.PROFILE, key)

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[ProfileDataset]:
        """Return the cached dataset for ``key``, or None on miss.

        A corrupt, truncated, or schema-incompatible cache file is treated
        as a miss (not an error): :meth:`get_or_profile` then re-profiles
        and overwrites the bad file, so a killed run or stale layout can
        never wedge the pipeline.
        """
        return self._store.load(kinds.PROFILE, key, kinds.decode_profiles)

    def store(self, key: str, dataset: ProfileDataset) -> Path:
        return self._store.save(
            kinds.PROFILE, key, dataset, kinds.encode_profiles
        )

    def get_or_profile(
        self,
        models: Sequence[str],
        gpu_keys: Sequence[str],
        n_iterations: int = 1000,
        batch_size: int = 32,
        seed_context: str = "",
    ) -> ProfileDataset:
        """Load the dataset for this configuration, profiling on a miss."""
        key = self.cache_key(models, gpu_keys, n_iterations, batch_size, seed_context)
        cached = self.load(key)
        if cached is not None:
            return cached
        profiler = Profiler(n_iterations=n_iterations, batch_size=batch_size)
        dataset = profiler.profile_many(list(models), list(gpu_keys), seed_context)
        self.store(key, dataset)
        return dataset

    def entries(self) -> List[Path]:
        """All cache files, for inspection/cleanup."""
        return sorted(
            info.path for info in self._store.entries(kinds.PROFILE.name)
        )

    def clear(self) -> int:
        """Delete all cache entries; returns the number removed."""
        return self._store.clear(kinds.PROFILE.name)
