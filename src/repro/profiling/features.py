"""Per-operation input-size features for Ceer's regression models.

Paper, Section IV-B: "Note that *input* can be a vector; for example, for
the Conv2D operation, the size of both input images and the size of the
filters serve as input to the compute time model", and Section III-C: "for
some operations (e.g., Conv2D, AvgPool, etc.), the compute time also
depends on the size of supplemental inputs, such as filters, strides, and
padding".

All features here are *static* properties of the op's shapes and attributes
— they can be computed from the CNN's DAG without executing anything, which
is what lets Ceer predict training time for a model before renting a single
instance (Section IV-D). For the dense-compute ops (convolutions, matmul)
we include the multiply-accumulate volume implied by shapes/strides/padding
as the "supplemental input" feature; it is a deterministic function of the
sizes the paper enumerates, and it is what makes a single per-op-type model
work across kernel geometries as different as 1x1 and 7x7 convolutions.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.graph.flops import flop_count
from repro.graph.ops import OpCategory, Operation, op_def

#: Feature names, in vector order, per feature schema.
SIZE_SCHEMA: Tuple[str, ...] = ("input_bytes", "output_bytes")
COMPUTE_SCHEMA: Tuple[str, ...] = (
    "input_bytes", "output_bytes", "mac_volume", "macs_per_element"
)

#: Op types that get the MAC-volume supplemental feature.
_COMPUTE_FEATURE_OPS = frozenset(
    {"Conv2D", "Conv2DBackpropInput", "Conv2DBackpropFilter", "MatMul",
     "BatchMatMul"}
)

#: Scale factors keeping regression design matrices well-conditioned:
#: feature values land in O(1)-O(100) for realistic CNN ops.
BYTES_SCALE = 1e6  # features measured in MB
MAC_SCALE = 1e8  # MACs measured in 1e8 units


def feature_schema(op_type: str) -> Tuple[str, ...]:
    """The feature names used for an op type (validates the type)."""
    op_def(op_type)
    if op_type in _COMPUTE_FEATURE_OPS:
        return COMPUTE_SCHEMA
    return SIZE_SCHEMA


def features_for(op: Operation) -> Tuple[float, ...]:
    """Extract the (scaled) feature vector for one operation.

    For the dense-compute ops the vector also carries the MAC *density*
    (MACs per tensor element): two convolutions with the same total work
    but different per-element arithmetic stress the GPU very differently —
    a deep 1x1 kernel over a small grid underutilises a wide chip where a
    shallow kernel over a large grid saturates it. Both quantities are
    derived purely from shapes/strides/padding (the paper's "supplemental
    inputs", Section III-C).
    """
    base = (op.input_bytes / BYTES_SCALE, op.output_bytes / BYTES_SCALE)
    if op.op_type in _COMPUTE_FEATURE_OPS:
        macs = flop_count(op) / 2.0
        elements = max(
            sum(s.num_elements for s in op.inputs),
            sum(s.num_elements for s in op.outputs),
        )
        return base + (macs / MAC_SCALE, macs / elements / 1e3)
    return base


def feature_matrix(feature_rows) -> np.ndarray:
    """Stack per-op feature tuples into a 2-D design matrix."""
    return np.asarray(list(feature_rows), dtype=float)


def describe_features(op: Operation) -> Dict[str, float]:
    """Named features for one op (diagnostics, examples, tests)."""
    return dict(zip(feature_schema(op.op_type), features_for(op)))


def is_host_op(op_type: str) -> bool:
    """True when the op type has no GPU kernel (paper's "CPU operations")."""
    return op_def(op_type).category is OpCategory.HOST
