"""The profiler: run a CNN on a (simulated) GPU instance and collect records.

This is the reproduction's equivalent of the paper's measurement harness —
training each CNN on TensorFlow r1.14 on an AWS instance and extracting
per-op compute times from the profiler over 1,000 iterations (Section III).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Union

from repro.errors import ProfilingError
from repro.graph.graph import OpGraph
from repro.models.zoo import build_model
from repro.obs.metrics import default_registry
from repro.obs.spans import span
from repro.profiling.features import features_for
from repro.profiling.records import ProfileDataset, ProfileRecord
from repro.sim.executor import run_iterations


class Profiler:
    """Collects operation-level compute-time profiles.

    Args:
        n_iterations: iterations each (model, GPU) pair is measured over;
            the paper uses 1,000. Lower values speed experiments up at the
            cost of noisier statistics.
        batch_size: per-GPU batch size used for profiling (paper default 32).
    """

    def __init__(self, n_iterations: int = 1000, batch_size: int = 32) -> None:
        if n_iterations < 2:
            raise ProfilingError("n_iterations must be >= 2")
        self.n_iterations = n_iterations
        self.batch_size = batch_size

    def profile(
        self,
        model: Union[str, OpGraph],
        gpu_key: str,
        seed_context: str = "",
    ) -> ProfileDataset:
        """Profile one model on one GPU type; one record per operation."""
        graph = (
            build_model(model, batch_size=self.batch_size)
            if isinstance(model, str)
            else model
        )
        with span(
            "profile.run", model=graph.name, gpu=gpu_key,
            iterations=self.n_iterations,
        ):
            profile = run_iterations(graph, gpu_key, self.n_iterations, seed_context)
            op_by_name = {}
            duplicates = set()
            for op in graph.operations:
                if op.name in op_by_name:
                    duplicates.add(op.name)
                op_by_name[op.name] = op
            if duplicates:
                # A name collision would silently attribute every colliding
                # timing to whichever op won the dict insertion — corrupt
                # features with no error. Refuse instead.
                raise ProfilingError(
                    f"graph {graph.name!r} has duplicate operation names "
                    f"{sorted(duplicates)}; profile records cannot be "
                    f"attributed unambiguously"
                )
            records = [
                ProfileRecord.from_timing(
                    graph.name, timing, features_for(op_by_name[timing.op_name])
                )
                for timing in profile.timings
            ]
        metrics = default_registry()
        metrics.counter("profiling.runs", gpu=gpu_key).inc()
        metrics.counter("profiling.records").inc(len(records))
        return ProfileDataset(records)

    def profile_many(
        self,
        models: Sequence[Union[str, OpGraph]],
        gpu_keys: Iterable[str],
        seed_context: str = "",
    ) -> ProfileDataset:
        """Profile every (model, GPU) pair and merge the results."""
        gpu_list = list(gpu_keys)
        with span(
            "profile.sweep", models=len(models), gpus=len(gpu_list),
            iterations=self.n_iterations,
        ):
            datasets = [
                self.profile(model, gpu_key, seed_context)
                for model in models
                for gpu_key in gpu_list
            ]
            if not datasets:
                raise ProfilingError("profile_many called with no (model, GPU) pairs")
            return ProfileDataset.concat(datasets)
