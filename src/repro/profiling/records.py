"""Profile datasets: the measurement records Ceer trains and validates on.

A :class:`ProfileRecord` is one profiled operation instance — op identity,
static size features, and compute-time statistics over N iterations. A
:class:`ProfileDataset` is an immutable collection with the grouping and
filtering operations the modeling pipeline needs, plus JSON round-tripping
so experiment drivers can cache profiles on disk.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Callable, Dict, Iterable, Iterator, List, Sequence, Tuple

from repro.errors import ProfilingError
from repro.sim.trace import OpTiming


@dataclass(frozen=True)
class ProfileRecord:
    """One profiled operation on one GPU model in one CNN."""

    model: str
    gpu_key: str
    op_name: str
    op_type: str
    device: str  # "GPU" or "CPU"
    features: Tuple[float, ...]
    input_bytes: int
    n_samples: int
    mean_us: float
    std_us: float
    median_us: float

    @classmethod
    def from_timing(
        cls, model: str, timing: OpTiming, features: Tuple[float, ...]
    ) -> "ProfileRecord":
        return cls(
            model=model,
            gpu_key=timing.gpu_key,
            op_name=timing.op_name,
            op_type=timing.op_type,
            device=timing.device,
            features=tuple(features),
            input_bytes=timing.input_bytes,
            n_samples=timing.n_samples,
            mean_us=timing.mean_us,
            std_us=timing.std_us,
            median_us=timing.median_us,
        )

    @property
    def normalized_std(self) -> float:
        return self.std_us / self.mean_us if self.mean_us > 0 else 0.0


class ProfileDataset:
    """An immutable collection of :class:`ProfileRecord` with query helpers."""

    def __init__(self, records: Iterable[ProfileRecord]) -> None:
        self._records: Tuple[ProfileRecord, ...] = tuple(records)

    # -- basic container protocol -----------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ProfileRecord]:
        return iter(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    @property
    def records(self) -> Tuple[ProfileRecord, ...]:
        return self._records

    # -- queries ---------------------------------------------------------------
    def filter(self, predicate: Callable[[ProfileRecord], bool]) -> "ProfileDataset":
        return ProfileDataset(r for r in self._records if predicate(r))

    def for_gpu(self, gpu_key: str) -> "ProfileDataset":
        return self.filter(lambda r: r.gpu_key == gpu_key)

    def for_model(self, model: str) -> "ProfileDataset":
        return self.filter(lambda r: r.model == model)

    def for_op_type(self, op_type: str) -> "ProfileDataset":
        return self.filter(lambda r: r.op_type == op_type)

    def gpu_records(self) -> "ProfileDataset":
        return self.filter(lambda r: r.device == "GPU")

    def cpu_records(self) -> "ProfileDataset":
        return self.filter(lambda r: r.device == "CPU")

    def op_types(self) -> Tuple[str, ...]:
        return tuple(sorted({r.op_type for r in self._records}))

    def gpu_keys(self) -> Tuple[str, ...]:
        return tuple(sorted({r.gpu_key for r in self._records}))

    def models(self) -> Tuple[str, ...]:
        return tuple(sorted({r.model for r in self._records}))

    def group_by_op_type(self) -> Dict[str, "ProfileDataset"]:
        groups: Dict[str, List[ProfileRecord]] = {}
        for r in self._records:
            groups.setdefault(r.op_type, []).append(r)
        return {k: ProfileDataset(v) for k, v in groups.items()}

    def merge(self, *others: "ProfileDataset") -> "ProfileDataset":
        merged: List[ProfileRecord] = list(self._records)
        for other in others:
            merged.extend(other.records)
        return ProfileDataset(merged)

    # -- aggregate views ---------------------------------------------------------
    def mean_us_by_op_type(self) -> Dict[str, float]:
        """Mean of per-instance mean times, per op type (paper Fig. 2 rows)."""
        sums: Dict[str, Tuple[float, int]] = {}
        for r in self._records:
            total, count = sums.get(r.op_type, (0.0, 0))
            sums[r.op_type] = (total + r.mean_us, count + 1)
        return {k: total / count for k, (total, count) in sums.items()}

    def total_us_by_op_type(self) -> Dict[str, float]:
        """Summed per-iteration time contribution of each op type."""
        sums: Dict[str, float] = {}
        for r in self._records:
            sums[r.op_type] = sums.get(r.op_type, 0.0) + r.mean_us
        return sums

    # -- (de)serialisation --------------------------------------------------------
    def to_json(self, path: Path) -> None:
        """Write the dataset to a JSON file (for experiment caching)."""
        payload = [asdict(r) for r in self._records]
        Path(path).write_text(json.dumps(payload))

    @classmethod
    def from_json(cls, path: Path) -> "ProfileDataset":
        raw = json.loads(Path(path).read_text())
        if not isinstance(raw, list):
            raise ProfilingError(f"profile cache {path} is not a JSON list")
        return cls(
            ProfileRecord(**{**item, "features": tuple(item["features"])})
            for item in raw
        )

    @classmethod
    def concat(cls, datasets: Sequence["ProfileDataset"]) -> "ProfileDataset":
        records: List[ProfileRecord] = []
        for ds in datasets:
            records.extend(ds.records)
        return cls(records)
