"""Recommendation-as-a-service: a long-lived server over the engine.

The package turns the fitted-estimator → recommendation pipeline into a
zero-dependency network service (paper, Section V: the point of the
model is answering "which instance should I rent?" *without* re-running
profiling — this layer answers it in milliseconds over HTTP):

* :mod:`repro.serve.protocol` — request schemas, strict parsers, and
  canonical request fingerprints.
* :mod:`repro.serve.snapshot` — immutable per-generation serving state
  and the atomic hot-swap holder.
* :mod:`repro.serve.coalesce` — in-flight request coalescing plus the
  bounded response LRU.
* :mod:`repro.serve.app` — the ASGI-compatible application object and
  its endpoint handlers.
* :mod:`repro.serve.http` — a stdlib asyncio HTTP/1.1 server with
  keep-alive and signal-driven reload/shutdown.

``repro serve`` (the CLI) wires these together; ``tools/bench_serve.py``
load-tests the result and ``tools/perf_gate.py --serve-fresh`` gates the
machine-independent ratios in CI.
"""

from repro.serve.app import ServeApp, ServeState
from repro.serve.coalesce import CoalescingCache
from repro.serve.http import HttpServer, serve_forever
from repro.serve.protocol import (
    ParetoRequest,
    PredictRequest,
    ProtocolError,
    RecommendRequest,
)
from repro.serve.snapshot import ServingSnapshot, SnapshotHolder, load_snapshot

__all__ = [
    "ServeApp",
    "ServeState",
    "CoalescingCache",
    "HttpServer",
    "serve_forever",
    "PredictRequest",
    "RecommendRequest",
    "ParetoRequest",
    "ProtocolError",
    "ServingSnapshot",
    "SnapshotHolder",
    "load_snapshot",
]
