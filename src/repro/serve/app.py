"""The recommendation service: an ASGI-compatible application object.

:class:`ServeApp` implements the ASGI 3.0 single-callable interface
(``await app(scope, receive, send)``) over plain stdlib machinery, so it
runs equally under the bundled :mod:`repro.serve.http` asyncio server,
any external ASGI server, or an in-process test harness that fabricates
scopes. Endpoints:

========================  =====================================================
``GET /healthz``          liveness + live snapshot generation
``GET /metrics``          the repro-metrics JSON schema (or Prometheus-ish
                          text with ``?format=prometheus``)
``POST /predict``         time/cost of one (model, GPU, count, batch) config
``POST /recommend``       objective-optimal instance for a model
``POST /pareto``          full-catalog time/cost frontier
``POST /spot/tick``       advance the streaming spot market one price tick
``POST /admin/reload``    zero-downtime estimator hot swap
========================  =====================================================

The ``/recommend`` endpoint additionally accepts ``scenario: "spot"``:
the request is re-ranked against the server's seeded spot-price trace at
its current generation (see :mod:`repro.cloud.spotsim`), with preemption
hazards and a ``risk_aversion`` λ folded into the score. Ticks only
re-rank cached sweep tensors — no graph is recompiled.

Concurrency model: the event loop owns parsing, routing, coalescing, and
response writing; estimator evaluations run on a **single-worker
executor lane**. One lane is deliberate — every estimator cache
(engine LRU, stacked coefficients, plan price grids) is then only ever
touched from one thread, so the hot path needs no locks, while the event
loop stays free to accept, coalesce, and serve cache hits at full speed.
Warm evaluations are sub-millisecond, so one lane sustains hundreds to
thousands of queries per second; identical concurrent queries never
queue behind each other at all (they coalesce).

Hot swap: each request captures ``state.holder.current`` exactly once;
everything it computes uses that snapshot object. ``/admin/reload``
builds and warms the next generation *on the lane*, then swaps the
pointer and clears the response cache — in-flight requests finish on the
old snapshot, new requests see the new one, and nobody is dropped.
"""

from __future__ import annotations

import asyncio
import json
import time
from concurrent.futures import ThreadPoolExecutor
from functools import partial
from typing import Any, Awaitable, Callable, Dict, Optional, Sequence, Tuple, cast
from urllib.parse import parse_qs

from repro.cloud.spotsim import SpotMarket
from repro.core.estimator import CeerEstimator
from repro.core.preempt import DEFAULT_PREEMPTION
from repro.core.recommend import Recommender
from repro.core.rerank import SpotRerankSession
from repro.errors import ReproError
from repro.obs.export import metrics_to_json
from repro.obs.metrics import MetricsRegistry, default_registry
from repro.obs.spans import span
from repro.serve.coalesce import CoalescingCache
from repro.serve.protocol import (
    ParetoRequest,
    PredictRequest,
    ProtocolError,
    RecommendRequest,
    parse_pareto,
    parse_predict,
    parse_recommend,
    prediction_to_json,
    recommendation_to_json,
)
from repro.serve.snapshot import ServingSnapshot, SnapshotHolder, load_snapshot

__all__ = ["ServeApp", "ServeState"]

#: Largest accepted request body; the API is small JSON objects.
MAX_BODY_BYTES = 1 << 20


class ServeState:
    """Everything the app shares across requests.

    Built synchronously (loads and warms the initial snapshot), then
    handed to :class:`ServeApp` on whatever event loop serves traffic.
    """

    def __init__(
        self,
        estimator_path: str,
        cache_size: int = 1024,
        warm: bool = True,
        models: Optional[Sequence[str]] = None,
        batch_sizes: Sequence[int] = (32,),
        registry: Optional[MetricsRegistry] = None,
        spot_seed: int = 2020,
    ) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.default_path = estimator_path
        self.warm = warm
        self.models = tuple(models) if models is not None else None
        self.batch_sizes = tuple(batch_sizes)
        with span("serve.load", source=estimator_path, generation=1):
            initial = load_snapshot(
                estimator_path, generation=1, warm=warm,
                models=self.models, batch_sizes=self.batch_sizes,
            )
        self.holder = SnapshotHolder(initial)
        self.cache = CoalescingCache(cache_size, registry=self.registry)
        #: The single evaluation lane (see module docstring).
        self.executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-eval"
        )
        self.started_monotonic_s = time.monotonic()  # staticcheck: ignore[determinism] — serving uptime, not a model path
        self._reload_lock: Optional[asyncio.Lock] = None
        #: The streaming spot market. Ticked and read only on the event
        #: loop, so (generation, ratios, hazards) observations are
        #: atomic; survives snapshot hot swaps — prices are market
        #: state, not estimator state.
        self.spot = SpotMarket(seed=spot_seed)

    @property
    def reload_lock(self) -> asyncio.Lock:
        # Created lazily on the serving loop: on Python 3.9 an
        # asyncio.Lock binds the loop that exists at construction time,
        # and ServeState is built before the loop runs.
        if self._reload_lock is None:
            self._reload_lock = asyncio.Lock()
        return self._reload_lock

    def uptime_s(self) -> float:
        return time.monotonic() - self.started_monotonic_s  # staticcheck: ignore[determinism] — serving uptime, not a model path

    async def reload(self, path: Optional[str] = None) -> ServingSnapshot:
        """Load + warm the next generation, then atomically install it.

        Serialised by an asyncio lock so concurrent reloads cannot race
        each other to the swap; the load and warm happen on the
        evaluation lane, so in-flight evaluations finish first and the
        event loop keeps answering cache hits and health checks while
        the new generation warms.
        """
        async with self.reload_lock:
            source = path if path is not None else self.default_path
            generation = self.holder.generation + 1
            loop = asyncio.get_running_loop()
            with span("serve.reload", source=source, generation=generation):
                snapshot = await loop.run_in_executor(
                    self.executor,
                    partial(
                        load_snapshot, source, generation, warm=self.warm,
                        models=self.models, batch_sizes=self.batch_sizes,
                    ),
                )
                self.holder.swap(snapshot)
                dropped = self.cache.clear()
            self.registry.counter("serve.reloads").inc()
            self.registry.counter("serve.cache_dropped").inc(dropped)
            return snapshot

    def close(self) -> None:
        self.executor.shutdown(wait=True)


# -- evaluation thunks (run on the lane, one snapshot each) --------------
def _predict_thunk(snapshot: ServingSnapshot, req: PredictRequest) -> Dict[str, object]:
    estimator = cast(CeerEstimator, snapshot.estimator)
    prediction = estimator.predict_training(
        req.model, req.gpu, req.gpus, req.job(),
        pricing=req.pricing_scheme(),
    )
    return {"generation": snapshot.generation,
            "prediction": prediction_to_json(prediction)}


def _recommend_thunk(
    snapshot: ServingSnapshot, req: RecommendRequest
) -> Dict[str, object]:
    estimator = cast(CeerEstimator, snapshot.estimator)
    recommendation = Recommender(
        estimator, pricing=req.pricing_scheme()
    ).recommend(req.model, req.job(), req.objective_instance())
    doc = recommendation_to_json(recommendation)
    doc["generation"] = snapshot.generation
    return doc


def _spot_recommend_thunk(
    snapshot: ServingSnapshot,
    req: RecommendRequest,
    spot_generation: int,
    ratios: Dict[str, float],
    hazards: Dict[str, float],
) -> Dict[str, object]:
    """Spot-scenario recommendation: incremental re-rank, no re-sweep.

    The (generation, ratios, hazards) triple was captured atomically on
    the event loop; this thunk never touches the live market, so a tick
    racing the evaluation cannot produce a ranking that mixes two
    generations' prices.
    """
    session = cast(
        SpotRerankSession,
        snapshot.spot_session_for(req.model, req.batch, req.samples,
                                  req.epochs),
    )
    ranking = session.rerank(
        ratios, hazards,
        risk_aversion_usd_per_hr=req.risk_aversion,
        preempt=DEFAULT_PREEMPTION,
    )
    top = ranking.predictions(top=4)
    return {
        "generation": snapshot.generation,
        "scenario": "spot",
        "spot_generation": spot_generation,
        "objective": "spot-risk",
        "risk_aversion": req.risk_aversion,
        "ratios": dict(sorted(ratios.items())),
        "n_candidates": ranking.n_candidates,
        "best": prediction_to_json(ranking.best()),
        "runners_up": [prediction_to_json(p) for p in top[1:]],
    }


def _pareto_thunk(snapshot: ServingSnapshot, req: ParetoRequest) -> Dict[str, object]:
    from repro.core.batch import SweepPlan, evaluate_sweep

    estimator = cast(CeerEstimator, snapshot.estimator)
    plan = cast(
        SweepPlan,
        snapshot.plan_for(req.batches, req.pricing, req.pricing_scheme()),
    )
    result = evaluate_sweep(estimator, req.model, req.job(), plan)
    frontier = result.frontier()
    return {
        "generation": snapshot.generation,
        "model": result.model_name,
        "n_candidates": result.n_candidates,
        "frontier": [prediction_to_json(p) for p in frontier],
    }


class ServeApp:
    """The ASGI 3.0 application over one :class:`ServeState`."""

    def __init__(self, state: ServeState) -> None:
        self.state = state
        self._routes: Dict[Tuple[str, str], Callable[..., Awaitable[Tuple[int, Dict[str, object]]]]] = {
            ("GET", "/healthz"): self._healthz,
            ("GET", "/metrics"): self._metrics,
            ("POST", "/predict"): self._predict,
            ("POST", "/recommend"): self._recommend,
            ("POST", "/pareto"): self._pareto,
            ("POST", "/spot/tick"): self._spot_tick,
            ("POST", "/admin/reload"): self._reload,
        }

    # -- ASGI plumbing ---------------------------------------------------
    async def __call__(self, scope: Dict[str, Any], receive: Callable[[], Awaitable[Dict[str, Any]]],
                       send: Callable[[Dict[str, Any]], Awaitable[None]]) -> None:
        if scope.get("type") == "lifespan":
            await self._lifespan(receive, send)
            return
        if scope.get("type") != "http":
            raise ServeAppError(f"unsupported ASGI scope {scope.get('type')!r}")
        method = str(scope.get("method", "GET")).upper()
        path = str(scope.get("path", "/"))
        query = scope.get("query_string", b"")
        started_us = time.perf_counter_ns() / 1e3  # staticcheck: ignore[determinism] — request latency observation
        status, document = await self._dispatch(method, path, query, receive)
        body = (json.dumps(document) + "\n").encode("utf-8")
        media = "application/json"
        if isinstance(document.get("_text"), str):
            body = str(document["_text"]).encode("utf-8")
            media = "text/plain; version=0.0.4"
        await send({
            "type": "http.response.start",
            "status": status,
            "headers": [
                (b"content-type", media.encode("ascii")),
                (b"content-length", str(len(body)).encode("ascii")),
            ],
        })
        await send({"type": "http.response.body", "body": body})
        elapsed_us = time.perf_counter_ns() / 1e3 - started_us  # staticcheck: ignore[determinism] — request latency observation
        registry = self.state.registry
        registry.counter(
            "serve.requests", endpoint=path, status=str(status)
        ).inc()
        registry.histogram("serve.request_us", endpoint=path).observe(elapsed_us)

    async def _lifespan(self, receive: Callable[[], Awaitable[Dict[str, Any]]],
                        send: Callable[[Dict[str, Any]], Awaitable[None]]) -> None:
        while True:
            message = await receive()
            if message["type"] == "lifespan.startup":
                await send({"type": "lifespan.startup.complete"})
            elif message["type"] == "lifespan.shutdown":
                await send({"type": "lifespan.shutdown.complete"})
                return

    async def _read_body(self, receive: Callable[[], Awaitable[Dict[str, Any]]]) -> bytes:
        chunks = []
        total = 0
        while True:
            message = await receive()
            if message.get("type") == "http.disconnect":
                raise ProtocolError("client disconnected mid-request")
            chunk = message.get("body", b"")
            total += len(chunk)
            if total > MAX_BODY_BYTES:
                raise ProtocolError(
                    f"request body exceeds {MAX_BODY_BYTES} bytes"
                )
            chunks.append(chunk)
            if not message.get("more_body", False):
                return b"".join(chunks)

    async def _json_body(self, receive: Callable[[], Awaitable[Dict[str, Any]]]) -> Any:
        raw = await self._read_body(receive)
        if not raw:
            return {}
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError) as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}")

    async def _dispatch(
        self, method: str, path: str, query: bytes,
        receive: Callable[[], Awaitable[Dict[str, Any]]],
    ) -> Tuple[int, Dict[str, object]]:
        handler = self._routes.get((method, path))
        if handler is None:
            known_paths = {p for _, p in self._routes}
            if path in known_paths:
                return 405, {"error": f"method {method} not allowed for {path}"}
            return 404, {"error": f"no such endpoint {path!r}"}
        try:
            with span("serve.request", endpoint=path, method=method):
                return await handler(query=query, receive=receive)
        except ProtocolError as exc:
            return 400, {"error": str(exc)}
        except ReproError as exc:
            # A well-formed request the estimator/catalog cannot satisfy
            # (unknown model, unpriceable config, infeasible objective).
            return 422, {"error": str(exc)}
        except Exception as exc:  # noqa: BLE001 — the server must not die
            self.state.registry.counter("serve.errors").inc()
            return 500, {"error": f"internal error: {type(exc).__name__}: {exc}"}

    # -- endpoints -------------------------------------------------------
    async def _healthz(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        snapshot = self.state.holder.current
        doc: Dict[str, object] = {"status": "ok", "uptime_s": self.state.uptime_s()}
        doc.update(snapshot.to_json())
        doc["cache"] = self.state.cache.stats()
        doc["spot_generation"] = self.state.spot.generation
        return 200, doc

    async def _metrics(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        params = parse_qs(query.decode("ascii", "replace"))
        registries = [self.state.registry]
        if self.state.registry is not default_registry():
            registries.append(default_registry())
        document = metrics_to_json(*registries)
        if params.get("format", [""])[0] == "prometheus":
            return 200, {"_text": _prometheus_text(document)}
        return 200, cast(Dict[str, object], document)

    async def _evaluate(
        self, endpoint: str, fingerprint: str,
        thunk: Callable[[], Dict[str, object]],
    ) -> Tuple[int, Dict[str, object]]:
        key = f"{self.state.holder.generation}:{fingerprint}"
        loop = asyncio.get_running_loop()

        async def compute() -> Dict[str, object]:
            self.state.registry.counter(
                "serve.evaluations", endpoint=endpoint
            ).inc()
            return await loop.run_in_executor(self.state.executor, thunk)

        document = await self.state.cache.get_or_compute(key, compute)
        return 200, cast(Dict[str, object], document)

    async def _predict(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        req = parse_predict(await self._json_body(receive))
        snapshot = self.state.holder.current
        return await self._evaluate(
            "predict", req.fingerprint(), partial(_predict_thunk, snapshot, req)
        )

    async def _recommend(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        req = parse_recommend(await self._json_body(receive))
        snapshot = self.state.holder.current
        if req.scenario == "spot":
            # Capture the market observation here, on the event loop —
            # atomically with the generation stamp. The cache key carries
            # the spot generation, so a ranking computed at tick N can
            # never be served for a request that arrived at tick N+1.
            market = self.state.spot
            spot_generation = market.generation
            ratios = market.ratios()
            hazards = market.hazards_per_hr()
            return await self._evaluate(
                "recommend",
                f"spot{spot_generation}:{req.fingerprint()}",
                partial(_spot_recommend_thunk, snapshot, req,
                        spot_generation, ratios, hazards),
            )
        return await self._evaluate(
            "recommend", req.fingerprint(),
            partial(_recommend_thunk, snapshot, req),
        )

    async def _pareto(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        req = parse_pareto(await self._json_body(receive))
        snapshot = self.state.holder.current
        return await self._evaluate(
            "pareto", req.fingerprint(), partial(_pareto_thunk, snapshot, req)
        )

    async def _spot_tick(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        """Advance the spot market one tick (the streaming price feed).

        Runs entirely on the event loop: the generation bump and the new
        quotes are one atomic step relative to request capture, and no
        estimator state is touched — compiled graphs, sweep caches, and
        the response LRU all survive (stale spot entries are unreachable
        because cache keys embed the generation).
        """
        body = await self._json_body(receive)
        if not isinstance(body, dict):
            raise ProtocolError("spot/tick: body must be a JSON object")
        if body:
            raise ProtocolError(
                f"spot/tick: unexpected field(s) {sorted(body)}; the tick "
                f"endpoint takes an empty body"
            )
        market = self.state.spot
        generation = market.tick()
        return 200, {
            "status": "ticked",
            "spot_generation": generation,
            "tick_index": market.tick_index,
            "ratios": dict(sorted(market.ratios().items())),
        }

    async def _reload(self, query: bytes, receive: Any) -> Tuple[int, Dict[str, object]]:
        body = await self._json_body(receive)
        if not isinstance(body, dict):
            raise ProtocolError("admin/reload: body must be a JSON object")
        unknown = sorted(set(body) - {"path"})
        if unknown:
            raise ProtocolError(
                f"admin/reload: unknown field(s) {unknown}; allowed: ['path']"
            )
        path = body.get("path")
        if path is not None and (not isinstance(path, str) or not path):
            raise ProtocolError(
                "admin/reload: 'path' must be a non-empty string"
            )
        snapshot = await self.state.reload(path)
        doc: Dict[str, object] = {"status": "reloaded"}
        doc.update(snapshot.to_json())
        return 200, doc


class ServeAppError(ReproError):
    """The ASGI layer was driven with an unsupported scope."""


def _prometheus_text(document: Dict[str, Any]) -> str:
    """Render the metrics JSON schema as Prometheus-ish exposition text."""
    lines = []
    for record in document.get("metrics", []):
        name = str(record["name"]).replace(".", "_")
        labels = record.get("labels", {})
        label_text = (
            "{" + ",".join(
                f'{k}="{v}"' for k, v in sorted(labels.items())
            ) + "}"
            if labels else ""
        )
        if record.get("type") == "histogram":
            for field in ("count", "sum", "min", "max", "mean"):
                lines.append(f"{name}_{field}{label_text} {record[field]}")
        else:
            lines.append(f"{name}{label_text} {record['value']}")
    return "\n".join(lines) + "\n"
