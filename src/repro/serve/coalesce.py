"""Request coalescing and the bounded response LRU.

Two layers stand between an incoming request and an estimator
evaluation, both keyed on the request's canonical fingerprint (prefixed
with the live snapshot generation, so answers from different estimator
generations can never alias):

* the **response LRU** — a bounded ``OrderedDict`` of finished response
  documents. A hit costs a dict move-to-end; the evaluation lane is
  never touched.
* the **in-flight map** — fingerprint -> ``asyncio.Future`` for
  evaluations currently running. Concurrent identical requests attach to
  the first one's future instead of evaluating again: a burst of N
  identical queries performs exactly one evaluation, and N-1 awaits.

Failures are never cached: an evaluation that raises propagates the
exception to every coalesced waiter and leaves no entry behind, so the
next request retries cleanly.

The cache is single-loop state — every touch happens on the event-loop
thread — so it needs no lock; the evaluation itself runs in the server's
one-worker executor lane (see :mod:`repro.serve.app`).
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from typing import Any, Awaitable, Callable, Dict, Optional

from repro.obs.metrics import MetricsRegistry, default_registry

__all__ = ["CoalescingCache"]


class CoalescingCache:
    """Bounded response LRU + in-flight future map (event-loop local)."""

    def __init__(
        self,
        maxsize: int = 1024,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        if maxsize < 1:
            raise ValueError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = maxsize
        self._lru: "OrderedDict[str, Any]" = OrderedDict()
        self._inflight: Dict[str, "asyncio.Future[Any]"] = {}
        self._registry = registry if registry is not None else default_registry()

    # -- introspection ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._lru)

    @property
    def inflight(self) -> int:
        return len(self._inflight)

    def stats(self) -> Dict[str, int]:
        return {"entries": len(self._lru), "inflight": len(self._inflight),
                "maxsize": self.maxsize}

    # -- the request path ------------------------------------------------
    async def get_or_compute(
        self, key: str, compute: Callable[[], Awaitable[Any]]
    ) -> Any:
        """The response for ``key``: cached, coalesced, or computed once.

        ``compute`` is only awaited by the *first* caller for a key;
        everyone else either reads the LRU or awaits the first caller's
        future. The winner inserts the result into the LRU (evicting the
        least-recently-used entry past ``maxsize``) before resolving the
        future, so a waiter never observes a missing cache entry for a
        key it just coalesced on.
        """
        cached = self._lru.get(key)
        if cached is not None or key in self._lru:
            self._lru.move_to_end(key)
            self._registry.counter("serve.cache", outcome="hit").inc()
            return self._lru[key]
        pending = self._inflight.get(key)
        if pending is not None:
            self._registry.counter("serve.coalesced").inc()
            return await asyncio.shield(pending)
        self._registry.counter("serve.cache", outcome="miss").inc()
        future: "asyncio.Future[Any]" = asyncio.get_running_loop().create_future()
        self._inflight[key] = future
        try:
            value = await compute()
        except BaseException as exc:
            self._inflight.pop(key, None)
            if not future.done():
                future.set_exception(exc)
                # Waiters (if any) re-raise from the future; touching the
                # exception here keeps "exception never retrieved" noise
                # out of the logs when nobody coalesced.
                future.exception()
            raise
        self._inflight.pop(key, None)
        self._insert(key, value)
        if not future.done():
            future.set_result(value)
        return value

    def _insert(self, key: str, value: Any) -> None:
        self._lru[key] = value
        self._lru.move_to_end(key)
        while len(self._lru) > self.maxsize:
            self._lru.popitem(last=False)

    def clear(self) -> int:
        """Drop every cached response (hot swap); in-flight entries are
        left to finish — they were keyed under the old generation and can
        no longer be joined by new requests."""
        dropped = len(self._lru)
        self._lru.clear()
        return dropped
