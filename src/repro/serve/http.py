"""A minimal asyncio HTTP/1.1 server for the ASGI serving app.

The repo takes no web-framework dependency; this module speaks just
enough HTTP/1.1 to serve :class:`repro.serve.app.ServeApp` — request
line, headers, ``Content-Length`` bodies, and keep-alive — on stdlib
``asyncio.start_server``. Anything fancier (chunked uploads, TLS,
HTTP/2) belongs to a real ASGI server, which the app object also runs
under unchanged.

Signals (Unix): ``SIGHUP`` triggers a zero-downtime snapshot reload,
``SIGTERM``/``SIGINT`` stop accepting connections, let in-flight
requests finish, and return from :func:`serve_forever`.
"""

from __future__ import annotations

import asyncio
import signal
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.serve.app import ServeApp

__all__ = ["HttpServer", "serve_forever"]

#: Guard rails for untrusted peers; generous for this API's tiny requests.
MAX_REQUEST_LINE = 8192
MAX_HEADER_BYTES = 32768
MAX_BODY_BYTES = 1 << 20
#: Idle keep-alive timeout between requests on one connection.
KEEPALIVE_TIMEOUT_S = 30.0

_REASONS = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 422: "Unprocessable Entity",
    431: "Request Header Fields Too Large", 500: "Internal Server Error",
    505: "HTTP Version Not Supported",
}


class _BadRequest(Exception):
    """Malformed HTTP framing; carries the status to answer with."""

    def __init__(self, status: int, detail: str) -> None:
        self.status = status
        self.detail = detail
        super().__init__(detail)


class HttpServer:
    """One listening socket bridging HTTP/1.1 connections to the app."""

    def __init__(self, app: ServeApp, host: str = "127.0.0.1", port: int = 8100) -> None:
        self.app = app
        self.host = host
        self.port = port
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping: Optional[asyncio.Event] = None

    @property
    def bound_port(self) -> int:
        """The actual port (resolves ``port=0`` ephemeral binds)."""
        if self._server is None or not self._server.sockets:
            return self.port
        return int(self._server.sockets[0].getsockname()[1])

    async def start(self) -> None:
        self._stopping = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.host, port=self.port
        )

    def request_stop(self) -> None:
        if self._stopping is not None:
            self._stopping.set()

    async def run_until_stopped(self) -> None:
        if self._server is None or self._stopping is None:
            raise RuntimeError("HttpServer.start() was never awaited")
        await self._stopping.wait()
        self._server.close()
        await self._server.wait_closed()

    # -- one connection --------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await asyncio.wait_for(
                        _read_request(reader), timeout=KEEPALIVE_TIMEOUT_S
                    )
                except asyncio.TimeoutError:
                    break
                if request is None:  # peer closed between requests
                    break
                keep_alive = await self._respond(writer, request)
                if not keep_alive:
                    break
        except _BadRequest as exc:
            await _write_error(writer, exc.status, exc.detail)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, writer: asyncio.StreamWriter, request: "_Request"
    ) -> bool:
        scope = {
            "type": "http",
            "asgi": {"version": "3.0", "spec_version": "2.3"},
            "http_version": "1.1",
            "method": request.method,
            "path": request.path,
            "raw_path": request.raw_path.encode("ascii", "replace"),
            "query_string": request.query,
            "headers": request.headers_raw,
            "scheme": "http",
        }
        body_sent = False

        async def receive() -> Dict[str, Any]:
            nonlocal body_sent
            if body_sent:
                return {"type": "http.disconnect"}
            body_sent = True
            return {"type": "http.request", "body": request.body,
                    "more_body": False}

        messages: List[Dict[str, Any]] = []

        async def send(message: Dict[str, Any]) -> None:
            messages.append(message)

        await self.app(scope, receive, send)
        status = 500
        headers: List[Tuple[bytes, bytes]] = []
        body = b""
        for message in messages:
            if message["type"] == "http.response.start":
                status = int(message["status"])
                headers = [
                    (bytes(k), bytes(v)) for k, v in message.get("headers", [])
                ]
            elif message["type"] == "http.response.body":
                body += message.get("body", b"")
        keep_alive = request.keep_alive
        _write_response(writer, status, headers, body, keep_alive)
        await writer.drain()
        return keep_alive


class _Request:
    __slots__ = (
        "method", "path", "raw_path", "query", "headers_raw", "body",
        "keep_alive",
    )

    def __init__(self, method: str, path: str, raw_path: str, query: bytes,
                 headers_raw: List[Tuple[bytes, bytes]], body: bytes,
                 keep_alive: bool) -> None:
        self.method = method
        self.path = path
        self.raw_path = raw_path
        self.query = query
        self.headers_raw = headers_raw
        self.body = body
        self.keep_alive = keep_alive


async def _read_request(reader: asyncio.StreamReader) -> Optional[_Request]:
    try:
        line = await reader.readuntil(b"\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between keep-alive requests
        raise _BadRequest(400, "truncated request line")
    except asyncio.LimitOverrunError:
        raise _BadRequest(400, "request line exceeds stream limit")
    if len(line) > MAX_REQUEST_LINE:
        raise _BadRequest(400, "request line too long")
    parts = line.decode("ascii", "replace").strip().split(" ")
    if len(parts) != 3:
        raise _BadRequest(400, f"malformed request line {line!r}")
    method, target, version = parts
    if version not in ("HTTP/1.1", "HTTP/1.0"):
        raise _BadRequest(505, f"unsupported HTTP version {version!r}")

    headers_raw: List[Tuple[bytes, bytes]] = []
    header_bytes = 0
    while True:
        line = await reader.readuntil(b"\r\n")
        header_bytes += len(line)
        if header_bytes > MAX_HEADER_BYTES:
            raise _BadRequest(431, "request headers too large")
        if line == b"\r\n":
            break
        name, sep, value = line.strip().partition(b":")
        if not sep:
            raise _BadRequest(400, f"malformed header line {line!r}")
        headers_raw.append((name.strip().lower(), value.strip()))

    headers = {k: v for k, v in headers_raw}
    content_length = 0
    if b"content-length" in headers:
        try:
            content_length = int(headers[b"content-length"])
        except ValueError:
            raise _BadRequest(400, "malformed Content-Length")
        if content_length < 0:
            raise _BadRequest(400, "negative Content-Length")
        if content_length > MAX_BODY_BYTES:
            raise _BadRequest(413, f"body exceeds {MAX_BODY_BYTES} bytes")
    if headers.get(b"transfer-encoding", b"").lower() == b"chunked":
        raise _BadRequest(400, "chunked request bodies are not supported")
    body = await reader.readexactly(content_length) if content_length else b""

    if version == "HTTP/1.0":
        keep_alive = headers.get(b"connection", b"").lower() == b"keep-alive"
    else:
        keep_alive = headers.get(b"connection", b"").lower() != b"close"

    path, _, query_text = target.partition("?")
    return _Request(
        method=method.upper(), path=path, raw_path=target,
        query=query_text.encode("ascii", "replace"),
        headers_raw=headers_raw, body=body, keep_alive=keep_alive,
    )


def _write_response(
    writer: asyncio.StreamWriter, status: int,
    headers: List[Tuple[bytes, bytes]], body: bytes, keep_alive: bool,
) -> None:
    reason = _REASONS.get(status, "Unknown")
    lines = [f"HTTP/1.1 {status} {reason}\r\n".encode("ascii")]
    seen = set()
    for name, value in headers:
        seen.add(name.lower())
        lines.append(name + b": " + value + b"\r\n")
    if b"content-length" not in seen:
        lines.append(f"content-length: {len(body)}\r\n".encode("ascii"))
    lines.append(
        b"connection: keep-alive\r\n" if keep_alive else b"connection: close\r\n"
    )
    lines.append(b"\r\n")
    writer.write(b"".join(lines) + body)


async def _write_error(writer: asyncio.StreamWriter, status: int, detail: str) -> None:
    body = (f'{{"error": "{detail}"}}' + "\n").encode("utf-8")
    _write_response(
        writer, status, [(b"content-type", b"application/json")], body,
        keep_alive=False,
    )
    try:
        await writer.drain()
    except (ConnectionError, OSError):
        pass


async def serve_forever(
    app: ServeApp,
    host: str = "127.0.0.1",
    port: int = 8100,
    ready: Optional[Callable[[HttpServer], None]] = None,
    install_signals: bool = True,
) -> None:
    """Run the server until SIGTERM/SIGINT (or ``request_stop()``).

    ``ready`` fires once the socket is bound (the CLI prints the URL;
    tests grab the ephemeral port). ``SIGHUP`` hot-swaps the snapshot in
    place — failures are logged to the span/metrics stream and the old
    generation stays live.
    """
    server = HttpServer(app, host=host, port=port)
    await server.start()
    loop = asyncio.get_running_loop()

    def _reload_done(task: "asyncio.Task[Any]") -> None:
        exc = task.exception()
        if exc is not None:
            app.state.registry.counter("serve.errors").inc()

    def _on_hup() -> None:
        task = loop.create_task(app.state.reload())
        task.add_done_callback(_reload_done)

    installed = []
    if install_signals:
        try:
            loop.add_signal_handler(signal.SIGHUP, _on_hup)
            installed.append(signal.SIGHUP)
            for sig in (signal.SIGTERM, signal.SIGINT):
                loop.add_signal_handler(sig, server.request_stop)
                installed.append(sig)
        except (NotImplementedError, AttributeError, RuntimeError):
            installed = []  # non-Unix or nested loop: run without signals
    if ready is not None:
        ready(server)
    try:
        await server.run_until_stopped()
    finally:
        for sig in installed:
            loop.remove_signal_handler(sig)
