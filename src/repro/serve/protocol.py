"""Request/response schemas of the recommendation service.

Every endpoint takes a flat JSON object and returns a flat JSON object;
this module owns both directions plus the *canonical request
fingerprint* — the coalescing/cache key. Fingerprints reuse the artifact
store's content-addressing (:func:`repro.artifacts.fingerprint.fingerprint`)
so two requests that mean the same thing hash the same regardless of
field order, and so the key space is versioned: bumping a request
schema re-addresses every cached response instead of replaying stale
layouts.

Request parsing is strict: unknown fields, wrong types, and out-of-range
values raise :class:`ProtocolError` (the server answers 400 with the
message) rather than being coerced or ignored — a serving API that
silently drops a typo'd ``"btach": 64`` returns confidently wrong
numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.artifacts.fingerprint import fingerprint
from repro.cloud.pricing import MARKET_RATIO, ON_DEMAND, SPOT, PricingScheme
from repro.core.estimator import TrainingPrediction
from repro.core.recommend import (
    HourlyBudget,
    MinimizeCost,
    MinimizeTime,
    Objective,
    Recommendation,
    TotalBudget,
)
from repro.errors import ServeError
from repro.units import us_to_ms
from repro.workloads.dataset import DatasetSpec, TrainingJob

__all__ = [
    "ParetoRequest",
    "PredictRequest",
    "ProtocolError",
    "RecommendRequest",
    "parse_pareto",
    "parse_predict",
    "parse_recommend",
    "prediction_to_json",
    "recommendation_to_json",
]

#: Schema version folded into every request fingerprint: bump when a
#: request's meaning changes so cached responses self-invalidate.
#: v2: ``/recommend`` grew ``scenario``/``risk_aversion``.
REQUEST_SCHEMA_VERSION = 2

#: Wire names for the pricing tiers.
PRICINGS: Mapping[str, PricingScheme] = {
    "on-demand": ON_DEMAND,
    "spot": SPOT,
    "market": MARKET_RATIO,
}

#: Wire names for the recommendation objectives.
OBJECTIVES: Tuple[str, ...] = (
    "min-cost", "min-time", "hourly-budget", "total-budget",
)

#: Wire names for the recommendation scenarios. ``static`` is the
#: classic fixed-price recommendation; ``spot`` re-ranks against the
#: server's streaming spot-price trace (see ``POST /spot/tick``).
SCENARIOS: Tuple[str, ...] = ("static", "spot")

#: Fields that conflict with ``scenario: "spot"``: the spot scenario
#: fixes the pricing to the live trace and the objective to spot-risk,
#: so an explicit value for any of these is a contradiction the server
#: must reject up front (400), not a late 422.
_SPOT_CONFLICTS: Tuple[str, ...] = ("pricing", "objective", "budget", "slack")

#: Default training workload: one ImageNet epoch (matches the CLI).
DEFAULT_SAMPLES = 1_200_000


class ProtocolError(ServeError):
    """A malformed request body; the server answers 400 with the message."""


def _require_object(body: Any, endpoint: str) -> Dict[str, Any]:
    if not isinstance(body, dict):
        raise ProtocolError(f"{endpoint}: request body must be a JSON object")
    return body


def _reject_unknown(body: Mapping[str, Any], allowed: Tuple[str, ...],
                    endpoint: str) -> None:
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ProtocolError(
            f"{endpoint}: unknown field(s) {unknown}; allowed: "
            f"{sorted(allowed)}"
        )


def _str_field(body: Mapping[str, Any], name: str, endpoint: str,
               default: Optional[str] = None, required: bool = False) -> Optional[str]:
    if name not in body:
        if required:
            raise ProtocolError(f"{endpoint}: missing required field {name!r}")
        return default
    value = body[name]
    if not isinstance(value, str) or not value:
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be a non-empty string, "
            f"got {value!r}"
        )
    return value


def _int_field(body: Mapping[str, Any], name: str, endpoint: str,
               default: int, minimum: int = 1) -> int:
    value = body.get(name, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be an integer, got {value!r}"
        )
    if value < minimum:
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be >= {minimum}, got {value}"
        )
    return value


def _float_field(body: Mapping[str, Any], name: str, endpoint: str,
                 default: Optional[float] = None) -> Optional[float]:
    if name not in body:
        return default
    value = body[name]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(
            f"{endpoint}: field {name!r} must be a number, got {value!r}"
        )
    return float(value)


def _pricing_field(body: Mapping[str, Any], endpoint: str) -> str:
    name = _str_field(body, "pricing", endpoint, default="on-demand")
    assert name is not None
    if name not in PRICINGS:
        raise ProtocolError(
            f"{endpoint}: unknown pricing {name!r}; one of {sorted(PRICINGS)}"
        )
    return name


@dataclass(frozen=True)
class PredictRequest:
    """``POST /predict`` — time/cost of one model on one configuration."""

    model: str
    gpu: str
    gpus: int = 1
    batch: int = 32
    samples: int = DEFAULT_SAMPLES
    epochs: int = 1
    pricing: str = "on-demand"

    ENDPOINT = "predict"

    def spec(self) -> Dict[str, object]:
        """The canonical fingerprint spec: every field that changes the
        answer and nothing else (pure builder — no clocks, no env)."""
        return {
            "endpoint": self.ENDPOINT,
            "model": self.model,
            "gpu": self.gpu,
            "gpus": self.gpus,
            "batch": self.batch,
            "samples": self.samples,
            "epochs": self.epochs,
            "pricing": self.pricing,
        }

    def fingerprint(self) -> str:
        return fingerprint("serve.request", REQUEST_SCHEMA_VERSION, self.spec())

    def job(self) -> TrainingJob:
        dataset = DatasetSpec("serve-dataset", num_samples=self.samples)
        return TrainingJob(dataset, batch_size=self.batch, epochs=self.epochs)

    def pricing_scheme(self) -> PricingScheme:
        return PRICINGS[self.pricing]


@dataclass(frozen=True)
class RecommendRequest:
    """``POST /recommend`` — objective-optimal instance for a model."""

    model: str
    objective: str = "min-cost"
    budget: Optional[float] = None  # staticcheck: ignore[unit-suffix] (USD/hr or USD, set by `objective`)
    slack: float = 0.0
    batch: int = 32
    samples: int = DEFAULT_SAMPLES
    epochs: int = 1
    pricing: str = "on-demand"
    scenario: str = "static"
    risk_aversion: float = 0.0  # staticcheck: ignore[unit-suffix] (USD per expected hour; wire name)

    ENDPOINT = "recommend"

    def spec(self) -> Dict[str, object]:
        return {
            "endpoint": self.ENDPOINT,
            "model": self.model,
            "objective": self.objective,
            "budget": self.budget,
            "slack": self.slack,
            "batch": self.batch,
            "samples": self.samples,
            "epochs": self.epochs,
            "pricing": self.pricing,
            "scenario": self.scenario,
            "risk_aversion": self.risk_aversion,
        }

    def fingerprint(self) -> str:
        return fingerprint("serve.request", REQUEST_SCHEMA_VERSION, self.spec())

    def job(self) -> TrainingJob:
        dataset = DatasetSpec("serve-dataset", num_samples=self.samples)
        return TrainingJob(dataset, batch_size=self.batch, epochs=self.epochs)

    def pricing_scheme(self) -> PricingScheme:
        return PRICINGS[self.pricing]

    def objective_instance(self) -> Objective:
        if self.objective == "min-cost":
            return MinimizeCost()
        if self.objective == "min-time":
            return MinimizeTime()
        if self.objective == "hourly-budget":
            assert self.budget is not None  # enforced at parse time
            return HourlyBudget(
                budget_usd_per_hr=self.budget, slack_usd_per_hr=self.slack
            )
        assert self.budget is not None  # enforced at parse time
        return TotalBudget(budget_dollars=self.budget)


@dataclass(frozen=True)
class ParetoRequest:
    """``POST /pareto`` — the full-catalog time/cost frontier."""

    model: str
    batches: Tuple[int, ...] = (32,)
    samples: int = DEFAULT_SAMPLES
    epochs: int = 1
    pricing: str = "on-demand"

    ENDPOINT = "pareto"

    def spec(self) -> Dict[str, object]:
        return {
            "endpoint": self.ENDPOINT,
            "model": self.model,
            "batches": list(self.batches),
            "samples": self.samples,
            "epochs": self.epochs,
            "pricing": self.pricing,
        }

    def fingerprint(self) -> str:
        return fingerprint("serve.request", REQUEST_SCHEMA_VERSION, self.spec())

    def job(self) -> TrainingJob:
        dataset = DatasetSpec("serve-dataset", num_samples=self.samples)
        return TrainingJob(
            dataset, batch_size=self.batches[0], epochs=self.epochs
        )

    def pricing_scheme(self) -> PricingScheme:
        return PRICINGS[self.pricing]


def parse_predict(body: Any) -> PredictRequest:
    endpoint = "predict"
    obj = _require_object(body, endpoint)
    _reject_unknown(
        obj,
        ("model", "gpu", "gpus", "batch", "samples", "epochs", "pricing"),
        endpoint,
    )
    model = _str_field(obj, "model", endpoint, required=True)
    gpu = _str_field(obj, "gpu", endpoint, required=True)
    assert model is not None and gpu is not None
    return PredictRequest(
        model=model,
        gpu=gpu,
        gpus=_int_field(obj, "gpus", endpoint, default=1),
        batch=_int_field(obj, "batch", endpoint, default=32),
        samples=_int_field(obj, "samples", endpoint, default=DEFAULT_SAMPLES),
        epochs=_int_field(obj, "epochs", endpoint, default=1),
        pricing=_pricing_field(obj, endpoint),
    )


def parse_recommend(body: Any) -> RecommendRequest:
    endpoint = "recommend"
    obj = _require_object(body, endpoint)
    _reject_unknown(
        obj,
        ("model", "objective", "budget", "slack", "batch", "samples",
         "epochs", "pricing", "scenario", "risk_aversion"),
        endpoint,
    )
    model = _str_field(obj, "model", endpoint, required=True)
    assert model is not None
    scenario = _str_field(obj, "scenario", endpoint, default="static")
    assert scenario is not None
    if scenario not in SCENARIOS:
        raise ProtocolError(
            f"{endpoint}: unknown scenario {scenario!r}; one of "
            f"{sorted(SCENARIOS)}"
        )
    if scenario == "spot":
        conflicts = sorted(set(obj) & set(_SPOT_CONFLICTS))
        if conflicts:
            raise ProtocolError(
                f"{endpoint}: field(s) {conflicts} conflict with scenario "
                f"'spot' — spot recommendations price against the live "
                f"trace under the 'spot-risk' objective"
            )
    elif "risk_aversion" in obj:
        raise ProtocolError(
            f"{endpoint}: field 'risk_aversion' requires scenario 'spot'"
        )
    risk_aversion = _float_field(obj, "risk_aversion", endpoint, default=0.0)  # staticcheck: ignore[unit-suffix] (wire name)
    assert risk_aversion is not None
    if risk_aversion < 0:
        raise ProtocolError(
            f"{endpoint}: field 'risk_aversion' must be >= 0, "
            f"got {risk_aversion}"
        )
    objective = _str_field(obj, "objective", endpoint, default="min-cost")
    assert objective is not None
    if objective not in OBJECTIVES:
        raise ProtocolError(
            f"{endpoint}: unknown objective {objective!r}; one of "
            f"{sorted(OBJECTIVES)}"
        )
    budget = _float_field(obj, "budget", endpoint)  # staticcheck: ignore[unit-suffix] (unit depends on objective)
    slack = _float_field(obj, "slack", endpoint, default=0.0)
    assert slack is not None
    if objective in ("hourly-budget", "total-budget") and budget is None:
        raise ProtocolError(
            f"{endpoint}: objective {objective!r} requires a 'budget' field"
        )
    return RecommendRequest(
        model=model,
        objective=objective,
        budget=budget,
        slack=slack,
        batch=_int_field(obj, "batch", endpoint, default=32),
        samples=_int_field(obj, "samples", endpoint, default=DEFAULT_SAMPLES),
        epochs=_int_field(obj, "epochs", endpoint, default=1),
        pricing=_pricing_field(obj, endpoint),
        scenario=scenario,
        risk_aversion=risk_aversion,
    )


def parse_pareto(body: Any) -> ParetoRequest:
    endpoint = "pareto"
    obj = _require_object(body, endpoint)
    _reject_unknown(
        obj, ("model", "batches", "samples", "epochs", "pricing"), endpoint
    )
    model = _str_field(obj, "model", endpoint, required=True)
    assert model is not None
    raw_batches = obj.get("batches", [32])
    if not isinstance(raw_batches, list) or not raw_batches or any(
        isinstance(b, bool) or not isinstance(b, int) or b < 1
        for b in raw_batches
    ):
        raise ProtocolError(
            f"{endpoint}: field 'batches' must be a non-empty list of "
            f"integers >= 1, got {raw_batches!r}"
        )
    if len(set(raw_batches)) != len(raw_batches):
        raise ProtocolError(f"{endpoint}: field 'batches' contains duplicates")
    return ParetoRequest(
        model=model,
        batches=tuple(raw_batches),
        samples=_int_field(obj, "samples", endpoint, default=DEFAULT_SAMPLES),
        epochs=_int_field(obj, "epochs", endpoint, default=1),
        pricing=_pricing_field(obj, endpoint),
    )


# -- responses ----------------------------------------------------------
def prediction_to_json(p: TrainingPrediction) -> Dict[str, object]:
    """One candidate prediction as a flat JSON object."""
    doc: Dict[str, object] = {
        "model": p.model,
        "gpu": p.gpu_key,
        "gpus": p.num_gpus,
        "instance": p.instance_name,
        "usd_per_hr": p.usd_per_hr,
        "batch": p.batch_size,
        "per_iteration_ms": us_to_ms(p.per_iteration_us),
        "compute_ms": us_to_ms(p.compute_us_per_iteration),
        "comm_ms": us_to_ms(p.comm_overhead_us),
        "iterations": p.iterations,
        "total_hours": p.total_hours,
        "cost_usd": p.cost_dollars,
    }
    if p.compute_std_us > 0:
        doc["total_hours_std"] = p.total_std_hours
        doc["cost_usd_std"] = p.cost_std_dollars
    if p.hazard_per_hr > 0 or p.preempt_overhead_iterations > 0:
        # Preemption-aware expectations: only spot-scenario predictions
        # carry them, so static responses stay byte-identical to v1.
        doc["hazard_per_hr"] = p.hazard_per_hr
        doc["expected_makespan_hours"] = p.expected_makespan_hours
        doc["expected_cost_usd"] = p.expected_cost_usd
    return doc


def recommendation_to_json(r: Recommendation) -> Dict[str, object]:
    """A recommendation: the winner plus up to three runners-up."""
    runners_up: List[Dict[str, object]] = [
        prediction_to_json(p) for p in r.ranked[1:4]
    ]
    return {
        "objective": r.objective,
        "best": prediction_to_json(r.best),
        "runners_up": runners_up,
        "n_feasible": len(r.ranked),
        "n_infeasible": len(r.infeasible),
    }
