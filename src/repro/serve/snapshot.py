"""Immutable serving snapshots and the atomic hot-swap holder.

A :class:`ServingSnapshot` is everything one generation of the service
needs to answer queries: a read-only view of a fitted estimator
(:class:`~repro.core.view.ReadOnlyEstimator`), warmed caches, and a memo
of :class:`~repro.core.batch.SweepPlan` objects so repeated ``pareto``
queries reuse one resolved price grid. Snapshots are never mutated after
construction — a new fit becomes a *new* snapshot.

:class:`SnapshotHolder` is the swap point. ``current`` is a single
attribute read (atomic under the GIL), ``swap()`` a single attribute
write plus a generation bump: a request that captured the old snapshot
finishes entirely on the old estimator, a request arriving after the
write runs entirely on the new one, and no request ever sees a mix —
the zero-downtime reload contract ``POST /admin/reload`` and ``SIGHUP``
rely on.
"""

from __future__ import annotations

import threading
import time
from typing import Dict, Optional, Sequence, Tuple

from repro.core.persistence import load_estimator
from repro.core.view import ReadOnlyEstimator, WarmReport
from repro.errors import ServeError
from repro.obs.spans import span

__all__ = ["ServingSnapshot", "SnapshotHolder", "load_snapshot"]


class ServingSnapshot:
    """One immutable generation of the service's prediction state."""

    __slots__ = (
        "generation", "source", "backend", "estimator", "warm_report",
        "loaded_at_s", "_plans", "_spot_sessions",
    )

    def __init__(
        self,
        generation: int,
        source: str,
        estimator: ReadOnlyEstimator,
        warm_report: Optional[WarmReport],
        loaded_at_s: float,
    ) -> None:
        self.generation = generation
        self.source = source
        self.backend = getattr(
            estimator.compute_models, "backend", "per_gpu"
        )
        self.estimator = estimator
        self.warm_report = warm_report
        self.loaded_at_s = loaded_at_s
        #: (batches, pricing name) -> SweepPlan; reusing a plan reuses its
        #: memoized (P, G, K) price grid across pareto queries.
        self._plans: Dict[Tuple[Tuple[int, ...], str], object] = {}
        #: (model, batch, samples, epochs) -> SpotRerankSession; the
        #: expensive base sweep runs once per workload, then every price
        #: tick re-ranks it in O(candidates). Only ever touched from the
        #: single evaluation lane, like ``_plans``.
        self._spot_sessions: Dict[Tuple[str, int, int, int], object] = {}

    def plan_for(self, batches: Tuple[int, ...], pricing_name: str,
                 pricing: object) -> object:
        """A shared full-catalog plan for one (batches, pricing) shape."""
        key = (batches, pricing_name)
        plan = self._plans.get(key)
        if plan is None:
            from repro.core.batch import SweepPlan

            plan = SweepPlan.full_catalog(
                batch_sizes=batches, pricings=(pricing,)
            )
            self._plans[key] = plan
        return plan

    def spot_session_for(self, model: str, batch: int, samples: int,
                         epochs: int) -> object:
        """A shared spot re-rank session for one workload shape.

        The base On-Demand sweep (graph compile + stacked matmuls +
        catalog resolution) is the tick-independent part; caching it on
        the snapshot makes every subsequent tick a pure tensor re-scale.
        A hot swap naturally drops the memo with the snapshot.
        """
        key = (model, batch, samples, epochs)
        session = self._spot_sessions.get(key)
        if session is None:
            from repro.core.rerank import SpotRerankSession
            from repro.workloads.dataset import DatasetSpec, TrainingJob

            job = TrainingJob(
                DatasetSpec("serve-dataset", num_samples=samples),
                batch_size=batch, epochs=epochs,
            )
            session = SpotRerankSession.from_estimator(
                self.estimator, model, job, batch_sizes=(batch,)
            )
            self._spot_sessions[key] = session
        return session

    def to_json(self) -> Dict[str, object]:
        doc: Dict[str, object] = {
            "generation": self.generation,
            "source": self.source,
            "backend": self.backend,
        }
        if self.warm_report is not None:
            doc["warmed"] = self.warm_report.to_json()
        return doc


def load_snapshot(
    path: str,
    generation: int,
    warm: bool = True,
    models: Optional[Sequence[str]] = None,
    batch_sizes: Sequence[int] = (32,),
) -> ServingSnapshot:
    """Load a fitted estimator from disk and (optionally) warm it.

    Raises :class:`~repro.errors.ServeError` when the file is missing or
    unreadable — the caller (startup, or a reload handler that must keep
    the old snapshot live) turns that into a clean failure.
    """
    try:
        estimator = load_estimator(path)
    except Exception as exc:
        raise ServeError(
            f"cannot load estimator snapshot from {path!r}: {exc}"
        ) from exc
    view = ReadOnlyEstimator(estimator)
    warm_report = None
    if warm:
        with span("serve.warm", generation=generation):
            warm_report = view.warm(models=models, batch_sizes=batch_sizes)
    loaded_at_s = time.time()  # staticcheck: ignore[determinism] — serving metadata, not a model path
    return ServingSnapshot(
        generation=generation,
        source=path,
        estimator=view,
        warm_report=warm_report,
        loaded_at_s=loaded_at_s,
    )


class SnapshotHolder:
    """The atomic pointer the request path reads its snapshot through."""

    def __init__(self, initial: ServingSnapshot) -> None:
        self._lock = threading.Lock()
        self._current = initial

    @property
    def current(self) -> ServingSnapshot:
        """The live snapshot; one attribute read, safe from any thread."""
        return self._current

    @property
    def generation(self) -> int:
        return self._current.generation

    def swap(self, snapshot: ServingSnapshot) -> ServingSnapshot:
        """Install ``snapshot`` as the live generation; returns the old one.

        The lock only serialises concurrent *swappers* (two admin reloads
        racing); readers never take it — they see either the old or the
        new pointer, which is exactly the consistency the service
        promises.
        """
        with self._lock:
            if snapshot.generation <= self._current.generation:
                raise ServeError(
                    f"stale snapshot swap: generation {snapshot.generation} "
                    f"is not newer than live generation "
                    f"{self._current.generation}"
                )
            old = self._current
            self._current = snapshot
            return old
