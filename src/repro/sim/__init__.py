"""Execution simulator: per-op traces, data-parallel sync, training runs."""

from repro.sim.dataparallel import (
    comm_overhead_base_us,
    k_factor,
    sample_comm_overhead_us,
    straggler_sigma,
)
from repro.sim.executor import run_iterations
from repro.sim.trace import IterationProfile, OpTiming, TrainingMeasurement
from repro.sim.trainer import measure_training

__all__ = [
    "run_iterations",
    "measure_training",
    "OpTiming",
    "IterationProfile",
    "TrainingMeasurement",
    "comm_overhead_base_us",
    "sample_comm_overhead_us",
    "k_factor",
    "straggler_sigma",
]
