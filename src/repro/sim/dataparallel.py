"""Ground-truth communication/synchronisation model for data parallelism.

The paper's Section III-D observes that data-parallel training scales
sub-linearly: going 1 -> 2 -> 3 -> 4 GPUs cuts Inception-v1's training time
by ~35.8%, ~46.6%, ~53.6% (not 50/67/75%) because every iteration pays a
synchronisation phase; Section IV-C (Fig. 7) shows that for a fixed GPU
model and GPU count the overhead is *nearly linear in the number of model
parameters*.

Our ground-truth law has the two components those findings imply::

    S(gpu, k, P) = comm_base_us * H(k)                  # fixed sync cost
                 + comm_us_per_mparam * G(k) * P_eff    # parameter traffic

* The **fixed part** (kernel-launch storms, barrier waits, input-batch
  staging) grows steeply with k and dominates for small models — it is
  what makes the 7M-parameter Inception-v1 of Fig. 6 scale sub-linearly.
* The **parameter part** is linear in the (effective) parameter count —
  the Fig. 7 relationship Ceer regresses on. ``P_eff`` adds a small
  per-weight-tensor cost (each variable is a separate transfer launch), the
  model-specific deviation that keeps Fig. 7's regressions at R² 0.88-0.98
  rather than exactly 1.

Noise is lognormal with a sigma that grows with k (straggler effects: the
sync phase ends when the *slowest* GPU reports). For k = 1 the law reduces
to host<->GPU transfer overhead, which the paper shows must not be ignored
even on single-GPU instances (Section IV-A: ~30% error for AlexNet).

As with the kernel model, Ceer never sees this law — it regresses observed
overheads against parameter counts (Section IV-C), and its fitted
coefficients need not match these constants.
"""

from __future__ import annotations

import numpy as np

from repro.errors import HardwareError
from repro.hardware.gpus import gpu_spec
from repro.hardware.noise import rng_for

#: Growth of the fixed sync cost with GPU count (calibrated to Fig. 6).
_H_FACTORS = {1: 1.0, 2: 5.0, 3: 9.5, 4: 13.5}
_H_SLOPE_BEYOND_4 = 4.0

#: Growth of the per-parameter traffic with GPU count (ring-allreduce-like:
#: roughly proportional to exchanged volume).
_G_FACTORS = {1: 1.0, 2: 2.0, 3: 3.0, 4: 4.0}
_G_SLOPE_BEYOND_4 = 1.0

#: Per-weight-tensor synchronisation cost in "equivalent million
#: parameters" (see module docstring).
_MPARAM_EQUIVALENT_PER_VARIABLE = 1.0 / 55.0

#: GPU placements. The paper's experiments keep all GPUs on one host and
#: note (Section VI) that "with GPUs spread across hosts, the communication
#: model of Ceer will have to be retrained" — we implement that extension:
#: under ``"multi-host"`` the k>1 share of the sync cost crosses a
#: datacenter network instead of PCIe/NVLink, inflating both components.
#: The k=1 cost is placement-independent (no cross-host traffic).
PLACEMENTS = ("single-host", "multi-host")
_MULTIHOST_FIXED_FACTOR = 2.2
_MULTIHOST_PARAM_FACTOR = 3.5


def _placement_factors(placement: str):
    if placement == "single-host":
        return 1.0, 1.0
    if placement == "multi-host":
        return _MULTIHOST_FIXED_FACTOR, _MULTIHOST_PARAM_FACTOR
    raise HardwareError(
        f"unknown placement {placement!r}; expected one of {PLACEMENTS}"
    )


def h_factor(num_gpus: int) -> float:
    """Fixed-sync-cost multiplier for a GPU count."""
    if num_gpus < 1:
        raise HardwareError(f"num_gpus must be >= 1, got {num_gpus}")
    if num_gpus in _H_FACTORS:
        return _H_FACTORS[num_gpus]
    return _H_FACTORS[4] + _H_SLOPE_BEYOND_4 * (num_gpus - 4)


def k_factor(num_gpus: int) -> float:
    """Per-parameter traffic multiplier for a GPU count."""
    if num_gpus < 1:
        raise HardwareError(f"num_gpus must be >= 1, got {num_gpus}")
    if num_gpus in _G_FACTORS:
        return _G_FACTORS[num_gpus]
    return _G_FACTORS[4] + _G_SLOPE_BEYOND_4 * (num_gpus - 4)


def straggler_sigma(num_gpus: int) -> float:
    """Noise sigma of the sync phase; grows with the number of GPUs."""
    return 0.06 + 0.02 * (num_gpus - 1)


def comm_overhead_base_us(
    gpu_key: str,
    num_gpus: int,
    num_parameters: int,
    num_variables: int = 0,
    placement: str = "single-host",
) -> float:
    """Deterministic per-iteration communication overhead, microseconds.

    The k=1 overhead (host<->GPU transfers) is placement-independent; the
    k>1 growth is scaled by the placement factors when GPUs span hosts.
    """
    spec = gpu_spec(gpu_key)
    fixed_factor, param_factor = _placement_factors(placement)
    fixed = spec.comm_base_us * (1.0 + (h_factor(num_gpus) - 1.0) * fixed_factor)
    effective_mparams = (
        num_parameters / 1e6 + num_variables * _MPARAM_EQUIVALENT_PER_VARIABLE
    )
    per_param = spec.comm_us_per_mparam * effective_mparams * (
        1.0 + (k_factor(num_gpus) - 1.0) * param_factor
    )
    return fixed + per_param


def sample_comm_overhead_us(
    gpu_key: str,
    num_gpus: int,
    num_parameters: int,
    n_samples: int,
    seed_context: str = "",
    num_variables: int = 0,
    placement: str = "single-host",
) -> np.ndarray:
    """Simulated measured sync overheads for ``n_samples`` iterations."""
    base = comm_overhead_base_us(
        gpu_key, num_gpus, num_parameters, num_variables, placement
    )
    sigma = straggler_sigma(num_gpus)
    if placement == "multi-host" and num_gpus > 1:
        sigma += 0.04  # network jitter on top of straggler noise
    rng = rng_for(
        "comm", gpu_spec(gpu_key).key, num_gpus, num_parameters,
        placement, seed_context,
    )
    return base * np.exp(sigma * rng.standard_normal(n_samples))
