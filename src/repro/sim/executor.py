"""Single-device execution simulator.

"Runs" N training iterations of an op graph on one simulated device and
returns per-op timing statistics — the equivalent of profiling a TensorFlow
training loop with the timeline profiler, which is how the paper gathers
its measurements (Section III: "compute times ... averaged over 1,000
iterations").

The simulation is vectorised per op: one RNG draw of N samples per
operation, so profiling a 2,500-op graph for 1,000 iterations costs a few
thousand numpy calls, not millions of Python-level events.
"""

from __future__ import annotations

from repro.errors import ProfilingError
from repro.graph.graph import OpGraph
from repro.hardware.kernel_model import sample_op_times_us
from repro.sim.trace import IterationProfile, OpTiming


def run_iterations(
    graph: OpGraph,
    gpu_key: str,
    n_iterations: int = 1000,
    seed_context: str = "",
) -> IterationProfile:
    """Simulate ``n_iterations`` training iterations of ``graph`` on a device.

    Args:
        graph: a finalized training op-graph (forward + backward + updates).
        gpu_key: GPU model key (``"V100"``) or AWS family (``"P3"``).
        n_iterations: how many iterations to measure; the paper uses 1,000.
        seed_context: extra seeding context; vary it to simulate an
            independent re-run of the same configuration.

    Returns:
        An :class:`IterationProfile` with one :class:`OpTiming` per op.
    """
    if n_iterations < 2:
        raise ProfilingError(
            f"need >= 2 iterations for timing statistics, got {n_iterations}"
        )
    from repro.hardware.gpus import gpu_spec

    key = gpu_spec(gpu_key).key  # normalise "P3" -> "V100" for stable seeds
    timings = []
    for op in graph.operations:
        samples = sample_op_times_us(op, key, n_iterations, seed_context)
        timings.append(OpTiming.from_samples(op, key, samples))
    return IterationProfile(
        model=graph.name,
        gpu_key=key,
        batch_size=graph.batch_size,
        n_iterations=n_iterations,
        num_parameters=graph.num_parameters,
        timings=tuple(timings),
    )
