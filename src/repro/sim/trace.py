"""Timing records produced by the execution simulator.

These mirror what TensorFlow's profiler emits on real hardware: per-op
compute-time statistics over many training iterations, plus aggregate
per-iteration and whole-training measurements. Everything downstream of the
simulation boundary (profiling, Ceer, experiments) consumes these records.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.graph.ops import Device, Operation
from repro.units import us_to_hr, usd_per_hr_to_usd


@dataclass(frozen=True)
class OpTiming:
    """Compute-time statistics for one operation over N iterations.

    All times are microseconds. ``normalized_std`` (std/mean) is the
    variability metric of the paper's Fig. 5.
    """

    op_name: str
    op_type: str
    device: str  # "GPU" or "CPU"
    gpu_key: str
    input_bytes: int
    output_bytes: int
    n_samples: int
    mean_us: float
    std_us: float
    median_us: float
    min_us: float
    max_us: float

    @classmethod
    def from_samples(
        cls, op: Operation, gpu_key: str, samples: np.ndarray
    ) -> "OpTiming":
        return cls(
            op_name=op.name,
            op_type=op.op_type,
            device=op.device.value,
            gpu_key=gpu_key,
            input_bytes=op.input_bytes,
            output_bytes=op.output_bytes,
            n_samples=int(samples.size),
            mean_us=float(samples.mean()),
            std_us=float(samples.std(ddof=1)) if samples.size > 1 else 0.0,
            median_us=float(np.median(samples)),
            min_us=float(samples.min()),
            max_us=float(samples.max()),
        )

    @property
    def normalized_std(self) -> float:
        """Standard deviation normalised by the mean (paper, Fig. 5)."""
        return self.std_us / self.mean_us if self.mean_us > 0 else 0.0


@dataclass(frozen=True)
class IterationProfile:
    """Per-op timings for one model on one device over N iterations."""

    model: str
    gpu_key: str
    batch_size: int
    n_iterations: int
    num_parameters: int
    timings: Tuple[OpTiming, ...]

    @property
    def gpu_compute_us(self) -> float:
        """Mean per-iteration GPU compute time (sum of GPU-op means)."""
        return sum(t.mean_us for t in self.timings if t.device == Device.GPU.value)

    @property
    def cpu_compute_us(self) -> float:
        """Mean per-iteration host compute time (sum of CPU-op means)."""
        return sum(t.mean_us for t in self.timings if t.device == Device.CPU.value)

    @property
    def compute_us(self) -> float:
        """Mean per-iteration compute time across all operations."""
        return self.gpu_compute_us + self.cpu_compute_us


@dataclass(frozen=True)
class TrainingMeasurement:
    """An end-to-end "observed" training run on a (possibly multi-GPU) instance.

    Produced by :func:`repro.sim.trainer.measure_training`; this is the
    ground-truth side of every paper evaluation figure (the "observed" bars
    in Figs. 8-12).
    """

    model: str
    gpu_key: str
    num_gpus: int
    instance_name: str
    usd_per_hr: float
    batch_size: int
    compute_us_per_iteration: float
    comm_overhead_us: float
    iterations: float

    @property
    def per_iteration_us(self) -> float:
        """Mean wall-clock time of one training iteration (compute + comm)."""
        return self.compute_us_per_iteration + self.comm_overhead_us

    @property
    def total_us(self) -> float:
        return self.per_iteration_us * self.iterations

    @property
    def total_hours(self) -> float:
        return us_to_hr(self.total_us)

    @property
    def cost_dollars(self) -> float:
        """Rental cost of the run (paper: C = T x instance hourly cost)."""
        return usd_per_hr_to_usd(self.usd_per_hr, self.total_hours)
