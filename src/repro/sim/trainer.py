"""End-to-end simulated training runs ("observed" ground truth).

:func:`measure_training` plays the role of actually renting the AWS
instance and training the model: it simulates per-op compute for the
requested number of profile iterations, adds the data-parallel
communication overhead, scales to the full workload, and prices the run.
Every "observed" bar/dot in the paper's evaluation figures (Figs. 6, 8-12)
comes from this function in our reproduction.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.cloud.catalog import InstanceType
from repro.cloud.pricing import ON_DEMAND, PricingScheme
from repro.graph.graph import OpGraph
from repro.models.zoo import build_model
from repro.sim.dataparallel import sample_comm_overhead_us
from repro.sim.executor import run_iterations
from repro.sim.trace import TrainingMeasurement
from repro.workloads.dataset import TrainingJob


def measure_training(
    model: Union[str, OpGraph],
    gpu_key: str,
    num_gpus: int,
    job: TrainingJob,
    pricing: PricingScheme = ON_DEMAND,
    n_profile_iterations: int = 300,
    seed_context: str = "",
    instance: Optional[InstanceType] = None,
    placement: str = "single-host",
) -> TrainingMeasurement:
    """Simulate training ``model`` on ``num_gpus`` GPUs of type ``gpu_key``.

    Under data parallelism each GPU holds a full model replica and processes
    ``job.batch_size`` samples per iteration, so per-GPU compute time equals
    the single-GPU profile at the same batch size, and each iteration adds
    the synchronisation overhead (paper, Sections III-D and IV-A).

    Args:
        model: zoo model name or an already-built graph (its batch size
            should match ``job.batch_size``).
        gpu_key: GPU model key or AWS family name.
        num_gpus: GPUs used in parallel (k in the paper's Eq. (2)).
        job: workload (dataset size D, per-GPU batch size B, epochs).
        pricing: pricing scheme used to rent the instance.
        n_profile_iterations: iterations to average compute times over.
        seed_context: vary to simulate an independent run.
        instance: override the instance (for custom price points); defaults
            to ``pricing.instance(gpu_key, num_gpus)``.
        placement: ``"single-host"`` (the paper's setting) or
            ``"multi-host"`` (GPUs spread across hosts; Section VI).

    Returns:
        A :class:`TrainingMeasurement` with observed time and cost.
    """
    graph = build_model(model, batch_size=job.batch_size) if isinstance(model, str) else model
    profile = run_iterations(graph, gpu_key, n_profile_iterations, seed_context)
    comm = sample_comm_overhead_us(
        gpu_key, num_gpus, graph.num_parameters, n_profile_iterations,
        seed_context, num_variables=graph.num_variables, placement=placement,
    )
    if instance is None:
        instance = pricing.instance(gpu_key, num_gpus)
    return TrainingMeasurement(
        model=graph.name,
        gpu_key=profile.gpu_key,
        num_gpus=num_gpus,
        instance_name=instance.name,
        usd_per_hr=instance.usd_per_hr,
        batch_size=job.batch_size,
        compute_us_per_iteration=profile.compute_us,
        comm_overhead_us=float(comm.mean()),
        iterations=job.iterations(num_gpus),
    )
