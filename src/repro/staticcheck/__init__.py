"""repro.staticcheck: custom static analysis for the Ceer reproduction.

Unit-safety lints (suffix discipline, mixed-unit arithmetic, bare
conversion literals), an engine-routing lint, a determinism lint, and a
semantic graph-contract checker — all driven by ``tools/check.py`` and
enforced in CI. See DESIGN.md's "Static analysis" section for the rule
catalogue and the baseline workflow.
"""

from repro.staticcheck.baseline import Baseline, load_baseline, write_baseline
from repro.staticcheck.findings import Finding, parse_pragmas
from repro.staticcheck.graph_contract import (
    check_contracts,
    check_fitted_models,
    check_registry,
    check_zoo,
)
from repro.staticcheck.runner import (
    ALL_RULES,
    CheckReport,
    check_source,
    run_checks,
)

__all__ = [
    "ALL_RULES",
    "Baseline",
    "CheckReport",
    "Finding",
    "check_contracts",
    "check_fitted_models",
    "check_registry",
    "check_source",
    "check_zoo",
    "load_baseline",
    "parse_pragmas",
    "run_checks",
    "write_baseline",
]
