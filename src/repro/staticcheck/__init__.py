"""repro.staticcheck: custom static analysis for the Ceer reproduction.

Token-level lints (unit suffix discipline, mixed-unit arithmetic, bare
conversion literals, engine routing, determinism), a semantic
graph-contract checker, and the :mod:`repro.staticcheck.astcheck`
AST/dataflow engine (tensor-axis contracts, fork/pickle safety,
fingerprint purity, observability contracts) — all driven by ``repro
check`` / ``tools/check.py`` and enforced in CI. See DESIGN.md's "Static
analysis" and "AST analysis" sections for the rule catalogue, the
annotation conventions, and the baseline workflow.
"""

from repro.staticcheck.baseline import Baseline, load_baseline, write_baseline
from repro.staticcheck.findings import Finding, parse_pragmas
from repro.staticcheck.graph_contract import (
    check_contracts,
    check_fitted_models,
    check_registry,
    check_zoo,
)
from repro.staticcheck.runner import (
    ALL_RULES,
    RULE_FAMILIES,
    AnalysisCache,
    CheckFileTask,
    CheckReport,
    check_source,
    run_checks,
)

__all__ = [
    "ALL_RULES",
    "AnalysisCache",
    "Baseline",
    "CheckFileTask",
    "CheckReport",
    "Finding",
    "RULE_FAMILIES",
    "check_contracts",
    "check_fitted_models",
    "check_registry",
    "check_source",
    "check_zoo",
    "load_baseline",
    "parse_pragmas",
    "run_checks",
    "write_baseline",
]
