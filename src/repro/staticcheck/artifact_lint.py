"""Artifact-routing lint: expensive artifacts are cached by the workspace.

The artifact workspace (:mod:`repro.artifacts`) replaced the old
``@lru_cache`` module globals: keys fold in schema and calibration
versions, entries persist across processes, and concurrent runs lock per
key. A stray ``@lru_cache`` on a function returning one of the expensive
artifact types reintroduces a second, unversioned cache layer — hits
never invalidate on config changes and never reach the workspace's
counters. This rule flags ``functools.lru_cache``/``functools.cache``
decorators on functions annotated as returning an artifact type anywhere
outside ``repro/artifacts/`` itself (tests and benchmarks are exempt).
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.findings import Finding

RULE_ARTIFACT = "artifact-routing"

#: Return-type names owned by the artifact workspace.
ARTIFACT_TYPES = frozenset({
    "ProfileDataset", "FittedCeer", "TrainingMeasurement",
})

#: Decorator names that create in-process memo caches.
CACHE_DECORATORS = frozenset({"lru_cache", "cache"})

#: Module path suffix fragments allowed to memoise artifacts locally.
ARTIFACT_ALLOWED_FRAGMENTS = (
    "repro/artifacts/", "tests/", "benchmarks/", "conftest",
)


def _is_allowed(path: str) -> bool:
    return any(fragment in path for fragment in ARTIFACT_ALLOWED_FRAGMENTS)


def _decorator_name(node: ast.expr) -> str:
    """The trailing identifier of a decorator: ``functools.lru_cache()``,
    ``lru_cache(maxsize=1)``, and bare ``cache`` all resolve here."""
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return ""


def _annotation_names(node: ast.expr) -> List[str]:
    """Every identifier inside a return annotation (handles ``Optional[X]``,
    string annotations, and dotted names)."""
    names: List[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Name):
            names.append(child.id)
        elif isinstance(child, ast.Attribute):
            names.append(child.attr)
        elif isinstance(child, ast.Constant) and isinstance(child.value, str):
            # String annotation: cheap token scan is enough for a lint.
            names.extend(
                part for part in ARTIFACT_TYPES if part in child.value
            )
    return names


class ArtifactLint(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def _check_function(self, node) -> None:
        if node.returns is None:
            return
        returned = set(_annotation_names(node.returns)) & ARTIFACT_TYPES
        if not returned:
            return
        for decorator in node.decorator_list:
            if _decorator_name(decorator) in CACHE_DECORATORS:
                artifact = sorted(returned)[0]
                self.findings.append(Finding(
                    path=self.path,
                    line=decorator.lineno,
                    col=decorator.col_offset,
                    rule=RULE_ARTIFACT,
                    message=(
                        f"@{_decorator_name(decorator)} on {node.name!r} "
                        f"returning {artifact}: route expensive artifacts "
                        f"through repro.artifacts.Workspace so keys fold in "
                        f"schema/calibration versions and persist on disk"
                    ),
                    symbol=node.name,
                ))

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)


def check_artifact_routing(tree: ast.AST, path: str) -> List[Finding]:
    """Flag in-process memo caches on workspace-owned artifact types."""
    if _is_allowed(path):
        return []
    lint = ArtifactLint(path)
    lint.visit(tree)
    return lint.findings
