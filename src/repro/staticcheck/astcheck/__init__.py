"""AST/dataflow analysis engine behind ``repro check``.

Four rule families share one :class:`~repro.staticcheck.astcheck.analysis.
ModuleAnalysis` per file (tokenized comments, axis annotations, function
tables, provenance dataflow):

* :mod:`~repro.staticcheck.astcheck.axes` — named-axis contracts for the
  sweep tensors (``# axes: (P, G, K, B)``) and NaN-mask propagation;
* :mod:`~repro.staticcheck.astcheck.forksafe` — FanoutTask specs must be
  frozen, picklable, lambda-free; no import-time store/lock state;
* :mod:`~repro.staticcheck.astcheck.purity` — spec builders feeding
  artifact fingerprints must not read clocks, env, or parallelism knobs;
* :mod:`~repro.staticcheck.astcheck.obscontract` — span/counter names
  registered in :mod:`repro.obs.catalog`; no instrumentation inside
  ``# obs: warm`` functions.

:func:`run_ast_passes` is the runner's entry point: build the shared
analysis once, run every requested family over it.
"""

from __future__ import annotations

import ast
from typing import Callable, FrozenSet, List, Mapping, Optional, Set, Tuple

from repro.staticcheck.astcheck.analysis import (
    AxisSpec,
    FunctionInfo,
    ModuleAnalysis,
    parse_axis_comment,
    tainted_names,
)
from repro.staticcheck.astcheck.axes import (
    RULE_AXIS_BROADCAST,
    RULE_AXIS_DROP,
    RULE_NAN_MASK,
    check_axes,
)
from repro.staticcheck.astcheck.forksafe import RULE_FORK, check_fork_safety
from repro.staticcheck.astcheck.obscontract import (
    RULE_OBS_NAME,
    RULE_OBS_WARM,
    check_obs_contracts,
)
from repro.staticcheck.astcheck.purity import RULE_PURITY, check_fingerprint_purity
from repro.staticcheck.findings import Finding

__all__ = [
    "AxisSpec",
    "FunctionInfo",
    "ModuleAnalysis",
    "AST_RULE_FAMILIES",
    "check_axes",
    "check_fingerprint_purity",
    "check_fork_safety",
    "check_obs_contracts",
    "parse_axis_comment",
    "run_ast_passes",
    "tainted_names",
]

_Pass = Callable[[ModuleAnalysis], List[Finding]]

#: rule id -> (family, one-line description) for every astcheck rule.
AST_RULE_FAMILIES: Mapping[str, str] = {
    RULE_AXIS_DROP: "axes",
    RULE_AXIS_BROADCAST: "axes",
    RULE_NAN_MASK: "axes",
    RULE_FORK: "fork",
    RULE_PURITY: "fingerprint",
    RULE_OBS_NAME: "obs",
    RULE_OBS_WARM: "obs",
}

_PASSES: Tuple[_Pass, ...] = (
    check_axes,
    check_fork_safety,
    check_fingerprint_purity,
    check_obs_contracts,
)

#: Which rules each pass can emit — used to skip passes entirely when
#: the caller's rule selection excludes a whole family.
_PASS_RULES: Mapping[_Pass, FrozenSet[str]] = {
    check_axes: frozenset({RULE_AXIS_DROP, RULE_AXIS_BROADCAST, RULE_NAN_MASK}),
    check_fork_safety: frozenset({RULE_FORK}),
    check_fingerprint_purity: frozenset({RULE_PURITY}),
    check_obs_contracts: frozenset({RULE_OBS_NAME, RULE_OBS_WARM}),
}


def run_ast_passes(
    tree: ast.Module,
    source: str,
    path: str,
    rules: Optional[Set[str]] = None,
) -> List[Finding]:
    """Run every (selected) astcheck family over one parsed module."""
    selected: List[_Pass] = [
        check for check in _PASSES
        if rules is None or (_PASS_RULES[check] & rules)
    ]
    if not selected:
        return []
    analysis = ModuleAnalysis(tree, source, path)
    findings: List[Finding] = []
    for check in selected:
        findings.extend(
            f for f in check(analysis) if rules is None or f.rule in rules
        )
    return findings
