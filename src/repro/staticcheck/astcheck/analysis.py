"""Shared AST-analysis infrastructure for the astcheck rule families.

One :class:`ModuleAnalysis` is built per source file and handed to every
rule family, so the file is tokenized and its symbol tables are built
exactly once no matter how many rules run. It provides:

* **comment extraction** — ``tokenize``-accurate per-line comments (the
  annotation conventions below live in comments, so regexing raw lines
  would mis-fire inside string literals);
* **axis annotations** — ``# axes: (P, G, K, B)`` / ``# axes: (G, K) nan``
  comments attached to assignments and dataclass fields, parsed into
  :class:`AxisSpec` values (the tensor-axis rules' ground truth);
* **function tables** — every function/method with its qualified name,
  parameter list, and marker comments (``# obs: warm``);
* **a light intraprocedural dataflow pass** — :func:`tainted_names`
  tracks which local names derive from a set of seed names through
  straight-line assignments (variable provenance, used by the
  fingerprint-purity rule to follow ``jobs`` into a spec dict and by the
  axis rules to follow arrays through renames).

Everything here is deliberately *per-module*: analyses never follow
imports, which keeps a file's findings a pure function of its own bytes —
the property the content-hash analysis cache and the parallel fan-out
both rely on.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = [
    "AxisSpec",
    "FunctionInfo",
    "ModuleAnalysis",
    "iter_statements",
    "parse_axis_comment",
    "tainted_names",
]

#: ``# axes: (P, G, K, B)`` with an optional trailing ``nan`` marker
#: declaring that the array may contain NaN cells (catalog masking).
_AXES_RE = re.compile(
    r"#\s*axes:\s*\((?P<axes>[^)]*)\)\s*(?P<nan>,?\s*nan)?", re.IGNORECASE
)
_AXIS_NAME_RE = re.compile(r"^[A-Za-z][A-Za-z0-9_]*$")
#: ``# obs: warm`` (and future ``# obs: <marker>`` annotations).
_OBS_MARKER_RE = re.compile(r"#\s*obs:\s*(?P<marker>[a-z][a-z\-]*)")


@dataclass(frozen=True)
class AxisSpec:
    """The declared (or inferred) named-axis signature of one array.

    ``axes`` holds axis names in storage order; the broadcast placeholder
    axis (``None`` inserted via ``arr[:, None]``) is the name ``"1"``.
    ``nan`` marks arrays that may legitimately contain NaN cells (the
    sweep tensors' unpriceable-candidate masking) — consumers must reduce
    them with nan-aware ops or mask first.
    """

    axes: Tuple[str, ...]
    nan: bool = False

    @property
    def rank(self) -> int:
        return len(self.axes)

    def render(self) -> str:
        suffix = " nan" if self.nan else ""
        return f"({', '.join(self.axes)}){suffix}"


def parse_axis_comment(comment: str) -> Optional[AxisSpec]:
    """Parse ``# axes: (G, K, B) nan`` into an :class:`AxisSpec`.

    Returns None when the comment carries no axes annotation; malformed
    axis lists (empty, or names that are not identifiers) also return
    None — the annotation is then simply absent, never a crash.
    """
    match = _AXES_RE.search(comment)
    if match is None:
        return None
    names = [token.strip() for token in match.group("axes").split(",")]
    names = [name for name in names if name]
    if not names or not all(_AXIS_NAME_RE.match(name) for name in names):
        return None
    return AxisSpec(axes=tuple(names), nan=match.group("nan") is not None)


@dataclass
class FunctionInfo:
    """One function or method: its node, identity, and annotations."""

    node: ast.AST  # FunctionDef | AsyncFunctionDef
    qualname: str  #: dotted path within the module (``Class.method``)
    params: Tuple[str, ...]
    markers: FrozenSet[str] = frozenset()  #: ``# obs: <marker>`` tags

    @property
    def name(self) -> str:
        return self.qualname.rsplit(".", 1)[-1]


def iter_statements(body: Sequence[ast.stmt]) -> Iterator[ast.stmt]:
    """Yield statements in source order, descending into compound blocks.

    Nested function and class definitions are yielded (so rules can see
    them) but not descended into — their bodies are separate scopes with
    their own dataflow.
    """
    for stmt in body:
        yield stmt
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for block in ("body", "orelse", "finalbody"):
            yield from iter_statements(getattr(stmt, block, []) or [])
        for handler in getattr(stmt, "handlers", []) or []:
            yield from iter_statements(handler.body)


def tainted_names(
    body: Sequence[ast.stmt], seeds: Set[str]
) -> Set[str]:
    """Forward provenance: names whose value derives from a seed name.

    A single in-order pass over straight-line assignments: any ``Name``
    target whose right-hand side *loads* a tainted name becomes tainted
    (``j = jobs``, ``j2 = j + 1``). Augmented assignments taint their
    target the same way. This deliberately over-approximates (a branch
    that conditionally overwrites with a clean value stays tainted) —
    for a lint, a rare extra finding beats a silent miss.
    """
    tainted = set(seeds)
    for stmt in iter_statements(body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        elif isinstance(stmt, ast.AugAssign):
            value, targets = stmt.value, [stmt.target]
        if value is None:
            continue
        loads = {
            node.id for node in ast.walk(value)
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load)
        }
        if loads & tainted:
            for target in targets:
                for node in ast.walk(target):
                    if isinstance(node, ast.Name):
                        tainted.add(node.id)
    return tainted


def _extract_comments(source: str) -> Dict[int, Tuple[str, bool]]:
    """Per-line comments: lineno -> (text, is_own_line).

    ``is_own_line`` is True when the comment is the only thing on its
    line — the form that annotates the *next* statement rather than its
    own line. Tokenization errors (the file already parsed, so these are
    edge cases like odd encodings) degrade to "no comments" rather than
    failing the whole check.
    """
    comments: Dict[int, Tuple[str, bool]] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type == tokenize.COMMENT:
                own_line = tok.line[: tok.start[1]].strip() == ""
                comments[tok.start[0]] = (tok.string, own_line)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        pass
    return comments


class ModuleAnalysis:
    """Symbol, annotation, and comment tables for one parsed module."""

    def __init__(self, tree: ast.Module, source: str, path: str) -> None:
        self.tree = tree
        self.source = source
        self.path = path
        self.comments = _extract_comments(source)
        self.functions: List[FunctionInfo] = []
        #: dataclass/class attribute -> axis spec, collected from
        #: ``name: np.ndarray  # axes: (...)`` field annotations anywhere
        #: in the module. Attribute lookups (``result.cost_usd``) resolve
        #: through this table, so specs travel with the field name.
        self.field_axes: Dict[str, AxisSpec] = {}
        #: local aliases for the numpy module (``import numpy as np``).
        self.numpy_aliases: Set[str] = set()
        self._index_module(tree)

    # -- construction ---------------------------------------------------
    def _index_module(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "numpy":
                        self.numpy_aliases.add(alias.asname or "numpy")
        self._index_scope(tree.body, prefix="")

    def _index_scope(self, body: Sequence[ast.stmt], prefix: str) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{stmt.name}"
                self.functions.append(FunctionInfo(
                    node=stmt,
                    qualname=qualname,
                    params=self._param_names(stmt),
                    markers=self._markers_for(stmt),
                ))
                self._index_scope(stmt.body, prefix=f"{qualname}.")
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt, prefix)
                self._index_scope(stmt.body, prefix=f"{prefix}{stmt.name}.")

    def _index_class(self, node: ast.ClassDef, prefix: str) -> None:
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name):
                spec = self.axis_annotation(stmt)
                if spec is not None:
                    self.field_axes[stmt.target.id] = spec

    @staticmethod
    def _param_names(node: ast.AST) -> Tuple[str, ...]:
        args = node.args
        params = [a.arg for a in getattr(args, "posonlyargs", [])]
        params += [a.arg for a in args.args]
        if args.vararg:
            params.append(args.vararg.arg)
        params += [a.arg for a in args.kwonlyargs]
        if args.kwarg:
            params.append(args.kwarg.arg)
        return tuple(params)

    def _markers_for(self, node: ast.AST) -> FrozenSet[str]:
        """``# obs: <marker>`` tags on the def line or just above it.

        "Just above" means the own-line comment immediately preceding the
        function's first decorator (or the ``def`` itself when there are
        none) — where a human would write the annotation.
        """
        first_line = min(
            [node.lineno] + [d.lineno for d in getattr(node, "decorator_list", [])]
        )
        markers: Set[str] = set()
        for lineno in (first_line - 1, node.lineno):
            entry = self.comments.get(lineno)
            if entry is None:
                continue
            text, own_line = entry
            if lineno == first_line - 1 and not own_line:
                continue
            for match in _OBS_MARKER_RE.finditer(text):
                markers.add(match.group("marker"))
        return frozenset(markers)

    # -- annotation lookup ---------------------------------------------
    def axis_annotation(self, stmt: ast.stmt) -> Optional[AxisSpec]:
        """The axes annotation attached to one statement, if any.

        Looks at trailing comments on any line the statement spans (a
        multi-line ``np.stack(...)`` call annotates its first line), then
        at an own-line comment directly above the statement.
        """
        end = getattr(stmt, "end_lineno", stmt.lineno) or stmt.lineno
        for lineno in range(stmt.lineno, end + 1):
            entry = self.comments.get(lineno)
            if entry is not None:
                spec = parse_axis_comment(entry[0])
                if spec is not None:
                    return spec
        above = self.comments.get(stmt.lineno - 1)
        if above is not None and above[1]:
            return parse_axis_comment(above[0])
        return None

    def is_numpy(self, node: ast.expr) -> bool:
        """Whether ``node`` is a reference to the numpy module."""
        return isinstance(node, ast.Name) and (
            node.id in self.numpy_aliases or node.id in ("np", "numpy")
        )
