"""Tensor-axis contracts: named-axis dataflow over annotated arrays.

The batched sweep (PR 6) turned the recommender into tensor algebra over
``(G, K, B)`` time and ``(P, G, K, B)`` cost arrays. NumPy will happily
``sum`` over the wrong axis, broadcast two misaligned tensors, or fold
NaN-masked cells into a ``min`` — all silently, all producing plausible
wrong numbers. These are exactly the bugs a reproduction cannot afford.

The contract is declared in comments::

    compute_us = np.stack(...)  # axes: (G, B)
    cost_usd: np.ndarray  # axes: (P, G, K, B) nan

and this pass runs a light forward dataflow per function, propagating
:class:`~repro.staticcheck.astcheck.analysis.AxisSpec` values through
assignments, subscripts (``arr[:, None, :]`` inserts a broadcast axis,
``arr[0]`` drops one), elementwise arithmetic (checked by named-axis
broadcast alignment), reductions (``axis=`` bounds-checked and dropped),
transposes, and the ``repro.units`` elementwise converters. Three rules:

* ``axis-drop`` — a reduction's ``axis=`` is out of range for the
  declared rank, a subscript consumes more axes than the array has, or
  an annotated assignment disagrees with the axes the expression
  actually produces (dropped/reordered axes);
* ``axis-broadcast`` — elementwise arithmetic aligns two *different*
  named axes (e.g. ``(G, K) + (K, G)``);
* ``nan-mask`` — a NaN-carrying array (``nan`` marker: the sweep's
  unpriceable-candidate masking) is reduced with a non-nan-aware op
  (``.min()``, ``np.sum``, builtin ``min``/``max``) without masking.

Unknown always stays silent: untracked arrays, fancy indexing, and calls
the pass does not model simply erase the spec instead of guessing — the
rules only fire on declared knowledge.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Tuple

from repro.staticcheck.astcheck.analysis import (
    AxisSpec,
    ModuleAnalysis,
    iter_statements,
)
from repro.staticcheck.findings import Finding

RULE_AXIS_DROP = "axis-drop"
RULE_AXIS_BROADCAST = "axis-broadcast"
RULE_NAN_MASK = "nan-mask"

FAMILY = "axes"

#: Reductions that collapse axes (method or ``np.<name>`` forms).
_REDUCTIONS = frozenset({
    "sum", "prod", "min", "max", "mean", "std", "var", "median",
    "argmin", "argmax", "all", "any", "ptp",
})
#: NaN-aware reductions, legal on ``nan``-marked arrays.
_NAN_AWARE = frozenset({
    "nansum", "nanprod", "nanmin", "nanmax", "nanmean", "nanstd",
    "nanvar", "nanmedian", "nanargmin", "nanargmax", "nancumsum",
    "nancumprod",
})
#: Elementwise unary numpy functions that preserve the axis signature.
_ELEMENTWISE_UNARY = frozenset({
    "abs", "sqrt", "exp", "log", "log2", "log10", "floor", "ceil",
    "rint", "sign", "negative", "square", "asarray", "ascontiguousarray",
    "copy", "clip",
})
#: Elementwise binary numpy functions (broadcast-checked like operators).
_ELEMENTWISE_BINARY = frozenset({
    "minimum", "maximum", "fmin", "fmax", "hypot", "add", "subtract",
    "multiply", "divide", "true_divide", "power", "mod",
})
#: Builtins that reduce an iterable — a NaN hazard on masked arrays.
_BUILTIN_REDUCERS = frozenset({"min", "max", "sum", "sorted"})

_BROADCAST_AXIS = "1"


def _nan_to_num_spec(spec: AxisSpec) -> AxisSpec:
    return AxisSpec(axes=spec.axes, nan=False)


class _AxisFlow:
    """One forward dataflow pass over a statement list (one scope)."""

    def __init__(self, analysis: ModuleAnalysis, findings: List[Finding]) -> None:
        self.analysis = analysis
        self.findings = findings
        self.env: Dict[str, AxisSpec] = {}

    # -- findings -------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str, symbol: str,
              fix_hint: str) -> None:
        self.findings.append(Finding(
            path=self.analysis.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule, message=message, symbol=symbol,
            family=FAMILY, fix_hint=fix_hint,
        ))

    # -- the pass -------------------------------------------------------
    def run(self, body: Sequence[ast.stmt]) -> None:
        for stmt in iter_statements(body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            self._visit_statement(stmt)

    def _visit_statement(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, ast.Assign):
            value_spec = self.infer(stmt.value)
            annotated = self.analysis.axis_annotation(stmt)
            for target in stmt.targets:
                self._bind(target, value_spec, annotated, stmt)
        elif isinstance(stmt, ast.AnnAssign):
            value_spec = self.infer(stmt.value) if stmt.value is not None else None
            annotated = self.analysis.axis_annotation(stmt)
            self._bind(stmt.target, value_spec, annotated, stmt)
        elif isinstance(stmt, ast.AugAssign):
            value_spec = self.infer(stmt.value)
            if isinstance(stmt.target, ast.Name):
                existing = self.env.get(stmt.target.id)
                if existing is not None and value_spec is not None:
                    merged = self._broadcast(existing, value_spec, stmt)
                    if merged is not None:
                        self.env[stmt.target.id] = merged
            elif isinstance(stmt.target, ast.Subscript):
                self.infer(stmt.target)
        elif isinstance(stmt, ast.For):
            self.infer(stmt.iter)
            for node in ast.walk(stmt.target):
                if isinstance(node, ast.Name):
                    self.env.pop(node.id, None)
        else:
            # Expression statements, returns, conditions, with-items, …:
            # infer every child expression so reductions and broadcasts
            # anywhere in the statement are checked.
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self.infer(child)
                elif isinstance(child, ast.withitem):
                    self.infer(child.context_expr)

    def _bind(self, target: ast.expr, value_spec: Optional[AxisSpec],
              annotated: Optional[AxisSpec], stmt: ast.stmt) -> None:
        if isinstance(target, ast.Name):
            if annotated is not None and value_spec is not None \
                    and annotated.axes != value_spec.axes:
                self._flag(
                    stmt, RULE_AXIS_DROP,
                    f"{target.id} is annotated # axes: {annotated.render()} "
                    f"but the expression produces axes {value_spec.render()}",
                    symbol=target.id,
                    fix_hint="fix the expression or the annotation so the "
                             "declared and produced axes agree",
                )
            spec = annotated or value_spec
            if spec is not None:
                self.env[target.id] = spec
            else:
                self.env.pop(target.id, None)
        elif isinstance(target, ast.Subscript):
            self.infer(target)  # rank-checks the store
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Name):
                    self.env.pop(element.id, None)

    # -- inference ------------------------------------------------------
    def infer(self, node: Optional[ast.expr]) -> Optional[AxisSpec]:
        if node is None:
            return None
        if isinstance(node, ast.Name):
            return self.env.get(node.id)
        if isinstance(node, ast.Attribute):
            if node.attr == "T":
                base = self.infer(node.value)
                if base is not None:
                    return AxisSpec(axes=tuple(reversed(base.axes)), nan=base.nan)
                return None
            self.infer(node.value)
            return self.analysis.field_axes.get(node.attr)
        if isinstance(node, ast.BinOp):
            return self._infer_binop(node)
        if isinstance(node, ast.UnaryOp):
            return self.infer(node.operand)
        if isinstance(node, ast.Subscript):
            return self._infer_subscript(node)
        if isinstance(node, ast.Call):
            return self._infer_call(node)
        if isinstance(node, ast.Compare):
            specs = [self.infer(node.left)] + [self.infer(c) for c in node.comparators]
            known = [s for s in specs if s is not None]
            if len(known) == 2:
                return self._broadcast(known[0], known[1], node)
            return known[0] if known else None
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            for generator in node.generators:
                self.infer(generator.iter)
            self.infer(node.elt)
            return None
        if isinstance(node, ast.DictComp):
            for generator in node.generators:
                self.infer(generator.iter)
            self.infer(node.key)
            self.infer(node.value)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self.infer(element)
            return None
        if isinstance(node, ast.Dict):
            for value in node.values:
                self.infer(value)
            return None
        if isinstance(node, ast.IfExp):
            self.infer(node.test)
            self.infer(node.body)
            self.infer(node.orelse)
            return None
        if isinstance(node, ast.Starred):
            return self.infer(node.value)
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            for child in ast.walk(node):
                if isinstance(child, ast.FormattedValue):
                    self.infer(child.value)
            return None
        return None

    def _infer_binop(self, node: ast.BinOp) -> Optional[AxisSpec]:
        left = self.infer(node.left)
        right = self.infer(node.right)
        if isinstance(node.op, ast.MatMult):
            return None  # matmul contracts axes; not modeled
        if left is not None and right is not None:
            return self._broadcast(left, right, node)
        if left is not None and self._scalar_operand(node.right):
            return left
        if right is not None and self._scalar_operand(node.left):
            return right
        return None

    @staticmethod
    def _scalar_operand(node: ast.expr) -> bool:
        """Operands that are clearly scalars keep the other side's axes."""
        return isinstance(node, ast.Constant) and isinstance(
            node.value, (int, float)
        )

    def _broadcast(
        self, left: AxisSpec, right: AxisSpec, node: ast.AST
    ) -> Optional[AxisSpec]:
        """Right-aligned named-axis broadcast; flags misalignment."""
        n = max(left.rank, right.rank)
        l_axes = (_BROADCAST_AXIS,) * (n - left.rank) + left.axes
        r_axes = (_BROADCAST_AXIS,) * (n - right.rank) + right.axes
        out: List[str] = []
        for l_name, r_name in zip(l_axes, r_axes):
            if l_name == _BROADCAST_AXIS:
                out.append(r_name)
            elif r_name == _BROADCAST_AXIS or l_name == r_name:
                out.append(l_name)
            else:
                self._flag(
                    node, RULE_AXIS_BROADCAST,
                    f"broadcasting axes {left.render()} against "
                    f"{right.render()} aligns {l_name!r} with {r_name!r}",
                    symbol=f"{l_name}x{r_name}",
                    fix_hint="insert None axes (arr[:, None]) so identical "
                             "axis names line up position-for-position",
                )
                return None
        return AxisSpec(axes=tuple(out), nan=left.nan or right.nan)

    def _infer_subscript(self, node: ast.Subscript) -> Optional[AxisSpec]:
        base = self.infer(node.value)
        index = node.slice
        elements = list(index.elts) if isinstance(index, ast.Tuple) else [index]
        if base is None:
            for element in elements:
                self.infer(element)
            return None
        consumed = sum(
            1 for e in elements
            if not (isinstance(e, ast.Constant)
                    and (e.value is None or e.value is Ellipsis))
        )
        if consumed > base.rank and not any(
            isinstance(e, ast.Constant) and e.value is Ellipsis for e in elements
        ):
            self._flag(
                node, RULE_AXIS_DROP,
                f"indexing a {base.render()} array with {consumed} "
                f"subscript(s) — it only has {base.rank} ax(es)",
                symbol=self._symbol_of(node.value),
                fix_hint="drop the extra subscript or fix the # axes: "
                         "annotation",
            )
            return None
        out: List[str] = []
        remaining = list(base.axes)
        tracked = True
        for element in elements:
            if isinstance(element, ast.Constant) and element.value is None:
                out.append(_BROADCAST_AXIS)
            elif isinstance(element, ast.Constant) and element.value is Ellipsis:
                tracked = False  # ``...`` spans: rank-checked above, untracked
            elif isinstance(element, ast.Slice):
                if remaining:
                    out.append(remaining.pop(0))
            elif isinstance(element, ast.Constant) and isinstance(
                element.value, int
            ):
                if remaining:
                    remaining.pop(0)  # scalar index drops the axis
            else:
                # Name / fancy / boolean-mask index: result untracked.
                self.infer(element)
                tracked = False
        if not tracked:
            return None
        out.extend(remaining)
        return AxisSpec(axes=tuple(out), nan=base.nan)

    @staticmethod
    def _symbol_of(node: ast.expr) -> str:
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return ""

    # -- calls ----------------------------------------------------------
    def _infer_call(self, node: ast.Call) -> Optional[AxisSpec]:
        func = node.func
        # builtin min/max/sum/sorted over a NaN-carrying array ---------
        if isinstance(func, ast.Name) and func.id in _BUILTIN_REDUCERS:
            for arg in node.args:
                spec = self.infer(arg)
                if spec is not None and spec.nan:
                    self._flag(
                        node, RULE_NAN_MASK,
                        f"builtin {func.id}() over a NaN-masked "
                        f"{spec.render()} array propagates NaN",
                        symbol=self._symbol_of(arg),
                        fix_hint="mask the array first or use the np.nan* "
                                 "reductions",
                    )
            for kw in node.keywords:
                self.infer(kw.value)
            return None
        # method-style reduction: arr.sum(axis=...) --------------------
        if isinstance(func, ast.Attribute) and func.attr in _REDUCTIONS:
            base = self.infer(func.value)
            if base is not None:
                return self._reduce(node, base, func.attr,
                                    self._symbol_of(func.value),
                                    axis_arg_index=0)
        # numpy-function reduction / elementwise -----------------------
        if isinstance(func, ast.Attribute) and self.analysis.is_numpy(func.value):
            name = func.attr
            if name in _REDUCTIONS or name in _NAN_AWARE:
                base = self.infer(node.args[0]) if node.args else None
                if base is not None:
                    return self._reduce(
                        node, base, name,
                        self._symbol_of(node.args[0]), axis_arg_index=1,
                    )
                for arg in node.args[1:]:
                    self.infer(arg)
                return None
            if name == "nan_to_num" and node.args:
                base = self.infer(node.args[0])
                return _nan_to_num_spec(base) if base is not None else None
            if name == "isnan" and node.args:
                base = self.infer(node.args[0])
                return _nan_to_num_spec(base) if base is not None else None
            if name in _ELEMENTWISE_UNARY and node.args:
                base = self.infer(node.args[0])
                for arg in node.args[1:]:
                    self.infer(arg)
                return base
            if name in _ELEMENTWISE_BINARY and len(node.args) >= 2:
                left = self.infer(node.args[0])
                right = self.infer(node.args[1])
                if left is not None and right is not None:
                    return self._broadcast(left, right, node)
                return left or right
        # repro.units converters: elementwise ufunc arithmetic ---------
        if isinstance(func, ast.Name) and "_to_" in func.id:
            specs = [self.infer(arg) for arg in node.args]
            known = [s for s in specs if s is not None]
            if len(known) == 2:
                return self._broadcast(known[0], known[1], node)
            if len(known) == 1 and len(node.args) <= 2:
                return known[0]
            return None
        # anything else: recurse for side-effect checks, result unknown.
        if isinstance(func, (ast.Attribute, ast.Subscript)):
            self.infer(func)
        for arg in node.args:
            self.infer(arg)
        for kw in node.keywords:
            self.infer(kw.value)
        return None

    def _reduce(
        self,
        node: ast.Call,
        base: AxisSpec,
        op_name: str,
        symbol: str,
        axis_arg_index: int,
    ) -> Optional[AxisSpec]:
        """Check one reduction call and compute the surviving axes."""
        if base.nan and op_name not in _NAN_AWARE:
            self._flag(
                node, RULE_NAN_MASK,
                f"reducing a NaN-masked {base.render()} array with "
                f"{op_name}() folds masked cells into the result",
                symbol=symbol or op_name,
                fix_hint=f"use np.nan{op_name}(...) or mask the NaN cells "
                         "before reducing",
            )
        axis_node: Optional[ast.expr] = None
        keepdims = False
        if len(node.args) > axis_arg_index:
            axis_node = node.args[axis_arg_index]
        for kw in node.keywords:
            if kw.arg == "axis":
                axis_node = kw.value
            elif kw.arg == "keepdims" and isinstance(kw.value, ast.Constant):
                keepdims = bool(kw.value.value)
        if axis_node is None:
            return AxisSpec(axes=(), nan=False)
        axis_values: List[int] = []
        if isinstance(axis_node, ast.Constant) and isinstance(axis_node.value, int):
            axis_values = [axis_node.value]
        elif isinstance(axis_node, ast.Tuple) and all(
            isinstance(e, ast.Constant) and isinstance(e.value, int)
            for e in axis_node.elts
        ):
            axis_values = [e.value for e in axis_node.elts]  # type: ignore[union-attr]
        elif isinstance(axis_node, ast.UnaryOp) and isinstance(
            axis_node.op, ast.USub
        ) and isinstance(axis_node.operand, ast.Constant) and isinstance(
            axis_node.operand.value, int
        ):
            axis_values = [-axis_node.operand.value]
        else:
            return None  # dynamic axis: untracked
        normalized = []
        for axis in axis_values:
            resolved = axis + base.rank if axis < 0 else axis
            if resolved < 0 or resolved >= base.rank:
                self._flag(
                    node, RULE_AXIS_DROP,
                    f"{op_name}(axis={axis}) is out of range for a "
                    f"{base.render()} array of rank {base.rank}",
                    symbol=symbol or op_name,
                    fix_hint="pick an axis index inside the annotated rank "
                             "(or fix the # axes: annotation)",
                )
                return None
            normalized.append(resolved)
        survivors = [
            (_BROADCAST_AXIS if keepdims else None) if i in normalized else name
            for i, name in enumerate(base.axes)
        ]
        axes = tuple(name for name in survivors if name is not None)
        return AxisSpec(axes=axes, nan=False)


def check_axes(analysis: ModuleAnalysis) -> List[Finding]:
    """Run the named-axis dataflow over every scope of one module."""
    findings: List[Finding] = []
    _AxisFlow(analysis, findings).run(analysis.tree.body)
    for info in analysis.functions:
        _AxisFlow(analysis, findings).run(info.node.body)
    return findings
