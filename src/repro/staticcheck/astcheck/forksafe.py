"""Fork/pickle safety for fan-out task specs and import-time state.

``repro.parallel.run_fanout`` ships task specs into forked worker
processes. That contract breaks in ways the type checker cannot see:

* a task field holding a lambda, an open handle, a lock, or any mutable
  container pickles late (or not at all), or silently shares state
  between parent and children;
* a task class that is not a frozen dataclass invites post-construction
  mutation, which desynchronises ``task_id()`` from what ``run()``
  actually does;
* module-level store construction or lock acquisition runs at *import*
  time — a forked child inherits that state mid-flight (a held lock
  deadlocks every worker; an open store handle is shared).

This pass treats any class that defines both ``task_id`` and ``run``
methods as a :class:`~repro.parallel.fanout.FanoutTask` implementation
(the protocol is structural, so the check is too) and enforces:

* ``@dataclass(frozen=True)`` decoration;
* field annotations drawn from a picklable-by-value whitelist
  (``str``/``int``/``float``/``bool``/``bytes``/``Tuple``/``Optional``/
  ``Union``/``FrozenSet``/``Literal`` — no ``Callable``, ``Any``,
  ``List``/``Dict``/``Set``, arrays, locks, or IO types);
* no ``lambda`` anywhere in the class body (fields, defaults,
  ``field(default_factory=...)``).

Separately, module-level statements anywhere must not construct stores
(``ArtifactStore(...)``, ``Workspace(...)``, ``active_workspace()``) or
acquire locks (``*.acquire()``) — the conservative static form of "no
store-lock acquisition reachable before the fork".
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.staticcheck.astcheck.analysis import ModuleAnalysis, iter_statements
from repro.staticcheck.findings import Finding

RULE_FORK = "fork-safety"

FAMILY = "fork"

#: Type names a task field may be built from (picklable by value,
#: immutable, cheap to ship to a worker).
_ALLOWED_FIELD_TYPES = frozenset({
    "str", "int", "float", "bool", "bytes", "complex", "None",
    "Tuple", "tuple", "Optional", "Union", "FrozenSet", "frozenset",
    "Literal", "Final",
})

#: Module-level calls that create or acquire cross-process state.
_MODULE_HAZARD_CALLS = frozenset({
    "ArtifactStore", "Workspace", "active_workspace",
})


def _flag(findings: List[Finding], path: str, node: ast.AST, message: str,
          symbol: str, fix_hint: str) -> None:
    findings.append(Finding(
        path=path,
        line=getattr(node, "lineno", 1),
        col=getattr(node, "col_offset", 0),
        rule=RULE_FORK, message=message, symbol=symbol,
        family=FAMILY, fix_hint=fix_hint,
    ))


def _is_task_class(node: ast.ClassDef) -> bool:
    # Protocol/ABC definitions *describe* the contract; only concrete
    # task classes get pickled into workers.
    for base in node.bases:
        name = base.id if isinstance(base, ast.Name) else getattr(base, "attr", "")
        if name in ("Protocol", "ABC"):
            return False
    methods = {
        stmt.name for stmt in node.body
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
    return "task_id" in methods and "run" in methods


def _frozen_dataclass_decorator(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call):
            func = decorator.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
            if name == "dataclass":
                for kw in decorator.keywords:
                    if kw.arg == "frozen" and isinstance(kw.value, ast.Constant) \
                            and kw.value.value is True:
                        return True
    return False


def _check_field_annotation(
    findings: List[Finding], path: str, class_name: str, stmt: ast.AnnAssign
) -> None:
    field_name = stmt.target.id if isinstance(stmt.target, ast.Name) else "?"
    for node in ast.walk(stmt.annotation):
        leaf: Optional[str] = None
        if isinstance(node, ast.Name):
            leaf = node.id
        elif isinstance(node, ast.Attribute):
            leaf = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            continue  # string annotations are opaque; not worth guessing
        if leaf is not None and leaf not in _ALLOWED_FIELD_TYPES:
            # Attribute bases (the ``typing`` in ``typing.Tuple``) are
            # allowed; only the rightmost name is the type.
            if isinstance(node, ast.Name) and any(
                isinstance(parent, ast.Attribute) and parent.value is node
                for parent in ast.walk(stmt.annotation)
            ):
                continue
            _flag(
                findings, path, stmt,
                f"{class_name}.{field_name} is typed {leaf!r}, which is not "
                f"fork-safe for a FanoutTask field",
                symbol=f"{class_name}.{field_name}",
                fix_hint="carry plain values (str/int/float/bool/Tuple/...) "
                         "and rebuild heavier objects inside run()",
            )


def check_fork_safety(analysis: ModuleAnalysis) -> List[Finding]:
    """Flag fork-unsafe task specs and import-time store/lock state."""
    findings: List[Finding] = []
    path = analysis.path

    # -- FanoutTask-shaped classes -------------------------------------
    for node in ast.walk(analysis.tree):
        if not isinstance(node, ast.ClassDef) or not _is_task_class(node):
            continue
        if not _frozen_dataclass_decorator(node):
            _flag(
                findings, path, node,
                f"task class {node.name} must be a @dataclass(frozen=True) "
                f"so its spec is immutable and pickles by value",
                symbol=node.name,
                fix_hint="decorate with @dataclass(frozen=True) and carry "
                         "only plain-value fields",
            )
        # Only class-level statements are spec state that gets pickled;
        # lambdas created *inside* run() live in the worker and are fine.
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if isinstance(stmt, ast.AnnAssign):
                _check_field_annotation(findings, path, node.name, stmt)
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Lambda):
                    _flag(
                        findings, path, sub,
                        f"task class {node.name} holds a lambda in its "
                        f"class body — lambdas do not pickle into worker "
                        f"processes",
                        symbol=node.name,
                        fix_hint="use a module-level function or a plain "
                                 "value instead of a lambda field/default",
                    )

    # -- module-level store/lock state ---------------------------------
    for stmt in iter_statements(analysis.tree.body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in _MODULE_HAZARD_CALLS:
                _flag(
                    findings, path, node,
                    f"module-level {func.id}(...) runs at import time; "
                    f"forked workers inherit its state",
                    symbol=func.id,
                    fix_hint="construct stores/workspaces lazily inside a "
                             "function (e.g. active_workspace())",
                )
            elif isinstance(func, ast.Attribute) and func.attr == "acquire":
                _flag(
                    findings, path, node,
                    "module-level lock acquisition at import time can "
                    "deadlock forked workers",
                    symbol="acquire",
                    fix_hint="acquire locks inside functions, scoped with "
                             "`with`",
                )
    return findings
