"""Observability contracts: registered instrument names, cold warm paths.

Span and counter names are diffed across runs and asserted on in CI, so
they behave like an API surface (:mod:`repro.obs.catalog` is the
registry). Two failure modes need static enforcement:

* **unregistered / malformed names** — a typo'd ``span("engine.comple")``
  still renders a trace; nothing fails, the data is just unfindable.
  Every literal name passed to ``span(...)`` / ``@traced(...)`` /
  ``registry.counter(...)`` must be registered; f-string names must
  start with a registered dynamic prefix (``f"cli.{cmd}"``,
  ``f"store.{field}"``). Names built from plain variables are untracked
  — the registry cannot see through them, so they stay silent.
* **instrumented warm paths** — per-element helpers
  (``evaluate_compiled_batch_us``, the stacked-model kernels) run
  thousands of times per sweep; even a no-op span costs a dict build
  and a context-manager enter per call. Such functions carry an
  ``# obs: warm`` marker; this rule flags any span/traced instrumentation
  inside them, turning the comment from advice into a contract — callers
  instrument around the hot loop instead.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.obs.catalog import (
    DYNAMIC_METRIC_PREFIXES,
    DYNAMIC_SPAN_PREFIXES,
    is_registered_metric,
    is_registered_span,
    well_formed,
)
from repro.staticcheck.astcheck.analysis import (
    FunctionInfo,
    ModuleAnalysis,
    iter_statements,
)
from repro.staticcheck.findings import Finding

RULE_OBS_NAME = "obs-name"
RULE_OBS_WARM = "obs-warm"

FAMILY = "obs"

WARM_MARKER = "warm"

#: Call shapes that open a span: ``span("x")`` / ``tracer.span("x")``.
_SPAN_FUNCS = frozenset({"span", "traced"})
#: Instrument-factory methods on a metrics registry.
_METRIC_FUNCS = frozenset({"counter", "gauge", "histogram"})


def _call_kind(node: ast.Call) -> Optional[str]:
    """"span" or "metric" when this call names an instrument, else None."""
    func = node.func
    name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", "")
    if name in _SPAN_FUNCS:
        return "span"
    if name in _METRIC_FUNCS and isinstance(func, ast.Attribute):
        return "metric"
    return None


def _name_argument(node: ast.Call) -> Optional[ast.expr]:
    if node.args:
        return node.args[0]
    for kw in node.keywords:
        if kw.arg == "name":
            return kw.value
    return None


def _literal_prefix(node: ast.JoinedStr) -> str:
    """The leading constant text of an f-string (empty when dynamic-first)."""
    if node.values and isinstance(node.values[0], ast.Constant) \
            and isinstance(node.values[0].value, str):
        return node.values[0].value
    return ""


def _check_name(
    analysis: ModuleAnalysis, node: ast.Call, kind: str,
    findings: List[Finding],
) -> None:
    arg = _name_argument(node)
    registered = is_registered_span if kind == "span" else is_registered_metric
    prefixes = DYNAMIC_SPAN_PREFIXES if kind == "span" else DYNAMIC_METRIC_PREFIXES
    if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
        name = arg.value
        if not well_formed(name):
            findings.append(Finding(
                path=analysis.path, line=node.lineno, col=node.col_offset,
                rule=RULE_OBS_NAME,
                message=f"{kind} name {name!r} is not subsystem.verb shaped",
                symbol=name, family=FAMILY,
                fix_hint="use lowercase dot-joined segments, e.g. "
                         "'engine.compile'",
            ))
        elif not registered(name):
            findings.append(Finding(
                path=analysis.path, line=node.lineno, col=node.col_offset,
                rule=RULE_OBS_NAME,
                message=f"{kind} name {name!r} is not registered in "
                        f"repro.obs.catalog",
                symbol=name, family=FAMILY,
                fix_hint=f"add {name!r} to the "
                         f"{'SPAN' if kind == 'span' else 'METRIC'}_CATALOG "
                         f"(or fix the typo)",
            ))
    elif isinstance(arg, ast.JoinedStr):
        prefix = _literal_prefix(arg)
        if not prefix or not any(prefix.startswith(p) for p in prefixes):
            shown = prefix or "<dynamic>"
            findings.append(Finding(
                path=analysis.path, line=node.lineno, col=node.col_offset,
                rule=RULE_OBS_NAME,
                message=f"dynamic {kind} name with prefix {shown!r} has no "
                        f"registered dynamic prefix in repro.obs.catalog",
                symbol=shown, family=FAMILY,
                fix_hint="start the f-string with a registered prefix "
                         "(DYNAMIC_*_PREFIXES) or use a literal name",
            ))
    # Plain variables are untracked: the name was checked where the
    # literal was written, not where it is threaded through.


def _span_calls_in(stmts: List[ast.stmt]) -> List[Tuple[ast.Call, str]]:
    """(call, kind) pairs for instrument calls in this body, skipping
    nested function/class scopes (they carry their own markers)."""
    calls: List[Tuple[ast.Call, str]] = []
    for stmt in iter_statements(stmts):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call):
                kind = _call_kind(node)
                if kind is not None:
                    calls.append((node, kind))
    return calls


def _check_warm_function(
    analysis: ModuleAnalysis, info: FunctionInfo, findings: List[Finding]
) -> None:
    flagged: List[ast.AST] = []
    node = info.node
    for decorator in node.decorator_list:
        if isinstance(decorator, ast.Call) and _call_kind(decorator) == "span":
            flagged.append(decorator)
    flagged.extend(call for call, kind in _span_calls_in(node.body)
                   if kind == "span")
    for hit in flagged:
        findings.append(Finding(
            path=analysis.path,
            line=getattr(hit, "lineno", node.lineno),
            col=getattr(hit, "col_offset", 0),
            rule=RULE_OBS_WARM,
            message=f"{info.qualname} is marked '# obs: warm' but carries "
                    f"span/traced instrumentation — even a no-op span costs "
                    f"per-call overhead on a warm path",
            symbol=info.qualname, family=FAMILY,
            fix_hint="instrument the cold caller around the hot loop, or "
                     "drop the warm marker if this path is not hot",
        ))


def check_obs_contracts(analysis: ModuleAnalysis) -> List[Finding]:
    """Flag unregistered instrument names and instrumented warm paths."""
    findings: List[Finding] = []
    # Instrument definitions themselves (repro.obs.*) thread names through
    # variables and are naturally untracked; no special-casing needed.
    for node in ast.walk(analysis.tree):
        if isinstance(node, ast.Call):
            kind = _call_kind(node)
            if kind is not None:
                _check_name(analysis, node, kind, findings)
    for info in analysis.functions:
        if WARM_MARKER in info.markers:
            _check_warm_function(analysis, info, findings)
    return findings
