"""Fingerprint purity: spec-builder functions must be deterministic.

Artifact keys are SHA-256 digests over *configuration specs*
(:mod:`repro.artifacts.fingerprint`). The whole content-addressing story
— CI cache keys, cross-process compute-once, ``--jobs 8`` byte-identity
— rests on one invariant: a spec is a pure function of the configuration.
A wall-clock read, an environment variable, ``os.cpu_count()``, or a
``jobs`` value leaking into a spec re-keys the artifact per run, per
machine, or per parallelism level, which silently defeats every cache
(PR 5 enforced "jobs never in a spec" by convention; this rule enforces
it by analysis).

A function is a **spec builder** when it passes a locally-constructed
dict (a dict literal assigned in the function, or built via
``spec[...] = ...``) as the spec argument of ``fingerprint(...)``,
``key_for(...)``, or ``get_or_create(...)`` — or when it is a dedicated
spec helper: its name has a ``spec`` word-segment and it returns a
locally-built dict (``_canonical_profile_spec``-style factoring, the fix
this rule's hints recommend, stays covered after the refactor). Inside a
spec builder this pass flags:

* wall-clock reads (``time.time``/``perf_counter``/...,
  ``datetime.now``/``utcnow``/``today``);
* ``os.cpu_count()`` and ``multiprocessing.cpu_count()``;
* environment reads (``os.environ[...]`` / ``os.environ.get`` /
  ``os.getenv``) whose key is not in the resolution allowlist
  (``REPRO_WORKSPACE`` / ``REPRO_TRACE`` / ``REPRO_METRICS`` — the
  documented path-resolution variables, which never enter a spec);
* any value derived from a ``jobs`` parameter (tracked through local
  assignments by the provenance pass) flowing into the spec dict.

Functions that merely *receive* a spec (the store itself) are not
builders and are exempt — their clocks are latency accounting, not key
material.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set

from repro.staticcheck.astcheck.analysis import (
    FunctionInfo,
    ModuleAnalysis,
    iter_statements,
    tainted_names,
)
from repro.staticcheck.findings import Finding

RULE_PURITY = "fingerprint-purity"

FAMILY = "fingerprint"

#: Calls whose 2nd (1-based) argument is the spec mapping.
_SPEC_SINKS = {"get_or_create": 1, "key_for": 1, "fingerprint": 2}

_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time",
})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})

#: Environment variables that only resolve *paths* and are documented to
#: never participate in a fingerprint.
ENV_ALLOWLIST = frozenset({"REPRO_WORKSPACE", "REPRO_TRACE", "REPRO_METRICS"})

#: Parameter names that encode parallelism, never configuration.
_PARALLELISM_PARAMS = frozenset({"jobs", "n_jobs", "num_workers", "max_workers"})


def _spec_argument(node: ast.Call) -> Optional[ast.expr]:
    """The spec argument of a fingerprint sink call, or None."""
    func = node.func
    name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
    index = _SPEC_SINKS.get(name)
    if index is None:
        return None
    for kw in node.keywords:
        if kw.arg == "spec":
            return kw.value
    if len(node.args) > index:
        return node.args[index]
    return None


def _local_dict_names(body: Sequence[ast.stmt]) -> Set[str]:
    """Names assigned a dict literal (or dict() call) in this scope."""
    names: Set[str] = set()
    for stmt in iter_statements(body):
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        value: Optional[ast.expr] = None
        targets: List[ast.expr] = []
        if isinstance(stmt, ast.Assign):
            value, targets = stmt.value, stmt.targets
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            value, targets = stmt.value, [stmt.target]
        if value is None:
            continue
        is_dict = isinstance(value, (ast.Dict, ast.DictComp)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id == "dict"
        )
        if is_dict:
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _spec_expressions(
    info: FunctionInfo, local_dicts: Set[str]
) -> List[ast.expr]:
    """Expressions whose values become key material for this function.

    The dict literal (or the assignments building the named dict) passed
    as a spec argument — only these carry the purity obligation for the
    ``jobs`` check; ambient reads are checked function-wide.
    """
    spec_names: Set[str] = set()
    exprs: List[ast.expr] = []
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            spec = _spec_argument(node)
            if spec is None:
                continue
            if isinstance(spec, (ast.Dict, ast.DictComp)):
                exprs.append(spec)
            elif isinstance(spec, ast.Name) and spec.id in local_dicts:
                spec_names.add(spec.id)
    if "spec" in info.name.lower().split("_"):
        for stmt in iter_statements(info.node.body):
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if isinstance(stmt.value, (ast.Dict, ast.DictComp)):
                    exprs.append(stmt.value)
                elif isinstance(stmt.value, ast.Name) \
                        and stmt.value.id in local_dicts:
                    spec_names.add(stmt.value.id)
    if spec_names:
        for stmt in iter_statements(info.node.body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id in spec_names:
                        exprs.append(stmt.value)
                    elif isinstance(target, ast.Subscript) and isinstance(
                        target.value, ast.Name
                    ) and target.value.id in spec_names:
                        exprs.append(stmt.value)
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                if isinstance(stmt.target, ast.Name) \
                        and stmt.target.id in spec_names:
                    exprs.append(stmt.value)
    return exprs


def _is_spec_builder(info: FunctionInfo, local_dicts: Set[str]) -> bool:
    for node in ast.walk(info.node):
        if isinstance(node, ast.Call):
            spec = _spec_argument(node)
            if isinstance(spec, (ast.Dict, ast.DictComp)):
                return True
            if isinstance(spec, ast.Name) and spec.id in local_dicts:
                return True
    if "spec" in info.name.lower().split("_"):
        for stmt in iter_statements(info.node.body):
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            if isinstance(stmt, ast.Return) and stmt.value is not None:
                if isinstance(stmt.value, (ast.Dict, ast.DictComp)):
                    return True
                if isinstance(stmt.value, ast.Name) \
                        and stmt.value.id in local_dicts:
                    return True
    return False


class _PurityScan:
    def __init__(self, analysis: ModuleAnalysis, info: FunctionInfo,
                 findings: List[Finding]) -> None:
        self.analysis = analysis
        self.info = info
        self.findings = findings

    def _flag(self, node: ast.AST, what: str, message: str, fix_hint: str) -> None:
        self.findings.append(Finding(
            path=self.analysis.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=RULE_PURITY,
            message=message,
            symbol=what,
            family=FAMILY,
            fix_hint=fix_hint,
        ))

    def scan_ambient_reads(self) -> None:
        """Clocks / env / cpu_count anywhere in the builder function."""
        for node in ast.walk(self.info.node):
            if isinstance(node, ast.Attribute):
                base = node.value
                if isinstance(base, ast.Name):
                    if base.id == "time" and node.attr in _CLOCK_ATTRS:
                        self._flag(
                            node, f"time.{node.attr}",
                            f"spec builder {self.info.qualname} reads "
                            f"time.{node.attr} — wall clocks must never "
                            f"feed a fingerprint",
                            fix_hint="pass timestamps in explicitly, or move "
                                     "the clock out of the spec builder",
                        )
                    elif base.id in ("datetime", "date") \
                            and node.attr in _DATETIME_ATTRS:
                        self._flag(
                            node, f"{base.id}.{node.attr}",
                            f"spec builder {self.info.qualname} reads "
                            f"{base.id}.{node.attr} — wall clocks must "
                            f"never feed a fingerprint",
                            fix_hint="pass dates in explicitly",
                        )
                    elif base.id in ("os", "multiprocessing") \
                            and node.attr == "cpu_count":
                        self._flag(
                            node, f"{base.id}.cpu_count",
                            f"spec builder {self.info.qualname} reads "
                            f"{base.id}.cpu_count() — machine shape must "
                            f"never feed a fingerprint",
                            fix_hint="parallelism belongs in run_fanout's "
                                     "jobs argument, never in a spec",
                        )
            if isinstance(node, ast.Call):
                self._check_env_call(node)
            if isinstance(node, ast.Subscript):
                # os.environ["X"]
                if isinstance(node.value, ast.Attribute) \
                        and node.value.attr == "environ" \
                        and isinstance(node.value.value, ast.Name) \
                        and node.value.value.id == "os":
                    self._check_env_key(node, node.slice)

    def _check_env_call(self, node: ast.Call) -> None:
        func = node.func
        # os.getenv("X") / os.environ.get("X")
        is_getenv = (
            isinstance(func, ast.Attribute) and func.attr == "getenv"
            and isinstance(func.value, ast.Name) and func.value.id == "os"
        )
        is_environ_get = (
            isinstance(func, ast.Attribute) and func.attr == "get"
            and isinstance(func.value, ast.Attribute)
            and func.value.attr == "environ"
            and isinstance(func.value.value, ast.Name)
            and func.value.value.id == "os"
        )
        if is_getenv or is_environ_get:
            key_node = node.args[0] if node.args else None
            self._check_env_key(node, key_node)

    def _check_env_key(self, node: ast.AST, key_node: Optional[ast.expr]) -> None:
        key = None
        if isinstance(key_node, ast.Constant) and isinstance(key_node.value, str):
            key = key_node.value
        if key is not None and key in ENV_ALLOWLIST:
            return
        shown = f"${key}" if key is not None else "a dynamic key"
        self._flag(
            node, "os.environ",
            f"spec builder {self.info.qualname} reads {shown} from the "
            f"environment — specs must not depend on ambient env state",
            fix_hint="resolve the value at the call boundary and pass it "
                     "in as an argument",
        )

    def scan_jobs_flow(self, spec_exprs: List[ast.expr]) -> None:
        """Parallelism parameters must never flow into the spec dict."""
        seeds = {p for p in self.info.params if p in _PARALLELISM_PARAMS}
        if not seeds:
            return
        tainted = tainted_names(self.info.node.body, seeds)
        for expr in spec_exprs:
            for node in ast.walk(expr):
                if isinstance(node, ast.Name) \
                        and isinstance(node.ctx, ast.Load) \
                        and node.id in tainted:
                    self._flag(
                        node, node.id,
                        f"{node.id!r} (derived from a parallelism "
                        f"parameter) flows into the artifact spec of "
                        f"{self.info.qualname} — jobs never belong in a "
                        f"fingerprint",
                        fix_hint="keep jobs out of the spec; the artifact "
                                 "bytes are identical at any job count",
                    )


def check_fingerprint_purity(analysis: ModuleAnalysis) -> List[Finding]:
    """Flag impure spec builders in one module."""
    findings: List[Finding] = []
    for info in analysis.functions:
        local_dicts = _local_dict_names(info.node.body)
        if not _is_spec_builder(info, local_dicts):
            continue
        scan = _PurityScan(analysis, info, findings)
        scan.scan_ambient_reads()
        scan.scan_jobs_flow(_spec_expressions(info, local_dicts))
    return findings
