"""Baseline files: grandfathered findings that don't fail the build.

A baseline is a JSON file of finding fingerprints (rule + file + symbol,
deliberately line-number-free). Findings whose fingerprint appears in the
baseline are reported as suppressed instead of failing the run, which lets
a new rule land with the tree's pre-existing debt frozen: new code is held
to the rule immediately, old findings surface one file at a time.

Workflow::

    python tools/check.py src/repro --write-baseline   # freeze current debt
    python tools/check.py src/repro                    # fails only on NEW findings

Stale fingerprints (entries matching nothing) are reported so the baseline
shrinks monotonically as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import FrozenSet, List, Sequence, Tuple

from repro.errors import ReproError
from repro.staticcheck.findings import Finding

BASELINE_VERSION = 1


class BaselineError(ReproError):
    """A baseline file is unreadable or structurally invalid."""


@dataclass(frozen=True)
class Baseline:
    """An immutable set of grandfathered finding fingerprints."""

    fingerprints: FrozenSet[str] = frozenset()
    path: str = ""

    def split(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, grandfathered)."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            (old if finding.fingerprint in self.fingerprints else new).append(finding)
        return new, old

    def stale_entries(self, findings: Sequence[Finding]) -> List[str]:
        """Baseline fingerprints that no current finding matches."""
        live = {f.fingerprint for f in findings}
        return sorted(self.fingerprints - live)


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file; a missing file is an empty baseline."""
    if not path.exists():
        return Baseline(path=str(path))
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict) or not isinstance(data.get("fingerprints"), list):
        raise BaselineError(
            f"baseline {path} must be an object with a 'fingerprints' list"
        )
    fingerprints = data["fingerprints"]
    if not all(isinstance(fp, str) for fp in fingerprints):
        raise BaselineError(f"baseline {path} fingerprints must all be strings")
    return Baseline(fingerprints=frozenset(fingerprints), path=str(path))


def write_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Freeze the given findings as the new baseline at ``path``."""
    fingerprints = sorted({f.fingerprint for f in findings})
    payload = {
        "version": BASELINE_VERSION,
        "comment": (
            "Grandfathered repro.staticcheck findings. Entries are "
            "rule::path::symbol fingerprints; remove entries as debt is "
            "paid down. Regenerate with: python tools/check.py --write-baseline"
        ),
        "fingerprints": fingerprints,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return Baseline(fingerprints=frozenset(fingerprints), path=str(path))
