"""Baseline files: grandfathered findings that don't fail the build.

A baseline is a JSON file of finding fingerprints (rule + file + symbol,
deliberately line-number-free). Findings whose fingerprint appears in the
baseline are reported as suppressed instead of failing the run, which lets
a new rule land with the tree's pre-existing debt frozen: new code is held
to the rule immediately, old findings surface one file at a time.

Workflow::

    python tools/check.py src/repro --write-baseline   # freeze current debt
    python tools/check.py src/repro                    # fails only on NEW findings

Two on-disk versions exist. Version 1 is a flat ``fingerprints`` string
list; version 2 records one entry per fingerprint with its rule and
family, so a reviewer reading the baseline can see *what kind* of debt is
frozen without grepping the tree. Both load; writes always produce v2.

Stale fingerprints (entries matching nothing) are reported so the baseline
shrinks monotonically as debt is paid down.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, FrozenSet, List, Mapping, Sequence, Tuple

from repro.errors import ReproError
from repro.staticcheck.findings import Finding

BASELINE_VERSION = 2

_COMMENT = (
    "Grandfathered repro.staticcheck findings. Entries are "
    "rule::path::symbol fingerprints; remove entries as debt is "
    "paid down. Regenerate with: python tools/check.py --write-baseline"
)


class BaselineError(ReproError):
    """A baseline file is unreadable or structurally invalid."""


@dataclass(frozen=True)
class Baseline:
    """An immutable set of grandfathered finding fingerprints.

    ``entries`` carries the v2 per-fingerprint metadata (rule, family);
    v1 files load with empty metadata. Matching is by fingerprint only —
    the metadata is for humans reading the file.
    """

    fingerprints: FrozenSet[str] = frozenset()
    path: str = ""
    entries: Mapping[str, Mapping[str, str]] = field(default_factory=dict)

    def split(self, findings: Sequence[Finding]) -> Tuple[List[Finding], List[Finding]]:
        """Partition findings into (new, grandfathered)."""
        new: List[Finding] = []
        old: List[Finding] = []
        for finding in findings:
            (old if finding.fingerprint in self.fingerprints else new).append(finding)
        return new, old

    def stale_entries(self, findings: Sequence[Finding]) -> List[str]:
        """Baseline fingerprints that no current finding matches."""
        live = {f.fingerprint for f in findings}
        return sorted(self.fingerprints - live)


def _load_v1(data: Dict[str, Any], path: Path) -> Baseline:
    fingerprints = data.get("fingerprints")
    if not isinstance(fingerprints, list) \
            or not all(isinstance(fp, str) for fp in fingerprints):
        raise BaselineError(
            f"baseline {path} must carry a 'fingerprints' list of strings"
        )
    return Baseline(fingerprints=frozenset(fingerprints), path=str(path))


def _load_v2(data: Dict[str, Any], path: Path) -> Baseline:
    raw_entries = data.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path} (v2) must carry an 'entries' list")
    entries: Dict[str, Dict[str, str]] = {}
    for entry in raw_entries:
        if not isinstance(entry, dict) \
                or not isinstance(entry.get("fingerprint"), str):
            raise BaselineError(
                f"baseline {path} (v2) entries must be objects with a "
                f"'fingerprint' string"
            )
        entries[entry["fingerprint"]] = {
            "rule": str(entry.get("rule", "")),
            "family": str(entry.get("family", "")),
        }
    return Baseline(
        fingerprints=frozenset(entries), path=str(path), entries=entries
    )


def load_baseline(path: Path) -> Baseline:
    """Load a baseline file (v1 or v2); a missing file is an empty baseline."""
    if not path.exists():
        return Baseline(path=str(path))
    try:
        data = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(data, dict):
        raise BaselineError(f"baseline {path} must be a JSON object")
    version = data.get("version", 1)
    if version == 1 or "fingerprints" in data:
        return _load_v1(data, path)
    if version == BASELINE_VERSION:
        return _load_v2(data, path)
    raise BaselineError(f"baseline {path} has unsupported version {version!r}")


def write_baseline(path: Path, findings: Sequence[Finding]) -> Baseline:
    """Freeze the given findings as a new v2 baseline at ``path``."""
    by_fingerprint: Dict[str, Finding] = {}
    for finding in findings:
        by_fingerprint.setdefault(finding.fingerprint, finding)
    entries = [
        {
            "fingerprint": fp,
            "rule": by_fingerprint[fp].rule,
            "family": by_fingerprint[fp].family,
        }
        for fp in sorted(by_fingerprint)
    ]
    payload = {
        "version": BASELINE_VERSION,
        "comment": _COMMENT,
        "entries": entries,
    }
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return Baseline(
        fingerprints=frozenset(by_fingerprint),
        path=str(path),
        entries={e["fingerprint"]: {"rule": e["rule"], "family": e["family"]}
                 for e in entries},
    )
