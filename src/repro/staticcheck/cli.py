"""The shared ``repro check`` driver.

One implementation serves two front doors — the ``repro check``
subcommand and the standalone ``tools/check.py`` wrapper (kept for CI
and muscle memory) — so flags, exit codes, and the JSON schema cannot
drift between them.

Exit codes: 0 = clean (modulo baseline), 1 = findings, 2 = usage or
internal error.

JSON schema (``version`` bumps on breaking change)::

    {
      "version": 2,
      "tool": "repro.staticcheck",
      "files_checked": <int>,
      "cache_hits": <int>,
      "ok": <bool>,
      "exit_code": 0 | 1,
      "findings": [
        {"path": str, "line": int, "col": int, "rule": str,
         "message": str, "symbol": str, "severity": str,
         "family": str, "fix_hint": str, "fingerprint": str},
        ...
      ],
      "families": {<family>: <finding count>, ...},
      "suppressed": {"pragma": <int>, "baseline": <int>},
      "stale_baseline": [<fingerprint>, ...]
    }

Version 2 added ``family`` and ``fix_hint`` per finding plus the
``families`` rollup and ``cache_hits`` (v1 consumers keyed on the fields
that remain, but the key set changed, hence the bump).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional, Sequence, TextIO

from repro.staticcheck.baseline import (
    Baseline,
    BaselineError,
    load_baseline,
    write_baseline,
)
from repro.staticcheck.runner import (
    ALL_RULES,
    AnalysisCache,
    run_checks,
)

JSON_VERSION = 2

#: repo root resolved from this file's location (src/repro/staticcheck/).
REPO_ROOT = Path(__file__).resolve().parents[3]

DEFAULT_BASELINE = REPO_ROOT / "tools" / "check_baseline.json"


def add_check_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``repro check`` argument set to any parser/subparser."""
    parser.add_argument("paths", nargs="*", default=None,
                        help="files/directories to check (default: src/repro)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit the machine-readable report")
    parser.add_argument("--baseline", type=Path, default=None,
                        help="baseline file of grandfathered findings "
                             "(default: tools/check_baseline.json when present)")
    parser.add_argument("--update-baseline", "--write-baseline",
                        action="store_true", dest="update_baseline",
                        help="freeze current findings into the baseline (v2) "
                             "and exit 0")
    parser.add_argument("--no-contract", action="store_true",
                        help="skip the semantic registry/zoo contract sweep")
    parser.add_argument("--rules", default=None,
                        help="comma-separated subset of rules to run")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    parser.add_argument("--jobs", type=int, default=None, metavar="N",
                        help="fan per-file analysis out over N worker "
                             "processes (output is byte-identical to serial)")
    parser.add_argument("--cache", type=Path, default=None, metavar="FILE",
                        help="content-hash analysis cache: reuse results for "
                             "unchanged files, write updates back")


def build_parser(prog: str = "repro check") -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog=prog, description="Run repro.staticcheck over the tree.",
    )
    add_check_arguments(parser)
    return parser


def run_check(
    args: argparse.Namespace,
    prog: str = "repro check",
    out: Optional[TextIO] = None,
    err: Optional[TextIO] = None,
    repo_root: Optional[Path] = None,
) -> int:
    """Execute a parsed ``repro check`` invocation; returns the exit code."""
    out = out if out is not None else sys.stdout
    err = err if err is not None else sys.stderr
    root = repo_root if repo_root is not None else REPO_ROOT

    if args.list_rules:
        for rule, description in sorted(ALL_RULES.items()):
            print(f"{rule:<20s} {description}", file=out)
        return 0

    rules: Optional[List[str]] = None
    if args.rules:
        rules = [r.strip() for r in args.rules.split(",") if r.strip()]
        unknown = [r for r in rules if r not in ALL_RULES]
        if unknown:
            print(f"{prog}: unknown rules: {', '.join(unknown)}; "
                  f"try --list-rules", file=err)
            return 2

    paths = [Path(p) for p in args.paths] if args.paths \
        else [root / "src" / "repro"]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"{prog}: no such path: "
              f"{', '.join(str(p) for p in missing)}", file=err)
        return 2

    baseline_path = args.baseline
    if baseline_path is None and DEFAULT_BASELINE.exists():
        baseline_path = DEFAULT_BASELINE

    baseline: Optional[Baseline] = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"{prog}: {exc}", file=err)
            return 2

    cache = AnalysisCache(args.cache) if args.cache is not None else None

    report = run_checks(
        paths, root,
        baseline=baseline,
        rules=rules,
        contracts=not args.no_contract,
        jobs=args.jobs,
        cache=cache,
    )

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        write_baseline(target, report.findings + report.grandfathered)
        print(f"{prog}: wrote "
              f"{len(report.findings) + len(report.grandfathered)} "
              f"fingerprints to {target}", file=out)
        return 0

    exit_code = 0 if report.ok else 1
    if args.as_json:
        families: Dict[str, int] = {}
        for finding in report.findings:
            families[finding.family] = families.get(finding.family, 0) + 1
        payload = {
            "version": JSON_VERSION,
            "tool": "repro.staticcheck",
            "files_checked": report.files_checked,
            "cache_hits": report.cache_hits,
            "ok": report.ok,
            "exit_code": exit_code,
            "findings": [f.to_json() for f in report.sorted_findings()],
            "families": dict(sorted(families.items())),
            "suppressed": {
                "pragma": report.pragma_suppressed,
                "baseline": len(report.grandfathered),
            },
            "stale_baseline": report.stale_baseline,
        }
        print(json.dumps(payload, indent=2), file=out)
        return exit_code

    for finding in report.sorted_findings():
        print(finding.render(), file=out)
        if finding.fix_hint:
            print(f"    hint: {finding.fix_hint}", file=out)
    summary = (
        f"{prog}: {report.files_checked} files, "
        f"{len(report.findings)} finding(s)"
    )
    if report.grandfathered:
        summary += f", {len(report.grandfathered)} grandfathered"
    if report.pragma_suppressed:
        summary += f", {report.pragma_suppressed} pragma-suppressed"
    if report.cache_hits:
        summary += f", {report.cache_hits} cache hit(s)"
    print(summary, file=out)
    if report.stale_baseline:
        print(f"{prog}: {len(report.stale_baseline)} stale baseline "
              f"entr(y/ies) — prune them:", file=err)
        for fp in report.stale_baseline:
            print(f"  {fp}", file=err)
    return exit_code


def main(argv: Optional[Sequence[str]] = None, prog: str = "check.py") -> int:
    """Standalone entry point (what ``tools/check.py`` delegates to)."""
    args = build_parser(prog=prog).parse_args(argv)
    return run_check(args, prog=prog)
