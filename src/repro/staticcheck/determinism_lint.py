"""Determinism lint: no wall clocks or unseeded randomness in model paths.

The reproduction's ground truth is a *simulated* hardware substrate: every
profile, fit, and prediction must be a pure function of (model zoo, GPU
spec, seed). A stray ``time.time()`` or ``random.random()`` in a
model-building or regression-fit path makes runs unreproducible in ways no
test reliably catches (the paper's Fig. 5 variability is *modeled* noise,
driven by :func:`repro.hardware.noise.rng_for`, not ambient entropy).

Flagged:

* ``time.time`` / ``perf_counter`` / ``monotonic`` / ``process_time`` /
  ``time_ns`` — wall clocks;
* ``datetime.now`` / ``utcnow`` / ``today`` — wall clocks in date form;
* any use of the stdlib ``random`` module (tracked through imports);
* numpy's global-state RNG (``np.random.seed`` / ``rand`` / ``randint`` /
  ...). The explicit generator API (``np.random.default_rng``,
  ``np.random.Generator``, ``np.random.SeedSequence``) is allowed — it is
  exactly the seed plumbing this rule exists to force.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.staticcheck.findings import Finding

RULE_DETERMINISM = "determinism"

_CLOCK_ATTRS = frozenset({
    "time", "time_ns", "perf_counter", "perf_counter_ns", "monotonic",
    "monotonic_ns", "process_time",
})
_DATETIME_ATTRS = frozenset({"now", "utcnow", "today"})
#: numpy.random attributes that are allowed (explicit-seed generator API).
_NP_RANDOM_ALLOWED = frozenset({
    "default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64",
    "Philox",
})


class DeterminismLint(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        #: local aliases of the stdlib ``random`` module
        self._random_aliases: Set[str] = set()
        #: names imported *from* stdlib random (``from random import seed``)
        self._random_names: Set[str] = set()

    def _flag(self, node: ast.AST, what: str, hint: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=RULE_DETERMINISM,
            message=f"{what} breaks reproducibility; {hint}",
            symbol=what,
        ))

    # -- import tracking ----------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            if alias.name == "random":
                self._random_aliases.add(alias.asname or "random")
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module == "random":
            for alias in node.names:
                self._random_names.add(alias.asname or alias.name)
            self._flag(
                node, "from random import ...",
                "use numpy's np.random.default_rng(seed) / "
                "repro.hardware.noise.rng_for instead",
            )
        self.generic_visit(node)

    # -- usage ---------------------------------------------------------
    def visit_Attribute(self, node: ast.Attribute) -> None:
        base = node.value
        # time.<clock> -------------------------------------------------
        if isinstance(base, ast.Name) and base.id == "time" and node.attr in _CLOCK_ATTRS:
            self._flag(
                node, f"time.{node.attr}",
                "pass timestamps/durations in explicitly",
            )
        # datetime.now / date.today -----------------------------------
        if (
            isinstance(base, ast.Name)
            and base.id in ("datetime", "date")
            and node.attr in _DATETIME_ATTRS
        ):
            self._flag(
                node, f"{base.id}.{node.attr}",
                "pass timestamps in explicitly",
            )
        # stdlib random.<anything> ------------------------------------
        if isinstance(base, ast.Name) and base.id in self._random_aliases:
            self._flag(
                node, f"{base.id}.{node.attr}",
                "use np.random.default_rng(seed) / "
                "repro.hardware.noise.rng_for for seeded randomness",
            )
        # np.random.<global-state fn> ---------------------------------
        if (
            isinstance(base, ast.Attribute)
            and base.attr == "random"
            and isinstance(base.value, ast.Name)
            and base.value.id in ("np", "numpy")
            and node.attr not in _NP_RANDOM_ALLOWED
        ):
            self._flag(
                node, f"{base.value.id}.random.{node.attr}",
                "the global numpy RNG is unseeded shared state; use "
                "np.random.default_rng(seed) / repro.hardware.noise.rng_for",
            )
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Name) and func.id in self._random_names:
            self._flag(
                node, f"{func.id}()",
                "use np.random.default_rng(seed) / "
                "repro.hardware.noise.rng_for for seeded randomness",
            )
        self.generic_visit(node)


def check_determinism(tree: ast.AST, path: str) -> List[Finding]:
    """Flag wall-clock and unseeded-randomness usage in one module."""
    lint = DeterminismLint(path)
    lint.visit(tree)
    return lint.findings
