"""Finding records, suppression pragmas, and stable fingerprints.

A :class:`Finding` is one diagnostic from one checker pass. Findings are
value objects: hashable, ordered by location, and serialisable to the JSON
shape ``tools/check.py --json`` documents.

Two suppression mechanisms exist, in precedence order:

* an inline pragma comment on the offending line —
  ``# staticcheck: ignore`` silences every rule on that line and
  ``# staticcheck: ignore[unit-suffix,unit-mix]`` silences the named rules;
* a baseline file of fingerprints for grandfathered findings (see
  :mod:`repro.staticcheck.baseline`).

Fingerprints deliberately exclude line numbers so unrelated edits above a
grandfathered finding do not resurrect it; they combine rule, file, and the
offending symbol (or the message when no symbol applies).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

#: Severity levels, mildest first.
SEVERITIES = ("note", "warning", "error")

_PRAGMA_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?:\[(?P<rules>[A-Za-z0-9_,\- ]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what is wrong."""

    path: str  #: repo-relative posix path
    line: int  #: 1-based
    col: int  #: 0-based, as reported by ``ast``
    rule: str
    message: str
    symbol: str = ""  #: offending identifier, when one exists
    severity: str = "error"

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.symbol or self.message}"

    def render(self) -> str:
        """One-line human rendering, clickable in most terminals."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "symbol": self.symbol,
            "severity": self.severity,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class PragmaIndex:
    """Per-line suppression pragmas parsed from one source file.

    ``lines`` maps line number -> frozenset of suppressed rule names; the
    empty frozenset means "suppress everything on this line".
    """

    lines: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def suppresses(self, line: int, rule: str) -> bool:
        rules = self.lines.get(line)
        if rules is None:
            return False
        return not rules or rule in rules


def parse_pragmas(source: str) -> PragmaIndex:
    """Collect ``# staticcheck: ignore[...]`` pragmas per source line."""
    lines: Dict[int, FrozenSet[str]] = {}
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        raw: Optional[str] = match.group("rules")
        if raw is None:
            lines[lineno] = frozenset()
        else:
            lines[lineno] = frozenset(
                rule.strip() for rule in raw.split(",") if rule.strip()
            )
    return PragmaIndex(lines=lines)


def apply_pragmas(findings: List[Finding], pragmas: PragmaIndex) -> List[Finding]:
    """Drop findings whose line carries a matching suppression pragma."""
    return [f for f in findings if not pragmas.suppresses(f.line, f.rule)]
