"""Finding records, suppression pragmas, and stable fingerprints.

A :class:`Finding` is one diagnostic from one checker pass. Findings are
value objects: hashable, ordered by location, and serialisable to the JSON
shape ``tools/check.py --json`` documents.

Two suppression mechanisms exist, in precedence order:

* a pragma comment — ``# staticcheck: ignore`` on the offending line
  silences every rule on that line, ``# staticcheck: ignore[unit-suffix,
  unit-mix]`` silences the named rules, and the file-level form
  ``# staticcheck: ignore-file[...]`` (conventionally near the top of the
  file) silences rules for the whole file — fixture files full of
  deliberate violations opt out wholesale instead of annotating every
  line;
* a baseline file of fingerprints for grandfathered findings (see
  :mod:`repro.staticcheck.baseline`).

Fingerprints deliberately exclude line numbers so unrelated edits above a
grandfathered finding do not resurrect it; they combine rule, file, and the
offending symbol (or the message when no symbol applies).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional

#: Severity levels, mildest first.
SEVERITIES = ("note", "warning", "error")

_PRAGMA_RE = re.compile(
    r"#\s*staticcheck:\s*ignore(?P<scope>-file)?"
    r"(?:\[(?P<rules>[A-Za-z0-9_,\- ]*)\])?"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One diagnostic: where, which rule, and what is wrong."""

    path: str  #: repo-relative posix path
    line: int  #: 1-based
    col: int  #: 0-based, as reported by ``ast``
    rule: str
    message: str
    symbol: str = ""  #: offending identifier, when one exists
    severity: str = "error"
    family: str = ""  #: rule family (``axes``/``fork``/``fingerprint``/...)
    fix_hint: str = ""  #: one-line suggested remediation

    @property
    def fingerprint(self) -> str:
        """Line-number-free identity used by the baseline file."""
        return f"{self.rule}::{self.path}::{self.symbol or self.message}"

    def render(self) -> str:
        """One-line human rendering, clickable in most terminals."""
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule}: {self.message}"

    def to_json(self) -> Dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
            "symbol": self.symbol,
            "severity": self.severity,
            "family": self.family,
            "fix_hint": self.fix_hint,
            "fingerprint": self.fingerprint,
        }

    @classmethod
    def from_json(cls, data: Dict[str, object]) -> "Finding":
        """Rebuild a finding from :meth:`to_json` output (cache entries).

        ``fingerprint`` is derived, never stored state, so it is ignored
        on the way back in.
        """
        return cls(
            path=str(data["path"]),
            line=int(data["line"]),  # type: ignore[call-overload]
            col=int(data["col"]),  # type: ignore[call-overload]
            rule=str(data["rule"]),
            message=str(data["message"]),
            symbol=str(data.get("symbol", "")),
            severity=str(data.get("severity", "error")),
            family=str(data.get("family", "")),
            fix_hint=str(data.get("fix_hint", "")),
        )


@dataclass(frozen=True)
class PragmaIndex:
    """Suppression pragmas parsed from one source file.

    ``lines`` maps line number -> frozenset of suppressed rule names; the
    empty frozenset means "suppress everything on this line".
    ``file_rules`` is the union of ``ignore-file`` pragmas: None when the
    file carries none, the empty frozenset for a blanket file-wide
    suppression, a non-empty set for named rules.
    """

    lines: Dict[int, FrozenSet[str]] = field(default_factory=dict)
    file_rules: Optional[FrozenSet[str]] = None

    def suppresses(self, line: int, rule: str) -> bool:
        if self.file_rules is not None:
            if not self.file_rules or rule in self.file_rules:
                return True
        rules = self.lines.get(line)
        if rules is None:
            return False
        return not rules or rule in rules


def _parse_rule_list(raw: Optional[str]) -> FrozenSet[str]:
    if raw is None:
        return frozenset()
    return frozenset(rule.strip() for rule in raw.split(",") if rule.strip())


def parse_pragmas(source: str) -> PragmaIndex:
    """Collect ``# staticcheck: ignore[...]`` / ``ignore-file[...]`` pragmas."""
    lines: Dict[int, FrozenSet[str]] = {}
    file_rules: Optional[FrozenSet[str]] = None
    for lineno, text in enumerate(source.splitlines(), start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        rules = _parse_rule_list(match.group("rules"))
        if match.group("scope"):
            if file_rules is None:
                file_rules = rules
            elif file_rules and rules:
                file_rules = file_rules | rules
            else:
                # either pragma being a blanket ignore makes the union one
                file_rules = frozenset()
        else:
            lines[lineno] = rules
    return PragmaIndex(lines=lines, file_rules=file_rules)


def apply_pragmas(findings: List[Finding], pragmas: PragmaIndex) -> List[Finding]:
    """Drop findings whose line carries a matching suppression pragma."""
    return [f for f in findings if not pragmas.suppresses(f.line, f.rule)]
