"""Semantic contract checks: op registry vs features vs models vs zoo graphs.

The AST lints read source; this module cross-checks the *live* contracts
that hold Ceer's pipeline together, without executing a single prediction:

* **registry contract** — every registered GPU op type has a feature
  schema; every op type granted the MAC-volume feature set exists in the
  registry and runs on the GPU (no orphaned specs); host/device metadata is
  internally consistent; every schema leads with ``input_bytes`` (the
  proportional-fallback fit regresses on feature 0 and silently breaks if a
  schema reorders it).
* **zoo contract** — every zoo model builds into a validated DAG (no
  dangling producers, no cycles), every op's extracted feature vector
  matches its schema in arity and is finite and non-negative, and the
  graph's ``num_variables`` equals its optimizer-op count (each trainable
  variable gets exactly one update kernel — the communication model's
  synchronisation-unit assumption).
* **fitted-models contract** (:func:`check_fitted_models`, used by the test
  suite) — the heavy/light/CPU partition is disjoint, every fitted heavy
  regression's coefficient vector matches its op type's schema arity, and
  the pooled medians are positive microseconds.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.staticcheck.findings import Finding

RULE_REGISTRY = "registry-contract"
RULE_ZOO = "zoo-contract"
RULE_MODELS = "models-contract"

#: Pseudo-paths attached to semantic findings (these rules check live
#: objects, not single source lines).
_REGISTRY_PATH = "src/repro/graph/ops.py"
_ZOO_PATH = "src/repro/models/zoo.py"
_MODELS_PATH = "src/repro/core/op_models.py"


def _finding(path: str, rule: str, message: str, symbol: str = "") -> Finding:
    return Finding(path=path, line=1, col=0, rule=rule, message=message,
                   symbol=symbol)


def check_registry() -> List[Finding]:
    """Cross-check the op registry against the feature-schema specs."""
    from repro.graph.ops import OP_REGISTRY, Device, OpCategory
    from repro.profiling.features import (
        _COMPUTE_FEATURE_OPS, COMPUTE_SCHEMA, SIZE_SCHEMA, feature_schema,
    )

    findings: List[Finding] = []
    for op_type, op in sorted(OP_REGISTRY.items()):
        try:
            schema = feature_schema(op_type)
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            findings.append(_finding(
                _REGISTRY_PATH, RULE_REGISTRY,
                f"registered op type {op_type!r} has no feature schema "
                f"({type(exc).__name__}: {exc})",
                symbol=op_type,
            ))
            continue
        if not schema or schema[0] != "input_bytes":
            findings.append(_finding(
                _REGISTRY_PATH, RULE_REGISTRY,
                f"feature schema for {op_type!r} must lead with 'input_bytes' "
                f"(the proportional-fit fallback regresses on feature 0), "
                f"got {schema!r}",
                symbol=op_type,
            ))
        host_device = op.device is Device.CPU
        host_category = op.category is OpCategory.HOST
        if host_device != host_category:
            findings.append(_finding(
                _REGISTRY_PATH, RULE_REGISTRY,
                f"op type {op_type!r} has inconsistent placement metadata: "
                f"device={op.device.value}, category={op.category.value} "
                f"(HOST category and CPU device must coincide)",
                symbol=op_type,
            ))
    for op_type in sorted(_COMPUTE_FEATURE_OPS):
        if op_type not in OP_REGISTRY:
            findings.append(_finding(
                _REGISTRY_PATH, RULE_REGISTRY,
                f"orphaned feature spec: {op_type!r} has a MAC-volume schema "
                f"but is not a registered op type",
                symbol=op_type,
            ))
        elif OP_REGISTRY[op_type].device is not Device.GPU:
            findings.append(_finding(
                _REGISTRY_PATH, RULE_REGISTRY,
                f"{op_type!r} carries the dense-compute feature schema but "
                f"does not execute on the GPU",
                symbol=op_type,
            ))
    if tuple(COMPUTE_SCHEMA[: len(SIZE_SCHEMA)]) != tuple(SIZE_SCHEMA):
        findings.append(_finding(
            _REGISTRY_PATH, RULE_REGISTRY,
            f"COMPUTE_SCHEMA must extend SIZE_SCHEMA as a prefix so size-only "
            f"consumers stay valid; got {COMPUTE_SCHEMA!r} vs {SIZE_SCHEMA!r}",
            symbol="COMPUTE_SCHEMA",
        ))
    return findings


def check_zoo(models: Optional[Sequence[str]] = None, batch_size: int = 32) -> List[Finding]:
    """Build and validate every zoo graph; cross-check features and specs."""
    from repro.graph.ops import Device, OpCategory
    from repro.models.zoo import build_model, model_names
    from repro.profiling.features import feature_schema, features_for

    findings: List[Finding] = []
    for name in models if models is not None else model_names():
        try:
            graph = build_model(name, batch_size=batch_size)
            graph.validate()
        except Exception as exc:  # noqa: BLE001 - any failure is the finding
            findings.append(_finding(
                _ZOO_PATH, RULE_ZOO,
                f"zoo model {name!r} failed to build/validate: "
                f"{type(exc).__name__}: {exc}",
                symbol=name,
            ))
            continue
        optimizer_ops = 0
        seen_names = set()
        for op in graph:
            if op.name in seen_names:
                # The profiler keys timing records by op name; a collision
                # would silently attribute every colliding record to one op.
                findings.append(_finding(
                    _ZOO_PATH, RULE_ZOO,
                    f"{name}: duplicate operation name {op.name!r} — "
                    f"profile records could not be attributed unambiguously",
                    symbol=f"{name}.{op.name}",
                ))
            seen_names.add(op.name)
            if op.category is OpCategory.OPTIMIZER:
                optimizer_ops += 1
            for producer in op.input_ops:
                if producer not in graph:
                    findings.append(_finding(
                        _ZOO_PATH, RULE_ZOO,
                        f"{name}: op {op.name!r} has dangling input "
                        f"{producer!r}",
                        symbol=f"{name}.{op.name}",
                    ))
            if op.device is Device.CPU:
                continue
            schema = feature_schema(op.op_type)
            feats = features_for(op)
            if len(feats) != len(schema):
                findings.append(_finding(
                    _ZOO_PATH, RULE_ZOO,
                    f"{name}: op {op.name!r} ({op.op_type}) extracts "
                    f"{len(feats)} features but its schema names "
                    f"{len(schema)} ({schema!r})",
                    symbol=f"{name}.{op.op_type}",
                ))
            bad = [v for v in feats if not math.isfinite(v) or v < 0]
            if bad:
                findings.append(_finding(
                    _ZOO_PATH, RULE_ZOO,
                    f"{name}: op {op.name!r} ({op.op_type}) has "
                    f"non-finite/negative feature values {bad!r}",
                    symbol=f"{name}.{op.op_type}",
                ))
        if graph.num_variables != optimizer_ops:
            findings.append(_finding(
                _ZOO_PATH, RULE_ZOO,
                f"{name}: num_variables={graph.num_variables} but the graph "
                f"contains {optimizer_ops} optimizer ops — every trainable "
                f"variable must have exactly one update kernel (the comm "
                f"model's synchronisation-unit contract)",
                symbol=name,
            ))
        if graph.num_parameters <= 0:
            findings.append(_finding(
                _ZOO_PATH, RULE_ZOO,
                f"{name}: non-positive num_parameters "
                f"({graph.num_parameters}); the communication model's only "
                f"input would be degenerate",
                symbol=name,
            ))
    return findings


def check_fitted_models(models: "object") -> List[Finding]:
    """Contract-check a fitted :class:`ComputeTimeModels` instance."""
    from repro.profiling.features import feature_schema

    findings: List[Finding] = []
    classification = models.classification  # type: ignore[attr-defined]
    heavy = set(classification.heavy)
    light = set(classification.light)
    cpu = set(classification.cpu)
    for a, b, label in (
        (heavy, light, "heavy/light"),
        (heavy, cpu, "heavy/cpu"),
        (light, cpu, "light/cpu"),
    ):
        overlap = a & b
        if overlap:
            findings.append(_finding(
                _MODELS_PATH, RULE_MODELS,
                f"classification is not a partition: {label} overlap "
                f"{sorted(overlap)!r}",
                symbol=label,
            ))
    for (gpu_key, op_type), model in sorted(
        models.heavy_models.items()  # type: ignore[attr-defined]
    ):
        if op_type not in heavy:
            findings.append(_finding(
                _MODELS_PATH, RULE_MODELS,
                f"orphaned regression: ({gpu_key}, {op_type}) is fitted but "
                f"{op_type!r} is not classified heavy",
                symbol=f"{gpu_key}.{op_type}",
            ))
        schema = feature_schema(op_type)
        expected = len(schema) * (2 if model.regression.degree == 2 else 1)
        if len(model.regression.coef) != expected:
            findings.append(_finding(
                _MODELS_PATH, RULE_MODELS,
                f"regression for ({gpu_key}, {op_type}) has "
                f"{len(model.regression.coef)} coefficients but schema "
                f"{schema!r} at degree {model.regression.degree} requires "
                f"{expected}",
                symbol=f"{gpu_key}.{op_type}",
            ))
    for attr in ("light_median_us", "cpu_median_us"):
        value = getattr(models, attr)
        if not (isinstance(value, float) and math.isfinite(value) and value > 0):
            findings.append(_finding(
                _MODELS_PATH, RULE_MODELS,
                f"{attr} must be a positive finite microsecond quantity, "
                f"got {value!r}",
                symbol=attr,
            ))
    return findings


def check_contracts(zoo_models: Optional[Iterable[str]] = None) -> List[Finding]:
    """The registry + zoo contract sweep ``tools/check.py`` runs by default."""
    findings = check_registry()
    names = list(zoo_models) if zoo_models is not None else None
    findings.extend(check_zoo(names))
    return findings
