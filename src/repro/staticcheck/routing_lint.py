"""Engine-routing lint: predictions must flow through PredictionEngine.

PR 1 introduced the compile-once/evaluate-many
:class:`~repro.core.engine.PredictionEngine`; the scalar
``ComputeTimeModels.predict_graph_us`` walk remains as the semantics
reference. Calling the scalar path from sweep-shaped code silently forfeits
the 30-600x amortisation *and* bypasses the engine's caches, so this rule
flags any ``.predict_graph_us`` use outside the modules that legitimately
own it: the engine itself (delegation target), the estimator (the
``use_engine=False`` reference path), and tests/benchmarks (which assert
scalar/vectorized equivalence).
"""

from __future__ import annotations

import ast
from typing import List

from repro.staticcheck.findings import Finding

RULE_ROUTING = "engine-routing"

#: The scalar-path entry points the rule polices.
RESTRICTED_ATTRS = frozenset({"predict_graph_us"})

#: Module path suffixes allowed to touch the scalar path directly.
ROUTING_ALLOWED_SUFFIXES = (
    "repro/core/engine.py",
    "repro/core/estimator.py",
    "repro/core/op_models.py",  # definition site
)

#: Path fragments marking test/benchmark code (always allowed).
ROUTING_ALLOWED_FRAGMENTS = ("tests/", "benchmarks/", "conftest")


def _is_allowed(path: str) -> bool:
    if any(path.endswith(suffix) for suffix in ROUTING_ALLOWED_SUFFIXES):
        return True
    return any(fragment in path for fragment in ROUTING_ALLOWED_FRAGMENTS)


class RoutingLint(ast.NodeVisitor):
    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if node.attr in RESTRICTED_ATTRS:
            self.findings.append(Finding(
                path=self.path,
                line=node.lineno,
                col=node.col_offset,
                rule=RULE_ROUTING,
                message=(
                    f"direct {node.attr!r} use outside engine/estimator/tests; "
                    f"route predictions through PredictionEngine (or "
                    f"CeerEstimator) so graphs compile once and caches apply"
                ),
                symbol=node.attr,
            ))
        self.generic_visit(node)


def check_engine_routing(tree: ast.AST, path: str) -> List[Finding]:
    """Flag scalar prediction-path usage outside its allowlisted homes."""
    if _is_allowed(path):
        return []
    lint = RoutingLint(path)
    lint.visit(tree)
    return lint.findings
