"""Checker orchestration: walk a tree, run every pass, aggregate findings.

The runner is what both ``tools/check.py`` and the test suite drive. It
knows three things the individual passes do not:

* how to turn paths into (source, AST) pairs and repo-relative names;
* which passes run per file vs once per run (the semantic contract sweep);
* how suppression layers stack (inline pragmas, then the baseline).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, List, Optional, Sequence, Tuple

from repro.staticcheck.artifact_lint import RULE_ARTIFACT, check_artifact_routing
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.determinism_lint import RULE_DETERMINISM, check_determinism
from repro.staticcheck.findings import Finding, apply_pragmas, parse_pragmas
from repro.staticcheck.graph_contract import (
    RULE_MODELS, RULE_REGISTRY, RULE_ZOO, check_contracts,
)
from repro.staticcheck.routing_lint import RULE_ROUTING, check_engine_routing
from repro.staticcheck.unit_lint import (
    RULE_LITERAL, RULE_MIX, RULE_SUFFIX, check_unit_safety,
)

RULE_PARSE = "parse-error"

#: Every rule the subsystem can emit, with a one-line description.
ALL_RULES = {
    RULE_SUFFIX: "time/cost identifiers must carry a unit suffix",
    RULE_MIX: "+/-/comparison must not mix different unit suffixes",
    RULE_LITERAL: "conversion literals must go through repro.units",
    RULE_ROUTING: "predictions route through PredictionEngine outside core",
    RULE_ARTIFACT: "expensive artifacts cache via the workspace, not lru_cache",
    RULE_DETERMINISM: "no wall clocks / unseeded randomness",
    RULE_REGISTRY: "op registry and feature schemas stay in lockstep",
    RULE_ZOO: "zoo graphs validate; features match schemas",
    RULE_MODELS: "fitted models match classification and schemas",
    RULE_PARSE: "files must parse",
}

#: The per-file AST passes, in report order.
AST_PASSES: Tuple[Callable[[ast.AST, str], List[Finding]], ...] = (
    check_unit_safety,
    check_engine_routing,
    check_artifact_routing,
    check_determinism,
)


@dataclass
class CheckReport:
    """Aggregated result of one checker run."""

    findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    pragma_suppressed: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings)


def check_source(
    source: str,
    path: str,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run the AST passes over one source string (the test-fixture entry).

    ``path`` is the repo-relative name used in findings and allowlists;
    ``rules`` optionally restricts which rules may be reported.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            rule=RULE_PARSE, message=f"syntax error: {exc.msg}",
        )]
    findings: List[Finding] = []
    for check in AST_PASSES:
        findings.extend(check(tree, path))
    findings = apply_pragmas(findings, parse_pragmas(source))
    if rules is not None:
        allowed = set(rules)
        findings = [f for f in findings if f.rule in allowed]
    return sorted(findings)


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py":
            out.append(path)
    seen = set()
    unique: List[Path] = []
    for p in out:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique


def relative_path(path: Path, root: Path) -> str:
    """Repo-relative posix path (falls back to the absolute path)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


def run_checks(
    paths: Sequence[Path],
    root: Path,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[str]] = None,
    contracts: bool = True,
) -> CheckReport:
    """Run every enabled pass over ``paths`` and aggregate a report."""
    report = CheckReport()
    raw: List[Finding] = []
    for path in iter_python_files(paths):
        rel = relative_path(path, root)
        try:
            source = path.read_text()
        except OSError as exc:
            raw.append(Finding(
                path=rel, line=1, col=0, rule=RULE_PARSE,
                message=f"cannot read file: {exc}",
            ))
            continue
        report.files_checked += 1
        before = check_source(source, rel, rules=None)
        # check_source already applied pragmas; count what they removed for
        # the report by re-deriving the unsuppressed total.
        try:
            tree = ast.parse(source, filename=rel)
            unsuppressed = sum(len(check(tree, rel)) for check in AST_PASSES)
            report.pragma_suppressed += unsuppressed - len(before)
        except SyntaxError:
            pass
        raw.extend(before)
    if contracts:
        raw.extend(check_contracts())
    if rules is not None:
        allowed = set(rules)
        raw = [f for f in raw if f.rule in allowed]
    if baseline is not None:
        new, old = baseline.split(raw)
        report.findings = sorted(new)
        report.grandfathered = sorted(old)
        report.stale_baseline = baseline.stale_entries(raw)
    else:
        report.findings = sorted(raw)
    return report
