"""Checker orchestration: walk a tree, run every pass, aggregate findings.

The runner is what ``repro check``, ``tools/check.py``, and the test
suite drive. It knows four things the individual passes do not:

* how to turn paths into (source, AST) pairs and repo-relative names;
* which passes run per file vs once per run (the semantic contract sweep);
* how suppression layers stack (inline pragmas, then the baseline);
* how per-file analysis scales out — files fan out over
  :func:`repro.parallel.run_fanout` (each file's findings are a pure
  function of its bytes, so results are order-merged and ``--jobs 8`` is
  byte-identical to serial), with an optional on-disk cache keyed on
  content hashes so unchanged files skip analysis entirely (CI restores
  the cache across runs).
"""

from __future__ import annotations

import ast
import hashlib
import json
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.metrics import default_registry
from repro.obs.spans import span
from repro.staticcheck.artifact_lint import RULE_ARTIFACT, check_artifact_routing
from repro.staticcheck.astcheck import (
    AST_RULE_FAMILIES,
    run_ast_passes,
)
from repro.staticcheck.astcheck.axes import (
    RULE_AXIS_BROADCAST,
    RULE_AXIS_DROP,
    RULE_NAN_MASK,
)
from repro.staticcheck.astcheck.forksafe import RULE_FORK
from repro.staticcheck.astcheck.obscontract import RULE_OBS_NAME, RULE_OBS_WARM
from repro.staticcheck.astcheck.purity import RULE_PURITY
from repro.staticcheck.baseline import Baseline
from repro.staticcheck.determinism_lint import RULE_DETERMINISM, check_determinism
from repro.staticcheck.findings import Finding, apply_pragmas, parse_pragmas
from repro.staticcheck.graph_contract import (
    RULE_MODELS, RULE_REGISTRY, RULE_ZOO, check_contracts,
)
from repro.staticcheck.routing_lint import RULE_ROUTING, check_engine_routing
from repro.staticcheck.unit_lint import (
    RULE_LITERAL, RULE_MIX, RULE_SUFFIX, check_unit_safety,
)

RULE_PARSE = "parse-error"

#: Every rule the subsystem can emit, with a one-line description.
ALL_RULES = {
    RULE_SUFFIX: "time/cost identifiers must carry a unit suffix",
    RULE_MIX: "+/-/comparison must not mix different unit suffixes",
    RULE_LITERAL: "conversion literals must go through repro.units",
    RULE_ROUTING: "predictions route through PredictionEngine outside core",
    RULE_ARTIFACT: "expensive artifacts cache via the workspace, not lru_cache",
    RULE_DETERMINISM: "no wall clocks / unseeded randomness",
    RULE_REGISTRY: "op registry and feature schemas stay in lockstep",
    RULE_ZOO: "zoo graphs validate; features match schemas",
    RULE_MODELS: "fitted models match classification and schemas",
    RULE_AXIS_DROP: "reductions/indexing must respect # axes: annotations",
    RULE_AXIS_BROADCAST: "broadcasts must align named axes",
    RULE_NAN_MASK: "cost_usd consumers must mask NaN or use nan-aware ops",
    RULE_FORK: "FanoutTask specs frozen + picklable; no import-time locks",
    RULE_PURITY: "spec builders read no clocks/env/cpu_count/jobs",
    RULE_OBS_NAME: "span/counter names registered in repro.obs.catalog",
    RULE_OBS_WARM: "no span/traced instrumentation inside # obs: warm paths",
    RULE_PARSE: "files must parse",
}

#: rule id -> rule family, for report grouping and baseline v2 entries.
RULE_FAMILIES: Dict[str, str] = {
    RULE_SUFFIX: "units", RULE_MIX: "units", RULE_LITERAL: "units",
    RULE_ROUTING: "routing", RULE_ARTIFACT: "routing",
    RULE_DETERMINISM: "determinism",
    RULE_REGISTRY: "contracts", RULE_ZOO: "contracts", RULE_MODELS: "contracts",
    RULE_PARSE: "parse",
    **AST_RULE_FAMILIES,
}

#: The legacy per-file AST passes, in report order (astcheck families run
#: after these via :func:`run_ast_passes`).
AST_PASSES: Tuple[Callable[[ast.AST, str], List[Finding]], ...] = (
    check_unit_safety,
    check_engine_routing,
    check_artifact_routing,
    check_determinism,
)

#: Bump when any pass changes behaviour: invalidates analysis caches.
ANALYSIS_VERSION = 2

CACHE_VERSION = 1


def _stamp_family(finding: Finding) -> Finding:
    """Fill in ``family`` for passes that predate the field."""
    if finding.family:
        return finding
    return replace(finding, family=RULE_FAMILIES.get(finding.rule, ""))


@dataclass
class CheckReport:
    """Aggregated result of one checker run."""

    findings: List[Finding] = field(default_factory=list)
    grandfathered: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0
    pragma_suppressed: int = 0
    cache_hits: int = 0

    @property
    def ok(self) -> bool:
        return not self.findings

    def sorted_findings(self) -> List[Finding]:
        return sorted(self.findings)


def _analyse_source(source: str, path: str) -> Tuple[List[Finding], int]:
    """All passes over one file: (post-pragma findings, n pragma-suppressed).

    No rule filtering here — the full finding set is what the analysis
    cache stores, so one cache entry serves every ``--rules`` selection.
    """
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        return [Finding(
            path=path, line=exc.lineno or 1, col=(exc.offset or 1) - 1,
            rule=RULE_PARSE, message=f"syntax error: {exc.msg}",
            family="parse", fix_hint="fix the syntax error",
        )], 0
    findings: List[Finding] = []
    for check in AST_PASSES:
        findings.extend(check(tree, path))
    findings.extend(run_ast_passes(tree, source, path))
    findings = [_stamp_family(f) for f in findings]
    kept = apply_pragmas(findings, parse_pragmas(source))
    return sorted(kept), len(findings) - len(kept)


def check_source(
    source: str,
    path: str,
    rules: Optional[Sequence[str]] = None,
) -> List[Finding]:
    """Run every per-file pass over one source string (the fixture entry).

    ``path`` is the repo-relative name used in findings and allowlists;
    ``rules`` optionally restricts which rules may be reported.
    """
    findings, _ = _analyse_source(source, path)
    if rules is not None:
        allowed = set(rules)
        findings = [f for f in findings if f.rule in allowed]
    return findings


def iter_python_files(paths: Iterable[Path]) -> List[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for path in paths:
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.suffix == ".py":
            out.append(path)
    seen = set()
    unique: List[Path] = []
    for p in out:
        if p not in seen:
            seen.add(p)
            unique.append(p)
    return unique


def relative_path(path: Path, root: Path) -> str:
    """Repo-relative posix path (falls back to the absolute path)."""
    try:
        return path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        return path.as_posix()


# -- per-file fan-out task ------------------------------------------------

@dataclass(frozen=True)
class CheckFileTask:
    """Analyse one file in a worker process.

    The spec carries only strings (fork-safe by this subsystem's own
    fork-safety rule); the worker re-reads the file, so the parent never
    ships source text across the fork.
    """

    path: str  #: absolute filesystem path
    rel: str  #: repo-relative posix path used in findings

    def task_id(self) -> str:
        return f"check:{self.rel}"

    def run(self) -> Dict[str, object]:
        try:
            source = Path(self.path).read_text()
        except OSError as exc:
            finding = Finding(
                path=self.rel, line=1, col=0, rule=RULE_PARSE,
                message=f"cannot read file: {exc}", family="parse",
            )
            return {"findings": [finding.to_json()], "pragma_suppressed": 0,
                    "readable": False}
        with span("check.file", file=self.rel):
            findings, suppressed = _analyse_source(source, self.rel)
        return {
            "findings": [f.to_json() for f in findings],
            "pragma_suppressed": suppressed,
            "readable": True,
        }


# -- analysis cache -------------------------------------------------------

def _content_key(rel: str, source_bytes: bytes) -> str:
    digest = hashlib.sha256(source_bytes).hexdigest()[:20]
    return f"{rel}::{digest}"


class AnalysisCache:
    """Content-addressed per-file analysis results.

    Entries are keyed on ``rel-path::sha256(source)[:20]`` and store the
    *unfiltered* post-pragma finding set, so a cache built by one run
    serves any later ``--rules`` selection. The key includes the path so
    a file moved verbatim re-analyses under its new name (findings embed
    the path). ``ANALYSIS_VERSION`` is part of the envelope: bumping it
    (any pass behaviour change) silently discards stale caches.
    """

    def __init__(self, path: Optional[Path] = None) -> None:
        self.path = path
        self._entries: Dict[str, Dict[str, object]] = {}
        self._dirty = False
        if path is not None and path.exists():
            self._load(path)

    def _load(self, path: Path) -> None:
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError):
            return  # corrupt/unreadable cache degrades to empty, never fails
        if not isinstance(data, dict):
            return
        if data.get("cache_version") != CACHE_VERSION \
                or data.get("analysis_version") != ANALYSIS_VERSION:
            return
        entries = data.get("entries")
        if isinstance(entries, dict):
            self._entries = {
                key: value for key, value in entries.items()
                if isinstance(value, dict)
            }

    def get(self, key: str) -> Optional[Tuple[List[Finding], int]]:
        entry = self._entries.get(key)
        if entry is None:
            return None
        try:
            findings = [Finding.from_json(f) for f in entry["findings"]]
            suppressed = int(entry["pragma_suppressed"])  # type: ignore[arg-type]
        except (KeyError, TypeError, ValueError):
            return None
        return findings, suppressed

    def put(self, key: str, findings: Sequence[Finding], suppressed: int) -> None:
        self._entries[key] = {
            "findings": [f.to_json() for f in findings],
            "pragma_suppressed": suppressed,
        }
        self._dirty = True

    def save(self) -> None:
        if self.path is None or not self._dirty:
            return
        payload = {
            "cache_version": CACHE_VERSION,
            "analysis_version": ANALYSIS_VERSION,
            "entries": self._entries,
        }
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
        self._dirty = False


# -- orchestration --------------------------------------------------------

def _analyse_files(
    files: Sequence[Path],
    root: Path,
    jobs: Optional[int],
    cache: Optional[AnalysisCache],
    report: CheckReport,
) -> List[Finding]:
    """Per-file findings in deterministic (sorted-path) order."""
    ordered: List[Tuple[str, Optional[Tuple[List[Finding], int]]]] = []
    pending: List[CheckFileTask] = []
    for path in files:
        rel = relative_path(path, root)
        cached: Optional[Tuple[List[Finding], int]] = None
        if cache is not None:
            try:
                key = _content_key(rel, path.read_bytes())
            except OSError:
                key = None  # unreadable now; let the task report it
            if key is not None:
                cached = cache.get(key)
        if cached is None:
            pending.append(CheckFileTask(path=str(path), rel=rel))
        else:
            report.cache_hits += 1
        ordered.append((rel, cached))

    computed: Dict[str, Tuple[List[Finding], int]] = {}
    if pending:
        if jobs is not None and jobs > 1 and len(pending) > 1:
            from repro.parallel import run_fanout
            outcomes = run_fanout(pending, jobs=jobs)
            payloads = [outcome.value for outcome in outcomes]
        else:
            payloads = [task.run() for task in pending]
        for task, payload in zip(pending, payloads):
            findings = [Finding.from_json(f) for f in payload["findings"]]
            suppressed = int(payload["pragma_suppressed"])
            computed[task.rel] = (findings, suppressed)
            if cache is not None and payload.get("readable", True):
                try:
                    key = _content_key(task.rel, Path(task.path).read_bytes())
                except OSError:
                    key = None
                if key is not None:
                    cache.put(key, findings, suppressed)

    raw: List[Finding] = []
    for rel, cached in ordered:
        findings, suppressed = cached if cached is not None else computed[rel]
        report.files_checked += 1
        report.pragma_suppressed += suppressed
        raw.extend(findings)
    return raw


def run_checks(
    paths: Sequence[Path],
    root: Path,
    baseline: Optional[Baseline] = None,
    rules: Optional[Sequence[str]] = None,
    contracts: bool = True,
    jobs: Optional[int] = None,
    cache: Optional[AnalysisCache] = None,
) -> CheckReport:
    """Run every enabled pass over ``paths`` and aggregate a report.

    ``jobs > 1`` fans per-file analysis out over
    :func:`repro.parallel.run_fanout`; results are merged in sorted-path
    order, so the report (and its JSON rendering) is byte-identical to a
    serial run. ``cache`` short-circuits files whose content hash already
    has an entry.
    """
    report = CheckReport()
    files = iter_python_files(paths)
    with span("check.run", files=len(files), jobs=jobs or 1):
        raw = _analyse_files(files, root, jobs, cache, report)
        if contracts:
            raw.extend(_stamp_family(f) for f in check_contracts())
        if rules is not None:
            allowed = set(rules)
            raw = [f for f in raw if f.rule in allowed]
        if baseline is not None:
            new, old = baseline.split(raw)
            report.findings = sorted(new)
            report.grandfathered = sorted(old)
            report.stale_baseline = baseline.stale_entries(raw)
        else:
            report.findings = sorted(raw)
    if cache is not None:
        cache.save()
    registry = default_registry()
    registry.counter("check.files", source="analyzed").inc(
        report.files_checked - report.cache_hits
    )
    registry.counter("check.files", source="cache").inc(report.cache_hits)
    registry.counter("check.findings").inc(len(report.findings))
    return report
