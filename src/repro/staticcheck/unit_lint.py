"""Unit-safety lints: suffix discipline, mixed-unit arithmetic, bare literals.

Three rules, all driven by the same tokenisation of ``snake_case``
identifiers:

* ``unit-suffix`` — an identifier *bound* somewhere (function name,
  parameter, assignment target, annotated attribute) that names a time or
  cost quantity (contains a trigger token like ``time``, ``cost``,
  ``price``, ``overhead``, ...) must also contain a unit token (``us``,
  ``ms``, ``s``, ``hr``, ``hours``, ``usd``, ``dollars``, ...).
  Dimensionless derivatives (``_ratio``, ``_share``, ``_weight``,
  ``_speedup``, ...) are exempt: a "cost ratio" has no unit to name.
* ``unit-mix`` — ``+``/``-``/comparison between two operands whose unit
  signatures disagree (``total_us + overhead_ms``). Multiplication and
  division are exempt: that is how conversions and rate*duration products
  are legitimately written.
* ``unit-literal`` — a known conversion literal (``1e3``, ``1e6``,
  ``3600``, ``3.6e9``, ...) multiplied into, divided into, or compared
  against a unit-carrying expression. Conversions must go through
  :mod:`repro.units`, whose helpers name both endpoints; the module itself
  is exempt.

The lint is a heuristic, not a type system: it reads names, not values.
That is exactly why the naming convention matters — once every quantity
names its unit, the AST carries enough information to catch the mixes that
corrupt Eq. (2) silently.
"""

from __future__ import annotations

import ast
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from repro.staticcheck.findings import Finding

RULE_SUFFIX = "unit-suffix"
RULE_MIX = "unit-mix"
RULE_LITERAL = "unit-literal"

#: Identifier tokens that mark a quantity as time- or cost-bearing.
TRIGGER_TOKENS = frozenset({
    "time", "times", "cost", "costs", "price", "prices",
    "latency", "latencies", "duration", "durations", "overhead",
    "overheads", "budget", "budgets", "elapsed", "runtime", "walltime",
    "hourly",
})

#: Canonical time-unit token per accepted spelling.
TIME_UNIT_TOKENS = {
    "us": "us", "usec": "us", "micros": "us",
    "ms": "ms", "msec": "ms", "millis": "ms",
    "s": "s", "sec": "s", "secs": "s", "second": "s", "seconds": "s",
    "hr": "hr", "hrs": "hr", "hour": "hr", "hours": "hr",
}

#: Canonical cost-unit token per accepted spelling.
COST_UNIT_TOKENS = {
    "usd": "usd", "dollar": "usd", "dollars": "usd", "cents": "usd",
}

#: Tokens marking a quantity as dimensionless (ratios, weights, shares...),
#: or as a non-quantity artefact named after one (models, schemes, keys).
DIMENSIONLESS_TOKENS = frozenset({
    "ratio", "ratios", "share", "shares", "frac", "fraction", "fractions",
    "pct", "percent", "weight", "weights", "factor", "factors", "scale",
    "reduction", "speedup", "speedups", "norm", "normalized", "rel",
    "relative", "error", "errors", "mape", "r2", "rank", "index",
    "model", "models", "scheme", "schemes", "fn", "format", "name",
    "names", "key", "keys", "kind", "label", "labels", "id",
    "unit", "units", "token", "tokens", "comparison", "table", "report",
    "summary", "term", "terms",
})

#: Conversion literals that must not appear next to unit-suffixed operands.
CONVERSION_LITERALS = (1e3, 1e6, 3600.0, 3.6e9, 60.0, 24.0, 1e-3, 1e-6)

#: Module path suffixes exempt from ``unit-literal`` (the conversion home).
LITERAL_EXEMPT_SUFFIXES = ("repro/units.py",)


def tokens_of(name: str) -> Tuple[str, ...]:
    """Split a (possibly dunder/ALL_CAPS) identifier into lowercase tokens."""
    return tuple(t for t in name.lower().split("_") if t)


def unit_signature(name: str) -> Optional[str]:
    """The canonical unit a name carries, or None.

    Time-only names map to ``"us" | "ms" | "s" | "hr"``; cost-only names to
    ``"usd"``; names carrying both (rates like ``usd_per_hr`` or
    ``cost_per_us``) to ``"usd_per_<time>"``.
    """
    toks = tokens_of(name)
    time_unit = next((TIME_UNIT_TOKENS[t] for t in toks if t in TIME_UNIT_TOKENS), None)
    cost_unit = next((COST_UNIT_TOKENS[t] for t in toks if t in COST_UNIT_TOKENS), None)
    if cost_unit and time_unit:
        return f"{cost_unit}_per_{time_unit}"
    return cost_unit or time_unit


def needs_unit_suffix(name: str) -> bool:
    """True when a bound identifier names a quantity but no unit."""
    toks = set(tokens_of(name))
    if not toks & TRIGGER_TOKENS:
        return False
    if toks & DIMENSIONLESS_TOKENS:
        return False
    return unit_signature(name) is None


def _is_conversion_literal(node: ast.AST) -> bool:
    if not (isinstance(node, ast.Constant) and isinstance(node.value, (int, float))):
        return False
    if isinstance(node.value, bool):
        return False
    return any(float(node.value) == lit for lit in CONVERSION_LITERALS)


def _terminal_name(node: ast.AST) -> Optional[str]:
    """The identifier a Name/Attribute (or call thereof) ultimately names."""
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _expr_signature(node: ast.AST) -> Optional[str]:
    """Unit signature of an expression, from its terminal identifier.

    For compound expressions (``a_us + b_us``), the signature is taken from
    any unit-carrying Name/Attribute in the subtree if they all agree, and
    None otherwise (disagreement is ``unit-mix``'s job, reported once at
    the innermost node).
    """
    direct = _terminal_name(node)
    if direct is not None:
        return unit_signature(direct)
    sigs: Set[str] = set()
    for sub in ast.walk(node if isinstance(node, ast.AST) else ast.Expr(node)):
        name = None
        if isinstance(sub, ast.Attribute):
            name = sub.attr
        elif isinstance(sub, ast.Name):
            name = sub.id
        if name is not None:
            sig = unit_signature(name)
            if sig is not None:
                sigs.add(sig)
    if len(sigs) == 1:
        return sigs.pop()
    return None


class UnitLint(ast.NodeVisitor):
    """One-file AST pass implementing the three unit rules."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.findings: List[Finding] = []
        self._literal_exempt = any(
            path.endswith(suffix) for suffix in LITERAL_EXEMPT_SUFFIXES
        )

    # -- helpers -------------------------------------------------------
    def _flag(self, node: ast.AST, rule: str, message: str, symbol: str = "") -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=rule,
            message=message,
            symbol=symbol,
        ))

    def _check_bound_name(self, name: str, node: ast.AST) -> None:
        if needs_unit_suffix(name):
            self._flag(
                node, RULE_SUFFIX,
                f"{name!r} names a time/cost quantity but carries no unit "
                f"suffix (_us, _ms, _s, _hr, _usd, _usd_per_hr)",
                symbol=name,
            )

    def _check_targets(self, targets: Iterable[ast.expr]) -> None:
        for target in targets:
            for sub in ast.walk(target):
                if isinstance(sub, ast.Name):
                    self._check_bound_name(sub.id, sub)
                elif isinstance(sub, ast.Attribute):
                    self._check_bound_name(sub.attr, sub)

    # -- unit-suffix bindings ------------------------------------------
    def _visit_function(self, node: ast.AST, args: ast.arguments, name: str) -> None:
        self._check_bound_name(name, node)
        all_args: Sequence[ast.arg] = (
            list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)
        )
        for arg in all_args:
            if arg.arg in ("self", "cls"):
                continue
            self._check_bound_name(arg.arg, arg)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node, node.args, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node, node.args, node.name)

    def visit_Assign(self, node: ast.Assign) -> None:
        self._check_targets(node.targets)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._check_targets([node.target])
        self.generic_visit(node)

    # -- unit-mix and unit-literal -------------------------------------
    def _check_pair(self, node: ast.AST, left: ast.expr, right: ast.expr,
                    multiplicative: bool) -> None:
        if not multiplicative:
            left_sig = _expr_signature(left)
            right_sig = _expr_signature(right)
            if left_sig and right_sig and left_sig != right_sig:
                self._flag(
                    node, RULE_MIX,
                    f"arithmetic mixes units {left_sig!r} and {right_sig!r}; "
                    f"convert via repro.units first",
                    symbol=f"{left_sig}|{right_sig}",
                )
        if self._literal_exempt:
            return
        for literal, other in ((left, right), (right, left)):
            if _is_conversion_literal(literal) and _expr_signature(other) is not None:
                value = literal.value  # type: ignore[attr-defined]
                self._flag(
                    node, RULE_LITERAL,
                    f"bare conversion literal {value!r} applied to a "
                    f"unit-carrying quantity; use a repro.units helper/constant",
                    symbol=str(value),
                )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_pair(node, node.left, node.right, multiplicative=False)
        elif isinstance(node.op, (ast.Mult, ast.Div, ast.FloorDiv, ast.Mod)):
            self._check_pair(node, node.left, node.right, multiplicative=True)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left] + list(node.comparators)
        for left, right in zip(operands, operands[1:]):
            left_sig = _expr_signature(left)
            right_sig = _expr_signature(right)
            if left_sig and right_sig and left_sig != right_sig:
                self._flag(
                    node, RULE_MIX,
                    f"comparison mixes units {left_sig!r} and {right_sig!r}; "
                    f"convert via repro.units first",
                    symbol=f"{left_sig}|{right_sig}",
                )
            if not self._literal_exempt:
                for literal, other in ((left, right), (right, left)):
                    if _is_conversion_literal(literal) and _expr_signature(other):
                        value = literal.value  # type: ignore[attr-defined]
                        self._flag(
                            node, RULE_LITERAL,
                            f"bare conversion literal {value!r} compared against "
                            f"a unit-carrying quantity; use a repro.units constant",
                            symbol=str(value),
                        )
        self.generic_visit(node)


def check_unit_safety(tree: ast.AST, path: str) -> List[Finding]:
    """Run the three unit rules over one parsed module."""
    lint = UnitLint(path)
    lint.visit(tree)
    return lint.findings
