"""Canonical time/cost units and the only sanctioned conversions between them.

Ceer's estimator pipeline (Eq. (2)) chains quantities measured in
microseconds (per-op compute times), hours (training durations), USD/hr
(instance rental rates), and USD (training budgets). A silent unit slip in
any link corrupts every downstream prediction, so the repo enforces two
conventions, checked statically by :mod:`repro.staticcheck`:

* every identifier carrying a time or cost quantity names its unit with a
  suffix (``_us``, ``_ms``, ``_s``, ``_hr``, ``_usd``, ``_usd_per_hr``);
* bare conversion literals (``1e6``, ``3600``, ``3.6e9``, ...) never appear
  next to unit-suffixed quantities outside this module — conversions go
  through the helpers below, whose names state both endpoints.

The constants are exact (an hour is exactly 3.6e9 microseconds); helpers
are trivial on purpose. What they buy is *greppability* and a single
choke-point the unit-literal lint can whitelist.
"""

from __future__ import annotations

#: Microseconds per millisecond.
US_PER_MS: float = 1e3
#: Microseconds per second.
US_PER_S: float = 1e6
#: Milliseconds per second.
MS_PER_S: float = 1e3
#: Seconds per hour.
S_PER_HR: float = 3600.0
#: Microseconds per hour (1e6 * 3600).
US_PER_HR: float = 3.6e9


def us_to_ms(t_us: float) -> float:
    """Microseconds -> milliseconds."""
    return t_us / US_PER_MS


def ms_to_us(t_ms: float) -> float:
    """Milliseconds -> microseconds."""
    return t_ms * US_PER_MS


def us_to_s(t_us: float) -> float:
    """Microseconds -> seconds."""
    return t_us / US_PER_S


def s_to_us(t_s: float) -> float:
    """Seconds -> microseconds."""
    return t_s * US_PER_S


def s_to_hr(t_s: float) -> float:
    """Seconds -> hours."""
    return t_s / S_PER_HR


def hr_to_s(t_hr: float) -> float:
    """Hours -> seconds."""
    return t_hr * S_PER_HR


def us_to_hr(t_us: float) -> float:
    """Microseconds -> hours (the Eq. (2) denominator conversion)."""
    return t_us / US_PER_HR


def hr_to_us(t_hr: float) -> float:
    """Hours -> microseconds."""
    return t_hr * US_PER_HR


def usd_per_hr_to_usd(rate_usd_per_hr: float, duration_hr: float) -> float:
    """Rental rate x duration -> total cost (the paper's C = T * c_GPU,k)."""
    return rate_usd_per_hr * duration_hr


def usd_per_hr_to_usd_per_us(rate_usd_per_hr: float) -> float:
    """Rental rate per hour -> rate per microsecond (Fig. 3 normalisation)."""
    return rate_usd_per_hr / US_PER_HR
