"""Workload descriptors (datasets and training jobs)."""

from repro.workloads.dataset import (
    IMAGENET,
    IMAGENET_6400,
    IMAGENET_EPOCH,
    DatasetSpec,
    TrainingJob,
)

__all__ = [
    "DatasetSpec",
    "TrainingJob",
    "IMAGENET",
    "IMAGENET_6400",
    "IMAGENET_EPOCH",
]
