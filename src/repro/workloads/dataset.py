"""Workload descriptors: dataset sizes and training-job parameters.

Ceer's training-time equation (paper, Eq. (2)) needs only two facts about
the workload: the total data size ``D`` (samples per epoch) and the per-GPU
batch size ``B``. These descriptors carry them, plus the sample geometry
used when building the model's input pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import ReproError


@dataclass(frozen=True)
class DatasetSpec:
    """A labelled-image dataset, described by size and sample geometry."""

    name: str
    num_samples: int
    image_hw: Tuple[int, int] = (224, 224)
    num_classes: int = 1000

    def __post_init__(self) -> None:
        if self.num_samples <= 0:
            raise ReproError(f"dataset {self.name!r} must have >= 1 sample")


#: ImageNet ILSVRC-2012 (paper, Section V: 1.2M samples, 1000 classes).
IMAGENET = DatasetSpec("imagenet", num_samples=1_200_000)

#: The Fig. 6 scaling study's input: 6,400 ImageNet samples.
IMAGENET_6400 = DatasetSpec("imagenet-6400", num_samples=6_400)


@dataclass(frozen=True)
class TrainingJob:
    """One model-training workload: dataset + per-GPU batch size + epochs.

    ``iterations(k)`` follows the paper's accounting: with k GPUs under
    data parallelism, each iteration consumes ``k * batch_size`` samples,
    so one epoch takes ``D / (k * B)`` iterations (Eq. (2)).
    """

    dataset: DatasetSpec
    batch_size: int = 32
    epochs: int = 1

    def __post_init__(self) -> None:
        if self.batch_size <= 0:
            raise ReproError("batch_size must be positive")
        if self.epochs <= 0:
            raise ReproError("epochs must be positive")

    def iterations(self, num_gpus: int = 1) -> float:
        """Training iterations needed for the full job on ``num_gpus`` GPUs."""
        if num_gpus < 1:
            raise ReproError(f"num_gpus must be >= 1, got {num_gpus}")
        per_epoch = self.dataset.num_samples / (num_gpus * self.batch_size)
        return per_epoch * self.epochs


#: The paper's canonical evaluation job: one epoch of ImageNet, batch 32/GPU.
IMAGENET_EPOCH = TrainingJob(IMAGENET, batch_size=32, epochs=1)
