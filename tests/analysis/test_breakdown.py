"""Tests for per-model time breakdowns."""

import pytest

from repro.analysis.breakdown import breakdown_from_profile, profile_breakdown
from repro.profiling.profiler import Profiler


@pytest.fixture(scope="module")
def breakdown():
    return profile_breakdown("inception_v1", "V100", n_iterations=60)


class TestBreakdown:
    def test_shares_sum_to_one(self, breakdown):
        total_share = sum(
            breakdown.share(op_type) for op_type in breakdown.by_op_type
        )
        assert total_share == pytest.approx(1.0)

    def test_device_split_consistent(self, breakdown):
        assert sum(breakdown.by_device.values()) == pytest.approx(
            breakdown.total_us
        )
        assert breakdown.by_device["GPU"] > breakdown.by_device["CPU"]

    def test_conv_ops_dominate_cnn(self, breakdown):
        top_types = [t for t, _ in breakdown.top(3)]
        assert "Conv2D" in top_types

    def test_top_is_sorted(self, breakdown):
        values = [v for _, v in breakdown.top(10)]
        assert values == sorted(values, reverse=True)

    def test_coverage_metric(self, breakdown):
        """The heavy-op coverage claim is computable from a breakdown."""
        all_types = set(breakdown.by_op_type)
        assert breakdown.coverage(all_types) == pytest.approx(1.0)
        assert breakdown.coverage({"Conv2D"}) == pytest.approx(
            breakdown.share("Conv2D")
        )
        assert breakdown.coverage(set()) == 0.0

    def test_instance_counts(self, breakdown):
        assert breakdown.instances["Conv2D"] == 57  # GoogLeNet's conv count

    def test_render(self, breakdown):
        text = breakdown.render()
        assert "inception_v1" in text and "device split" in text


class TestFromProfile:
    def test_rejects_mixed_profiles(self, tiny_graph):
        profiler = Profiler(n_iterations=20)
        mixed = profiler.profile_many([tiny_graph], ["V100", "K80"])
        with pytest.raises(ValueError):
            breakdown_from_profile(mixed)

    def test_accepts_single_profile(self, tiny_graph):
        profile = Profiler(n_iterations=20).profile(tiny_graph, "T4")
        b = breakdown_from_profile(profile)
        assert b.model == "tiny" and b.gpu_key == "T4"
