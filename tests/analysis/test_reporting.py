"""Tests for text-table rendering."""

from repro.analysis.reporting import (
    format_dollars,
    format_percent,
    format_table,
    format_us,
    series_block,
)


class TestFormatTable:
    def test_alignment_and_title(self):
        text = format_table(
            ["name", "value"], [["a", 1.5], ["bbbb", 20.25]], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len(lines) == 5
        # all data rows aligned to the same width
        assert len(lines[3]) == len(lines[4])

    def test_float_format_applied(self):
        text = format_table(["x"], [[1.23456]], float_format="{:.2f}")
        assert "1.23" in text and "1.2345" not in text

    def test_empty_rows(self):
        text = format_table(["a", "b"], [])
        assert "a" in text


class TestScalarFormats:
    def test_format_us_scales(self):
        assert format_us(500.0) == "500.0 us"
        assert format_us(2_500.0) == "2.50 ms"
        assert format_us(2_500_000.0) == "2.50 s"
        assert format_us(7.2e9) == "2.00 h"

    def test_format_dollars(self):
        assert format_dollars(1234.5) == "$1,234.50"

    def test_format_percent(self):
        assert format_percent(0.123) == "12.3%"

    def test_series_block(self):
        text = series_block("series", {1: 100.0, 2: 200.0})
        assert text.startswith("series:")
        assert "1: 100.0 us" in text
