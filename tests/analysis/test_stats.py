"""Tests for statistical helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.stats import (
    argmin_key,
    empirical_cdf,
    fraction_below,
    geometric_mean,
    pairwise_errors,
    percentile_of,
    rank_agreement,
    ratio_summary,
    relative_reduction,
)
from repro.errors import ReproError


class TestCdf:
    def test_sorted_and_normalised(self):
        values, fractions = empirical_cdf([3.0, 1.0, 2.0])
        np.testing.assert_array_equal(values, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(fractions, [1 / 3, 2 / 3, 1.0])

    def test_empty_rejected(self):
        with pytest.raises(ReproError):
            empirical_cdf([])

    def test_fraction_below(self):
        assert fraction_below([1, 2, 3, 4], 3) == 0.5

    def test_percentile(self):
        assert percentile_of(range(101), 95) == pytest.approx(95.0)


class TestRatios:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ReproError):
            geometric_mean([1.0, 0.0])

    def test_ratio_summary(self):
        assert ratio_summary({"a": 10.0, "b": 4.0}, {"a": 5.0, "b": 2.0}) == {
            "a": 2.0, "b": 2.0,
        }

    def test_ratio_summary_needs_shared_keys(self):
        with pytest.raises(ReproError):
            ratio_summary({"a": 1.0}, {"b": 1.0})

    def test_relative_reduction(self):
        assert relative_reduction(100.0, 60.0) == pytest.approx(0.4)

    def test_relative_reduction_rejects_zero_baseline(self):
        with pytest.raises(ReproError):
            relative_reduction(0.0, 1.0)


class TestRanking:
    def test_rank_agreement_true(self):
        assert rank_agreement([1.0, 3.0, 2.0], [10.0, 30.0, 20.0])

    def test_rank_agreement_false(self):
        assert not rank_agreement([1.0, 2.0], [2.0, 1.0])

    def test_argmin_key(self):
        assert argmin_key({"a": 2.0, "b": 1.0}) == "b"

    def test_argmin_deterministic_tie_break(self):
        assert argmin_key({"z": 1.0, "a": 1.0}) == "a"

    def test_pairwise_errors(self):
        errors = dict(pairwise_errors({"a": 100.0}, {"a": 90.0}))
        assert errors["a"] == pytest.approx(0.1)

    @given(st.lists(st.integers(1, 10**9), min_size=2, max_size=20, unique=True))
    def test_rank_agreement_with_monotone_transform(self, values):
        transformed = [v * 3 + 1 for v in values]
        assert rank_agreement(values, transformed)
