"""Cross-process behaviour: shared workspaces, racing writers, lock files.

These tests spawn real subprocesses (the scenario the workspace exists
for: ``repro fit`` and ``repro figures`` as separate invocations), so they
use a deliberately tiny profiling configuration.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"

#: Tiny configuration shared by every subprocess below.
CONFIG = "(['inception_v1'], ['V100'], 5)"


def run_script(body: str, workspace: Path) -> str:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_WORKSPACE"] = str(workspace)
    result = subprocess.run(
        [sys.executable, "-c", body],
        capture_output=True, text=True, env=env, timeout=300,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


PROFILE_SCRIPT = f"""
import json
from repro.artifacts.workspace import Workspace
ws = Workspace()
ws.profiles(*{CONFIG})
print(json.dumps(ws.counters_to_json()))
"""


class TestCrossProcessReuse:
    def test_second_process_has_zero_profile_misses(self, tmp_path):
        workspace = tmp_path / "shared-ws"
        first = json.loads(run_script(PROFILE_SCRIPT, workspace))
        assert first["profile"]["misses"] == 1
        second = json.loads(run_script(PROFILE_SCRIPT, workspace))
        assert second["profile"]["misses"] == 0
        assert second["profile"]["hits_disk"] == 1

    def test_fit_then_figures_shares_profiles(self, tmp_path):
        """The acceptance scenario in miniature: a fit process followed by a
        figure process re-profiles nothing."""
        workspace = tmp_path / "shared-ws"
        fit_script = """
import json
from repro.artifacts.workspace import Workspace
ws = Workspace()
ws.fitted_ceer(30)
ws.test_profiles(30)
print(json.dumps(ws.counters_to_json()))
"""
        figures_script = """
import json
from repro.artifacts.workspace import Workspace, set_active_workspace
from repro.experiments.fig2_op_times import run_fig2
from repro.experiments.fig8_validation import run_fig8
ws = Workspace()
set_active_workspace(ws)
run_fig2(n_iterations=30).render()
run_fig8(n_iterations=30).render()
print(json.dumps(ws.counters_to_json()))
"""
        fit_counters = json.loads(run_script(fit_script, workspace))
        assert fit_counters["profile"]["misses"] == 2  # train + test sets
        fig_counters = json.loads(run_script(figures_script, workspace))
        assert fig_counters["profile"]["misses"] == 0
        assert fig_counters["fitted"]["misses"] == 0


class TestRacingWriters:
    def test_two_writers_one_compute(self, tmp_path):
        """Two processes racing the same key must compute exactly once; the
        loser blocks on the lock, then reads the winner's artifact."""
        workspace = tmp_path / "race-ws"
        markers = tmp_path / "markers"
        markers.mkdir()
        racer = f"""
import json, os, time, uuid
from repro.artifacts import kinds
from repro.artifacts.workspace import Workspace

ws = Workspace()

def compute():
    # One marker file per actual compute; sleep widens the race window so
    # both processes reliably overlap inside get_or_create.
    marker = os.path.join({str(markers)!r}, uuid.uuid4().hex)
    with open(marker, "w") as fh:
        fh.write("computed")
    time.sleep(1.0)
    return "payload"

value = ws.store.get_or_create(
    kinds.FIGURE, {{"figure": "raced", "iterations": 1}}, compute,
    lambda text: kinds.encode_figure("raced", text), kinds.decode_figure,
)
print(value)
"""
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC)
        env["REPRO_WORKSPACE"] = str(workspace)
        procs = [
            subprocess.Popen(
                [sys.executable, "-c", racer],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE,
                text=True, env=env,
            )
            for _ in range(2)
        ]
        outputs = [p.communicate(timeout=300) for p in procs]
        for proc, (stdout, stderr) in zip(procs, outputs):
            assert proc.returncode == 0, stderr
            assert stdout.strip() == "payload"
        assert len(list(markers.iterdir())) == 1

        # No torn file: the single stored envelope parses and round-trips,
        # and neither lock nor temp files survived the race.
        from repro.artifacts import kinds
        from repro.artifacts.workspace import Workspace

        store = Workspace(workspace).store
        [info] = store.entries("figure")
        envelope = json.loads(info.path.read_text())
        assert envelope["format"] == "repro-artifact"
        assert envelope["payload"]["rendered"] == "payload"
        assert store.load(kinds.FIGURE, info.key, kinds.decode_figure) == "payload"
        leftovers = [
            p for p in info.path.parent.iterdir()
            if p.suffix in (".lock", ".tmp")
        ]
        assert leftovers == []
