"""Unit tests for the content-addressed artifact store."""

from __future__ import annotations

import json

import pytest

from repro.artifacts import kinds
from repro.artifacts.fingerprint import canonical_json, fingerprint
from repro.artifacts.store import ENVELOPE_FORMAT, ArtifactStore
from repro.errors import ArtifactError

RAW = kinds.FIGURE  # simplest codec: payloads are {"figure", "rendered"} dicts


def encode(text: str) -> object:
    return kinds.encode_figure("t", text)


def store_at(tmp_path, **kwargs) -> ArtifactStore:
    return ArtifactStore(tmp_path / "store", **kwargs)


class TestFingerprint:
    def test_stable_across_key_order(self):
        a = fingerprint("profile", 1, {"models": ["m1"], "iterations": 10})
        b = fingerprint("profile", 1, {"iterations": 10, "models": ["m1"]})
        assert a == b
        assert len(a) == 20

    def test_sensitive_to_every_component(self):
        base = fingerprint("profile", 1, {"iterations": 10})
        assert base != fingerprint("profile", 2, {"iterations": 10})
        assert base != fingerprint("fitted", 1, {"iterations": 10})
        assert base != fingerprint("profile", 1, {"iterations": 20})

    def test_calibration_version_folds_in(self, monkeypatch):
        import sys

        # ``repro.artifacts.fingerprint`` the *attribute* is the function
        # (re-exported by the package); fetch the module via sys.modules.
        fingerprint_module = sys.modules["repro.artifacts.fingerprint"]
        base = fingerprint("profile", 1, {"iterations": 10})
        monkeypatch.setattr(fingerprint_module, "CALIBRATION_VERSION", 999)
        assert fingerprint("profile", 1, {"iterations": 10}) != base

    def test_unserialisable_spec_raises_artifact_error(self):
        with pytest.raises(ArtifactError):
            canonical_json({"bad": object()})


class TestGetOrCreate:
    def test_miss_compute_then_memory_hit(self, tmp_path):
        store = store_at(tmp_path)
        calls = []

        def compute() -> str:
            calls.append(1)
            return "rendered-text"

        spec = {"figure": "t", "iterations": 5}
        first = store.get_or_create(RAW, spec, compute, encode, kinds.decode_figure)
        second = store.get_or_create(RAW, spec, compute, encode, kinds.decode_figure)
        assert first == "rendered-text"
        assert second is first  # memory tier preserves identity
        assert len(calls) == 1
        counters = store.counters[RAW.name]
        assert counters.misses == 1
        assert counters.hits_memory == 1
        assert counters.bytes_written > 0

    def test_disk_hit_across_store_instances(self, tmp_path):
        spec = {"figure": "t", "iterations": 5}
        store_at(tmp_path).get_or_create(
            RAW, spec, lambda: "abc", encode, kinds.decode_figure
        )
        fresh = store_at(tmp_path)
        value = fresh.get_or_create(
            RAW, spec, lambda: pytest.fail("must not recompute"),
            encode, kinds.decode_figure,
        )
        assert value == "abc"
        counters = fresh.counters[RAW.name]
        assert counters.misses == 0
        assert counters.hits_disk == 1
        assert counters.bytes_read > 0

    def test_memory_tier_is_bounded(self, tmp_path):
        store = store_at(tmp_path, memory_entries=2)
        for i in range(4):
            store.get_or_create(
                RAW, {"figure": "t", "iterations": i},
                lambda i=i: f"v{i}", encode, kinds.decode_figure,
            )
        assert len(store._memory) == 2


class TestCorruption:
    @pytest.mark.parametrize(
        "corruption",
        [
            "",  # truncated to nothing
            '{"format": "repro-artifact"',  # truncated mid-envelope
            "not json at all",
            '["wrong", "shape"]',
            '{"format": "other-format", "payload": {}}',
            json.dumps({  # right envelope, wrong schema version
                "format": ENVELOPE_FORMAT, "kind": "figure",
                "schema_version": 999, "key": "x",
                "payload": {"figure": "t", "rendered": "stale"},
            }),
            json.dumps({  # right envelope, undecodable payload
                "format": ENVELOPE_FORMAT, "kind": "figure",
                "schema_version": kinds.FIGURE.schema_version, "key": "x",
                "payload": {"figure": "t"},
            }),
        ],
    )
    def test_bad_file_is_a_miss_and_overwritten(self, tmp_path, corruption):
        store = store_at(tmp_path)
        spec = {"figure": "t", "iterations": 5}
        key = store.key_for(RAW, spec)
        path = store.path_for(RAW, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(corruption)
        assert store.load(RAW, key, kinds.decode_figure) is None
        value = store.get_or_create(
            RAW, spec, lambda: "fresh", encode, kinds.decode_figure
        )
        assert value == "fresh"
        # Overwritten with a loadable envelope.
        assert store_at(tmp_path).load(RAW, key, kinds.decode_figure) == "fresh"

    def test_wrong_kind_directory_is_a_miss(self, tmp_path):
        store = store_at(tmp_path)
        spec = {"figure": "t", "iterations": 5}
        key = store.key_for(RAW, spec)
        store.save(RAW, key, "abc", encode, spec)
        envelope = json.loads(store.path_for(RAW, key).read_text())
        # A profile-kind lookup must not accept a figure envelope.
        wrong = store.path_for(kinds.PROFILE, key)
        wrong.parent.mkdir(parents=True, exist_ok=True)
        wrong.write_text(json.dumps(envelope))
        assert store.load(kinds.PROFILE, key, kinds.decode_profiles) is None


class TestMaintenance:
    def test_entries_and_clear(self, tmp_path):
        store = store_at(tmp_path)
        for i in range(3):
            spec = {"figure": "t", "iterations": i}
            store.save(RAW, store.key_for(RAW, spec), f"v{i}", encode, spec)
        infos = store.entries()
        assert len(infos) == 3
        assert all(info.kind == "figure" for info in infos)
        assert all(info.spec["figure"] == "t" for info in infos)
        assert store.entries("profile") == []
        assert store.clear("figure") == 3
        assert store.entries() == []

    def test_clear_evicts_memory_tier(self, tmp_path):
        store = store_at(tmp_path)
        spec = {"figure": "t", "iterations": 1}
        store.get_or_create(RAW, spec, lambda: "v", encode, kinds.decode_figure)
        store.clear()
        recomputed = store.get_or_create(
            RAW, spec, lambda: "v2", encode, kinds.decode_figure
        )
        assert recomputed == "v2"

    def test_counters_to_json_shape(self, tmp_path):
        store = store_at(tmp_path)
        spec = {"figure": "t", "iterations": 1}
        store.get_or_create(RAW, spec, lambda: "v", encode, kinds.decode_figure)
        snapshot = store.counters_to_json()
        assert snapshot["figure"]["misses"] == 1
        assert snapshot["figure"]["requests"] == 1
        assert {"hits_memory", "hits_disk", "bytes_read", "bytes_written",
                "compute_s", "lock_wait_s"} <= set(snapshot["figure"])

    def test_unserialisable_value_raises(self, tmp_path):
        store = store_at(tmp_path)
        with pytest.raises(ArtifactError):
            store.save(RAW, "deadbeef", object(), lambda value: value)
