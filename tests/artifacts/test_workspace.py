"""Workspace facade tests: typed accessors, identity, round-trips."""

from __future__ import annotations

import pytest

from repro.artifacts.workspace import (
    WORKSPACE_ENV,
    Workspace,
    active_workspace,
    default_workspace_dir,
    set_active_workspace,
)

ITERATIONS = 30


@pytest.fixture
def workspace(tmp_path):
    return Workspace(tmp_path / "ws")


class TestProfiles:
    def test_identity_within_process(self, workspace):
        a = workspace.profiles(["inception_v1"], ["V100"], ITERATIONS)
        b = workspace.profiles(["inception_v1"], ["V100"], ITERATIONS)
        assert a is b

    def test_disk_round_trip_is_exact(self, workspace):
        first = workspace.profiles(["inception_v1"], ["V100"], ITERATIONS)
        reloaded = Workspace(workspace.directory).profiles(
            ["inception_v1"], ["V100"], ITERATIONS
        )
        assert reloaded is not first
        assert reloaded.records == first.records

    def test_config_order_does_not_matter(self, workspace):
        a = workspace.profiles(["vgg_11", "inception_v1"], ["V100", "T4"], ITERATIONS)
        b = workspace.profiles(["inception_v1", "vgg_11"], ["T4", "V100"], ITERATIONS)
        assert b is a


class TestFitted:
    def test_fitted_round_trip_predicts_identically(self, workspace, monkeypatch):
        monkeypatch.setattr(
            "repro.artifacts.workspace.TRAIN_MODELS",
            ("inception_v1", "vgg_11", "resnet_50"),
        )
        fitted = workspace.fitted_ceer(ITERATIONS)
        reloaded = Workspace(workspace.directory).fitted_ceer(ITERATIONS)
        assert reloaded is not fitted
        # Profiles are re-bound from their own artifact, not duplicated.
        assert reloaded.train_profiles.records == fitted.train_profiles.records
        from repro.experiments.common import IMAGENET_JOB

        a = fitted.estimator.predict_training("resnet_50", "V100", 2, IMAGENET_JOB)
        b = reloaded.estimator.predict_training("resnet_50", "V100", 2, IMAGENET_JOB)
        assert a.total_us == b.total_us
        assert a.cost_dollars == b.cost_dollars
        assert reloaded.diagnostics.heavy_r2 == fitted.diagnostics.heavy_r2
        assert reloaded.diagnostics.comm_r2 == fitted.diagnostics.comm_r2


class TestObservedTraining:
    def test_cached_measurement_is_equal(self, workspace):
        from repro.experiments.common import SCALING_JOB

        first = workspace.observed_training(
            "inception_v1", "V100", 2, SCALING_JOB, ITERATIONS
        )
        reloaded = Workspace(workspace.directory).observed_training(
            "inception_v1", "V100", 2, SCALING_JOB, ITERATIONS
        )
        assert reloaded == first
        counters = workspace.store.counters["measurement"]
        assert counters.misses == 1

    def test_pricing_is_part_of_the_key(self, workspace):
        from repro.cloud.pricing import MARKET_RATIO
        from repro.experiments.common import SCALING_JOB

        on_demand = workspace.observed_training(
            "inception_v1", "V100", 1, SCALING_JOB, ITERATIONS
        )
        market = workspace.observed_training(
            "inception_v1", "V100", 1, SCALING_JOB, ITERATIONS,
            pricing=MARKET_RATIO,
        )
        assert market.instance_name != on_demand.instance_name
        assert workspace.store.counters["measurement"].misses == 2


class TestFigures:
    def test_render_called_once(self, workspace):
        calls = []

        def render() -> str:
            calls.append(1)
            return "figure text"

        first = workspace.figure("fig2", ITERATIONS, render)
        second = workspace.figure("fig2", ITERATIONS, render)
        assert first == second == "figure text"
        assert len(calls) == 1
        # A different iteration count is a different artifact.
        workspace.figure("fig2", ITERATIONS + 1, render)
        assert len(calls) == 2


class TestActiveWorkspace:
    def test_env_var_controls_default_dir(self, tmp_path, monkeypatch):
        monkeypatch.setenv(WORKSPACE_ENV, str(tmp_path / "env-ws"))
        assert default_workspace_dir() == tmp_path / "env-ws"

    def test_set_active_workspace_installs_and_restores(self, tmp_path):
        replacement = Workspace(tmp_path / "other")
        previous = set_active_workspace(replacement)
        try:
            assert active_workspace() is replacement
        finally:
            set_active_workspace(previous)
        assert active_workspace() is not replacement

    def test_experiment_helpers_route_through_workspace(self, tmp_path):
        from repro.experiments.common import SCALING_JOB, observed_training

        replacement = Workspace(tmp_path / "helpers-ws")
        previous = set_active_workspace(replacement)
        try:
            measurement = observed_training(
                "inception_v1", "T4", 1, SCALING_JOB, ITERATIONS
            )
            counters = replacement.store.counters["measurement"]
            assert counters.misses == 1
            again = observed_training(
                "inception_v1", "T4", 1, SCALING_JOB, ITERATIONS
            )
            assert again is measurement
            # An explicit workspace argument overrides the active one.
            other = Workspace(tmp_path / "explicit-ws")
            elsewhere = observed_training(
                "inception_v1", "T4", 1, SCALING_JOB, ITERATIONS,
                workspace=other,
            )
            assert elsewhere is not measurement
            assert other.store.counters["measurement"].misses == 1
        finally:
            set_active_workspace(previous)


class TestAdmittedGpus:
    """Spec-only GPU admissions persist in the workspace and reload."""

    @staticmethod
    def _spec(key="QGPU"):
        from repro.hardware.gpus import GpuSpec

        return GpuSpec(
            key=key, family="GQ", marketing_name="Workspace Test GPU",
            cuda_cores=2048, tensor_cores=0, memory_gb=8,
            peak_gflops=7000.0, memory_bandwidth_gbps=350.0,
            launch_overhead_us=4.0, saturation_elements=5.0e5,
            comm_base_us=6000.0, comm_us_per_mparam=500.0,
        )

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro.cloud.catalog import clear_admitted

        yield
        clear_admitted("QGPU")

    def test_admit_writes_json_and_reload_restores(self, workspace):
        from repro.cloud.catalog import admitted_gpu_keys, clear_admitted
        from repro.hardware.gpus import gpu_spec

        workspace.admit_gpu(self._spec(), usd_per_hr=1.5, max_gpus=2)
        assert workspace.admitted_gpus_path.exists()
        clear_admitted("QGPU")
        assert "QGPU" not in admitted_gpu_keys()

        restored = Workspace(workspace.directory).load_admitted_gpus()
        assert restored == ("QGPU",)
        assert "QGPU" in admitted_gpu_keys()
        assert gpu_spec("QGPU").peak_gflops == 7000.0

    def test_load_without_file_is_empty(self, workspace):
        assert workspace.load_admitted_gpus() == ()
        assert not workspace.admitted_gpus_path.exists()

    def test_readmission_without_replace_raises(self, workspace):
        import json

        from repro.errors import CatalogError

        workspace.admit_gpu(self._spec(), usd_per_hr=1.5, max_gpus=2)
        with pytest.raises(CatalogError, match="already admitted"):
            workspace.admit_gpu(self._spec(), usd_per_hr=2.0, max_gpus=4)
        # the persisted record is untouched by the rejected call
        doc = json.loads(workspace.admitted_gpus_path.read_text())
        assert len(doc["gpus"]) == 1
        assert doc["gpus"][0]["usd_per_hr"] == 1.5

    def test_readmission_with_replace_updates_entry(self, workspace):
        import json

        workspace.admit_gpu(self._spec(), usd_per_hr=1.5, max_gpus=2)
        workspace.admit_gpu(self._spec(), usd_per_hr=2.0, max_gpus=4,
                            replace=True)
        doc = json.loads(workspace.admitted_gpus_path.read_text())
        assert len(doc["gpus"]) == 1
        assert doc["gpus"][0]["usd_per_hr"] == 2.0
        assert doc["gpus"][0]["max_gpus"] == 4

    def test_corrupt_file_raises_artifact_error(self, workspace):
        from repro.errors import ArtifactError

        workspace.admitted_gpus_path.parent.mkdir(parents=True, exist_ok=True)
        workspace.admitted_gpus_path.write_text("{not json")
        with pytest.raises(ArtifactError):
            workspace.load_admitted_gpus()


class TestAdmittedSpotRatio:
    """``--spot-ratio`` admissions persist and reload with the record."""

    @pytest.fixture(autouse=True)
    def _clean_registry(self):
        from repro.cloud.catalog import clear_admitted

        yield
        clear_admitted("QGPU")

    def test_spot_ratio_persisted_and_restored(self, workspace):
        import json

        from repro.cloud.catalog import admitted_spot_ratios, clear_admitted

        workspace.admit_gpu(
            TestAdmittedGpus._spec(), usd_per_hr=1.5, max_gpus=2,
            spot_ratio=0.4,
        )
        doc = json.loads(workspace.admitted_gpus_path.read_text())
        assert doc["gpus"][0]["spot_ratio"] == 0.4
        clear_admitted("QGPU")
        assert "QGPU" not in admitted_spot_ratios()

        Workspace(workspace.directory).load_admitted_gpus()
        assert admitted_spot_ratios()["QGPU"] == 0.4

    def test_without_ratio_record_omits_key(self, workspace):
        import json

        from repro.cloud.catalog import admitted_spot_ratios, clear_admitted

        workspace.admit_gpu(TestAdmittedGpus._spec(), usd_per_hr=1.5)
        doc = json.loads(workspace.admitted_gpus_path.read_text())
        assert "spot_ratio" not in doc["gpus"][0]
        clear_admitted("QGPU")
        Workspace(workspace.directory).load_admitted_gpus()
        assert "QGPU" not in admitted_spot_ratios()

    def test_replace_can_add_or_drop_the_ratio(self, workspace):
        import json

        from repro.cloud.catalog import admitted_spot_ratios

        workspace.admit_gpu(TestAdmittedGpus._spec(), usd_per_hr=1.5)
        workspace.admit_gpu(
            TestAdmittedGpus._spec(), usd_per_hr=1.5, spot_ratio=0.33,
            replace=True,
        )
        assert admitted_spot_ratios()["QGPU"] == 0.33
        workspace.admit_gpu(
            TestAdmittedGpus._spec(), usd_per_hr=1.5, replace=True
        )
        doc = json.loads(workspace.admitted_gpus_path.read_text())
        assert "spot_ratio" not in doc["gpus"][0]
        assert "QGPU" not in admitted_spot_ratios()
