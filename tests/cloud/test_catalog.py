"""Tests for the AWS instance catalog and the k/n proxy rule."""

import pytest

from repro.cloud.catalog import (
    AWS_INSTANCES,
    candidate_instances,
    instance_by_name,
    instance_for,
)
from repro.errors import CatalogError


class TestCatalog:
    def test_paper_prices_exact(self):
        """Section II/V list these eight instances and hourly prices."""
        expected = {
            "p3.2xlarge": ("V100", 1, 3.06),
            "p2.xlarge": ("K80", 1, 0.90),
            "g4dn.2xlarge": ("T4", 1, 0.752),
            "g3s.xlarge": ("M60", 1, 0.75),
            "p3.8xlarge": ("V100", 4, 12.24),
            "p2.8xlarge": ("K80", 8, 7.20),
            "g4dn.12xlarge": ("T4", 4, 3.912),
            "g3.16xlarge": ("M60", 4, 4.56),
        }
        assert len(AWS_INSTANCES) == len(expected)
        for name, (gpu, k, price) in expected.items():
            inst = instance_by_name(name)
            assert (inst.gpu_key, inst.num_gpus, inst.usd_per_hr) == (gpu, k, price)

    def test_unknown_name_raises(self):
        with pytest.raises(CatalogError):
            instance_by_name("p4d.24xlarge")

    def test_cost_per_us_normalisation(self):
        """Fig. 3's normalisation: hourly cost / 3.6e9 microseconds."""
        inst = instance_by_name("p3.2xlarge")
        assert inst.cost_per_us == pytest.approx(3.06 / 3.6e9)


class TestProxyRule:
    def test_exact_match_preferred(self):
        assert instance_for("V100", 1).name == "p3.2xlarge"
        assert instance_for("T4", 4).name == "g4dn.12xlarge"

    def test_paper_3gpu_p2_proxy(self):
        """Section V: a 3-GPU P2 uses p2.8xlarge at 3/8 of its price."""
        inst = instance_for("K80", 3)
        assert inst.proxy_of == "p2.8xlarge"
        assert inst.usd_per_hr == pytest.approx(7.20 * 3 / 8)
        assert inst.num_gpus == 3
        assert "3/8" in inst.name

    def test_3gpu_g3_proxy_price(self):
        """The Fig. 9 discussion prices the 3-GPU G3 at $3.42/hr."""
        inst = instance_for("M60", 3)
        assert inst.usd_per_hr == pytest.approx(3.42)

    def test_4gpu_p2_uses_8gpu_host(self):
        inst = instance_for("K80", 4)
        assert inst.proxy_of == "p2.8xlarge"
        assert inst.usd_per_hr == pytest.approx(3.60)

    def test_family_name_accepted(self):
        assert instance_for("P3", 1).gpu_key == "V100"

    def test_too_many_gpus_raises(self):
        with pytest.raises(CatalogError):
            instance_for("V100", 5)

    def test_non_positive_gpus_raises(self):
        with pytest.raises(CatalogError):
            instance_for("V100", 0)

    def test_candidate_sweep_covers_all(self):
        candidates = candidate_instances(max_gpus=4)
        assert len(candidates) == 16
        assert {(c.gpu_key, c.num_gpus) for c in candidates} == {
            (g, k) for g in ("V100", "K80", "T4", "M60") for k in (1, 2, 3, 4)
        }
