"""Tests for the AWS instance catalog and the k/n proxy rule."""

import pytest

from repro.cloud.catalog import (
    AWS_INSTANCES,
    EXTENDED_INSTANCES,
    PAPER_INSTANCES,
    candidate_instances,
    instance_by_name,
    instance_for,
    max_gpus_for,
)
from repro.errors import CatalogError


class TestCatalog:
    def test_paper_prices_exact(self):
        """Section II/V list these eight instances and hourly prices."""
        expected = {
            "p3.2xlarge": ("V100", 1, 3.06),
            "p2.xlarge": ("K80", 1, 0.90),
            "g4dn.2xlarge": ("T4", 1, 0.752),
            "g3s.xlarge": ("M60", 1, 0.75),
            "p3.8xlarge": ("V100", 4, 12.24),
            "p2.8xlarge": ("K80", 8, 7.20),
            "g4dn.12xlarge": ("T4", 4, 3.912),
            "g3.16xlarge": ("M60", 4, 4.56),
        }
        assert len(PAPER_INSTANCES) == len(expected)
        assert {inst.name for inst in PAPER_INSTANCES} == set(expected)
        for name, (gpu, k, price) in expected.items():
            inst = instance_by_name(name)
            assert (inst.gpu_key, inst.num_gpus, inst.usd_per_hr) == (gpu, k, price)

    def test_extended_catalog_is_a_superset(self):
        """Growing the catalog must never drop or reprice a paper host."""
        assert set(PAPER_INSTANCES) <= set(AWS_INSTANCES)
        assert set(AWS_INSTANCES) == set(PAPER_INSTANCES) | set(EXTENDED_INSTANCES)
        assert len(AWS_INSTANCES) == len(PAPER_INSTANCES) + len(EXTENDED_INSTANCES)

    def test_extended_sizes_resolve_by_name(self):
        expected = {
            "p3.16xlarge": ("V100", 8, 24.48),
            "p2.16xlarge": ("K80", 16, 14.40),
            "g4dn.metal": ("T4", 8, 7.824),
            "g3.8xlarge": ("M60", 2, 2.28),
        }
        for name, (gpu, k, price) in expected.items():
            inst = instance_by_name(name)
            assert (inst.gpu_key, inst.num_gpus, inst.usd_per_hr) == (gpu, k, price)

    def test_extended_sizes_keep_family_per_gpu_rate(self):
        """Every added size prices at its family's per-GPU hourly rate, so
        paper scenarios (which only ever reach k=4) are unaffected."""
        rate = {"V100": 3.06, "K80": 0.90, "T4": 0.978, "M60": 1.14}
        for inst in EXTENDED_INSTANCES:
            if inst.num_gpus == 1:
                continue  # single-GPU hosts carry their own premium
            assert inst.usd_per_hr == pytest.approx(rate[inst.gpu_key] * inst.num_gpus)

    def test_unknown_name_raises(self):
        with pytest.raises(CatalogError):
            instance_by_name("p4d.24xlarge")

    def test_cost_per_us_normalisation(self):
        """Fig. 3's normalisation: hourly cost / 3.6e9 microseconds."""
        inst = instance_by_name("p3.2xlarge")
        assert inst.cost_per_us == pytest.approx(3.06 / 3.6e9)


class TestProxyRule:
    def test_exact_match_preferred(self):
        assert instance_for("V100", 1).name == "p3.2xlarge"
        assert instance_for("T4", 4).name == "g4dn.12xlarge"

    def test_exact_match_prefers_cheapest_host(self):
        """Three 1-GPU T4 hosts exist; the sweep uses the cheapest, which
        is the paper's g4dn.2xlarge."""
        assert instance_for("T4", 1).name == "g4dn.2xlarge"
        assert instance_for("M60", 1).name == "g3s.xlarge"

    def test_paper_3gpu_p2_proxy(self):
        """Section V: a 3-GPU P2 uses p2.8xlarge at 3/8 of its price."""
        inst = instance_for("K80", 3)
        assert inst.proxy_of == "p2.8xlarge"
        assert inst.usd_per_hr == pytest.approx(7.20 * 3 / 8)
        assert inst.num_gpus == 3
        assert "3/8" in inst.name

    def test_3gpu_g3_proxy_price(self):
        """The Fig. 9 discussion prices the 3-GPU G3 at $3.42/hr."""
        inst = instance_for("M60", 3)
        assert inst.usd_per_hr == pytest.approx(3.42)

    def test_4gpu_p2_uses_8gpu_host(self):
        inst = instance_for("K80", 4)
        assert inst.proxy_of == "p2.8xlarge"
        assert inst.usd_per_hr == pytest.approx(3.60)

    def test_extended_sizes_exact(self):
        """Counts beyond the paper's four resolve against the new hosts."""
        assert instance_for("V100", 8).name == "p3.16xlarge"
        assert instance_for("K80", 16).name == "p2.16xlarge"
        assert instance_for("T4", 8).name == "g4dn.metal"
        assert instance_for("M60", 2).name == "g3.8xlarge"

    def test_proxy_against_extended_host(self):
        """k between catalog sizes proxies the smallest big-enough host."""
        inst = instance_for("V100", 6)
        assert inst.proxy_of == "p3.16xlarge"
        assert inst.usd_per_hr == pytest.approx(24.48 * 6 / 8)

    def test_family_name_accepted(self):
        assert instance_for("P3", 1).gpu_key == "V100"

    def test_too_many_gpus_raises(self):
        with pytest.raises(CatalogError):
            instance_for("V100", 9)
        with pytest.raises(CatalogError):
            instance_for("K80", 17)

    def test_non_positive_gpus_raises(self):
        with pytest.raises(CatalogError):
            instance_for("V100", 0)

    def test_max_gpus_for(self):
        assert max_gpus_for("V100") == 8
        assert max_gpus_for("K80") == 16
        assert max_gpus_for("T4") == 8
        assert max_gpus_for("M60") == 4
        assert max_gpus_for("P2") == 16  # family alias

    def test_candidate_sweep_covers_all(self):
        candidates = candidate_instances(max_gpus=4)
        assert len(candidates) == 16
        assert {(c.gpu_key, c.num_gpus) for c in candidates} == {
            (g, k) for g in ("V100", "K80", "T4", "M60") for k in (1, 2, 3, 4)
        }

    def test_candidate_sweep_default_spans_each_catalog_max(self):
        """With no cap, every GPU sweeps 1..max_gpus_for(gpu)."""
        candidates = candidate_instances()
        assert len(candidates) == 8 + 16 + 8 + 4
        by_gpu = {}
        for c in candidates:
            by_gpu.setdefault(c.gpu_key, set()).add(c.num_gpus)
        for gpu, counts in by_gpu.items():
            assert counts == set(range(1, max_gpus_for(gpu) + 1))


class TestAdmission:
    """Spec-only GPUs admitted from a datasheet join the priced catalog."""

    @staticmethod
    def _spec(key="YGPU"):
        from repro.hardware.gpus import GpuSpec

        return GpuSpec(
            key=key, family="GY", marketing_name="Admitted Test GPU",
            cuda_cores=4096, tensor_cores=0, memory_gb=16,
            peak_gflops=9000.0, memory_bandwidth_gbps=450.0,
            launch_overhead_us=4.0, saturation_elements=5.0e5,
            comm_base_us=5000.0, comm_us_per_mparam=400.0,
        )

    @pytest.fixture
    def admitted(self):
        from repro.cloud.catalog import admit_gpu, clear_admitted

        created = admit_gpu(self._spec(), usd_per_hr=2.5, max_gpus=4)
        yield created
        clear_admitted("YGPU")

    def test_creates_base_and_max_instances(self, admitted):
        names = [inst.name for inst in admitted]
        assert names == ["ygpu.admitted", "ygpu.admitted-4x"]
        assert admitted[0].usd_per_hr == 2.5
        assert admitted[1].usd_per_hr == 10.0
        assert admitted[1].num_gpus == 4

    def test_instances_resolve_through_catalog(self, admitted):
        from repro.cloud.catalog import admitted_gpu_keys, all_instances

        assert "YGPU" in admitted_gpu_keys()
        assert instance_by_name("ygpu.admitted").gpu_key == "YGPU"
        assert any(i.gpu_key == "YGPU" for i in all_instances())
        # Intermediate counts resolve through the paper's proxy rule.
        proxied = instance_for("YGPU", 2)
        assert proxied.num_gpus == 2
        assert proxied.usd_per_hr == pytest.approx(5.0)
        assert max_gpus_for("YGPU") == 4

    def test_candidates_include_admitted_counts(self, admitted):
        keys = {(i.gpu_key, i.num_gpus) for i in candidate_instances()}
        for k in (1, 2, 3, 4):
            assert ("YGPU", k) in keys

    def test_admission_registers_hardware_spec(self, admitted):
        from repro.hardware.gpus import gpu_spec, is_runtime_gpu

        assert is_runtime_gpu("YGPU")
        assert gpu_spec("YGPU").peak_gflops == 9000.0

    def test_clear_admitted_removes_everything(self):
        from repro.cloud.catalog import admit_gpu, admitted_gpu_keys, clear_admitted
        from repro.errors import HardwareError
        from repro.hardware.gpus import is_runtime_gpu

        admit_gpu(self._spec(key="WGPU"), usd_per_hr=1.0, max_gpus=2)
        clear_admitted("WGPU")
        assert "WGPU" not in admitted_gpu_keys()
        assert not is_runtime_gpu("WGPU")
        # The spec itself is gone, so resolution fails at the hardware layer.
        with pytest.raises(HardwareError):
            instance_for("WGPU", 1)

    def test_invalid_admission_rejected(self):
        from repro.cloud.catalog import admit_gpu

        with pytest.raises(CatalogError):
            admit_gpu(self._spec(key="BADP"), usd_per_hr=0.0)
        with pytest.raises(CatalogError):
            admit_gpu(self._spec(key="BADK"), usd_per_hr=1.0, max_gpus=0)

    def test_duplicate_admission_rejected_unless_replace(self):
        from repro.cloud.catalog import admit_gpu, clear_admitted, instance_by_name

        admit_gpu(self._spec(key="DGPU"), usd_per_hr=1.0, max_gpus=2)
        try:
            with pytest.raises(CatalogError, match="already admitted"):
                admit_gpu(self._spec(key="DGPU"), usd_per_hr=9.0, max_gpus=2)
            # the rejected call must not have clobbered the live price
            assert instance_by_name("dgpu.admitted").usd_per_hr == 1.0
            admit_gpu(self._spec(key="DGPU"), usd_per_hr=2.0, max_gpus=4,
                      replace=True)
            assert instance_by_name("dgpu.admitted").usd_per_hr == 2.0
            assert instance_by_name("dgpu.admitted-4x").num_gpus == 4
        finally:
            clear_admitted("DGPU")
