"""Tests for pricing schemes (On-Demand, market-ratio, spot)."""

import pytest

from repro.cloud.pricing import (
    MARKET_USD_PER_HR_BY_GPU,
    MARKET_RATIO,
    ON_DEMAND,
    SPOT,
    SPOT_RATIO_BY_GPU,
    MarketRatioPricing,
    SpotPricing,
)
from repro.errors import CatalogError


class TestOnDemand:
    def test_delegates_to_catalog(self):
        inst = ON_DEMAND.instance("V100", 1)
        assert inst.name == "p3.2xlarge" and inst.usd_per_hr == 3.06

    def test_proxy_passthrough(self):
        assert ON_DEMAND.instance("K80", 3).usd_per_hr == pytest.approx(2.70)


class TestMarketRatio:
    def test_paper_market_prices(self):
        """Section V: $3.06 / $0.95 / $0.55 / $0.15 per GPU-hour."""
        assert MARKET_USD_PER_HR_BY_GPU == {
            "V100": 3.06, "T4": 0.95, "M60": 0.55, "K80": 0.15,
        }

    def test_linear_scaling_with_gpu_count(self):
        for k in (1, 2, 3, 4):
            inst = MARKET_RATIO.instance("K80", k)
            assert inst.usd_per_hr == pytest.approx(0.15 * k)
            assert inst.num_gpus == k

    def test_market_instance_names_tagged(self):
        assert MARKET_RATIO.instance("T4", 2).name.startswith("market:")

    def test_p2_much_cheaper_than_aws(self):
        """The scenario's point: AWS overprices old GPUs relative to the
        market (P2 at $0.90 vs $0.15)."""
        aws = ON_DEMAND.instance("K80", 1).usd_per_hr
        market = MARKET_RATIO.instance("K80", 1).usd_per_hr
        assert market < aws / 5

    def test_family_alias(self):
        assert MARKET_RATIO.instance("P2", 1).gpu_key == "K80"

    def test_rejects_bad_count(self):
        with pytest.raises(CatalogError):
            MARKET_RATIO.instance("T4", 0)

    def test_custom_prices(self):
        custom = MarketRatioPricing(usd_per_hr_by_gpu={"V100": 1.0})
        assert custom.instance("V100", 3).usd_per_hr == 3.0
        with pytest.raises(CatalogError):
            custom.instance("T4", 1)


class TestSpot:
    def test_discount_applied_to_on_demand_host(self):
        for gpu, ratio in SPOT_RATIO_BY_GPU.items():
            for k in (1, 2, 4):
                base = ON_DEMAND.instance(gpu, k)
                spot = SPOT.instance(gpu, k)
                assert spot.usd_per_hr == pytest.approx(base.usd_per_hr * ratio)
                assert spot.num_gpus == base.num_gpus
                assert spot.gpu_key == base.gpu_key

    def test_spot_instance_names_tagged(self):
        assert SPOT.instance("T4", 2).name.startswith("spot:")

    def test_ratios_are_real_discounts(self):
        assert all(0 < r < 1 for r in SPOT_RATIO_BY_GPU.values())

    def test_proxy_lineage_preserved(self):
        """A spot-priced fractional host still names its physical host."""
        base = ON_DEMAND.instance("K80", 3)
        spot = SPOT.instance("K80", 3)
        assert spot.proxy_of == (base.proxy_of or base.name)
        assert spot.proxy_of == "p2.8xlarge"

    def test_family_alias(self):
        assert SPOT.instance("G4", 1).gpu_key == "T4"

    def test_rejects_bad_count(self):
        with pytest.raises(CatalogError):
            SPOT.instance("T4", 0)
        with pytest.raises(CatalogError):
            SPOT.instance("V100", 9)

    def test_custom_ratios(self):
        custom = SpotPricing(ratio_by_gpu={"V100": 0.5})
        assert custom.instance("V100", 1).usd_per_hr == pytest.approx(1.53)
        with pytest.raises(CatalogError):
            custom.instance("T4", 1)


class TestAdmittedSpotRatios:
    """Spot pricing of runtime-admitted GPUs via their declared ratio."""

    @pytest.fixture
    def admitted(self):
        from repro.cloud.catalog import admit_gpu, clear_admitted
        from repro.hardware.gpus import GpuSpec

        spec = GpuSpec(
            key="PRCX", family="GP", marketing_name="Pricing Test GPU",
            cuda_cores=2048, tensor_cores=0, memory_gb=8,
            peak_gflops=7000.0, memory_bandwidth_gbps=350.0,
            launch_overhead_us=4.0, saturation_elements=5.0e5,
            comm_base_us=6000.0, comm_us_per_mparam=500.0,
        )
        yield spec
        clear_admitted("PRCX")

    def test_no_ratio_raises_with_remedy(self, admitted):
        from repro.cloud.catalog import admit_gpu

        admit_gpu(admitted, usd_per_hr=2.0, replace=True)
        with pytest.raises(CatalogError, match="--spot-ratio"):
            SPOT.instance("PRCX", 1)

    def test_declared_ratio_prices_admitted_gpu(self, admitted):
        from repro.cloud.catalog import admit_gpu
        from repro.cloud.pricing import ON_DEMAND

        admit_gpu(admitted, usd_per_hr=2.0, replace=True, spot_ratio=0.4)
        spot = SPOT.instance("PRCX", 1)
        base = ON_DEMAND.instance("PRCX", 1)
        assert spot.usd_per_hr == base.usd_per_hr * 0.4
        assert spot.name.startswith("spot:")

    def test_include_admitted_false_ignores_admission_table(self, admitted):
        from repro.cloud.catalog import admit_gpu

        admit_gpu(admitted, usd_per_hr=2.0, replace=True, spot_ratio=0.4)
        snapshot = SpotPricing(
            name="trace-snapshot", ratio_by_gpu={"V100": 0.3},
            include_admitted=False,
        )
        with pytest.raises(CatalogError, match="no spot ratio"):
            snapshot.instance("PRCX", 1)
        # ... and the static singleton keeps pricing it.
        assert SPOT.instance("PRCX", 1).usd_per_hr == pytest.approx(0.8)

    def test_bad_ratio_rejected_at_admission(self, admitted):
        from repro.cloud.catalog import admit_gpu

        for bad in (0.0, -0.5, 1.5):
            with pytest.raises(CatalogError, match="spot_ratio"):
                admit_gpu(admitted, usd_per_hr=2.0, replace=True,
                          spot_ratio=bad)

    def test_market_ratio_error_names_spot_remedy(self, admitted):
        from repro.cloud.catalog import admit_gpu

        admit_gpu(admitted, usd_per_hr=2.0, replace=True)
        with pytest.raises(CatalogError, match="catalog admit"):
            MARKET_RATIO.instance("PRCX", 1)
