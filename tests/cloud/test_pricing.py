"""Tests for pricing schemes (On-Demand, market-ratio, spot)."""

import pytest

from repro.cloud.pricing import (
    MARKET_USD_PER_HR_BY_GPU,
    MARKET_RATIO,
    ON_DEMAND,
    SPOT,
    SPOT_RATIO_BY_GPU,
    MarketRatioPricing,
    SpotPricing,
)
from repro.errors import CatalogError


class TestOnDemand:
    def test_delegates_to_catalog(self):
        inst = ON_DEMAND.instance("V100", 1)
        assert inst.name == "p3.2xlarge" and inst.usd_per_hr == 3.06

    def test_proxy_passthrough(self):
        assert ON_DEMAND.instance("K80", 3).usd_per_hr == pytest.approx(2.70)


class TestMarketRatio:
    def test_paper_market_prices(self):
        """Section V: $3.06 / $0.95 / $0.55 / $0.15 per GPU-hour."""
        assert MARKET_USD_PER_HR_BY_GPU == {
            "V100": 3.06, "T4": 0.95, "M60": 0.55, "K80": 0.15,
        }

    def test_linear_scaling_with_gpu_count(self):
        for k in (1, 2, 3, 4):
            inst = MARKET_RATIO.instance("K80", k)
            assert inst.usd_per_hr == pytest.approx(0.15 * k)
            assert inst.num_gpus == k

    def test_market_instance_names_tagged(self):
        assert MARKET_RATIO.instance("T4", 2).name.startswith("market:")

    def test_p2_much_cheaper_than_aws(self):
        """The scenario's point: AWS overprices old GPUs relative to the
        market (P2 at $0.90 vs $0.15)."""
        aws = ON_DEMAND.instance("K80", 1).usd_per_hr
        market = MARKET_RATIO.instance("K80", 1).usd_per_hr
        assert market < aws / 5

    def test_family_alias(self):
        assert MARKET_RATIO.instance("P2", 1).gpu_key == "K80"

    def test_rejects_bad_count(self):
        with pytest.raises(CatalogError):
            MARKET_RATIO.instance("T4", 0)

    def test_custom_prices(self):
        custom = MarketRatioPricing(usd_per_hr_by_gpu={"V100": 1.0})
        assert custom.instance("V100", 3).usd_per_hr == 3.0
        with pytest.raises(CatalogError):
            custom.instance("T4", 1)


class TestSpot:
    def test_discount_applied_to_on_demand_host(self):
        for gpu, ratio in SPOT_RATIO_BY_GPU.items():
            for k in (1, 2, 4):
                base = ON_DEMAND.instance(gpu, k)
                spot = SPOT.instance(gpu, k)
                assert spot.usd_per_hr == pytest.approx(base.usd_per_hr * ratio)
                assert spot.num_gpus == base.num_gpus
                assert spot.gpu_key == base.gpu_key

    def test_spot_instance_names_tagged(self):
        assert SPOT.instance("T4", 2).name.startswith("spot:")

    def test_ratios_are_real_discounts(self):
        assert all(0 < r < 1 for r in SPOT_RATIO_BY_GPU.values())

    def test_proxy_lineage_preserved(self):
        """A spot-priced fractional host still names its physical host."""
        base = ON_DEMAND.instance("K80", 3)
        spot = SPOT.instance("K80", 3)
        assert spot.proxy_of == (base.proxy_of or base.name)
        assert spot.proxy_of == "p2.8xlarge"

    def test_family_alias(self):
        assert SPOT.instance("G4", 1).gpu_key == "T4"

    def test_rejects_bad_count(self):
        with pytest.raises(CatalogError):
            SPOT.instance("T4", 0)
        with pytest.raises(CatalogError):
            SPOT.instance("V100", 9)

    def test_custom_ratios(self):
        custom = SpotPricing(ratio_by_gpu={"V100": 0.5})
        assert custom.instance("V100", 1).usd_per_hr == pytest.approx(1.53)
        with pytest.raises(CatalogError):
            custom.instance("T4", 1)
